"""The I/O seam: every storage-plane filesystem operation goes here.

Three callers route through this module — the connection-record store
(shard objects and manifests), the stream checkpointer (via the store),
the telemetry log, and the pcap writer — so one fault plane can reach
all of them.  With no plane active every function is a thin wrapper
over ``os``/``open`` with **no behavioral difference except durability**:
:func:`publish_bytes` is the crash-consistent publication protocol
(unique temp file, ``fsync`` the contents, atomic ``os.replace``,
``fsync`` the containing directory) that the store previously skipped
the fsyncs of.

Fault application is centralized so consumers never need to know chaos
exists: injected ENOSPC/EIO surface as ordinary :class:`OSError`, torn
writes persist a prefix (callers' CRCs catch them later), lost renames
are detected by the publish-time existence check and surface as EIO,
bit flips corrupt the *returned* bytes (never the disk), and crash
faults kill the process outright.
"""

from __future__ import annotations

import errno
import os
import tempfile
from pathlib import Path
from typing import BinaryIO

from .faults import FaultKind, FaultRule, current_plane

__all__ = [
    "guard",
    "read_bytes",
    "publish_bytes",
    "publish_text",
    "fsync_dir",
    "open_write",
]


def _raise_io(kind: FaultKind, op: str, path: str) -> None:
    if kind is FaultKind.ENOSPC:
        raise OSError(errno.ENOSPC, f"injected ENOSPC during {op}", path)
    if kind is FaultKind.ROOT_DOWN:
        raise OSError(errno.ENOENT, f"injected root_down during {op}", path)
    raise OSError(errno.EIO, f"injected EIO during {op}", path)


def guard(op: str, path: str | Path) -> FaultRule | None:
    """Consult the fault plane for one operation.

    Raises :class:`OSError` for ENOSPC/EIO faults and dies for crash
    faults; data-shaping faults (torn writes, lost renames, bit flips)
    are returned for the caller to apply at the right moment.  Returns
    ``None`` — for free — when no plane is active.
    """
    plane = current_plane()
    if plane is None:
        return None
    rule = plane.check(op, str(path))
    if rule is None:
        return None
    if rule.kind is FaultKind.CRASH:
        plane.crash(op, str(path))
    if rule.kind in (
        FaultKind.ENOSPC,
        FaultKind.EIO,
        FaultKind.ROOT_DOWN,
        FaultKind.FLAKY_ROOT,
    ):
        _raise_io(rule.kind, op, str(path))
    return rule


def read_bytes(path: str | Path) -> bytes:
    """Read a whole file, with read-side faults applied to the result."""
    rule = guard("read", path)
    data = Path(path).read_bytes()
    if rule is not None and rule.kind is FaultKind.BIT_FLIP:
        data = current_plane().flip_bit(data)
    return data


def fsync_dir(path: str | Path) -> None:
    """Flush a directory's entry table (what makes a rename durable)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return  # platforms that refuse O_RDONLY on directories
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def publish_bytes(path: Path, data: bytes, tmp_prefix: str = ".pub-") -> None:
    """Crash-consistently materialize ``data`` at ``path``.

    The protocol: write to a uniquely named temp file in the target
    directory, ``fsync`` the file, atomically ``os.replace`` it into
    place, then ``fsync`` the directory so the rename itself survives a
    power cut.  A reader can never observe a partial object; a crash at
    any point leaves at worst a ``.tmp`` file for gc.  After the
    replace the target's existence is re-verified, which converts a
    lost rename (injected, or a genuinely lying filesystem) into an
    :class:`OSError` the caller's error policy can absorb instead of a
    silently missing object.
    """
    rule = guard("publish", path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=tmp_prefix, suffix=".tmp")
    try:
        payload = data
        if rule is not None and rule.kind is FaultKind.TORN_WRITE:
            payload = data[: current_plane().torn_length(len(data))]
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        # A second injection point between write and rename: a crash
        # fault here models the classic torn-publication kill, a
        # lost_rename one the rename that never reached the journal.
        rename_rule = guard("rename", path)
        lost = (rule is not None and rule.kind is FaultKind.LOST_RENAME) or (
            rename_rule is not None and rename_rule.kind is FaultKind.LOST_RENAME
        )
        if not lost:
            os.replace(tmp, path)
            fsync_dir(path.parent)
        else:
            os.unlink(tmp)
        if not path.exists():
            raise OSError(
                errno.EIO, "publication lost: rename did not persist", str(path)
            )
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def publish_text(path: Path, text: str, tmp_prefix: str = ".pub-") -> None:
    """:func:`publish_bytes` for UTF-8 text."""
    publish_bytes(path, text.encode("utf-8"), tmp_prefix=tmp_prefix)


class _FaultStream:
    """A write-through wrapper applying stream faults per ``write``."""

    def __init__(self, stream: BinaryIO, op: str, path: str) -> None:
        self._stream = stream
        self._op = op
        self._path = path

    def write(self, data: bytes) -> int:
        rule = guard(self._op, self._path)
        if rule is not None and rule.kind is FaultKind.TORN_WRITE:
            torn = data[: current_plane().torn_length(len(data))]
            self._stream.write(torn)
            raise OSError(
                errno.EIO, f"injected torn write during {self._op}", self._path
            )
        return self._stream.write(data)

    def __getattr__(self, name: str):
        return getattr(self._stream, name)


def open_write(path: str | Path, op: str = "trace-write") -> BinaryIO:
    """Open ``path`` for binary writing through the fault plane.

    Without an active plane this is exactly ``open(path, "wb")`` — the
    wrapper is only interposed when faults can fire, so the hot path
    costs nothing.
    """
    guard(op + ".open", path)
    stream = open(path, "wb")
    if current_plane() is None:
        return stream
    return _FaultStream(stream, op, str(path))  # type: ignore[return-value]
