"""Deterministic I/O chaos: seeded fault schedules for the storage plane.

The store, the stream checkpointer, the telemetry log, and the pcap
writer all funnel their filesystem traffic through :mod:`repro.chaos.fsio`.
With no fault plane active that module is a thin zero-overhead veneer
over ``os``/``open``; with one active (:func:`activate`, the
:func:`active` context manager, or the ``REPRO_CHAOS`` environment
variable) every operation first asks the plane whether this is the
moment the disk lies — ENOSPC, EIO, a torn write, a lost rename, a
read-side bit flip, or an outright process kill.

Schedules are seeded and counted, so a failing chaos run replays
exactly; see ``docs/robustness.md`` for the schedule grammar.
"""

from .faults import (
    CHAOS_ENV,
    FaultKind,
    FaultPlane,
    FaultRule,
    InjectedCrash,
    activate,
    active,
    current_plane,
    deactivate,
)

__all__ = [
    "CHAOS_ENV",
    "FaultKind",
    "FaultPlane",
    "FaultRule",
    "InjectedCrash",
    "activate",
    "active",
    "current_plane",
    "deactivate",
]
