"""Seeded fault schedules: when and how the filesystem lies.

A :class:`FaultPlane` owns a list of :class:`FaultRule` entries and a
seeded RNG.  Every I/O operation routed through :mod:`repro.chaos.fsio`
calls :meth:`FaultPlane.check` with an operation name (``"publish"``,
``"read"``, ``"append"``, ``"trace-write"``) and the path involved; the
first rule whose filters match *and* whose schedule fires wins, and the
caller applies that fault.  Schedules are deterministic: a rule fires
either at exact 1-based indices of its matching-operation count
(``at``), or by seeded coin flip (``rate``), and never more than
``limit`` times — so the same process performing the same operation
sequence meets the same faults, every run.

The plane travels across process boundaries two ways: forked workers
inherit it (with the parent's counters, so every child replays the same
schedule from the same point), and fresh processes pick it up from the
``REPRO_CHAOS`` environment variable — a JSON document written by
:meth:`FaultPlane.to_env` — which is how the chaos-soak harness arms a
CLI run it is about to kill.
"""

from __future__ import annotations

import fnmatch
import json
import os
import random
from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "CHAOS_ENV",
    "FaultKind",
    "FaultRule",
    "FaultPlane",
    "InjectedCrash",
    "activate",
    "deactivate",
    "active",
    "current_plane",
]

#: Environment variable carrying a serialized fault plane.
CHAOS_ENV = "REPRO_CHAOS"

#: Exit status used by ``crash`` faults under ``crash_mode="exit"``
#: (mirrors a SIGKILL death so supervisors treat it as a hard kill).
CRASH_EXIT_CODE = 137


class FaultKind(str, Enum):
    """The injectable I/O faults."""

    #: The write fails with ``ENOSPC`` after a partial transfer.
    ENOSPC = "enospc"
    #: The operation fails with ``EIO``.
    EIO = "eio"
    #: The write silently persists only a prefix of the data.
    TORN_WRITE = "torn_write"
    #: An ``os.replace`` publication silently never happens.
    LOST_RENAME = "lost_rename"
    #: A read returns the file's bytes with one bit flipped.
    BIT_FLIP = "bit_flip"
    #: The process dies on the spot (kill-at-any-point).
    CRASH = "crash"
    #: Every matching operation fails with ``ENOENT`` — a root whose
    #: disk was pulled.  With no ``at``/``rate`` the rule fires on every
    #: match (pair with ``limit=None``): a dead root stays dead.
    ROOT_DOWN = "root_down"
    #: Matching operations fail with ``EIO`` intermittently — a dying
    #: disk.  Schedule with ``rate`` (and usually ``limit=None``).
    FLAKY_ROOT = "flaky_root"


class InjectedCrash(BaseException):
    """A scheduled process death under ``crash_mode="raise"``.

    Subclasses :class:`BaseException` so ordinary ``except Exception``
    recovery code cannot swallow it — exactly like a real SIGKILL,
    which no handler sees either.
    """


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: what fires, where, and when."""

    kind: FaultKind
    #: Operation prefix this rule watches (None = every operation).
    op: str | None = None
    #: ``fnmatch`` pattern the path's string form must match (None = any).
    path: str | None = None
    #: Fire at these 1-based indices of the rule's matching-op count.
    at: tuple[int, ...] = ()
    #: Else fire each matching op with this seeded probability.
    rate: float = 0.0
    #: Total firings allowed (None = unlimited).
    limit: int | None = 1

    def matches(self, op: str, path: str) -> bool:
        if self.op is not None and not op.startswith(self.op):
            return False
        if self.path is not None and not fnmatch.fnmatch(path, self.path):
            return False
        return True

    def to_payload(self) -> dict:
        return {
            "kind": self.kind.value,
            "op": self.op,
            "path": self.path,
            "at": list(self.at),
            "rate": self.rate,
            "limit": self.limit,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultRule":
        return cls(
            kind=FaultKind(payload["kind"]),
            op=payload.get("op"),
            path=payload.get("path"),
            at=tuple(payload.get("at", ())),
            rate=float(payload.get("rate", 0.0)),
            limit=payload.get("limit", 1),
        )


@dataclass
class _RuleState:
    """Mutable per-rule accounting (kept out of the frozen rule)."""

    seen: int = 0
    fired: int = 0


class FaultPlane:
    """A seeded, counted fault schedule for the I/O seam."""

    def __init__(
        self,
        seed: int = 0,
        rules: list[FaultRule] | tuple[FaultRule, ...] = (),
        crash_mode: str = "exit",
    ) -> None:
        if crash_mode not in ("exit", "raise"):
            raise ValueError(f"crash_mode must be 'exit' or 'raise': {crash_mode!r}")
        self.seed = seed
        self.rules = tuple(rules)
        self.crash_mode = crash_mode
        self._rng = random.Random(seed)
        self._state = [_RuleState() for _ in self.rules]
        #: Every fault fired so far, as (op, path, kind) — the replay log.
        self.fired_log: list[tuple[str, str, FaultKind]] = []

    # -- scheduling --------------------------------------------------------

    def check(self, op: str, path: str) -> FaultRule | None:
        """Ask whether this operation meets a fault; first match wins."""
        for rule, state in zip(self.rules, self._state):
            if not rule.matches(op, path):
                continue
            state.seen += 1
            if rule.limit is not None and state.fired >= rule.limit:
                continue
            fires = state.seen in rule.at or (
                rule.rate > 0.0 and self._rng.random() < rule.rate
            )
            if not rule.at and rule.rate <= 0.0 and rule.kind is FaultKind.ROOT_DOWN:
                # An unscheduled root_down is a steady-state outage, not
                # an event: it fires on every matching operation.
                fires = True
            if fires:
                state.fired += 1
                self.fired_log.append((op, path, rule.kind))
                return rule
        return None

    # -- fault application helpers ----------------------------------------

    def crash(self, op: str, path: str) -> None:
        """Die on the spot, the way the schedule asked to."""
        if self.crash_mode == "exit":
            os._exit(CRASH_EXIT_CODE)
        raise InjectedCrash(f"injected crash during {op} of {path}")

    def torn_length(self, size: int) -> int:
        """How many bytes a torn write persists (seeded, always < size)."""
        if size <= 1:
            return 0
        return self._rng.randrange(1, size)

    def flip_bit(self, data: bytes) -> bytes:
        """Return ``data`` with one seeded bit flipped."""
        if not data:
            return data
        flipped = bytearray(data)
        index = self._rng.randrange(len(flipped))
        flipped[index] ^= 1 << self._rng.randrange(8)
        return bytes(flipped)

    # -- serialization -----------------------------------------------------

    def to_env(self) -> str:
        """Serialize for ``REPRO_CHAOS`` (schedule only, not counters)."""
        return json.dumps(
            {
                "seed": self.seed,
                "crash_mode": self.crash_mode,
                "rules": [rule.to_payload() for rule in self.rules],
            },
            sort_keys=True,
        )

    @classmethod
    def from_env(cls, text: str) -> "FaultPlane":
        payload = json.loads(text)
        return cls(
            seed=int(payload.get("seed", 0)),
            rules=[FaultRule.from_payload(raw) for raw in payload.get("rules", ())],
            crash_mode=payload.get("crash_mode", "exit"),
        )


# -- the process-wide active plane -------------------------------------------

_active_plane: FaultPlane | None = None
_env_checked = False


def activate(plane: FaultPlane) -> FaultPlane:
    """Install ``plane`` as the process-wide fault plane."""
    global _active_plane, _env_checked
    _active_plane = plane
    _env_checked = True
    return plane


def deactivate() -> None:
    """Remove the active fault plane (I/O goes back to honest)."""
    global _active_plane, _env_checked
    _active_plane = None
    _env_checked = True


def current_plane() -> FaultPlane | None:
    """The active plane, arming lazily from ``REPRO_CHAOS`` once."""
    global _active_plane, _env_checked
    if not _env_checked:
        _env_checked = True
        text = os.environ.get(CHAOS_ENV)
        if text:
            _active_plane = FaultPlane.from_env(text)
    return _active_plane


class active:
    """Context manager scoping a fault plane to a ``with`` block."""

    def __init__(self, plane: FaultPlane) -> None:
        self.plane = plane
        self._previous: FaultPlane | None = None

    def __enter__(self) -> FaultPlane:
        self._previous = current_plane()
        activate(self.plane)
        return self.plane

    def __exit__(self, *exc_info: object) -> None:
        global _active_plane
        _active_plane = self._previous
