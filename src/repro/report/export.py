"""Export reproduced artifacts to files (CSV + plain text).

Downstream users typically want the figures as data, not prose:
``export_study`` writes every table as CSV, every CDF curve as (x, F(x))
points, and the per-trace series — enough to re-plot the paper with any
tool.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING

from .model import CdfFigure, SeriesFigure, Table
from .quality import data_quality_table

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from ..core.study import StudyResults

__all__ = ["export_table_csv", "export_figure_csv", "export_study"]

_TABLE_NUMBERS = tuple(range(1, 16))
_FIGURE_NUMBERS = tuple(range(1, 11))


def export_table_csv(table: Table, path: str | Path) -> Path:
    """Write one table as CSV; returns the path written."""
    path = Path(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        writer.writerows(table.rows)
    return path


def export_figure_csv(figure: CdfFigure | SeriesFigure, path: str | Path) -> Path:
    """Write one figure's curves/series as long-format CSV."""
    path = Path(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        if isinstance(figure, CdfFigure):
            writer.writerow(["curve", "x", "F"])
            for name, points in figure.points().items():
                for x, F in points:
                    writer.writerow([name, x, F])
        else:
            writer.writerow(["series", "index", "value"])
            for name, values in figure.series.items():
                for index, value in enumerate(values):
                    writer.writerow([name, index, value])
    return path


def _flatten(built) -> list[tuple[str, object]]:
    """Expand a figure() result into (suffix, artifact) pairs."""
    if isinstance(built, (Table, CdfFigure, SeriesFigure)):
        return [("", built)]
    if isinstance(built, dict):
        return [(f"_{key}", item) for key, item in built.items()]
    return [(f"_{chr(ord('a') + i)}", item) for i, item in enumerate(built)]


def export_study(results: "StudyResults", out_dir: str | Path) -> list[Path]:
    """Export every table and figure of a study; returns written paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for number in _TABLE_NUMBERS:
        table = results.table(number)
        written.append(export_table_csv(table, out / f"table{number:02d}.csv"))
        (out / f"table{number:02d}.txt").write_text(table.render() + "\n")
        written.append(out / f"table{number:02d}.txt")
    for number in _FIGURE_NUMBERS:
        built = results.figure(number)
        for suffix, artifact in _flatten(built):
            base = f"figure{number:02d}{suffix}"
            if isinstance(artifact, Table):
                written.append(export_table_csv(artifact, out / f"{base}.csv"))
            else:
                written.append(export_figure_csv(artifact, out / f"{base}.csv"))
            (out / f"{base}.txt").write_text(artifact.render() + "\n")
            written.append(out / f"{base}.txt")
    quality = data_quality_table(results.analyses)
    written.append(export_table_csv(quality, out / "data_quality.csv"))
    (out / "data_quality.txt").write_text(quality.render() + "\n")
    written.append(out / "data_quality.txt")
    return written
