"""Per-category traffic aggregation — the substrate of Figure 1.

Splits each dataset's (scan-filtered) connections into the Table 4
application categories, each with connection/byte/packet counts further
split into enterprise-internal, WAN-involving, and multicast shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..analysis.classify import classify_conn
from ..analysis.conn import ConnRecord, Locality
from ..util.addr import Subnet
from ..analysis.conn import DEFAULT_INTERNAL_NET

__all__ = ["CategoryStats", "CategoryBreakdown", "category_breakdown", "CATEGORY_ORDER"]

#: Figure 1's category order.
CATEGORY_ORDER = [
    "web",
    "email",
    "net-file",
    "backup",
    "bulk",
    "name",
    "interactive",
    "windows",
    "streaming",
    "net-mgnt",
    "misc",
    "other-tcp",
    "other-udp",
]


@dataclass
class CategoryStats:
    """Aggregates for one application category."""

    conns: int = 0
    payload_bytes: int = 0
    packets: int = 0
    ent_conns: int = 0
    wan_conns: int = 0
    mcast_conns: int = 0
    ent_bytes: int = 0
    wan_bytes: int = 0
    mcast_bytes: int = 0


@dataclass
class CategoryBreakdown:
    """All categories of one dataset."""

    stats: dict[str, CategoryStats] = field(default_factory=dict)

    @property
    def total_conns(self) -> int:
        return sum(cat.conns for cat in self.stats.values())

    @property
    def total_bytes(self) -> int:
        return sum(cat.payload_bytes for cat in self.stats.values())

    def conn_fraction(self, category: str, where: str = "all") -> float:
        """Category's share of unicast connections.

        ``where`` is "all", "ent", or "wan"; the fraction's denominator
        is always the all-category unicast total (Figure 1 stacks ent and
        wan shares of the same bar).
        """
        total = self.total_conns
        if not total:
            return 0.0
        stats = self.stats.get(category)
        if stats is None:
            return 0.0
        value = {"all": stats.conns, "ent": stats.ent_conns, "wan": stats.wan_conns}[where]
        return value / total

    def byte_fraction(self, category: str, where: str = "all") -> float:
        """Category's share of unicast payload bytes."""
        total = self.total_bytes
        if not total:
            return 0.0
        stats = self.stats.get(category)
        if stats is None:
            return 0.0
        value = {
            "all": stats.payload_bytes,
            "ent": stats.ent_bytes,
            "wan": stats.wan_bytes,
        }[where]
        return value / total

    def multicast_byte_fraction(self, category: str) -> float:
        """Category's multicast bytes over all (unicast+multicast) bytes."""
        total = self.total_bytes + sum(c.mcast_bytes for c in self.stats.values())
        stats = self.stats.get(category)
        if stats is None or not total:
            return 0.0
        return stats.mcast_bytes / total

    def multicast_conn_fraction(self, category: str) -> float:
        """Category's multicast connections over all connections."""
        total = self.total_conns + sum(c.mcast_conns for c in self.stats.values())
        stats = self.stats.get(category)
        if stats is None or not total:
            return 0.0
        return stats.mcast_conns / total


def category_breakdown(
    conns: Iterable[ConnRecord],
    windows_endpoints: set[tuple[int, int]] | None = None,
    internal_net: Subnet = DEFAULT_INTERNAL_NET,
    include_icmp: bool = False,
) -> CategoryBreakdown:
    """Aggregate connections into Table 4 categories.

    Multicast flows are tracked separately from the unicast ent/wan split
    (Figure 1 plots unicast; §3's multicast findings use the rest).  ICMP
    is excluded by default, like the TCP/UDP application breakdown.
    """
    breakdown = CategoryBreakdown()
    for conn in conns:
        if conn.proto == "icmp" and not include_icmp:
            continue
        _proto, category = classify_conn(conn, windows_endpoints)
        stats = breakdown.stats.setdefault(category, CategoryStats())
        where = conn.locality(internal_net)
        if where in (Locality.MCAST_INT, Locality.MCAST_EXT):
            stats.mcast_conns += 1
            stats.mcast_bytes += conn.total_bytes
            continue
        stats.conns += 1
        stats.payload_bytes += conn.total_bytes
        stats.packets += conn.total_pkts
        if where is Locality.ENT_ENT:
            stats.ent_conns += 1
            stats.ent_bytes += conn.total_bytes
        else:
            stats.wan_conns += 1
            stats.wan_bytes += conn.total_bytes
    return breakdown
