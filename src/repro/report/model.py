"""Report data model: tables and figures with plain-text rendering.

Every reproduced table/figure is a structured object first (so tests and
benchmarks can assert on values) and a rendered string second (so the
benchmark harness can print the same rows the paper reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..util.stats import Cdf

__all__ = ["Table", "CdfFigure", "SeriesFigure"]


def _fmt_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A labeled grid, like the paper's tables."""

    id: str
    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row (first cell is the row label)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"{self.id}: row has {len(cells)} cells, expected {len(self.columns)}"
            )
        self.rows.append(list(cells))

    def cell(self, row_label: str, column: str) -> object:
        """Look up one cell by row label and column name."""
        try:
            col_index = self.columns.index(column)
        except ValueError:
            raise KeyError(f"{self.id}: no column {column!r}") from None
        for row in self.rows:
            if row[0] == row_label:
                return row[col_index]
        raise KeyError(f"{self.id}: no row {row_label!r}")

    def render(self) -> str:
        """Render as aligned plain text."""
        grid = [self.columns] + [[_fmt_cell(cell) for cell in row] for row in self.rows]
        widths = [max(len(line[i]) for line in grid) for i in range(len(self.columns))]
        lines = [f"{self.id}: {self.title}"]
        header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in grid[1:]:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)


@dataclass
class CdfFigure:
    """A figure made of one or more empirical CDF curves."""

    id: str
    title: str
    xlabel: str
    series: dict[str, Cdf] = field(default_factory=dict)
    log_x: bool = True

    def add(self, name: str, cdf: Cdf) -> None:
        """Add one curve; empty samples are kept (rendered as N=0)."""
        self.series[name] = cdf

    def render(self, quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)) -> str:
        """Render each curve's key quantiles as text."""
        lines = [f"{self.id}: {self.title}  [x: {self.xlabel}]"]
        name_width = max((len(name) for name in self.series), default=4)
        header = "curve".ljust(name_width) + "  N     " + "  ".join(
            f"p{int(q * 100):<6}" for q in quantiles
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name, cdf in self.series.items():
            if not len(cdf):
                lines.append(f"{name.ljust(name_width)}  0     (no samples)")
                continue
            values = "  ".join(f"{cdf.quantile(q):<7.4g}" for q in quantiles)
            lines.append(f"{name.ljust(name_width)}  {len(cdf):<5d} {values}")
        return "\n".join(lines)

    def points(self, max_points: int = 120) -> dict[str, list[tuple[float, float]]]:
        """Plot-ready (x, F(x)) points per curve."""
        return {name: cdf.points(max_points) for name, cdf in self.series.items()}

    def render_plot(self, width: int = 72, height: int = 18) -> str:
        """Render the curves as an ASCII plot (see report.ascii_plot)."""
        from .ascii_plot import plot_cdf_figure

        return plot_cdf_figure(self, width=width, height=height)


@dataclass
class SeriesFigure:
    """A figure of named point series (e.g. per-trace retransmission rates)."""

    id: str
    title: str
    ylabel: str
    series: dict[str, list[float]] = field(default_factory=dict)

    def add(self, name: str, values: Sequence[float]) -> None:
        self.series[name] = list(values)

    def render(self) -> str:
        lines = [f"{self.id}: {self.title}  [y: {self.ylabel}]"]
        for name, values in self.series.items():
            if not values:
                lines.append(f"  {name}: (no points)")
                continue
            top = sorted(values, reverse=True)[:3]
            mean = sum(values) / len(values)
            lines.append(
                f"  {name}: n={len(values)} mean={mean:.4g} "
                f"max={top[0]:.4g} top3={[round(v, 4) for v in top]}"
            )
        return "\n".join(lines)
