"""The data-quality section: what ingestion had to tolerate, per dataset.

The paper is explicit about its measurement pathology (§2: snaplen-68
header-only captures, unexplained capture drops, partial traces).  A
reproduction that survives such input must say *what* it survived, or
every downstream number silently changes meaning.  This builder turns
the error accounting collected by the ingestion layer into one table:
traces quarantined or salvaged, defect counts by taxonomy kind, and
application analyzers disabled by their circuit breakers.
"""

from __future__ import annotations

from typing import Mapping

from ..analysis.engine import DatasetAnalysis
from ..analysis.errors import ErrorKind
from .model import Table

__all__ = ["data_quality_table", "render_data_quality"]


def data_quality_table(analyses: Mapping[str, DatasetAnalysis]) -> Table:
    """Build the per-dataset data-quality accounting table."""
    names = list(analyses)
    table = Table(
        "Data quality",
        "ingestion errors, quarantines, and analyzer failures",
        ["row"] + names,
    )

    def row(label, value_of):
        table.add_row(label, *(value_of(analyses[name]) for name in names))

    row("error policy", lambda a: a.error_policy)
    row("traces", lambda a: len(a.traces))
    row("traces quarantined", lambda a: len(a.quarantined_traces()))
    row("traces salvaged (truncated tail)", lambda a: len(a.salvaged_traces()))
    row("packets", lambda a: a.total_packets)
    row("total errors", lambda a: a.total_errors)
    for kind in ErrorKind:
        row(
            f"errors: {kind.value}",
            lambda a, kind=kind: a.error_totals().get(kind.value, 0),
        )
    row(
        "timestamp regressions",
        lambda a: sum(trace.timestamp_regressions for trace in a.traces),
    )
    row(
        "analyzers disabled",
        lambda a: ", ".join(sorted(a.failed_analyzers())) or "none",
    )
    return table


def render_data_quality(analyses: Mapping[str, DatasetAnalysis]) -> str:
    """Render the data-quality section, with quarantine detail lines."""
    lines = [data_quality_table(analyses).render()]
    for name, analysis in analyses.items():
        for trace in analysis.quarantined_traces():
            lines.append(f"  {name} quarantined {trace.path}: {trace.quarantine_reason}")
    return "\n".join(lines)
