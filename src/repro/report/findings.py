"""Table 5 — the paper's example-findings index, computed.

The paper's Table 5 is a qualitative list of §5 findings.  Here each
row is regenerated with the reproduction's own measured values, so the
index doubles as a one-screen summary of whether the per-application
findings hold.
"""

from __future__ import annotations

from typing import Mapping

from ..analysis.analyzers.http import AUTO_CLASSES
from ..analysis.engine import DatasetAnalysis
from ..util.fmt import fmt_pct
from .model import Table

__all__ = ["table5"]

_FULL = ("D0", "D3", "D4")


def _spans(values: list[float]) -> str:
    if not values:
        return "n/a"
    return f"{min(values) * 100:.0f}-{max(values) * 100:.0f}%"


def table5(analyses: Mapping[str, DatasetAnalysis]) -> Table:
    """Build Table 5 with measured values substituted into each finding."""
    table = Table(
        "Table 5", "Example application traffic characteristics (measured)",
        ["section", "finding"],
    )

    http_reports = [
        analyses[name].analyzer_results["http"]
        for name in _FULL
        if name in analyses
    ]
    auto = [
        sum(report.auto_request_fraction(k) for k in AUTO_CLASSES)
        for report in http_reports
        if report.internal_requests_total
    ]
    table.add_row(
        "§5.1.1",
        f"Automated HTTP clients are {_spans(auto)} of internal HTTP requests",
    )

    imaps_gaps = []
    for name in ("D1", "D2"):
        if name not in analyses:
            continue
        report = analyses[name].analyzer_results["email"]
        ent = report.duration_cdf("SIMAP", "ent")
        wan = report.duration_cdf("SIMAP", "wan")
        if len(ent) > 5 and len(wan) > 5 and wan.median > 0:
            imaps_gaps.append(ent.median / wan.median)
    gap_text = (
        f"{min(imaps_gaps):.0f}-{max(imaps_gaps):.0f}x" if imaps_gaps else "n/a"
    )
    table.add_row(
        "§5.1.2",
        f"Internal IMAP/S connections live {gap_text} longer than wide-area ones",
    )

    nbns_fail = [
        analyses[name].analyzer_results["netbios"].distinct_query_failure_rate()
        for name in _FULL
        if name in analyses
        and analyses[name].analyzer_results["netbios"].query_outcomes
    ]
    table.add_row(
        "§5.1.3",
        f"Netbios/NS queries fail {_spans(nbns_fail)} of the time (stale names)",
    )

    rpc_shares = []
    top_functions: set[str] = set()
    for name in _FULL:
        if name not in analyses:
            continue
        report = analyses[name].analyzer_results["windows"]
        if sum(report.cifs_requests.values()):
            rpc_shares.append(report.cifs_request_fraction("RPC Pipes"))
        if report.rpc_requests:
            label = report.rpc_requests.most_common(1)[0][0]
            top_functions.add("printing" if label.startswith("Spoolss") else "authentication")
    table.add_row(
        "§5.2.1",
        f"DCE/RPC named pipes are the most active CIFS component "
        f"({_spans(rpc_shares)} of messages); "
        f"{' and '.join(sorted(top_functions)) or 'n/a'} are the heaviest services",
    )

    nfs_rw = []
    for name in _FULL:
        if name not in analyses:
            continue
        report = analyses[name].analyzer_results["nfs"]
        if sum(report.requests_by_type.values()):
            nfs_rw.append(
                report.request_type_fraction("Read")
                + report.request_type_fraction("Write")
                + report.request_type_fraction("GetAttr")
            )
    table.add_row(
        "§5.2.2",
        f"Reading, writing, and attributes make up {_spans(nfs_rw)} of NFS requests",
    )

    veritas_reverse = []
    dantz_reverse = []
    for analysis in analyses.values():
        report = analysis.analyzer_results["backup"]
        if report.products["VERITAS-BACKUP-DATA"].bytes:
            veritas_reverse.append(report.reverse_fraction("VERITAS-BACKUP-DATA"))
        if report.products["DANTZ"].bytes:
            dantz_reverse.append(report.reverse_fraction("DANTZ"))
    veritas_text = fmt_pct(max(veritas_reverse)) if veritas_reverse else "n/a"
    dantz_text = fmt_pct(max(dantz_reverse)) if dantz_reverse else "n/a"
    table.add_row(
        "§5.2.3",
        f"Veritas data flows one way (reverse share {veritas_text}); "
        f"Dantz connections can be large in either direction "
        f"(reverse share up to {dantz_text})",
    )
    return table
