"""ASCII rendering of CDF figures.

The paper's figures are log-x CDF plots; this renders the reproduced
curves on a character grid so benchmark output and examples can show the
*shape* (crossovers, modes, tails) and not just quantile tables.
"""

from __future__ import annotations

import math

from ..util.stats import Cdf
from .model import CdfFigure

__all__ = ["plot_cdf_figure"]

_MARKERS = "*+ox#@%&"


def _x_transform(log_x: bool):
    if log_x:
        return lambda x: math.log10(max(x, 1e-12))
    return lambda x: x


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e6 or magnitude < 1e-3:
        return f"{value:.0e}"
    if magnitude >= 100:
        return f"{value:.0f}"
    return f"{value:.3g}"


def plot_cdf_figure(
    figure: CdfFigure,
    width: int = 72,
    height: int = 18,
    max_curves: int = 8,
) -> str:
    """Render a :class:`CdfFigure` as an ASCII plot.

    Curves beyond ``max_curves`` are dropped (with a note) — the paper's
    own figures rarely carry more than eight series legibly.
    """
    curves = [(name, cdf) for name, cdf in figure.series.items() if len(cdf)]
    dropped = curves[max_curves:]
    curves = curves[:max_curves]
    if not curves:
        return f"{figure.id}: {figure.title}\n(no samples)"

    transform = _x_transform(figure.log_x)
    x_min = min(cdf.min for _, cdf in curves)
    x_max = max(cdf.max for _, cdf in curves)
    if figure.log_x:
        x_min = max(x_min, 1e-6)
        x_max = max(x_max, x_min * 10)
    if x_max <= x_min:
        x_max = x_min + 1.0
    t_min, t_max = transform(x_min), transform(x_max)
    span = t_max - t_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for curve_index, (_name, cdf) in enumerate(curves):
        marker = _MARKERS[curve_index % len(_MARKERS)]
        for column in range(width):
            t = t_min + span * column / (width - 1)
            x = 10**t if figure.log_x else t
            F = cdf(x)
            row = height - 1 - min(int(F * (height - 1) + 0.5), height - 1)
            if grid[row][column] == " ":
                grid[row][column] = marker

    lines = [f"{figure.id}: {figure.title}"]
    for index, row in enumerate(grid):
        F_label = 1.0 - index / (height - 1)
        prefix = f"{F_label:4.2f} |" if index % 4 == 0 or index == height - 1 else "     |"
        lines.append(prefix + "".join(row))
    lines.append("     +" + "-" * width)
    left = _format_tick(x_min)
    mid = _format_tick(10 ** (t_min + span / 2) if figure.log_x else t_min + span / 2)
    right = _format_tick(x_max)
    axis = " " * 6 + left
    middle_at = 6 + width // 2 - len(mid) // 2
    axis = axis.ljust(middle_at) + mid
    axis = axis.ljust(6 + width - len(right)) + right
    lines.append(axis)
    lines.append(f"       x: {figure.xlabel}" + ("  [log scale]" if figure.log_x else ""))
    legend = "       " + "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name} (N={len(cdf)})"
        for i, (name, cdf) in enumerate(curves)
    )
    lines.append(legend)
    if dropped:
        lines.append(f"       (+{len(dropped)} curves not shown)")
    return "\n".join(lines)
