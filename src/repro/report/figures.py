"""Builders for every figure in the paper (Figures 1-10).

Figure 1 is a stacked-bar chart, represented here as a table of
percentages with enterprise/WAN splits; the CDF figures come back as
:class:`CdfFigure` objects whose curves mirror the paper's series.
"""

from __future__ import annotations

from typing import Mapping

from ..analysis.analyzers.email import EmailReport
from ..analysis.analyzers.http import HttpReport
from ..analysis.analyzers.ncp import NcpReport
from ..analysis.analyzers.nfs import NfsReport
from ..analysis.engine import DatasetAnalysis
from ..analysis.load import load_report
from ..analysis.locality import fan_stats
from ..util.fmt import fmt_pct
from ..util.stats import Cdf
from .categories import CATEGORY_ORDER, CategoryBreakdown
from .model import CdfFigure, SeriesFigure, Table

__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
]

_FULL_PAYLOAD_SETS = ("D0", "D3", "D4")


def figure1(
    breakdowns: Mapping[str, CategoryBreakdown], by: str = "bytes"
) -> Table:
    """Figure 1: % of payload bytes (or connections) per app category.

    Each dataset contributes a ``total (ent part)`` cell per category,
    mirroring the solid-vs-hollow bars of the paper.
    """
    names = list(breakdowns)
    table = Table(
        f"Figure 1{'a' if by == 'bytes' else 'b'}",
        f"Application category % of {by} — 'total% (ent%)'",
        ["category"] + names,
    )
    for category in CATEGORY_ORDER:
        cells = []
        for name in names:
            breakdown = breakdowns[name]
            if by == "bytes":
                total = breakdown.byte_fraction(category, "all")
                ent = breakdown.byte_fraction(category, "ent")
            else:
                total = breakdown.conn_fraction(category, "all")
                ent = breakdown.conn_fraction(category, "ent")
            cells.append(f"{total * 100:.1f} ({ent * 100:.1f})")
        table.add_row(category, *cells)
    return table


def figure2(analyses: Mapping[str, DatasetAnalysis], datasets=("D2", "D3")) -> tuple[CdfFigure, CdfFigure]:
    """Figure 2: fan-in and fan-out CDFs (enterprise vs WAN peers)."""
    fan_in = CdfFigure("Figure 2a", "Locality in host communication: fan-in", "peers")
    fan_out = CdfFigure("Figure 2b", "Locality in host communication: fan-out", "peers")
    for name in datasets:
        if name not in analyses:
            continue
        stats = fan_stats(analyses[name].filtered_conns(), analyses[name].internal_net)
        fan_in.add(f"{name} - enterprise", stats.fan_in_ent)
        fan_in.add(f"{name} - WAN", stats.fan_in_wan)
        fan_out.add(f"{name} - enterprise", stats.fan_out_ent)
        fan_out.add(f"{name} - WAN", stats.fan_out_wan)
    return fan_in, fan_out


def figure3(analyses: Mapping[str, DatasetAnalysis]) -> CdfFigure:
    """Figure 3: HTTP fan-out per client, enterprise vs WAN servers."""
    figure = CdfFigure("Figure 3", "HTTP fan-out (servers per client)", "number of peers per source")
    for name, analysis in analyses.items():
        if name not in _FULL_PAYLOAD_SETS:
            continue
        report: HttpReport = analysis.analyzer_results["http"]
        figure.add(f"ent:{name}", report.fanout_cdf("ent"))
        figure.add(f"wan:{name}", report.fanout_cdf("wan"))
    return figure


def figure4(analyses: Mapping[str, DatasetAnalysis]) -> CdfFigure:
    """Figure 4: HTTP reply sizes."""
    figure = CdfFigure("Figure 4", "Size of HTTP reply, when present", "size (bytes)")
    for name, analysis in analyses.items():
        if name not in _FULL_PAYLOAD_SETS:
            continue
        report: HttpReport = analysis.analyzer_results["http"]
        figure.add(f"ent:{name}", report.reply_size_cdf("ent"))
        figure.add(f"wan:{name}", report.reply_size_cdf("wan"))
    return figure


def figure5(analyses: Mapping[str, DatasetAnalysis]) -> tuple[CdfFigure, CdfFigure]:
    """Figure 5: SMTP and IMAP/S connection durations."""
    smtp = CdfFigure("Figure 5a", "SMTP connection durations", "seconds")
    imaps = CdfFigure("Figure 5b", "IMAP/S connection durations", "seconds")
    for name, analysis in analyses.items():
        report: EmailReport = analysis.analyzer_results["email"]
        smtp.add(f"ent:{name}", report.duration_cdf("SMTP", "ent"))
        smtp.add(f"wan:{name}", report.duration_cdf("SMTP", "wan"))
        if name != "D0":  # the paper leaves D0 off the IMAP/S plot
            imaps.add(f"ent:{name}", report.duration_cdf("SIMAP", "ent"))
            if name in ("D1", "D2"):  # D3/D4 lack busy IMAP/S servers
                imaps.add(f"wan:{name}", report.duration_cdf("SIMAP", "wan"))
    return smtp, imaps


def figure6(analyses: Mapping[str, DatasetAnalysis]) -> tuple[CdfFigure, CdfFigure]:
    """Figure 6: SMTP and IMAP/S flow sizes."""
    smtp = CdfFigure("Figure 6a", "SMTP flow size (client to server)", "bytes")
    imaps = CdfFigure("Figure 6b", "IMAP/S flow size (server to client)", "bytes")
    for name, analysis in analyses.items():
        report: EmailReport = analysis.analyzer_results["email"]
        smtp.add(f"ent:{name}", report.flow_size_cdf("SMTP", "ent"))
        smtp.add(f"wan:{name}", report.flow_size_cdf("SMTP", "wan"))
        if name != "D0":
            imaps.add(f"ent:{name}", report.flow_size_cdf("SIMAP", "ent"))
            if name in ("D1", "D2"):
                imaps.add(f"wan:{name}", report.flow_size_cdf("SIMAP", "wan"))
    return smtp, imaps


def figure7(analyses: Mapping[str, DatasetAnalysis]) -> tuple[CdfFigure, CdfFigure]:
    """Figure 7: NFS/NCP requests per client-server pair."""
    nfs = CdfFigure("Figure 7a", "NFS requests per host-pair", "requests")
    ncp = CdfFigure("Figure 7b", "NCP requests per host-pair", "requests")
    for name, analysis in analyses.items():
        if name not in _FULL_PAYLOAD_SETS:
            continue
        nfs_report: NfsReport = analysis.analyzer_results["nfs"]
        ncp_report: NcpReport = analysis.analyzer_results["ncp"]
        nfs.add(f"ent:{name}", nfs_report.requests_per_pair_cdf())
        ncp.add(f"ent:{name}", ncp_report.requests_per_pair_cdf())
    return nfs, ncp


def figure8(analyses: Mapping[str, DatasetAnalysis]) -> dict[str, CdfFigure]:
    """Figure 8: NFS/NCP request and reply size distributions."""
    figures = {
        "nfs_request": CdfFigure("Figure 8a", "NFS request sizes", "bytes"),
        "nfs_reply": CdfFigure("Figure 8b", "NFS reply sizes", "bytes"),
        "ncp_request": CdfFigure("Figure 8c", "NCP request sizes", "bytes"),
        "ncp_reply": CdfFigure("Figure 8d", "NCP reply sizes", "bytes"),
    }
    for name, analysis in analyses.items():
        if name not in _FULL_PAYLOAD_SETS:
            continue
        nfs_report: NfsReport = analysis.analyzer_results["nfs"]
        ncp_report: NcpReport = analysis.analyzer_results["ncp"]
        figures["nfs_request"].add(f"ent:{name}", Cdf(nfs_report.request_sizes))
        figures["nfs_reply"].add(f"ent:{name}", Cdf(nfs_report.reply_sizes))
        figures["ncp_request"].add(f"ent:{name}", Cdf(ncp_report.request_sizes))
        figures["ncp_reply"].add(f"ent:{name}", Cdf(ncp_report.reply_sizes))
    return figures


def figure9(analysis: DatasetAnalysis) -> tuple[CdfFigure, CdfFigure]:
    """Figure 9: utilization distributions for one dataset (D4 in the paper)."""
    report = load_report(analysis.traces)
    peaks = CdfFigure(
        "Figure 9a", f"Peak utilization per trace ({analysis.name})", "Mbps", log_x=True
    )
    for scale, cdf in report.peak_cdfs.items():
        peaks.add(f"{scale:.0f} second{'s' if scale > 1 else ''}", cdf)
    util = CdfFigure(
        "Figure 9b", f"Per-second utilization summaries ({analysis.name})", "Mbps"
    )
    for label in ("minimum", "p25", "median", "p75", "mean", "maximum"):
        util.add(label, report.utilization_cdfs[label])
    return peaks, util


def figure10(analyses: Mapping[str, DatasetAnalysis]) -> SeriesFigure:
    """Figure 10: TCP retransmission rate per trace, enterprise vs WAN."""
    figure = SeriesFigure(
        "Figure 10",
        "TCP retransmission rate across traces (keep-alives excluded, "
        ">=1000 packets per category)",
        "fraction of retransmitted packets",
    )
    ent: list[float] = []
    wan: list[float] = []
    for analysis in analyses.values():
        report = load_report(analysis.traces)
        ent.extend(report.retransmit_rates["ent"])
        wan.extend(report.retransmit_rates["wan"])
    figure.add("ENT", ent)
    figure.add("WAN", wan)
    return figure
