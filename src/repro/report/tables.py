"""Builders for every table in the paper (Tables 1-15).

Each function takes analysis products and returns a :class:`Table` whose
rows mirror the paper's layout.  Percentages are rendered with the same
conventions the paper uses (sub-1% values keep one decimal).
"""

from __future__ import annotations

from typing import Mapping

from ..analysis.analyzers.backup import BackupReport
from ..analysis.analyzers.email import EmailReport
from ..analysis.analyzers.http import AUTO_CLASSES, HttpReport
from ..analysis.analyzers.ncp import NcpReport
from ..analysis.analyzers.nfs import NfsReport
from ..analysis.analyzers.windows import WindowsReport
from ..analysis.classify import CATEGORIES
from ..analysis.engine import DatasetAnalysis
from ..util.fmt import fmt_mb, fmt_pct
from .categories import CategoryBreakdown
from .model import Table

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
    "table13",
    "table14",
    "table15",
]

_FULL_PAYLOAD_SETS = ("D0", "D3", "D4")


def _dataset_columns(names) -> list[str]:
    return ["row"] + list(names)


def table1(
    analyses: Mapping[str, DatasetAnalysis],
    trace_meta: Mapping[str, dict],
) -> Table:
    """Table 1: dataset characteristics.

    ``trace_meta`` carries per-dataset generation metadata: date,
    duration, per-tap count, subnets, snaplen, and monitored-subnet host
    sets (the analysis alone cannot know which subnets were tapped).
    """
    names = list(analyses)
    table = Table("Table 1", "Dataset characteristics", _dataset_columns(names))
    rows: dict[str, list[object]] = {
        label: [] for label in (
            "Date", "Duration", "Per Tap", "# Subnets", "# Packets",
            "Snaplen", "Mon. Hosts", "LBNL Hosts", "Remote Hosts",
        )
    }
    for name in names:
        analysis = analyses[name]
        meta = trace_meta[name]
        internal_net = analysis.internal_net
        internal: set[int] = set()
        remote: set[int] = set()
        monitored: set[int] = set()
        subnets = meta.get("monitored_subnets", [])
        for conn in analysis.conns:
            for ip in (conn.orig_ip, conn.resp_ip):
                if ip in internal_net:
                    internal.add(ip)
                    if any(ip in subnet for subnet in subnets):
                        monitored.add(ip)
                elif not (0xE0000000 <= ip <= 0xEFFFFFFF):
                    remote.add(ip)
        rows["Date"].append(meta.get("date", "?"))
        rows["Duration"].append(meta.get("duration", "?"))
        rows["Per Tap"].append(meta.get("per_tap", "?"))
        rows["# Subnets"].append(meta.get("num_subnets", "?"))
        rows["# Packets"].append(analysis.total_packets)
        rows["Snaplen"].append(meta.get("snaplen", "?"))
        rows["Mon. Hosts"].append(len(monitored))
        rows["LBNL Hosts"].append(len(internal))
        rows["Remote Hosts"].append(len(remote))
    for label, cells in rows.items():
        table.add_row(label, *cells)
    return table


def table2(analyses: Mapping[str, DatasetAnalysis]) -> Table:
    """Table 2: network-layer protocol fractions."""
    names = list(analyses)
    table = Table("Table 2", "Network layer breakdown (packets)", _dataset_columns(names))
    per_dataset = {name: analyses[name].l2_totals() for name in names}

    def frac(name: str, key: str) -> float:
        totals = per_dataset[name]
        total = sum(totals.values())
        return totals.get(key, 0) / total if total else 0.0

    def non_ip_frac(name: str, key: str) -> float:
        totals = per_dataset[name]
        non_ip = sum(v for k, v in totals.items() if k != "ip")
        return totals.get(key, 0) / non_ip if non_ip else 0.0

    table.add_row("IP", *[fmt_pct(frac(n, "ip")) for n in names])
    table.add_row("!IP", *[fmt_pct(1.0 - frac(n, "ip")) for n in names])
    table.add_row("ARP", *[fmt_pct(non_ip_frac(n, "arp")) for n in names])
    table.add_row("IPX", *[fmt_pct(non_ip_frac(n, "ipx")) for n in names])
    table.add_row("Other", *[fmt_pct(non_ip_frac(n, "other")) for n in names])
    return table


def table3(analyses: Mapping[str, DatasetAnalysis]) -> Table:
    """Table 3: transport breakdown — payload bytes and connections.

    Computed over scan-filtered connections, as in the paper.
    """
    names = list(analyses)
    table = Table("Table 3", "Transport breakdown (post scan-filter)", _dataset_columns(names))
    stats = {}
    for name in names:
        bytes_by = {"tcp": 0, "udp": 0, "icmp": 0}
        conns_by = {"tcp": 0, "udp": 0, "icmp": 0}
        for conn in analyses[name].filtered_conns():
            if conn.proto in bytes_by:
                bytes_by[conn.proto] += conn.total_bytes
                conns_by[conn.proto] += 1
        stats[name] = (bytes_by, conns_by)
    table.add_row(
        "Bytes (GB)", *[f"{sum(stats[n][0].values()) / 1e9:.3f}" for n in names]
    )
    for proto in ("tcp", "udp", "icmp"):
        table.add_row(
            f"{proto.upper()} bytes",
            *[
                fmt_pct(stats[n][0][proto] / max(sum(stats[n][0].values()), 1))
                for n in names
            ],
        )
    table.add_row("Conns (K)", *[f"{sum(stats[n][1].values()) / 1e3:.2f}" for n in names])
    for proto in ("tcp", "udp", "icmp"):
        table.add_row(
            f"{proto.upper()} conns",
            *[
                fmt_pct(stats[n][1][proto] / max(sum(stats[n][1].values()), 1))
                for n in names
            ],
        )
    # "We observe a number of additional transport protocols ... each of
    # which make up only a slim portion of the traffic" (§3).
    proto_names = {2: "IGMP", 47: "GRE", 50: "ESP", 103: "PIM", 224: "224"}
    table.add_row(
        "Other transports",
        *[
            ",".join(
                proto_names.get(proto, str(proto))
                for proto in sorted(analyses[n].other_transport_totals())
            )
            or "-"
            for n in names
        ],
    )
    return table


def table4() -> Table:
    """Table 4: application categories and constituent protocols (static)."""
    table = Table("Table 4", "Application categories", ["category", "protocols"])
    for category, protocols in CATEGORIES.items():
        table.add_row(category, ", ".join(protocols))
    return table


def _http_reports(analyses: Mapping[str, DatasetAnalysis]) -> dict[str, HttpReport]:
    return {
        name: analysis.analyzer_results["http"]
        for name, analysis in analyses.items()
        if name in _FULL_PAYLOAD_SETS and "http" in analysis.analyzer_results
    }


def table6(analyses: Mapping[str, DatasetAnalysis]) -> Table:
    """Table 6: internal HTTP traffic from automated clients."""
    reports = _http_reports(analyses)
    names = list(reports)
    columns = ["row"] + [f"{n}/req" for n in names] + [f"{n}/data" for n in names]
    table = Table("Table 6", "Automated internal HTTP clients", columns)
    table.add_row(
        "Total",
        *[reports[n].internal_requests_total for n in names],
        *[fmt_mb(reports[n].internal_bytes_total) for n in names],
    )
    for klass in AUTO_CLASSES:
        table.add_row(
            klass,
            *[fmt_pct(reports[n].auto_request_fraction(klass)) for n in names],
            *[fmt_pct(reports[n].auto_bytes_fraction(klass)) for n in names],
        )
    table.add_row(
        "All",
        *[
            fmt_pct(sum(reports[n].auto_request_fraction(k) for k in AUTO_CLASSES))
            for n in names
        ],
        *[
            fmt_pct(sum(reports[n].auto_bytes_fraction(k) for k in AUTO_CLASSES))
            for n in names
        ],
    )
    return table


def table7(analyses: Mapping[str, DatasetAnalysis]) -> Table:
    """Table 7: HTTP replies by content type (range across datasets)."""
    reports = _http_reports(analyses)
    table = Table(
        "Table 7",
        "HTTP reply content types (min%-max% across datasets)",
        ["type", "ent req", "wan req", "ent data", "wan data"],
    )

    def span(kind: str, where: str, by: str) -> str:
        values = [
            (report.internal if where == "ent" else report.wan).content_fraction(kind, by)
            for report in reports.values()
        ]
        if not values:
            return "-"
        return f"{min(values) * 100:.0f}%-{max(values) * 100:.0f}%"

    for kind in ("text", "image", "application", "other"):
        table.add_row(
            kind,
            span(kind, "ent", "requests"),
            span(kind, "wan", "requests"),
            span(kind, "ent", "bytes"),
            span(kind, "wan", "bytes"),
        )
    return table


def table8(analyses: Mapping[str, DatasetAnalysis]) -> Table:
    """Table 8: email traffic size by protocol."""
    names = list(analyses)
    table = Table("Table 8", "Email traffic size", _dataset_columns(names))
    reports: dict[str, EmailReport] = {
        name: analyses[name].analyzer_results["email"] for name in names
    }
    for label in ("SMTP", "SIMAP", "IMAP4"):
        table.add_row(label, *[fmt_mb(reports[n].protocol_bytes(label)) for n in names])
    table.add_row(
        "Other",
        *[
            fmt_mb(
                reports[n].total_bytes()
                - sum(reports[n].protocol_bytes(k) for k in ("SMTP", "SIMAP", "IMAP4"))
            )
            for n in names
        ],
    )
    return table


def _windows_reports(analyses: Mapping[str, DatasetAnalysis]) -> dict[str, WindowsReport]:
    return {
        name: analysis.analyzer_results["windows"]
        for name, analysis in analyses.items()
        if name in _FULL_PAYLOAD_SETS and "windows" in analysis.analyzer_results
    }


def table9(analyses: Mapping[str, DatasetAnalysis]) -> Table:
    """Table 9: Windows connection success rates by host-pairs."""
    reports = _windows_reports(analyses)
    table = Table(
        "Table 9",
        "Windows connection success (by host-pairs, internal traffic)",
        ["row", "Netbios/SSN", "CIFS", "Endpoint Mapper"],
    )
    channels = ["Netbios/SSN", "CIFS", "Endpoint Mapper"]

    def spans(metric: str) -> list[str]:
        cells = []
        for channel in channels:
            values = [
                getattr(report.success[channel], metric)
                for report in reports.values()
                if channel in report.success and report.success[channel].total
            ]
            if not values:
                cells.append("-")
            else:
                cells.append(f"{min(values) * 100:.0f}%-{max(values) * 100:.0f}%")
        return cells

    totals = []
    for channel in channels:
        counts = [
            report.success[channel].total
            for report in reports.values()
            if channel in report.success
        ]
        totals.append(f"{min(counts)}-{max(counts)}" if counts else "-")
    table.add_row("Total pairs", *totals)
    table.add_row("Successful", *spans("success_rate"))
    table.add_row("Rejected", *spans("rejected_rate"))
    table.add_row("Unanswered", *spans("unanswered_rate"))
    return table


def table10(analyses: Mapping[str, DatasetAnalysis]) -> Table:
    """Table 10: CIFS command breakdown."""
    reports = _windows_reports(analyses)
    names = list(reports)
    columns = ["row"] + [f"{n}/req" for n in names] + [f"{n}/data" for n in names]
    table = Table("Table 10", "CIFS command breakdown", columns)
    table.add_row(
        "Total",
        *[sum(reports[n].cifs_requests.values()) for n in names],
        *[fmt_mb(sum(reports[n].cifs_bytes.values())) for n in names],
    )
    for category in ("SMB Basic", "RPC Pipes", "Windows File Sharing", "LANMAN", "Other"):
        table.add_row(
            category,
            *[fmt_pct(reports[n].cifs_request_fraction(category)) for n in names],
            *[fmt_pct(reports[n].cifs_bytes_fraction(category)) for n in names],
        )
    return table


def table11(analyses: Mapping[str, DatasetAnalysis]) -> Table:
    """Table 11: DCE/RPC function breakdown."""
    reports = _windows_reports(analyses)
    names = list(reports)
    columns = ["row"] + [f"{n}/req" for n in names] + [f"{n}/data" for n in names]
    table = Table("Table 11", "DCE/RPC function breakdown", columns)
    table.add_row(
        "Total",
        *[sum(reports[n].rpc_requests.values()) for n in names],
        *[fmt_mb(sum(reports[n].rpc_bytes.values())) for n in names],
    )
    for label in ("NetLogon", "LsaRPC", "Spoolss/WritePrinter", "Spoolss/other", "Other"):
        table.add_row(
            label,
            *[fmt_pct(reports[n].rpc_request_fraction(label)) for n in names],
            *[fmt_pct(reports[n].rpc_bytes_fraction(label)) for n in names],
        )
    return table


def table12(analyses: Mapping[str, DatasetAnalysis]) -> Table:
    """Table 12: NFS/NCP connection and byte volumes."""
    names = list(analyses)
    columns = ["row"] + [f"{n}/conns" for n in names] + [f"{n}/bytes" for n in names]
    table = Table("Table 12", "NFS/NCP size", columns)
    nfs: dict[str, NfsReport] = {n: analyses[n].analyzer_results["nfs"] for n in names}
    ncp: dict[str, NcpReport] = {n: analyses[n].analyzer_results["ncp"] for n in names}
    table.add_row(
        "NFS",
        *[nfs[n].conns for n in names],
        *[fmt_mb(nfs[n].total_bytes) for n in names],
    )
    table.add_row(
        "NCP",
        *[ncp[n].conns for n in names],
        *[fmt_mb(ncp[n].total_bytes) for n in names],
    )
    return table


def table13(analyses: Mapping[str, DatasetAnalysis]) -> Table:
    """Table 13: NFS request breakdown."""
    names = [n for n in analyses if n in _FULL_PAYLOAD_SETS]
    columns = ["row"] + [f"{n}/req" for n in names] + [f"{n}/data" for n in names]
    table = Table("Table 13", "NFS request breakdown", columns)
    reports: dict[str, NfsReport] = {n: analyses[n].analyzer_results["nfs"] for n in names}
    table.add_row(
        "Total",
        *[sum(reports[n].requests_by_type.values()) for n in names],
        *[fmt_mb(sum(reports[n].bytes_by_type.values())) for n in names],
    )
    for row in ("Read", "Write", "GetAttr", "LookUp", "Access", "Other"):
        table.add_row(
            row,
            *[fmt_pct(reports[n].request_type_fraction(row)) for n in names],
            *[fmt_pct(reports[n].bytes_type_fraction(row)) for n in names],
        )
    return table


def table14(analyses: Mapping[str, DatasetAnalysis]) -> Table:
    """Table 14: NCP request breakdown."""
    names = [n for n in analyses if n in _FULL_PAYLOAD_SETS]
    columns = ["row"] + [f"{n}/req" for n in names] + [f"{n}/data" for n in names]
    table = Table("Table 14", "NCP request breakdown", columns)
    reports: dict[str, NcpReport] = {n: analyses[n].analyzer_results["ncp"] for n in names}
    table.add_row(
        "Total",
        *[sum(reports[n].requests_by_type.values()) for n in names],
        *[fmt_mb(sum(reports[n].bytes_by_type.values())) for n in names],
    )
    rows = (
        "Read", "Write", "FileDirInfo", "File Open/Close", "File Size",
        "File Search", "Directory Service", "Other",
    )
    for row in rows:
        table.add_row(
            row,
            *[fmt_pct(reports[n].request_type_fraction(row)) for n in names],
            *[fmt_pct(reports[n].bytes_type_fraction(row)) for n in names],
        )
    return table


def table15(analyses: Mapping[str, DatasetAnalysis]) -> Table:
    """Table 15: backup applications (aggregated across datasets)."""
    table = Table(
        "Table 15", "Backup applications", ["application", "Connections", "Bytes"]
    )
    products = ("VERITAS-BACKUP-CTRL", "VERITAS-BACKUP-DATA", "DANTZ", "CONNECTED-BACKUP")
    totals = {name: [0, 0] for name in products}
    for analysis in analyses.values():
        report: BackupReport = analysis.analyzer_results["backup"]
        for product in products:
            totals[product][0] += report.conns(product)
            totals[product][1] += report.bytes(product)
    for product in products:
        conns, nbytes = totals[product]
        table.add_row(product, conns, fmt_mb(nbytes))
    return table
