"""Reporting layer: reproduce every table and figure of the paper."""

from . import figures, tables
from .ascii_plot import plot_cdf_figure
from .categories import CATEGORY_ORDER, CategoryBreakdown, CategoryStats, category_breakdown
from .findings import table5
from .export import export_figure_csv, export_study, export_table_csv
from .model import CdfFigure, SeriesFigure, Table
from .quality import data_quality_table, render_data_quality

__all__ = [
    "figures",
    "tables",
    "CATEGORY_ORDER",
    "CategoryBreakdown",
    "CategoryStats",
    "category_breakdown",
    "CdfFigure",
    "SeriesFigure",
    "Table",
    "data_quality_table",
    "export_figure_csv",
    "export_study",
    "export_table_csv",
    "render_data_quality",
    "plot_cdf_figure",
    "table5",
]
