"""Reporting layer: reproduce every table and figure of the paper."""

from . import figures, tables
from .ascii_plot import plot_cdf_figure
from .categories import CATEGORY_ORDER, CategoryBreakdown, CategoryStats, category_breakdown
from .findings import table5
from .export import export_figure_csv, export_study, export_table_csv
from .model import CdfFigure, SeriesFigure, Table

__all__ = [
    "figures",
    "tables",
    "CATEGORY_ORDER",
    "CategoryBreakdown",
    "CategoryStats",
    "category_breakdown",
    "CdfFigure",
    "SeriesFigure",
    "Table",
    "export_figure_csv",
    "export_study",
    "export_table_csv",
    "plot_cdf_figure",
    "table5",
]
