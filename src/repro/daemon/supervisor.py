"""The always-on supervisor: one loop, many tenant feeds, no sharing
of fate.

:class:`DaemonSupervisor` forks one :mod:`~repro.daemon.feed` process
per tenant and then does only four things, forever:

* **watch** — drain each feed's pipe: heartbeats refresh the liveness
  clock, progress messages become typed telemetry events, and window
  messages additionally run through the :class:`~repro.daemon.alerts.AlertEngine`.
* **restart** — a feed that dies without finishing is relaunched with
  the :class:`~repro.runtime.scheduler.RetryPolicy` exponential backoff
  (the same curve the pool scheduler uses).  Completing a trace resets
  the crash streak: only *consecutive* failures count toward poison.
* **quarantine** — a feed that crashes ``retry.max_crashes`` times in a
  row is poison: the supervisor stops restarting it, publishes
  ``quarantined.json`` under the tenant's directory, and emits a
  ``feed_quarantined`` telemetry event typed with the ErrorKind
  taxonomy (``worker_error``).  Every other feed keeps running — the
  isolation guarantee is structural (separate processes, separate flow
  tables, separate artifact trees), and the supervisor preserves it by
  never blocking its loop on any single feed.
* **drain** — SIGTERM (or :meth:`request_stop`) forwards SIGTERM to
  every live feed; each flushes a final mid-trace checkpoint and exits,
  and feeds that overstay ``drain_timeout`` are killed.  A drained
  daemon resumes from those checkpoints on the next start.

The watchdog is the scheduler's heartbeat protocol verbatim: feeds beat
``("hb", ts)`` every ``retry.heartbeat_interval`` seconds, and a feed
silent past ``retry.heartbeat_timeout`` while still alive is SIGKILLed
and treated as a crash.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import multiprocessing.connection
import signal
import time
from pathlib import Path

from ..analysis.errors import ErrorKind
from ..runtime.telemetry import TelemetryLog
from .alerts import AlertEngine
from .config import DaemonConfig, TenantSpec
from .feed import _publish_json, feed_child, tenant_dir

__all__ = ["DaemonSupervisor", "FeedState", "tenant_digest"]

#: Pipe-poll granularity of the supervisor loop.
_POLL_SECONDS = 0.05

#: Terminal feed statuses.
_TERMINAL = frozenset({"done", "quarantined", "drained"})


def tenant_digest(store_root: str | Path, tenant: str) -> str:
    """SHA-256 over one tenant's rolling-window artifacts.

    Hashes every ``windows/*.json`` file name and its bytes in sorted
    order.  Window publication is deterministic and idempotent, so this
    digest is a pure function of the trace bytes and the streaming
    config — byte-identical whether the daemon ran uninterrupted or was
    killed and resumed a dozen times.  The acceptance tests and the CI
    chaos soak are built on exactly this property.
    """
    digest = hashlib.sha256()
    windows = tenant_dir(store_root, tenant) / "windows"
    if windows.is_dir():
        for path in sorted(windows.glob("*.json")):
            digest.update(path.name.encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()


class FeedState:
    """Supervisor-side bookkeeping for one tenant's feed."""

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.process = None
        self.conn = None
        self.status = "pending"  # pending|running|backoff|<terminal>
        self.attempts = 0
        #: Consecutive crashes with no trace completed in between.
        self.streak = 0
        self.restart_at = 0.0
        self.last_beat = 0.0
        self.traces_done = 0
        #: Set when the feed reported an orderly outcome this run.
        self.outcome: str | None = None

    @property
    def alive(self) -> bool:
        return self.status == "running"


class DaemonSupervisor:
    """Runs every tenant feed to completion (or quarantine, or drain)."""

    def __init__(
        self,
        tenants: list[TenantSpec],
        store_root: str | Path,
        config: DaemonConfig | None = None,
        alerts: AlertEngine | None = None,
        telemetry: TelemetryLog | None = None,
    ) -> None:
        if not tenants:
            raise ValueError("daemon needs at least one --tenant")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        self.tenants = list(tenants)
        self.store_root = Path(store_root)
        self.config = config if config is not None else DaemonConfig()
        self.alerts = alerts if alerts is not None else AlertEngine([])
        self.telemetry = telemetry if telemetry is not None else TelemetryLog()
        self.feeds = {spec.name: FeedState(spec) for spec in self.tenants}
        self._stop = False
        self._drain_deadline: float | None = None
        #: Idle-maintenance state: last feed message, next allowed tick,
        #: and the lazily opened store + scrubber the ticks reuse.
        self._last_activity = time.monotonic()
        self._next_maintenance = 0.0
        self._maintenance_scrubber = None
        self._maintenance_store = None
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    # -- lifecycle ---------------------------------------------------------

    def request_stop(self) -> None:
        """Begin a graceful drain (what SIGTERM does)."""
        self._stop = True

    def run(self, install_signals: bool = True) -> dict[str, str]:
        """Supervise until every feed reaches a terminal state.

        Returns ``{tenant: status}``.  With ``install_signals`` (the
        CLI default) SIGTERM and SIGINT trigger the graceful drain;
        pass False when running under a test harness that owns the
        handlers.
        """
        config = self.config
        self.telemetry.emit(
            "daemon_start",
            tenants=sorted(self.feeds),
            window=config.window,
            flow_budget=config.flow_budget,
            tenant_flow_budgets={
                name: config.flow_budget_for(name)
                for name in sorted(self.feeds)
                if config.flow_budget_for(name) != config.flow_budget
            },
            checkpoint_every=config.checkpoint_every,
            error_policy=config.error_policy,
        )
        previous: dict[int, object] = {}
        if install_signals:
            try:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    previous[signum] = signal.signal(
                        signum, lambda *_: self.request_stop()
                    )
            except ValueError:
                previous = {}  # not the main thread; drain via request_stop
        try:
            self._loop()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self._reap_all()
        statuses = {name: st.status for name, st in self.feeds.items()}
        self.telemetry.emit(
            "daemon_stop",
            tenants=statuses,
            drained=sum(1 for s in statuses.values() if s == "drained"),
            quarantined=sum(
                1 for s in statuses.values() if s == "quarantined"
            ),
        )
        return statuses

    # -- the loop ----------------------------------------------------------

    def _loop(self) -> None:
        feeds = self.feeds
        while any(st.status not in _TERMINAL for st in feeds.values()):
            now = time.monotonic()
            if self._stop:
                self._drain(now)
            for state in feeds.values():
                if state.status == "pending" or (
                    state.status == "backoff" and state.restart_at <= now
                ):
                    if self._stop:
                        # A drain aborts pending restarts: the feed's
                        # checkpoints already capture its progress.
                        state.status = "drained"
                        continue
                    self._launch(state)
            live = [st.conn for st in feeds.values() if st.alive]
            if live:
                multiprocessing.connection.wait(live, timeout=_POLL_SECONDS)
            else:
                waits = [
                    st.restart_at
                    for st in feeds.values()
                    if st.status == "backoff"
                ]
                if waits:
                    time.sleep(
                        max(0.0, min(min(waits) - time.monotonic(),
                                     _POLL_SECONDS))
                    )
            for state in feeds.values():
                if state.alive:
                    self._service(state)
            self._maybe_maintain(time.monotonic())

    def _maybe_maintain(self, now: float) -> None:
        """Run one bounded maintenance increment if the daemon is idle.

        "Idle" means no feed has sent a *progress* message for
        ``maintenance_idle_s`` — feeds between traces, in backoff, or
        all done.  Heartbeats don't count: a watch-mode feed waiting on
        an empty directory beats forever, and that is exactly when
        maintenance should run.  Each tick is one :meth:`IncrementalScrubber.step`
        plus one checkpoint-compaction pass, both budget/grace-bounded,
        in this process — the supervisor tick the loop already owns, no
        new workers.  Maintenance must never take the daemon down: any
        failure becomes a ``maintenance_error`` event and the loop moves
        on.
        """
        config = self.config
        if not config.maintenance or self._stop:
            return
        if now - self._last_activity < config.maintenance_idle_s:
            return
        if now < self._next_maintenance:
            return
        self._next_maintenance = now + config.maintenance_interval
        try:
            if self._maintenance_scrubber is None:
                from ..store.tier import (
                    IncrementalScrubber,
                    compact_checkpoints,
                    open_store,
                )

                self._maintenance_store = open_store(self.store_root)
                self._maintenance_scrubber = IncrementalScrubber(
                    self._maintenance_store
                )
                self._compact = compact_checkpoints
            cursor = self._maintenance_scrubber.step(
                budget=config.maintenance_budget
            )
            compaction = self._compact(self._maintenance_store)
            self.telemetry.emit(
                "maintenance",
                scrub_phase=cursor["phase"],
                objects_checked=cursor["objects_checked"],
                manifests_checked=cursor["manifests_checked"],
                compacted=len(compaction.compacted),
            )
        except Exception as exc:  # noqa: BLE001 — maintenance is best-effort
            self.telemetry.emit(
                "maintenance_error",
                kind=ErrorKind.WORKER_ERROR.value,
                detail=str(exc),
            )

    def _feed_payload(self, spec: TenantSpec) -> dict:
        """The launch payload for one tenant's feed process — notably
        where the per-tenant flow-budget override takes effect."""
        return {
            "tenant": spec.name,
            "traces": [str(path) for path in spec.traces()],
            "store_root": str(self.store_root),
            "window": self.config.window,
            "flow_budget": self.config.flow_budget_for(spec.name),
            "checkpoint_every": self.config.checkpoint_every,
            "error_policy": self.config.error_policy,
            "packet_rate": self.config.packet_rate,
            "heartbeat_interval": self.config.retry.heartbeat_interval,
            "source": str(spec.source),
            "watch": self.config.watch,
            "watch_interval": self.config.watch_interval,
        }

    def _launch(self, state: FeedState) -> None:
        spec = state.spec
        payload = self._feed_payload(spec)
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=feed_child,
            args=(child_conn, payload),
            name=f"repro-feed-{spec.name}",
        )
        process.start()
        child_conn.close()
        state.process = process
        state.conn = parent_conn
        state.attempts += 1
        state.status = "running"
        state.outcome = None
        state.last_beat = time.monotonic()
        self.telemetry.emit(
            "feed_start",
            tenant=spec.name,
            attempt=state.attempts,
            traces=len(payload["traces"]),
        )

    # -- servicing one feed ------------------------------------------------

    def _service(self, state: FeedState) -> None:
        self._drain_messages(state)
        now = time.monotonic()
        retry = self.config.retry
        if (
            retry.heartbeat_timeout is not None
            and state.process.exitcode is None
            and now - state.last_beat > retry.heartbeat_timeout
        ):
            silent = now - state.last_beat
            self.telemetry.emit(
                "feed_hang",
                tenant=state.spec.name,
                silent_s=round(silent, 3),
            )
            # Too wedged to beat is too wedged for SIGTERM.
            state.process.kill()
            state.process.join(timeout=2.0)
        if state.process.exitcode is None:
            return
        # The feed is dead: collect trailing messages, then classify.
        state.process.join(timeout=2.0)
        self._drain_messages(state)
        state.conn.close()
        exitcode = state.process.exitcode
        state.process = None
        state.conn = None
        if state.outcome == "done":
            state.status = "done"
            state.streak = 0
            self.telemetry.emit(
                "feed_complete",
                tenant=state.spec.name,
                traces=state.traces_done,
                attempts=state.attempts,
            )
            return
        if state.outcome == "drained":
            state.status = "drained"
            return
        if self._stop:
            # Died during the drain (possibly our own escalation kill):
            # its checkpoints hold the progress; not a crash to count.
            state.status = "drained"
            return
        # No orderly outcome: a crash (injected, OOM-killed, or a bug).
        state.streak += 1
        self.telemetry.emit(
            "feed_crash",
            tenant=state.spec.name,
            exit_code=exitcode,
            crashes=state.streak,
            kind=ErrorKind.WORKER_ERROR.value,
        )
        if state.streak >= self.config.retry.max_crashes:
            self._quarantine(state, exitcode)
            return
        backoff = self.config.retry.backoff_for(state.streak)
        state.status = "backoff"
        state.restart_at = time.monotonic() + backoff
        self.telemetry.emit(
            "feed_restart",
            tenant=state.spec.name,
            backoff_s=round(backoff, 6),
            crashes=state.streak,
        )

    def _drain_messages(self, state: FeedState) -> None:
        conn = state.conn
        while conn.poll():
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if not isinstance(message, tuple) or not message:
                continue
            if message[0] == "hb" and len(message) == 2:
                state.last_beat = time.monotonic()
                continue
            if message[0] == "msg" and len(message) == 3:
                self._last_activity = time.monotonic()
                self._handle(state, message[1], message[2])

    def _handle(self, state: FeedState, kind: str, body: dict) -> None:
        tenant = state.spec.name
        if kind == "window":
            self.telemetry.emit(
                "feed_window",
                tenant=tenant,
                trace=body.get("trace"),
                window=body.get("index"),
                packets=body.get("packets"),
                bytes=body.get("bytes"),
                retransmits=body.get("retransmits"),
            )
            for event in self.alerts.observe_window(
                tenant, body.get("trace", 0), body
            ):
                self.telemetry.emit(**event)
        elif kind == "scan":
            for event in self.alerts.observe_scanners(
                tenant, body.get("trace", 0), body.get("sources", [])
            ):
                self.telemetry.emit(**event)
        elif kind == "trace":
            state.traces_done += 1
            state.streak = 0  # forward progress: crashes are no longer consecutive
            self.telemetry.emit(
                "feed_trace",
                tenant=tenant,
                trace=body.get("trace"),
                packets=body.get("packets"),
                conns=body.get("conns"),
                quarantined=body.get("quarantined", False),
            )
        elif kind == "rescan":
            self.telemetry.emit(
                "feed_rescan",
                tenant=tenant,
                new=body.get("new", []),
                total=body.get("total"),
            )
        elif kind in ("done", "drained"):
            state.outcome = kind
        elif kind == "error":
            self.telemetry.emit(
                "feed_error",
                tenant=tenant,
                kind=body.get("kind", ErrorKind.WORKER_ERROR.value),
                detail=body.get("detail", ""),
            )

    # -- quarantine and drain ----------------------------------------------

    def _quarantine(self, state: FeedState, exitcode: int | None) -> None:
        """Poison feed: stop restarting it, record why, move on."""
        tenant = state.spec.name
        state.status = "quarantined"
        detail = (
            f"poison feed quarantined after {state.streak} consecutive "
            f"crashes (last exit code {exitcode})"
        )
        self.telemetry.emit(
            "feed_quarantined",
            tenant=tenant,
            crashes=state.streak,
            kind=ErrorKind.WORKER_ERROR.value,
            detail=detail,
        )
        try:
            _publish_json(
                tenant_dir(self.store_root, tenant) / "quarantined.json",
                {
                    "tenant": tenant,
                    "kind": ErrorKind.WORKER_ERROR.value,
                    "crashes": state.streak,
                    "detail": detail,
                },
            )
        except OSError:
            pass  # the telemetry event already recorded the quarantine

    def _drain(self, now: float) -> None:
        """Forward SIGTERM once; escalate to SIGKILL past the deadline."""
        if self._drain_deadline is None:
            self._drain_deadline = now + self.config.drain_timeout
            for state in self.feeds.values():
                if state.alive and state.process.exitcode is None:
                    state.process.terminate()  # the feed's drain hook
        elif now > self._drain_deadline:
            for state in self.feeds.values():
                if state.alive and state.process.exitcode is None:
                    state.process.kill()

    def _reap_all(self) -> None:
        """Terminate anything still running (abnormal loop exit)."""
        for state in self.feeds.values():
            process = state.process
            if process is not None and process.exitcode is None:
                process.terminate()
                process.join(timeout=2.0)
                if process.exitcode is None:
                    process.kill()
                    process.join(timeout=2.0)
            if state.conn is not None:
                state.conn.close()
                state.conn = None
            state.process = None
