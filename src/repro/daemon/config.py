"""Daemon configuration: tenants, supervision knobs, and their parsing.

A *tenant* is one independent trace feed — a named pcap file or a
directory of them — that the daemon ingests through its own supervised
feed worker.  :class:`DaemonConfig` bundles the per-feed streaming
knobs (window, flow budget, checkpoint cadence) with the supervision
policy, which is literally the runtime's :class:`RetryPolicy`: the
daemon reuses its backoff curve, heartbeat cadence, and poison
(``max_crashes``) budget rather than inventing parallel knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..runtime.scheduler import RetryPolicy
from ..stream.flowtable import DEFAULT_MAX_FLOWS

__all__ = ["TenantSpec", "DaemonConfig", "parse_tenant"]


@dataclass(frozen=True)
class TenantSpec:
    """One named trace feed: a pcap file, or a directory of pcaps."""

    name: str
    source: Path

    def traces(self) -> list[Path]:
        """The feed's trace files, in deterministic (sorted) order.

        A single file is a one-trace feed; a directory is every
        ``*.pcap`` under it, sorted by name — new files dropped into the
        directory are picked up the next time the feed (re)starts.
        """
        if self.source.is_dir():
            return sorted(self.source.glob("*.pcap"))
        return [self.source]


def parse_tenant(text: str) -> TenantSpec:
    """Parse one ``--tenant NAME=PCAP_OR_DIR`` argument."""
    name, sep, source = text.partition("=")
    if not sep or not name or not source:
        raise ValueError(
            f"tenant spec must look like NAME=PCAP_OR_DIR, got {text!r}"
        )
    if any(ch in name for ch in "/\\. "):
        raise ValueError(
            f"tenant name {name!r} may not contain path separators, "
            "dots, or spaces (it names an on-disk directory)"
        )
    return TenantSpec(name=name, source=Path(source))


@dataclass(frozen=True)
class DaemonConfig:
    """Every knob of one daemon run (all tenants share it)."""

    #: Rolling aggregation window per feed, seconds.
    window: float = 60.0
    #: Per-tenant flow-table budget: one tenant's flow flood evicts its
    #: *own* LRU flows (counted as ``flow_overflow``), never a
    #: neighbor's — each feed owns a whole StreamFlowTable.
    flow_budget: int = DEFAULT_MAX_FLOWS
    #: Packets between resumable checkpoint flushes (0 disables).
    checkpoint_every: int = 5000
    #: Ingestion error policy for the feeds.  The daemon defaults to
    #: ``tolerant``: an always-on service should salvage damaged input
    #: within the error budget, not die on the first bad record.
    error_policy: str = "tolerant"
    #: Approximate per-feed ingestion rate in packets/second
    #: (0 = as fast as the disk allows).  A paced feed makes "kill it
    #: mid-window" deterministic for tests and keeps a replayed trace
    #: behaving like a live capture.
    packet_rate: float = 0.0
    #: Supervision policy, reused verbatim from the runtime scheduler:
    #: ``backoff``/``backoff_for`` drive feed-restart delays,
    #: ``heartbeat_timeout``/``heartbeat_interval`` drive the feed
    #: watchdog, and ``max_crashes`` is the poison-feed quarantine
    #: budget (consecutive crashes with no trace completed between).
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            backoff=0.5, heartbeat_timeout=15.0, max_crashes=3
        )
    )
    #: Seconds a SIGTERM drain waits for feeds to flush their final
    #: checkpoints before escalating to SIGKILL.
    drain_timeout: float = 30.0
