"""Daemon configuration: tenants, supervision knobs, and their parsing.

A *tenant* is one independent trace feed — a named pcap file or a
directory of them — that the daemon ingests through its own supervised
feed worker.  :class:`DaemonConfig` bundles the per-feed streaming
knobs (window, flow budget, checkpoint cadence) with the supervision
policy, which is literally the runtime's :class:`RetryPolicy`: the
daemon reuses its backoff curve, heartbeat cadence, and poison
(``max_crashes``) budget rather than inventing parallel knobs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..runtime.scheduler import RetryPolicy
from ..stream.flowtable import DEFAULT_MAX_FLOWS
from .alerts import AlertRule, parse_alert_rule

__all__ = [
    "TenantSpec",
    "DaemonConfig",
    "DaemonFileConfig",
    "parse_tenant",
    "parse_flow_budget",
    "load_daemon_config",
]


@dataclass(frozen=True)
class TenantSpec:
    """One named trace feed: a pcap file, or a directory of pcaps."""

    name: str
    source: Path

    def traces(self) -> list[Path]:
        """The feed's trace files, in deterministic (sorted) order.

        A single file is a one-trace feed; a directory is every
        ``*.pcap`` under it, sorted by name.  New files dropped into a
        directory are picked up the next time the feed (re)starts — or
        live, mid-run, when the daemon runs with ``watch`` enabled (the
        feed then rescans the directory itself between passes).
        """
        if self.source.is_dir():
            return sorted(self.source.glob("*.pcap"))
        return [self.source]


def parse_tenant(text: str) -> TenantSpec:
    """Parse one ``--tenant NAME=PCAP_OR_DIR`` argument."""
    name, sep, source = text.partition("=")
    if not sep or not name or not source:
        raise ValueError(
            f"tenant spec must look like NAME=PCAP_OR_DIR, got {text!r}"
        )
    if any(ch in name for ch in "/\\. "):
        raise ValueError(
            f"tenant name {name!r} may not contain path separators, "
            "dots, or spaces (it names an on-disk directory)"
        )
    return TenantSpec(name=name, source=Path(source))


@dataclass(frozen=True)
class DaemonConfig:
    """Every knob of one daemon run (all tenants share it)."""

    #: Rolling aggregation window per feed, seconds.
    window: float = 60.0
    #: Default flow-table budget: one tenant's flow flood evicts its
    #: *own* LRU flows (counted as ``flow_overflow``), never a
    #: neighbor's — each feed owns a whole StreamFlowTable.
    flow_budget: int = DEFAULT_MAX_FLOWS
    #: Per-tenant budget overrides (tenant name -> flows); a tenant not
    #: listed here gets :attr:`flow_budget`.  Resolved by
    #: :meth:`flow_budget_for` when the supervisor launches the feed.
    tenant_flow_budgets: dict[str, int] = field(default_factory=dict)
    #: Packets between resumable checkpoint flushes (0 disables).
    checkpoint_every: int = 5000
    #: Ingestion error policy for the feeds.  The daemon defaults to
    #: ``tolerant``: an always-on service should salvage damaged input
    #: within the error budget, not die on the first bad record.
    error_policy: str = "tolerant"
    #: Approximate per-feed ingestion rate in packets/second
    #: (0 = as fast as the disk allows).  A paced feed makes "kill it
    #: mid-window" deterministic for tests and keeps a replayed trace
    #: behaving like a live capture.
    packet_rate: float = 0.0
    #: Supervision policy, reused verbatim from the runtime scheduler:
    #: ``backoff``/``backoff_for`` drive feed-restart delays,
    #: ``heartbeat_timeout``/``heartbeat_interval`` drive the feed
    #: watchdog, and ``max_crashes`` is the poison-feed quarantine
    #: budget (consecutive crashes with no trace completed between).
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            backoff=0.5, heartbeat_timeout=15.0, max_crashes=3
        )
    )
    #: Seconds a SIGTERM drain waits for feeds to flush their final
    #: checkpoints before escalating to SIGKILL.
    drain_timeout: float = 30.0
    #: Watch mode: directory-sourced feeds rescan their directory for
    #: newly dropped pcaps *during* the run instead of only at
    #: (re)start, and keep running until drained.
    watch: bool = False
    #: Seconds between watch rescans of an idle directory feed.
    watch_interval: float = 2.0
    #: Idle-loop maintenance: when no feed has sent a message for
    #: :attr:`maintenance_idle_s`, the supervisor tick runs one bounded
    #: incremental-scrub step and one checkpoint compaction pass in the
    #: daemon process itself — no extra workers, no cron.
    maintenance: bool = True
    #: Minimum quiet time (no feed messages) before maintenance runs.
    maintenance_idle_s: float = 1.0
    #: Minimum seconds between two maintenance ticks.
    maintenance_interval: float = 5.0
    #: Items one incremental-scrub step may verify per tick.
    maintenance_budget: int = 64

    def flow_budget_for(self, tenant: str) -> int:
        """The flow budget one tenant's feed actually runs with."""
        return self.tenant_flow_budgets.get(tenant, self.flow_budget)


def parse_flow_budget(text: str) -> tuple[str | None, int]:
    """Parse one ``--flow-budget`` value: ``N`` (global) or ``NAME=N``
    (one tenant).  Returns ``(tenant_or_None, budget)``."""
    name, sep, value = text.partition("=")
    raw = value if sep else name
    try:
        budget = int(raw)
    except ValueError:
        raise ValueError(
            f"flow budget must be an integer (N or NAME=N), got {text!r}"
        ) from None
    if budget < 1:
        raise ValueError(f"flow budget must be >= 1, got {budget}")
    return (name if sep else None), budget


@dataclass(frozen=True)
class DaemonFileConfig:
    """A parsed ``--config`` JSON file: daemon-wide setting overrides,
    per-tenant flow budgets, and alert rules (global + per-tenant).

    The file only *proposes* values; :meth:`resolve` merges it with the
    command line under one precedence rule — **more specific beats more
    general, and within equal specificity the CLI beats the file**:

    1. CLI ``--flow-budget NAME=N``   (per-tenant, CLI)
    2. file ``tenants.NAME.flow_budget``  (per-tenant, file)
    3. CLI ``--flow-budget N``        (global, CLI)
    4. file top-level ``flow_budget``  (global, file)
    5. built-in default
    """

    #: Top-level setting overrides, restricted to ``_FILE_SETTINGS``.
    settings: dict[str, object] = field(default_factory=dict)
    #: ``tenants.<name>.flow_budget`` entries.
    tenant_flow_budgets: dict[str, int] = field(default_factory=dict)
    #: Global rules plus per-tenant rules (the latter pinned to their
    #: tenant by construction).
    rules: tuple[AlertRule, ...] = ()

    def resolve(
        self,
        cli_global_budget: int | None = None,
        cli_tenant_budgets: dict[str, int] | None = None,
        **config_kwargs: object,
    ) -> DaemonConfig:
        """Merge file + CLI into the :class:`DaemonConfig` a run uses."""
        merged: dict[str, object] = dict(self.settings)
        merged.update(config_kwargs)
        budget = cli_global_budget
        if budget is None:
            budget = merged.pop("flow_budget", None)
        else:
            merged.pop("flow_budget", None)
        if budget is not None:
            merged["flow_budget"] = int(budget)
        per_tenant = dict(self.tenant_flow_budgets)
        per_tenant.update(cli_tenant_budgets or {})
        merged["tenant_flow_budgets"] = per_tenant
        return DaemonConfig(**merged)


#: Top-level config-file keys accepted as DaemonConfig overrides.
_FILE_SETTINGS = (
    "window",
    "flow_budget",
    "checkpoint_every",
    "error_policy",
    "packet_rate",
    "drain_timeout",
    "watch",
    "watch_interval",
    "maintenance",
    "maintenance_idle_s",
    "maintenance_interval",
    "maintenance_budget",
)


def load_daemon_config(path: str | Path) -> DaemonFileConfig:
    """Load a daemon config file::

        {
          "window": 30.0,
          "flow_budget": 4096,
          "rules": [{"name": "hot", "metric": "mbps", "threshold": 50}],
          "tenants": {
            "acme": {
              "flow_budget": 512,
              "rules": [{"name": "acme-loss", "metric":
                         "retransmit_rate", "threshold": 0.02}]
            }
          }
        }

    Rules inside a tenant block are pinned to that tenant (any
    ``tenant`` key they carry is overridden).  Unknown keys — top-level
    or per-tenant — raise ``ValueError`` naming the file: a typoed
    ``flow_budgt`` silently running with the default would be the worst
    outcome a config parser can arrange.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ValueError(f"unreadable daemon config {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"daemon config {path} must be a JSON object")
    unknown = set(payload) - set(_FILE_SETTINGS) - {"rules", "tenants"}
    if unknown:
        raise ValueError(
            f"daemon config {path}: unknown keys {sorted(unknown)}"
        )
    settings = {
        key: payload[key] for key in _FILE_SETTINGS if key in payload
    }
    if "flow_budget" in settings:
        settings["flow_budget"] = int(settings["flow_budget"])
        if settings["flow_budget"] < 1:
            raise ValueError(f"daemon config {path}: flow_budget must be >= 1")
    rules: list[AlertRule] = []
    for index, raw in enumerate(payload.get("rules", [])):
        try:
            rules.append(parse_alert_rule(raw))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"daemon config {path}: rule #{index}: {exc}"
            ) from exc
    tenant_budgets: dict[str, int] = {}
    tenants_raw = payload.get("tenants", {})
    if not isinstance(tenants_raw, dict):
        raise ValueError(f"daemon config {path}: tenants must be an object")
    for tenant, block in tenants_raw.items():
        if not isinstance(block, dict):
            raise ValueError(
                f"daemon config {path}: tenant {tenant!r} block must be "
                "an object"
            )
        unknown = set(block) - {"flow_budget", "rules"}
        if unknown:
            raise ValueError(
                f"daemon config {path}: tenant {tenant!r}: unknown keys "
                f"{sorted(unknown)}"
            )
        if "flow_budget" in block:
            budget = int(block["flow_budget"])
            if budget < 1:
                raise ValueError(
                    f"daemon config {path}: tenant {tenant!r}: flow_budget "
                    "must be >= 1"
                )
            tenant_budgets[tenant] = budget
        for index, raw in enumerate(block.get("rules", [])):
            try:
                rules.append(parse_alert_rule(raw, tenant=tenant))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"daemon config {path}: tenant {tenant!r} "
                    f"rule #{index}: {exc}"
                ) from exc
    return DaemonFileConfig(
        settings=settings,
        tenant_flow_budgets=tenant_budgets,
        rules=tuple(rules),
    )
