"""One tenant's feed worker: the child-process side of the daemon.

A feed runs in its own forked process (one per tenant), ingesting the
tenant's traces through the PR-4 streaming engine and publishing three
kinds of durable artifacts under ``<store>/daemon/<tenant>/``:

* ``windows/t{T:03d}-w{W:06d}.json`` — one file per closed rolling
  window.  Content is a pure function of the trace bytes and the
  streaming config, and every publish goes through the chaos-safe
  :func:`~repro.chaos.fsio.publish_text` seam, so a feed killed at any
  point republishes *byte-identical* files on restart — per-tenant
  window digests are therefore independent of interruption history.
* ``traces/t{T:03d}.json`` — the per-trace completion marker (stats,
  scan verdict, window summary).  Its existence is what lets a
  restarted feed skip finished traces; it is published strictly after
  the engine clears the trace's resume checkpoint, so a kill in the
  gap merely reprocesses one trace into identical artifacts.
* ``result.json`` — the whole-feed rollup, written last.

Progress flows back to the supervisor over the fork pipe using the
scheduler's own wire idiom: ``("hb", ts)`` liveness beats (reusing
:func:`~repro.runtime.scheduler.start_heartbeat`) interleaved with
``("msg", kind, payload)`` progress messages.  SIGTERM sets the
engine's drain event: the feed flushes a final checkpoint mid-trace,
reports ``drained``, and exits — that is the daemon's graceful
shutdown.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from pathlib import Path

from ..analysis.errors import IngestionError, TraceQuarantined
from ..chaos import fsio
from ..pcap.reader import PcapReader
from ..runtime.scheduler import start_heartbeat, stop_heartbeat
from ..store.cache import DAEMON_DIR
from ..store.tier import open_store
from ..stream.engine import StreamConfig, StreamDatasetAnalyzer, StreamDrained
from ..stream.source import PacketSource

__all__ = ["PacedSource", "run_feed", "tenant_dir", "feed_child"]

#: Packets between pacing sleeps (keeps the sleep syscall rate low).
_PACE_BATCH = 64


def tenant_dir(store_root: str | Path, tenant: str) -> Path:
    """Where one tenant's daemon artifacts live."""
    return Path(store_root) / DAEMON_DIR / tenant


class PacedSource(PacketSource):
    """A :class:`PacketSource` throttled to ~``packet_rate`` pkts/s.

    Replayed pcaps arrive as fast as the disk allows; a live capture
    does not.  Pacing restores the live shape — and gives tests a
    deterministic "the daemon is mid-window *now*" handle to kill at.
    """

    def __init__(self, packets, path: str = "<memory>",
                 packet_rate: float = 0.0) -> None:
        super().__init__(packets, path=path)
        self.packet_rate = packet_rate

    @classmethod
    def open_paced(cls, path, *, errors=None,
                   packet_rate: float = 0.0) -> "PacedSource":
        return cls(PcapReader.open(path, errors=errors),
                   packet_rate=packet_rate)

    def __iter__(self):
        if self.packet_rate <= 0:
            yield from super().__iter__()
            return
        pause = _PACE_BATCH / self.packet_rate
        for count, pkt in enumerate(super().__iter__(), 1):
            yield pkt
            if count % _PACE_BATCH == 0:
                time.sleep(pause)


def _publish_json(path: Path, payload: dict) -> None:
    """Durably publish one JSON artifact (atomic, fsynced, idempotent).

    ``sort_keys`` makes republication after a kill byte-identical —
    the whole digest-stability story rests on this plus the engine's
    determinism.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fsio.publish_text(
        path, json.dumps(payload, sort_keys=True) + "\n",
        tmp_prefix=f".{path.stem}-",
    )


def _load_assign(base: Path) -> dict:
    """The tenant's persistent source-name -> trace-index table.

    Positional indices break the moment the source *set* changes
    mid-run: a new file sorting before an old one would shift every
    later index, colliding checkpoint keys and window/marker filenames
    across incarnations.  The assignment table is append-only — a
    source keeps its index forever, new sources get the next free one —
    so watching a directory can never rewrite history.
    """
    try:
        payload = json.loads(
            fsio.read_bytes(base / "assign.json").decode("utf-8")
        )
        return {
            "sources": dict(payload.get("sources", {})),
            "next": int(payload.get("next", 0)),
        }
    except (OSError, ValueError):
        return {"sources": {}, "next": 0}


def _assign_indices(base: Path, assign: dict, traces: list[Path]) -> list[str]:
    """Give every new source a stable index; returns the new names.

    Published atomically *before* any new trace is processed, so a kill
    between assignment and processing resumes with the same indices.
    """
    fresh = []
    for path in traces:
        if path.name not in assign["sources"]:
            assign["sources"][path.name] = assign["next"]
            assign["next"] += 1
            fresh.append(path.name)
    if fresh:
        _publish_json(base / "assign.json", assign)
    return fresh


def run_feed(payload: dict, drain: threading.Event, send) -> str:
    """Ingest every trace of one tenant; returns ``"done"``/``"drained"``.

    ``payload`` carries the plain-data feed spec (see the supervisor);
    ``send(kind, body)`` ships progress messages to the supervisor and
    must never raise.  Runs one :class:`StreamDatasetAnalyzer` per
    trace with a per-trace checkpoint key, so a restarted feed resumes
    the interrupted trace exactly where its last checkpoint left it
    while completed traces are skipped by marker.

    With ``payload["watch"]`` (and a directory source) the feed never
    finishes on its own: after draining the current trace list it
    rescans the directory every ``watch_interval`` seconds, ingesting
    pcaps dropped in *during* the run — not only at (re)start — until
    SIGTERM drains it.  Trace indices come from the persistent
    assignment table, so late arrivals extend the artifact tree without
    perturbing any existing index.
    """
    tenant = payload["tenant"]
    store = open_store(payload["store_root"])
    base = tenant_dir(payload["store_root"], tenant)
    config = StreamConfig(
        window=payload["window"],
        max_flows=payload["flow_budget"],
        checkpoint_every=payload["checkpoint_every"],
    )
    rate = payload.get("packet_rate", 0.0)
    source = payload.get("source")
    watch = (
        bool(payload.get("watch"))
        and source is not None
        and Path(source).is_dir()
    )
    watch_interval = payload.get("watch_interval", 2.0)
    assign = _load_assign(base)
    traces = [Path(text) for text in payload["traces"]]
    first_scan = True
    while True:
        if not first_scan:
            traces = sorted(Path(source).glob("*.pcap"))
        fresh = _assign_indices(base, assign, traces)
        if fresh and not first_scan:
            send(
                "rescan",
                {"tenant": tenant, "new": fresh, "total": len(traces)},
            )
        outcome = _run_traces(
            payload, drain, send, store, base, config, rate, assign, traces
        )
        if outcome == "drained":
            return "drained"
        result = _rollup(base, tenant)
        _publish_json(base / "result.json", result)
        if not watch:
            send("done", result)
            return "done"
        first_scan = False
        if drain.wait(timeout=watch_interval):
            send("drained", {"tenant": tenant, "trace": -1, "packets": 0})
            return "drained"


def _run_traces(
    payload: dict,
    drain: threading.Event,
    send,
    store,
    base: Path,
    config: StreamConfig,
    rate: float,
    assign: dict,
    traces: list[Path],
) -> str:
    """One pass over a trace list; returns ``"done"`` or ``"drained"``."""
    tenant = payload["tenant"]
    for trace_path in traces:
        gidx = assign["sources"][Path(trace_path).name]
        marker = base / "traces" / f"t{gidx:03d}.json"
        if marker.exists():
            continue  # finished in a previous incarnation
        if drain.is_set():
            send("drained", {"tenant": tenant, "trace": gidx, "packets": 0})
            return "drained"

        def publish_window(window, _trace=gidx):
            body = {"tenant": tenant, "trace": _trace, **window.payload()}
            _publish_json(
                base / "windows" / f"t{_trace:03d}-w{window.index:06d}.json",
                body,
            )
            send("window", body)

        analyzer = StreamDatasetAnalyzer(
            tenant,
            full_payload=False,
            error_policy=payload["error_policy"],
            config=config,
            store=store,
            checkpoint_base=f"daemon-{tenant}-t{gidx:03d}",
            window_observer=publish_window,
            drain_event=drain,
        )
        label = str(trace_path)
        errors = analyzer._new_error_log(label)
        try:
            source = PacedSource.open_paced(
                trace_path, errors=errors, packet_rate=rate
            )
        except TraceQuarantined as exc:
            stats = analyzer._quarantined_trace(label, errors, exc.reason)
        else:
            try:
                with source:
                    stats = analyzer.process_stream(
                        source, label=label, errors=errors
                    )
            except StreamDrained as exc:
                send(
                    "drained",
                    {"tenant": tenant, "trace": gidx, "packets": exc.packets},
                )
                return "drained"
        analysis = analyzer.finish()
        scanners = sorted(analysis.scanner_sources)
        if scanners:
            send("scan", {"tenant": tenant, "trace": gidx, "sources": scanners})
        summary = (
            analyzer.window_summaries[-1] if analyzer.window_summaries else {}
        )
        record = {
            "tenant": tenant,
            "trace": gidx,
            "source": Path(trace_path).name,
            "packets": stats.packets,
            "conns": len(analysis.conns),
            "errors": dict(stats.errors),
            "quarantined": stats.quarantined,
            "scanners": scanners,
            "windows": summary,
        }
        _publish_json(marker, record)
        send(
            "trace",
            {
                "tenant": tenant,
                "trace": gidx,
                "packets": stats.packets,
                "conns": len(analysis.conns),
                "quarantined": stats.quarantined,
            },
        )
    return "done"


def _rollup(base: Path, tenant: str) -> dict:
    """Aggregate the on-disk trace markers into the feed result.

    Read back from disk rather than from memory so a feed that
    completed traces across several incarnations still rolls up every
    one of them.
    """
    traces = []
    for path in sorted((base / "traces").glob("t*.json")):
        try:
            traces.append(json.loads(fsio.read_bytes(path).decode("utf-8")))
        except (OSError, ValueError):
            continue  # unreadable marker: the trace will re-run next start
    return {
        "tenant": tenant,
        "traces": len(traces),
        "packets": sum(t.get("packets", 0) for t in traces),
        "conns": sum(t.get("conns", 0) for t in traces),
        "quarantined_traces": [
            t["trace"] for t in traces if t.get("quarantined")
        ],
        "windows": sum(
            t.get("windows", {}).get("windows", 0) for t in traces
        ),
    }


def feed_child(conn, payload: dict) -> None:
    """Child-process entry: heartbeats, SIGTERM-to-drain, run the feed.

    Mirrors the scheduler's ``_child_main`` contract — ``("hb", ts)``
    pings plus messages over ``conn``, heartbeat wound down promptly on
    exit — with one addition: SIGTERM flips the engine's drain event
    instead of killing the process, so the final checkpoint gets
    flushed before exit.
    """
    drain = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: drain.set())
    send_lock = threading.Lock()

    def send(kind: str, body: dict) -> None:
        try:
            with send_lock:
                conn.send(("msg", kind, body))
        except OSError:
            pass  # supervisor went away; keep publishing to disk anyway

    beat = stop = None
    interval = payload.get("heartbeat_interval")
    if interval is not None:
        beat, stop = start_heartbeat(conn, send_lock, interval)
    code = 0
    try:
        run_feed(payload, drain, send)
    except IngestionError as exc:
        send("error", {
            "tenant": payload["tenant"],
            "kind": exc.kind.value,
            "detail": str(exc),
        })
        code = 1
    except Exception as exc:
        send("error", {
            "tenant": payload["tenant"],
            "kind": "worker_error",
            "detail": f"{type(exc).__name__}: {exc}",
        })
        code = 1
    finally:
        stop_heartbeat(beat, stop)
        conn.close()
    if code:
        sys.exit(code)
