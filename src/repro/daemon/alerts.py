"""Threshold alerting over the daemon's rolling windows, with hysteresis.

Alert rules watch the per-window aggregates each feed publishes —
utilization spikes (§5's load profile), retransmission-rate anomalies
(§6's loss proxy; see also the related aggregate-retransmission study),
and new-connection surges — plus the §3 scan filter's verdicts, which
arrive per trace rather than per window.

Hysteresis keeps a flapping metric from spamming the stream: a rule
*raises* only after ``raise_after`` consecutive breaching windows and
*clears* only after ``clear_after`` consecutive windows at or below
``clear_threshold`` (which defaults below ``threshold``, giving the
classic two-level schmitt trigger).  State is tracked per
``(tenant, rule)``, so one tenant's noisy feed never masks or
suppresses another's alerts.

Alerts are not a separate sink: they are typed events on the daemon's
JSONL telemetry stream (``alert_raise`` / ``alert_clear`` /
``alert_scan``), so ``repro-study daemon tail`` and the tests consume
them with the same :func:`~repro.runtime.telemetry.read_events`
tolerance as every other runtime event.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "AlertRule",
    "AlertEngine",
    "load_alert_rules",
    "parse_alert_rule",
    "WINDOW_METRICS",
]

#: Metric name -> extractor over one published window payload.
WINDOW_METRICS = {
    "mbps": lambda w: (
        w["bytes"] * 8 / 1e6 / w["duration"] if w["duration"] > 0 else 0.0
    ),
    "retransmit_rate": lambda w: (
        w["retransmits"] / w["tcp_packets"] if w["tcp_packets"] else 0.0
    ),
    "packets": lambda w: float(w["packets"]),
    "conns": lambda w: float(sum(w["conn_starts"].values())),
}


@dataclass(frozen=True)
class AlertRule:
    """One threshold rule over the rolling windows."""

    name: str
    #: One of :data:`WINDOW_METRICS`.
    metric: str
    #: Raise when the metric exceeds this...
    threshold: float
    #: ...and clear only once it falls back to or below this (defaults
    #: to ``threshold`` itself when the config omits it).
    clear_threshold: float
    #: Consecutive breaching windows required to raise.
    raise_after: int = 1
    #: Consecutive calm windows required to clear.
    clear_after: int = 1
    #: Restrict the rule to one tenant (None = every tenant).
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.metric not in WINDOW_METRICS:
            raise ValueError(
                f"unknown alert metric {self.metric!r} "
                f"(expected one of {sorted(WINDOW_METRICS)})"
            )
        if self.raise_after < 1 or self.clear_after < 1:
            raise ValueError("raise_after and clear_after must be >= 1")
        if self.clear_threshold > self.threshold:
            raise ValueError(
                f"clear_threshold {self.clear_threshold} above threshold "
                f"{self.threshold} would make rule {self.name!r} unclearable"
            )


def parse_alert_rule(raw: object, tenant: str | None = None) -> AlertRule:
    """Build one :class:`AlertRule` from its JSON object form.

    ``tenant`` (when given) pins the rule's scope regardless of any
    ``tenant`` key in the object — rules declared inside a per-tenant
    config block belong to that tenant, full stop.
    """
    if not isinstance(raw, dict) or "name" not in raw:
        raise ValueError("rule must be an object carrying a name")
    return AlertRule(
        name=raw["name"],
        metric=raw.get("metric", "mbps"),
        threshold=float(raw["threshold"]),
        clear_threshold=float(raw.get("clear_threshold", raw["threshold"])),
        raise_after=int(raw.get("raise_after", 1)),
        clear_after=int(raw.get("clear_after", 1)),
        tenant=tenant if tenant is not None else raw.get("tenant"),
    )


def load_alert_rules(path: str | Path) -> list[AlertRule]:
    """Load rules from a JSON config: ``{"rules": [{...}, ...]}``.

    Each rule object carries ``name``, ``metric``, ``threshold`` and
    optionally ``clear_threshold``, ``raise_after``, ``clear_after``,
    ``tenant``.  Malformed configs raise ``ValueError`` naming the file
    — an alerting daemon silently running without its rules is worse
    than one that refuses to start.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ValueError(f"unreadable alert config {path}: {exc}") from exc
    rules_raw = payload.get("rules") if isinstance(payload, dict) else None
    if not isinstance(rules_raw, list):
        raise ValueError(f"alert config {path} must be {{\"rules\": [...]}}")
    rules = []
    for index, raw in enumerate(rules_raw):
        try:
            rules.append(parse_alert_rule(raw))
        except (KeyError, TypeError, ValueError) as exc:
            name = raw.get("name", index) if isinstance(raw, dict) else index
            raise ValueError(
                f"alert config {path}: rule {name!r}: {exc}"
            ) from exc
    return rules


class _RuleState:
    """Hysteresis state of one rule for one tenant."""

    __slots__ = ("active", "breaches", "calms")

    def __init__(self) -> None:
        self.active = False
        self.breaches = 0
        self.calms = 0


class AlertEngine:
    """Evaluates every rule against each tenant's window stream."""

    def __init__(self, rules: list[AlertRule]) -> None:
        self.rules = list(rules)
        self._state: dict[tuple[str, str], _RuleState] = {}

    def _state_for(self, tenant: str, rule: AlertRule) -> _RuleState:
        return self._state.setdefault((tenant, rule.name), _RuleState())

    def observe_window(
        self, tenant: str, trace: int, window: dict
    ) -> list[dict]:
        """Run one published window through every applicable rule.

        Returns the alert transitions it caused, as telemetry-ready
        event dicts (``alert_raise`` / ``alert_clear``).  A rule that is
        breaching-but-not-yet-raised or calm-but-not-yet-cleared
        returns nothing — that is the hysteresis doing its job.
        """
        events: list[dict] = []
        for rule in self.rules:
            if rule.tenant is not None and rule.tenant != tenant:
                continue
            value = WINDOW_METRICS[rule.metric](window)
            state = self._state_for(tenant, rule)
            if value > rule.threshold:
                state.breaches += 1
                state.calms = 0
                if not state.active and state.breaches >= rule.raise_after:
                    state.active = True
                    events.append(
                        self._event("alert_raise", tenant, trace, rule,
                                    value, window)
                    )
            elif value <= rule.clear_threshold:
                state.calms += 1
                state.breaches = 0
                if state.active and state.calms >= rule.clear_after:
                    state.active = False
                    events.append(
                        self._event("alert_clear", tenant, trace, rule,
                                    value, window)
                    )
            else:
                # The hysteresis band: neither breaching nor calm.
                # Streaks reset — consecutive means consecutive.
                state.breaches = 0
                state.calms = 0
        return events

    @staticmethod
    def _event(
        event: str, tenant: str, trace: int, rule: AlertRule,
        value: float, window: dict,
    ) -> dict:
        return {
            "event": event,
            "tenant": tenant,
            "trace": trace,
            "rule": rule.name,
            "metric": rule.metric,
            "value": round(value, 6),
            "threshold": rule.threshold,
            "window": window["index"],
        }

    @staticmethod
    def observe_scanners(
        tenant: str, trace: int, sources: list[int]
    ) -> list[dict]:
        """The scan filter's per-trace verdict as an alert event.

        No hysteresis: the §3 filter already demands a 50-host fan-out,
        which *is* its debounce.  An empty verdict emits nothing.
        """
        if not sources:
            return []
        return [
            {
                "event": "alert_scan",
                "tenant": tenant,
                "trace": trace,
                "sources": sorted(sources),
                "count": len(sources),
            }
        ]

    def active_alerts(self, tenant: str) -> list[str]:
        """Names of currently raised rules for one tenant (for tests
        and the final daemon summary)."""
        return sorted(
            name
            for (who, name), state in self._state.items()
            if who == tenant and state.active
        )
