"""Always-on supervised ingestion: multi-tenant feeds, rolling windows,
anomaly alerts.

The paper observed a *live* enterprise network for months; this package
turns the one-shot pipeline into that shape.  A
:class:`DaemonSupervisor` runs one crash-tolerant feed process per
tenant through the PR-4 streaming engine, publishes rolling-window
results through the chaos-safe fsio seam (kill it anywhere, restart it,
get byte-identical artifacts), restarts dead feeds with the runtime's
exponential backoff, quarantines poison feeds after
``retry.max_crashes`` consecutive deaths, and raises hysteresis-
debounced threshold alerts over the window stream.  See
``docs/daemon.md``.
"""

from .alerts import AlertEngine, AlertRule, load_alert_rules, parse_alert_rule
from .config import (
    DaemonConfig,
    DaemonFileConfig,
    TenantSpec,
    load_daemon_config,
    parse_flow_budget,
    parse_tenant,
)
from .feed import PacedSource, run_feed, tenant_dir
from .supervisor import DaemonSupervisor, FeedState, tenant_digest

__all__ = [
    "AlertEngine",
    "AlertRule",
    "DaemonConfig",
    "DaemonFileConfig",
    "DaemonSupervisor",
    "FeedState",
    "PacedSource",
    "TenantSpec",
    "load_alert_rules",
    "load_daemon_config",
    "parse_alert_rule",
    "parse_flow_budget",
    "parse_tenant",
    "run_feed",
    "tenant_dir",
    "tenant_digest",
]
