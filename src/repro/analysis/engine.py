"""The dataset analysis engine: traces in, analysis products out.

One :class:`DatasetAnalyzer` consumes a dataset's trace files in order,
running the flow table, the network-layer accounting (Table 2), per-trace
utilization and retransmission accounting (Figures 9-10), and every
registered application analyzer, then aggregates the results into a
:class:`DatasetAnalysis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4, ETHERTYPE_IPX
from ..net.packet import CapturedPacket, DecodedPacket, decode_packet
from ..pcap.reader import PcapReader
from ..util.addr import Subnet
from ..util.stats import Summary
from ..util.timeline import ByteTimeline
from .conn import DEFAULT_INTERNAL_NET, ConnRecord
from .flow import FlowResult, FlowTable

__all__ = ["TraceStats", "DatasetAnalysis", "DatasetAnalyzer", "Analyzer"]


class Analyzer:
    """Base class for application analyzers.

    ``on_udp`` fires once per UDP datagram (payload parsing without
    buffering); ``on_connection`` fires once per finished connection with
    any reassembled TCP streams.  Before ``result`` is called the engine
    sets ``scanners`` to the sources identified by the §3 scan filter, so
    connection-level reports can exclude scanner traffic the way the
    paper does ("prior to our subsequent analysis, we remove traffic from
    sources identified as scanners").
    """

    name = "analyzer"
    scanners: frozenset[int] | set[int] = frozenset()

    def on_udp(self, record: ConnRecord, from_orig: bool, pkt: DecodedPacket) -> None:
        pass

    def on_connection(self, result: FlowResult, full_payload: bool) -> None:
        pass

    def result(self):
        """The analyzer's finished product (any shape it likes)."""
        return None


@dataclass
class TraceStats:
    """Per-trace statistics (one tap window)."""

    index: int
    path: str
    packets: int = 0
    start_ts: float = 0.0
    end_ts: float = 0.0
    # Network-layer packet counts (Table 2).
    l2_counts: dict[str, int] = field(default_factory=dict)
    # Minor IP transports (IGMP/PIM/GRE/ESP/...), protocol number -> packets;
    # "each of which make up only a slim portion of the traffic" (§3).
    other_ip_protocols: dict[int, int] = field(default_factory=dict)
    # Utilization (Figure 9): per-second byte bins.
    utilization: ByteTimeline | None = None
    # Retransmission accounting (Figure 10), keyed "ent"/"wan".
    tcp_packets: dict[str, int] = field(default_factory=lambda: {"ent": 0, "wan": 0})
    retransmits: dict[str, int] = field(default_factory=lambda: {"ent": 0, "wan": 0})

    def retransmit_rate(self, where: str) -> float | None:
        """Retransmitted fraction for "ent"/"wan"; None below 1000 packets."""
        total = self.tcp_packets.get(where, 0)
        if total < 1000:
            return None
        return self.retransmits.get(where, 0) / total

    def utilization_summary(self) -> Summary | None:
        """Per-second Mbps summary, if any packets were seen."""
        if self.utilization is None:
            return None
        return self.utilization.utilization_summary()


@dataclass
class DatasetAnalysis:
    """Everything the reporting layer needs about one dataset."""

    name: str
    full_payload: bool
    internal_net: Subnet
    conns: list[ConnRecord] = field(default_factory=list)
    traces: list[TraceStats] = field(default_factory=list)
    analyzer_results: dict[str, object] = field(default_factory=dict)
    #: (server_ip, port) endpoints learned from the Endpoint Mapper.
    windows_endpoints: set[tuple[int, int]] = field(default_factory=set)
    #: Sources removed by the scan filter (set after filtering).
    scanner_sources: set[int] = field(default_factory=set)
    removed_conns: int = 0

    def filtered_conns(self) -> list[ConnRecord]:
        """Connections with scanner traffic removed (the §3 baseline)."""
        return [conn for conn in self.conns if conn.orig_ip not in self.scanner_sources]

    @property
    def total_packets(self) -> int:
        return sum(trace.packets for trace in self.traces)

    def l2_totals(self) -> dict[str, int]:
        """Dataset-wide network-layer packet counts."""
        totals: dict[str, int] = {}
        for trace in self.traces:
            for key, value in trace.l2_counts.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def other_transport_totals(self) -> dict[int, int]:
        """Dataset-wide packet counts for the minor IP transports."""
        totals: dict[int, int] = {}
        for trace in self.traces:
            for proto, count in trace.other_ip_protocols.items():
                totals[proto] = totals.get(proto, 0) + count
        return totals


class DatasetAnalyzer:
    """Runs the full analysis pipeline over one dataset's traces."""

    def __init__(
        self,
        name: str,
        full_payload: bool = True,
        internal_net: Subnet = DEFAULT_INTERNAL_NET,
        analyzers: Sequence[Analyzer] = (),
    ) -> None:
        self.analysis = DatasetAnalysis(
            name=name, full_payload=full_payload, internal_net=internal_net
        )
        self.analyzers = list(analyzers)

    # -- trace ingestion ------------------------------------------------------

    def process_pcap(self, path: str | Path) -> TraceStats:
        """Analyze one trace file."""
        with PcapReader.open(path) as reader:
            return self.process_packets(reader, label=str(path))

    def process_packets(
        self, packets: Iterable[CapturedPacket], label: str = "<memory>"
    ) -> TraceStats:
        """Analyze one trace given as an iterable of captured packets."""
        index = len(self.analysis.traces)
        stats = TraceStats(index=index, path=label)
        table = FlowTable(
            collect_payload=self.analysis.full_payload,
            udp_observer=self._udp_observer,
            trace_index=index,
        )
        points: list[tuple[float, int]] = []
        l2 = {"ip": 0, "arp": 0, "ipx": 0, "other": 0}
        first_ts = None
        last_ts = 0.0
        for pkt in packets:
            decoded = decode_packet(pkt)
            stats.packets += 1
            if first_ts is None:
                first_ts = decoded.ts
            last_ts = decoded.ts
            if decoded.ethertype == ETHERTYPE_IPV4:
                l2["ip"] += 1
            elif decoded.ethertype == ETHERTYPE_ARP:
                l2["arp"] += 1
            elif decoded.ethertype == ETHERTYPE_IPX:
                l2["ipx"] += 1
            else:
                l2["other"] += 1
            points.append((decoded.ts, decoded.wire_len))
            if decoded.proto is not None and decoded.proto not in (1, 6, 17):
                stats.other_ip_protocols[decoded.proto] = (
                    stats.other_ip_protocols.get(decoded.proto, 0) + 1
                )
            table.process(decoded)
        stats.l2_counts = l2
        if first_ts is not None:
            stats.start_ts = first_ts
            stats.end_ts = max(last_ts, first_ts + 1.0)
            timeline = ByteTimeline(stats.start_ts, stats.end_ts, 1.0)
            timeline.add_many(points)
            stats.utilization = timeline
        self._finish_trace(table, stats)
        self.analysis.traces.append(stats)
        return stats

    def _udp_observer(self, record: ConnRecord, from_orig: bool, pkt: DecodedPacket) -> None:
        for analyzer in self.analyzers:
            analyzer.on_udp(record, from_orig, pkt)

    def _finish_trace(self, table: FlowTable, stats: TraceStats) -> None:
        internal = self.analysis.internal_net
        for result in table.flush():
            record = result.record
            self.analysis.conns.append(record)
            if record.proto == "tcp":
                where = "wan" if record.involves_wan(internal) else "ent"
                stats.tcp_packets[where] += record.total_pkts
                # Keep-alive probes are excluded, as in §6.
                stats.retransmits[where] += record.retransmits
            for analyzer in self.analyzers:
                analyzer.on_connection(result, self.analysis.full_payload)

    # -- completion -------------------------------------------------------------

    def finish(self, known_scanners: Iterable[int] = ()) -> DatasetAnalysis:
        """Run the scan filter, collect analyzer results, and return.

        ``known_scanners`` plays the role of the paper's "2 internal
        scanners" whose addresses the site knew a priori; the §3
        heuristic finds the rest.
        """
        from .scanfilter import find_scanners

        scanners = find_scanners(self.analysis.conns, known_scanners)
        self.analysis.scanner_sources = scanners
        self.analysis.removed_conns = sum(
            1 for conn in self.analysis.conns if conn.orig_ip in scanners
        )
        for analyzer in self.analyzers:
            analyzer.scanners = scanners
            self.analysis.analyzer_results[analyzer.name] = analyzer.result()
            endpoints = getattr(analyzer, "windows_endpoints", None)
            if endpoints:
                self.analysis.windows_endpoints |= endpoints
        return self.analysis
