"""The dataset analysis engine: traces in, analysis products out.

One :class:`DatasetAnalyzer` consumes a dataset's trace files in order,
running the flow table, the network-layer accounting (Table 2), per-trace
utilization and retransmission accounting (Figures 9-10), and every
registered application analyzer, then aggregates the results into a
:class:`DatasetAnalysis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4, ETHERTYPE_IPX
from ..net.packet import CapturedPacket, DecodedPacket, decode_packet
from ..pcap.reader import PcapReader
from ..util.addr import Subnet
from ..util.stats import Summary
from ..util.timeline import ByteTimeline
from .conn import DEFAULT_INTERNAL_NET, ConnRecord
from .errors import (
    AnalyzerFailure,
    CircuitBreaker,
    ErrorBudget,
    ErrorKind,
    ErrorPolicy,
    TraceErrorLog,
    TraceQuarantined,
)
from .flow import FlowResult, FlowTable

__all__ = ["TraceStats", "DatasetAnalysis", "DatasetAnalyzer", "Analyzer"]


class Analyzer:
    """Base class for application analyzers.

    ``on_udp`` fires once per UDP datagram (payload parsing without
    buffering); ``on_connection`` fires once per finished connection with
    any reassembled TCP streams.  Before ``result`` is called the engine
    sets ``scanners`` to the sources identified by the §3 scan filter, so
    connection-level reports can exclude scanner traffic the way the
    paper does ("prior to our subsequent analysis, we remove traffic from
    sources identified as scanners").
    """

    name = "analyzer"
    scanners: frozenset[int] | set[int] = frozenset()

    def on_udp(self, record: ConnRecord, from_orig: bool, pkt: DecodedPacket) -> None:
        pass

    def on_connection(self, result: FlowResult, full_payload: bool) -> None:
        pass

    def result(self):
        """The analyzer's finished product (any shape it likes)."""
        return None


@dataclass
class TraceStats:
    """Per-trace statistics (one tap window)."""

    index: int
    path: str
    packets: int = 0
    start_ts: float = 0.0
    end_ts: float = 0.0
    # Network-layer packet counts (Table 2).
    l2_counts: dict[str, int] = field(default_factory=dict)
    # Minor IP transports (IGMP/PIM/GRE/ESP/...), protocol number -> packets;
    # "each of which make up only a slim portion of the traffic" (§3).
    other_ip_protocols: dict[int, int] = field(default_factory=dict)
    # Utilization (Figure 9): per-second byte bins.
    utilization: ByteTimeline | None = None
    # Retransmission accounting (Figure 10), keyed "ent"/"wan".
    tcp_packets: dict[str, int] = field(default_factory=lambda: {"ent": 0, "wan": 0})
    retransmits: dict[str, int] = field(default_factory=lambda: {"ent": 0, "wan": 0})
    # Data-quality accounting: defect counts by ErrorKind value.
    errors: dict[str, int] = field(default_factory=dict)
    #: Packets whose timestamp ran backwards relative to their predecessor.
    timestamp_regressions: int = 0
    #: True when the trace exceeded its error budget (or hit a fatal
    #: defect) and its connections were withheld from the analysis.
    quarantined: bool = False
    quarantine_reason: str = ""

    @property
    def total_errors(self) -> int:
        """Total ingestion defects recorded for this trace."""
        return sum(self.errors.values())

    @property
    def truncated_tail(self) -> bool:
        """True when the reader stopped early at structural file damage."""
        return bool(
            self.errors.get(ErrorKind.TRUNCATED_HEADER.value)
            or self.errors.get(ErrorKind.TRUNCATED_BODY.value)
        )

    def retransmit_rate(self, where: str) -> float | None:
        """Retransmitted fraction for "ent"/"wan"; None below 1000 packets."""
        total = self.tcp_packets.get(where, 0)
        if total < 1000:
            return None
        return self.retransmits.get(where, 0) / total

    def utilization_summary(self) -> Summary | None:
        """Per-second Mbps summary, if any packets were seen."""
        if self.utilization is None:
            return None
        return self.utilization.utilization_summary()


@dataclass
class DatasetAnalysis:
    """Everything the reporting layer needs about one dataset."""

    name: str
    full_payload: bool
    internal_net: Subnet
    conns: list[ConnRecord] = field(default_factory=list)
    traces: list[TraceStats] = field(default_factory=list)
    analyzer_results: dict[str, object] = field(default_factory=dict)
    #: (server_ip, port) endpoints learned from the Endpoint Mapper.
    windows_endpoints: set[tuple[int, int]] = field(default_factory=set)
    #: Sources removed by the scan filter (set after filtering).
    scanner_sources: set[int] = field(default_factory=set)
    removed_conns: int = 0
    #: The error policy the dataset was ingested under.
    error_policy: str = ErrorPolicy.STRICT.value
    #: Analyzer name -> hook failure count (circuit-breaker accounting).
    analyzer_errors: dict[str, int] = field(default_factory=dict)
    #: Storage-plane failures absorbed while persisting this analysis
    #: (operation -> count).  Transient by construction: a cached copy
    #: loaded back from the store had, by definition, no I/O errors, so
    #: this never travels through the shard format.
    io_errors: dict[str, int] = field(default_factory=dict)

    def filtered_conns(self) -> list[ConnRecord]:
        """Connections with scanner traffic removed (the §3 baseline)."""
        return [conn for conn in self.conns if conn.orig_ip not in self.scanner_sources]

    @property
    def total_packets(self) -> int:
        return sum(trace.packets for trace in self.traces)

    def l2_totals(self) -> dict[str, int]:
        """Dataset-wide network-layer packet counts."""
        totals: dict[str, int] = {}
        for trace in self.traces:
            for key, value in trace.l2_counts.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def other_transport_totals(self) -> dict[int, int]:
        """Dataset-wide packet counts for the minor IP transports."""
        totals: dict[int, int] = {}
        for trace in self.traces:
            for proto, count in trace.other_ip_protocols.items():
                totals[proto] = totals.get(proto, 0) + count
        return totals

    # -- data-quality accounting ----------------------------------------------

    def error_totals(self) -> dict[str, int]:
        """Dataset-wide ingestion defect counts by :class:`ErrorKind` value."""
        totals: dict[str, int] = {}
        for trace in self.traces:
            for kind, count in trace.errors.items():
                totals[kind] = totals.get(kind, 0) + count
        analyzer = sum(self.analyzer_errors.values())
        if analyzer:
            totals[ErrorKind.ANALYZER_ERROR.value] = (
                totals.get(ErrorKind.ANALYZER_ERROR.value, 0) + analyzer
            )
        io = sum(self.io_errors.values())
        if io:
            totals[ErrorKind.IO_ERROR.value] = (
                totals.get(ErrorKind.IO_ERROR.value, 0) + io
            )
        return totals

    @property
    def total_errors(self) -> int:
        """Every defect recorded while ingesting this dataset."""
        return sum(self.error_totals().values())

    def quarantined_traces(self) -> list[TraceStats]:
        """Traces whose contributions were withheld from the analysis."""
        return [trace for trace in self.traces if trace.quarantined]

    def salvaged_traces(self) -> list[TraceStats]:
        """Non-quarantined traces cut short by structural file damage."""
        return [
            trace
            for trace in self.traces
            if trace.truncated_tail and not trace.quarantined
        ]

    def failed_analyzers(self) -> dict[str, AnalyzerFailure]:
        """Analyzers that were disabled or failed to produce a result."""
        return {
            name: result
            for name, result in self.analyzer_results.items()
            if isinstance(result, AnalyzerFailure)
        }


class DatasetAnalyzer:
    """Runs the full analysis pipeline over one dataset's traces.

    Parameters
    ----------
    error_policy:
        How ingestion defects are handled (``strict`` raises, the
        historical behavior; ``tolerant`` salvages within the budget;
        ``skip-trace`` quarantines a trace on its first defect).
    error_budget:
        Per-trace damage allowance before quarantine (tolerant policy).
    analyzer_max_failures:
        Hook failures after which an application analyzer's circuit
        breaker opens and the analyzer is disabled (non-strict policies).
    """

    def __init__(
        self,
        name: str,
        full_payload: bool = True,
        internal_net: Subnet = DEFAULT_INTERNAL_NET,
        analyzers: Sequence[Analyzer] = (),
        error_policy: ErrorPolicy | str = ErrorPolicy.STRICT,
        error_budget: ErrorBudget | None = None,
        analyzer_max_failures: int = 3,
    ) -> None:
        self.error_policy = ErrorPolicy.coerce(error_policy)
        self.error_budget = error_budget if error_budget is not None else ErrorBudget()
        self.analysis = DatasetAnalysis(
            name=name,
            full_payload=full_payload,
            internal_net=internal_net,
            error_policy=self.error_policy.value,
        )
        self.analyzers = list(analyzers)
        self._breakers = {
            analyzer.name: CircuitBreaker(analyzer.name, analyzer_max_failures)
            for analyzer in self.analyzers
        }

    def _new_error_log(self, path: str) -> TraceErrorLog:
        return TraceErrorLog(
            policy=self.error_policy, budget=self.error_budget, path=path
        )

    # -- trace ingestion ------------------------------------------------------

    def process_pcap(self, path: str | Path) -> TraceStats:
        """Analyze one trace file.

        Under ``strict`` any defect raises an
        :class:`~repro.analysis.errors.IngestionError` naming the file
        and offset; otherwise defects are recorded on the returned
        :class:`TraceStats` and a hopeless trace comes back quarantined.
        """
        label = str(path)
        errors = self._new_error_log(label)
        try:
            reader = PcapReader.open(path, errors=errors)
        except TraceQuarantined as exc:
            # The global header was unreadable: nothing to salvage.
            return self._quarantined_trace(label, errors, exc.reason)
        with reader:
            return self.process_packets(reader, label=label, errors=errors)

    def process_packets(
        self,
        packets: Iterable[CapturedPacket],
        label: str = "<memory>",
        errors: TraceErrorLog | None = None,
    ) -> TraceStats:
        """Analyze one trace given as an iterable of captured packets."""
        errlog = errors if errors is not None else self._new_error_log(label)
        index = len(self.analysis.traces)
        stats = TraceStats(index=index, path=label)
        table = FlowTable(
            collect_payload=self.analysis.full_payload,
            udp_observer=self._udp_observer,
            trace_index=index,
        )
        points: list[tuple[float, int]] = []
        l2 = {"ip": 0, "arp": 0, "ipx": 0, "other": 0}
        min_ts = None
        max_ts = 0.0
        prev_ts = None
        try:
            for pkt in packets:
                stats.packets += 1
                try:
                    decoded = decode_packet(pkt)
                except Exception as exc:  # decoder contract is "never raise"
                    errlog.record(ErrorKind.DECODE_ERROR, detail=repr(exc))
                    continue
                if decoded.runt:
                    errlog.record(
                        ErrorKind.RUNT_FRAME,
                        detail=f"{decoded.caplen}-byte frame (record {stats.packets})",
                    )
                    continue
                errlog.records_ok += 1
                ts = decoded.ts
                if prev_ts is not None and ts < prev_ts:
                    stats.timestamp_regressions += 1
                prev_ts = ts
                if min_ts is None:
                    min_ts = max_ts = ts
                else:
                    min_ts = min(min_ts, ts)
                    max_ts = max(max_ts, ts)
                if decoded.ethertype == ETHERTYPE_IPV4:
                    l2["ip"] += 1
                elif decoded.ethertype == ETHERTYPE_ARP:
                    l2["arp"] += 1
                elif decoded.ethertype == ETHERTYPE_IPX:
                    l2["ipx"] += 1
                else:
                    l2["other"] += 1
                points.append((ts, decoded.wire_len))
                if decoded.proto is not None and decoded.proto not in (1, 6, 17):
                    stats.other_ip_protocols[decoded.proto] = (
                        stats.other_ip_protocols.get(decoded.proto, 0) + 1
                    )
                try:
                    table.process(decoded)
                except Exception as exc:
                    # Under strict, propagate raw: the exception may be an
                    # analyzer bug re-raised by _udp_observer, and wrapping
                    # it as a decode error would hide the real traceback.
                    if self.error_policy is ErrorPolicy.STRICT:
                        raise
                    errlog.record(
                        ErrorKind.DECODE_ERROR, detail=f"flow ingestion: {exc!r}"
                    )
        except TraceQuarantined as exc:
            stats.l2_counts = l2
            stats.errors = dict(errlog.counts)
            stats.quarantined = True
            stats.quarantine_reason = exc.reason
            self.analysis.traces.append(stats)
            return stats
        stats.l2_counts = l2
        stats.errors = dict(errlog.counts)
        if min_ts is not None:
            stats.start_ts = min_ts
            stats.end_ts = max(max_ts, min_ts + 1.0)
            timeline = ByteTimeline(stats.start_ts, stats.end_ts, 1.0)
            timeline.add_many(points)
            stats.utilization = timeline
        self._finish_trace(table, stats)
        self.analysis.traces.append(stats)
        return stats

    def _quarantined_trace(
        self, label: str, errors: TraceErrorLog, reason: str
    ) -> TraceStats:
        stats = TraceStats(index=len(self.analysis.traces), path=label)
        stats.errors = dict(errors.counts)
        stats.quarantined = True
        stats.quarantine_reason = reason
        self.analysis.traces.append(stats)
        return stats

    # -- analyzer isolation ---------------------------------------------------

    def _analyzer_failed(self, analyzer: Analyzer, hook: str, exc: Exception) -> None:
        breaker = self._breakers[analyzer.name]
        breaker.record_failure(hook, exc)
        self.analysis.analyzer_errors[analyzer.name] = breaker.failures

    def _udp_observer(self, record: ConnRecord, from_orig: bool, pkt: DecodedPacket) -> None:
        strict = self.error_policy is ErrorPolicy.STRICT
        for analyzer in self.analyzers:
            if self._breakers[analyzer.name].open:
                continue
            try:
                analyzer.on_udp(record, from_orig, pkt)
            except Exception as exc:
                if strict:
                    raise
                self._analyzer_failed(analyzer, "on_udp", exc)

    def _finish_trace(self, table: FlowTable, stats: TraceStats) -> None:
        self._dispatch_results(table.flush(), stats)

    def _dispatch_results(
        self, results: Iterable[FlowResult], stats: TraceStats
    ) -> None:
        """File finished flows into the analysis and fan them out to the
        application analyzers.

        The order of ``results`` is load-bearing: analyzer reports and
        the connection list preserve it, so the streaming engine hands
        this method its canonically re-ordered evictions to stay
        byte-identical with the batch path (see ``docs/streaming.md``).
        """
        internal = self.analysis.internal_net
        strict = self.error_policy is ErrorPolicy.STRICT
        for result in results:
            record = result.record
            self.analysis.conns.append(record)
            if record.proto == "tcp":
                where = "wan" if record.involves_wan(internal) else "ent"
                stats.tcp_packets[where] += record.total_pkts
                # Keep-alive probes are excluded, as in §6.
                stats.retransmits[where] += record.retransmits
            for analyzer in self.analyzers:
                if self._breakers[analyzer.name].open:
                    continue
                try:
                    analyzer.on_connection(result, self.analysis.full_payload)
                except Exception as exc:
                    if strict:
                        raise
                    self._analyzer_failed(analyzer, "on_connection", exc)

    # -- completion -------------------------------------------------------------

    def finish(self, known_scanners: Iterable[int] = ()) -> DatasetAnalysis:
        """Run the scan filter, collect analyzer results, and return.

        ``known_scanners`` plays the role of the paper's "2 internal
        scanners" whose addresses the site knew a priori; the §3
        heuristic finds the rest.
        """
        from .scanfilter import find_scanners

        scanners = find_scanners(self.analysis.conns, known_scanners)
        self.analysis.scanner_sources = scanners
        self.analysis.removed_conns = sum(
            1 for conn in self.analysis.conns if conn.orig_ip in scanners
        )
        strict = self.error_policy is ErrorPolicy.STRICT
        for analyzer in self.analyzers:
            analyzer.scanners = scanners
            breaker = self._breakers[analyzer.name]
            result = None
            failed = breaker.open
            if not failed:
                try:
                    result = analyzer.result()
                except Exception as exc:
                    if strict:
                        raise
                    self._analyzer_failed(analyzer, "result", exc)
                    failed = True
            if failed:
                # Record the failure instead of the (untrustworthy or
                # missing) report so the rest of the study still stands.
                self.analysis.analyzer_results[analyzer.name] = AnalyzerFailure(
                    name=analyzer.name,
                    failures=breaker.failures,
                    first_error=breaker.first_error,
                )
                continue
            self.analysis.analyzer_results[analyzer.name] = result
            endpoints = getattr(analyzer, "windows_endpoints", None)
            if endpoints:
                self.analysis.windows_endpoints |= endpoints
        return self.analysis
