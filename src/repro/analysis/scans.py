"""Scanning-traffic characterization — §3's declared future work.

"A more in-depth study of characteristics that the scanning traffic
exposes is a fruitful area for future work."  This module builds on the
§3 detection heuristic and characterizes each identified scanner: sweep
extent and pacing, targeted services, probe protocol, how targets
responded, and which otherwise-idle services the scanner managed to
engage (§3 warns those skew protocol diversity).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from .conn import ConnRecord, ConnState
from .scanfilter import find_scanners

__all__ = ["ScannerProfile", "ScanReport", "characterize_scanners"]


@dataclass
class ScannerProfile:
    """Behavioural profile of one scanning source."""

    source: int
    conns: int = 0
    distinct_targets: int = 0
    first_ts: float = 0.0
    last_ts: float = 0.0
    protocols: Counter = field(default_factory=Counter)  # tcp/udp/icmp
    ports: Counter = field(default_factory=Counter)
    outcomes: Counter = field(default_factory=Counter)  # per ConnState name
    engaged_services: Counter = field(default_factory=Counter)  # answered ports

    @property
    def duration(self) -> float:
        return max(self.last_ts - self.first_ts, 0.0)

    @property
    def probe_rate(self) -> float:
        """Probes per second over the sweep's active span."""
        if self.duration <= 0:
            return float(self.conns)
        return self.conns / self.duration

    @property
    def answered_fraction(self) -> float:
        """Fraction of probes that got any positive response."""
        if not self.conns:
            return 0.0
        answered = self.conns - self.outcomes.get("S0", 0) - self.outcomes.get("REJ", 0)
        return answered / self.conns

    @property
    def is_icmp_scanner(self) -> bool:
        return self.protocols.get("icmp", 0) > self.protocols.get("tcp", 0)


@dataclass
class ScanReport:
    """All scanners of one dataset, characterized."""

    profiles: dict[int, ScannerProfile] = field(default_factory=dict)
    total_conns: int = 0
    scan_conns: int = 0

    @property
    def removed_fraction(self) -> float:
        return self.scan_conns / self.total_conns if self.total_conns else 0.0

    def by_extent(self) -> list[ScannerProfile]:
        """Scanners ordered by distinct targets, widest first."""
        return sorted(self.profiles.values(), key=lambda p: -p.distinct_targets)

    def engaged_service_ports(self) -> set[int]:
        """Ports where any scanner got an established service to answer."""
        return {
            port
            for profile in self.profiles.values()
            for port in profile.engaged_services
        }


def characterize_scanners(
    conns: Iterable[ConnRecord],
    known_scanners: Iterable[int] = (),
) -> ScanReport:
    """Detect (per §3) and characterize every scanning source."""
    conns = list(conns)
    scanners = find_scanners(conns, known_scanners)
    report = ScanReport(total_conns=len(conns))
    for source in scanners:
        report.profiles[source] = ScannerProfile(source=source)
    targets: dict[int, set[int]] = {source: set() for source in scanners}
    for conn in conns:
        profile = report.profiles.get(conn.orig_ip)
        if profile is None:
            continue
        report.scan_conns += 1
        if not profile.conns:
            profile.first_ts = conn.first_ts
        profile.conns += 1
        profile.first_ts = min(profile.first_ts, conn.first_ts)
        profile.last_ts = max(profile.last_ts, conn.last_ts)
        targets[conn.orig_ip].add(conn.resp_ip)
        profile.protocols[conn.proto] += 1
        profile.outcomes[conn.state.value] += 1
        if conn.proto in ("tcp", "udp"):
            profile.ports[conn.resp_port] += 1
            if conn.proto == "tcp" and conn.state not in (ConnState.S0, ConnState.REJ):
                if conn.resp_bytes > 0:
                    profile.engaged_services[conn.resp_port] += 1
    for source, target_set in targets.items():
        report.profiles[source].distinct_targets = len(target_set)
    return report
