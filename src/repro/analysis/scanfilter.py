"""Scanner identification and removal (§3).

The paper's heuristic, verbatim: "We first identify sources contacting
more than 50 distinct hosts.  We then determine whether at least 45 of
the distinct addresses probed were in ascending or descending order."
Known internal scanners are removed as well.  The fraction of connections
removed ranges 4-18% across the paper's datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .conn import ConnRecord

__all__ = ["ScanFilterResult", "find_scanners", "filter_scanners"]

_MIN_DISTINCT_HOSTS = 50
_MIN_ORDERED = 45


@dataclass
class ScanFilterResult:
    """Outcome of one scan-filtering pass."""

    scanners: set[int] = field(default_factory=set)
    kept: list[ConnRecord] = field(default_factory=list)
    removed: int = 0

    @property
    def removed_fraction(self) -> float:
        total = len(self.kept) + self.removed
        return self.removed / total if total else 0.0


def _monotonic_run(addresses: Sequence[int]) -> int:
    """Longest count of first-contact addresses in a monotonic direction.

    The heuristic asks whether ≥45 of the probed addresses were contacted
    in ascending or descending order; we count, over the first-contact
    sequence, how many steps continue each direction.
    """
    if len(addresses) < 2:
        return len(addresses)
    ascending = 1
    descending = 1
    best = 1
    for previous, current in zip(addresses, addresses[1:]):
        if current > previous:
            ascending += 1
            descending = 1
        elif current < previous:
            descending += 1
            ascending = 1
        else:
            continue
        best = max(best, ascending, descending)
    return best


def find_scanners(
    conns: Iterable[ConnRecord], known_scanners: Iterable[int] = ()
) -> set[int]:
    """Identify scanner source addresses with the §3 heuristic."""
    contacts: dict[int, dict[int, float]] = {}
    for conn in conns:
        first_contacts = contacts.setdefault(conn.orig_ip, {})
        if conn.resp_ip not in first_contacts:
            first_contacts[conn.resp_ip] = conn.first_ts
        else:
            first_contacts[conn.resp_ip] = min(
                first_contacts[conn.resp_ip], conn.first_ts
            )
    scanners = set(known_scanners)
    for source, first_contacts in contacts.items():
        if len(first_contacts) <= _MIN_DISTINCT_HOSTS:
            continue
        ordered_by_time = [
            addr for addr, _ts in sorted(first_contacts.items(), key=lambda kv: kv[1])
        ]
        if _monotonic_run(ordered_by_time) >= _MIN_ORDERED:
            scanners.add(source)
    return scanners


def filter_scanners(
    conns: Iterable[ConnRecord], known_scanners: Iterable[int] = ()
) -> ScanFilterResult:
    """Remove traffic from identified scanners before further analysis."""
    conns = list(conns)
    scanners = find_scanners(conns, known_scanners)
    result = ScanFilterResult(scanners=scanners)
    for conn in conns:
        if conn.orig_ip in scanners:
            result.removed += 1
        else:
            result.kept.append(conn)
    return result
