"""Network load analysis (§6, Figures 9-10).

Derives per-trace peak utilization over multiple timescales, per-second
utilization summaries, and TCP retransmission rates (enterprise vs WAN,
keep-alives excluded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..util.stats import Cdf
from .engine import TraceStats

__all__ = ["LoadReport", "load_report"]

_TIMESCALES = (1.0, 10.0, 60.0)


@dataclass
class LoadReport:
    """Load metrics over a dataset's traces."""

    #: timescale (seconds) -> CDF of per-trace peak Mbps (Figure 9a).
    peak_cdfs: dict[float, Cdf] = field(default_factory=dict)
    #: metric name -> CDF over traces of per-second utilization (Figure 9b).
    utilization_cdfs: dict[str, Cdf] = field(default_factory=dict)
    #: per-trace retransmission rates, "ent"/"wan" (Figure 10); traces
    #: with fewer than 1000 packets in a category are omitted, as in the
    #: paper.
    retransmit_rates: dict[str, list[float]] = field(default_factory=dict)

    def max_retransmit_rate(self, where: str) -> float:
        rates = self.retransmit_rates.get(where, [])
        return max(rates) if rates else 0.0

    def fraction_above(self, where: str, threshold: float) -> float:
        """Fraction of traces whose retransmission rate exceeds threshold."""
        rates = self.retransmit_rates.get(where, [])
        if not rates:
            return 0.0
        return sum(1 for rate in rates if rate > threshold) / len(rates)


def load_report(traces: Sequence[TraceStats]) -> LoadReport:
    """Compute Figure 9/10 metrics from per-trace statistics."""
    report = LoadReport()
    peaks: dict[float, list[float]] = {scale: [] for scale in _TIMESCALES}
    summaries: dict[str, list[float]] = {
        "minimum": [], "p25": [], "median": [], "p75": [], "mean": [], "maximum": []
    }
    for trace in traces:
        if trace.utilization is None:
            continue
        for scale in _TIMESCALES:
            if trace.utilization.num_bins * trace.utilization.bin_seconds >= scale:
                peaks[scale].append(trace.utilization.peak_mbps(scale))
        summary = trace.utilization_summary()
        if summary is not None:
            summaries["minimum"].append(summary.minimum)
            summaries["p25"].append(summary.p25)
            summaries["median"].append(summary.median)
            summaries["p75"].append(summary.p75)
            summaries["mean"].append(summary.mean)
            summaries["maximum"].append(summary.maximum)
    report.peak_cdfs = {scale: Cdf(values) for scale, values in peaks.items()}
    report.utilization_cdfs = {name: Cdf(values) for name, values in summaries.items()}
    rates: dict[str, list[float]] = {"ent": [], "wan": []}
    for trace in traces:
        for where in ("ent", "wan"):
            rate = trace.retransmit_rate(where)
            if rate is not None:
                rates[where].append(rate)
    report.retransmit_rates = rates
    return report
