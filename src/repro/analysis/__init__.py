"""The Bro-like analysis engine: packets → connections → paper findings."""

from .classify import CATEGORIES, classify_conn, classify_port
from .censored import DurationSample, KaplanMeier, censored_durations
from .conn import (
    DEFAULT_INTERNAL_NET,
    ConnRecord,
    ConnState,
    Locality,
    locality_of,
)
from .engine import Analyzer, DatasetAnalysis, DatasetAnalyzer, TraceStats
from .errors import (
    AnalyzerFailure,
    CircuitBreaker,
    ErrorBudget,
    ErrorKind,
    ErrorPolicy,
    IngestionError,
    TraceError,
    TraceErrorLog,
    TraceQuarantined,
)
from .failures import PairOutcomes, host_pair_success, raw_connection_success
from .flow import FlowResult, FlowTable
from .load import LoadReport, load_report
from .locality import FanStats, OriginBreakdown, fan_stats, origin_breakdown
from .roles import HostProfile, RoleReport, classify_roles
from .scanfilter import ScanFilterResult, filter_scanners, find_scanners
from .scans import ScanReport, ScannerProfile, characterize_scanners
from .tcpstate import TcpFlowState

__all__ = [
    "DurationSample",
    "KaplanMeier",
    "censored_durations",
    "CATEGORIES",
    "classify_conn",
    "classify_port",
    "DEFAULT_INTERNAL_NET",
    "ConnRecord",
    "ConnState",
    "Locality",
    "locality_of",
    "Analyzer",
    "DatasetAnalysis",
    "DatasetAnalyzer",
    "TraceStats",
    "AnalyzerFailure",
    "CircuitBreaker",
    "ErrorBudget",
    "ErrorKind",
    "ErrorPolicy",
    "IngestionError",
    "TraceError",
    "TraceErrorLog",
    "TraceQuarantined",
    "PairOutcomes",
    "host_pair_success",
    "raw_connection_success",
    "FlowResult",
    "FlowTable",
    "LoadReport",
    "load_report",
    "FanStats",
    "OriginBreakdown",
    "fan_stats",
    "origin_breakdown",
    "ScanFilterResult",
    "filter_scanners",
    "find_scanners",
    "HostProfile",
    "RoleReport",
    "classify_roles",
    "ScanReport",
    "ScannerProfile",
    "characterize_scanners",
    "TcpFlowState",
]
