"""Censored-duration estimation for tap-window-limited observations.

§5.1.2 hits a measurement wall: "The maximum connection duration is
generally 50 minutes.  While our traces are roughly 1 hour in length ...
determining the true length of IMAP/S sessions requires longer
observations and is a subject for future work."  A connection still open
when the tap moves on is *right-censored* — its true duration is only
known to exceed what was seen.  This module implements the standard
product-limit (Kaplan-Meier) estimator over connection durations, so
session-length distributions can be estimated despite the windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .conn import ConnRecord, ConnState

__all__ = ["DurationSample", "KaplanMeier", "censored_durations"]


@dataclass(frozen=True)
class DurationSample:
    """One observed duration; ``censored`` means "lived at least this long"."""

    duration: float
    censored: bool


class KaplanMeier:
    """The product-limit estimator of a survival function S(t).

    Built from (duration, censored) samples; evaluation gives the
    estimated probability that a session lives longer than ``t``.
    """

    def __init__(self, samples: Iterable[DurationSample]) -> None:
        ordered = sorted(samples, key=lambda s: s.duration)
        self.n = len(ordered)
        self._times: list[float] = []
        self._survival: list[float] = []
        at_risk = self.n
        survival = 1.0
        index = 0
        while index < len(ordered):
            time = ordered[index].duration
            events = 0
            censored = 0
            while index < len(ordered) and ordered[index].duration == time:
                if ordered[index].censored:
                    censored += 1
                else:
                    events += 1
                index += 1
            if events and at_risk:
                survival *= 1.0 - events / at_risk
                self._times.append(time)
                self._survival.append(survival)
            at_risk -= events + censored

    def survival(self, t: float) -> float:
        """Estimated P(duration > t)."""
        result = 1.0
        for time, survival in zip(self._times, self._survival):
            if time > t:
                break
            result = survival
        return result

    def quantile(self, q: float) -> float | None:
        """Smallest t with P(duration <= t) >= q; None when the estimate
        never reaches q (too much censoring — the honest answer)."""
        if not 0 < q < 1:
            raise ValueError(f"quantile out of range: {q}")
        for time, survival in zip(self._times, self._survival):
            if 1.0 - survival >= q:
                return time
        return None

    @property
    def median(self) -> float | None:
        """The estimated median duration, when identifiable."""
        return self.quantile(0.5)

    def steps(self) -> list[tuple[float, float]]:
        """(t, S(t)) step points for plotting."""
        return list(zip(self._times, self._survival))


def censored_durations(conns: Iterable[ConnRecord]) -> list[DurationSample]:
    """Turn connection records into censored duration samples.

    A connection whose teardown was never observed (state EST or OTH —
    no FIN exchange, no RST) was still open when the tap moved on: its
    true duration is only known to be *at least* what was seen, so it is
    right-censored.  Cleanly closed or reset connections are complete
    observations.  Failed attempts (S0/REJ) are excluded — they have no
    session duration to estimate.
    """
    samples: list[DurationSample] = []
    for conn in conns:
        if conn.state in (ConnState.S0, ConnState.REJ):
            continue
        cut_off = conn.state in (ConnState.EST, ConnState.OTH)
        samples.append(DurationSample(duration=conn.duration, censored=cut_off))
    return samples
