"""Application classification — the Table 4 category map.

Maps a connection's service port (plus protocol) to an application name
and one of the paper's categories.  Windows DCE/RPC services on ephemeral
ports cannot be classified by port alone; the engine learns them from
Endpoint Mapper responses and passes the learned (ip, port) set in.
"""

from __future__ import annotations

from .conn import ConnRecord

__all__ = [
    "CATEGORIES",
    "classify_port",
    "classify_conn",
    "service_port",
    "is_known_service_port",
]

#: category -> protocol list, straight from Table 4.
CATEGORIES: dict[str, list[str]] = {
    "backup": ["Dantz", "Veritas", "connected-backup"],
    "bulk": ["FTP", "HPSS"],
    "email": ["SMTP", "IMAP4", "IMAP/S", "POP3", "POP/S", "LDAP"],
    "interactive": ["SSH", "telnet", "rlogin", "X11"],
    "name": ["DNS", "Netbios-NS", "SrvLoc"],
    "net-file": ["NFS", "NCP"],
    "net-mgnt": ["DHCP", "ident", "NTP", "SNMP", "NAV-ping", "SAP", "NetInfo-local", "syslog"],
    "streaming": ["RTSP", "IPVideo", "RealStream"],
    "web": ["HTTP", "HTTPS"],
    "windows": ["CIFS/SMB", "DCE/RPC", "Netbios-SSN", "Netbios-DGM"],
    "misc": ["Steltor", "MetaSys", "LPD", "IPP", "Oracle-SQL", "MS-SQL"],
}

# (proto, port) -> (protocol name, category)
_TCP_PORTS: dict[int, tuple[str, str]] = {
    20: ("FTP", "bulk"),
    21: ("FTP", "bulk"),
    1217: ("HPSS", "bulk"),
    25: ("SMTP", "email"),
    110: ("POP3", "email"),
    143: ("IMAP4", "email"),
    389: ("LDAP", "email"),
    993: ("IMAP/S", "email"),
    995: ("POP/S", "email"),
    22: ("SSH", "interactive"),
    23: ("telnet", "interactive"),
    513: ("rlogin", "interactive"),
    53: ("DNS", "name"),
    2049: ("NFS", "net-file"),
    111: ("SUNRPC", "net-file"),
    524: ("NCP", "net-file"),
    113: ("ident", "net-mgnt"),
    554: ("RTSP", "streaming"),
    7070: ("RealStream", "streaming"),
    80: ("HTTP", "web"),
    8080: ("HTTP", "web"),
    443: ("HTTPS", "web"),
    135: ("DCE/RPC", "windows"),
    139: ("Netbios-SSN", "windows"),
    445: ("CIFS/SMB", "windows"),
    515: ("LPD", "misc"),
    631: ("IPP", "misc"),
    1433: ("MS-SQL", "misc"),
    1521: ("Oracle-SQL", "misc"),
    1627: ("Steltor", "misc"),
    11001: ("MetaSys", "misc"),
    497: ("Dantz", "backup"),
    13720: ("Veritas", "backup"),
    13724: ("Veritas", "backup"),
    16384: ("connected-backup", "backup"),
}

_UDP_PORTS: dict[int, tuple[str, str]] = {
    53: ("DNS", "name"),
    137: ("Netbios-NS", "name"),
    427: ("SrvLoc", "name"),
    67: ("DHCP", "net-mgnt"),
    68: ("DHCP", "net-mgnt"),
    113: ("ident", "net-mgnt"),
    123: ("NTP", "net-mgnt"),
    161: ("SNMP", "net-mgnt"),
    514: ("syslog", "net-mgnt"),
    1033: ("NetInfo-local", "net-mgnt"),
    9875: ("SAP", "net-mgnt"),
    2049: ("NFS", "net-file"),
    111: ("SUNRPC", "net-file"),
    138: ("Netbios-DGM", "windows"),
    5004: ("IPVideo", "streaming"),
    6970: ("RealStream", "streaming"),
}

# X11 uses a port range.
_X11_RANGE = range(6000, 6064)


def classify_port(proto: str, port: int) -> tuple[str, str] | None:
    """Classify a (transport, service port); None when unknown."""
    if proto == "tcp":
        if port in _TCP_PORTS:
            return _TCP_PORTS[port]
        if port in _X11_RANGE:
            return ("X11", "interactive")
        return None
    if proto == "udp":
        return _UDP_PORTS.get(port)
    return None


def is_known_service_port(proto: str, port: int) -> bool:
    """True when ``port`` names a service we can classify."""
    return classify_port(proto, port) is not None


def service_port(conn: ConnRecord) -> int:
    """The connection's service (responder) port."""
    return conn.resp_port


def classify_conn(
    conn: ConnRecord,
    dynamic_windows_endpoints: set[tuple[int, int]] | None = None,
) -> tuple[str, str]:
    """Classify a connection into (protocol, category).

    ``dynamic_windows_endpoints`` holds (server_ip, port) pairs learned
    from Endpoint Mapper responses; stand-alone DCE/RPC connections to
    those endpoints classify as "windows" even though the port is
    ephemeral (§5.2.1).
    """
    if conn.proto == "icmp":
        return ("ICMP", "icmp")
    result = classify_port(conn.proto, conn.resp_port)
    if result is None and conn.proto in ("tcp", "udp"):
        # Some services (Netbios/NS) use symmetric ports; check the
        # originator side before giving up.
        result = classify_port(conn.proto, conn.orig_port)
    if result is not None:
        return result
    if dynamic_windows_endpoints and (conn.resp_ip, conn.resp_port) in dynamic_windows_endpoints:
        return ("DCE/RPC", "windows")
    return ("other", f"other-{conn.proto}")
