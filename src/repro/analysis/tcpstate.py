"""Per-flow TCP state: handshake tracking, in-order stream reassembly,
and retransmission detection (the machinery behind §5's success-rate
analyses and §6's loss analysis).

Retransmission detection follows the paper's method: a data segment
whose sequence number falls below the next expected sequence is counted
as a retransmission, and 1-byte probes just below the expected sequence
are counted separately as TCP keep-alives (§6 excludes those from the
loss analysis because NCP and SSH generate them in bulk).
"""

from __future__ import annotations

from ..net.tcp import ACK, FIN, RST, SYN
from .conn import ConnState

__all__ = ["TcpDirectionState", "TcpFlowState"]

_SEQ_MOD = 1 << 32
_STREAM_CAP = 8 * 1024 * 1024  # per-direction reassembly buffer cap


def _seq_lt(a: int, b: int) -> bool:
    """True when sequence ``a`` precedes ``b`` (mod 2**32)."""
    return ((a - b) % _SEQ_MOD) > (_SEQ_MOD >> 1)


class TcpDirectionState:
    """Reassembly and retransmission state for one direction."""

    __slots__ = (
        "next_seq",
        "pkts",
        "payload_bytes",
        "retransmits",
        "keepalive_retransmits",
        "retransmit_bytes",
        "stream",
        "stream_gap",
        "stream_overflow",
        "collect_stream",
        "fin_seen",
    )

    def __init__(self, collect_stream: bool = False) -> None:
        self.next_seq: int | None = None
        self.pkts = 0
        self.payload_bytes = 0
        self.retransmits = 0
        self.keepalive_retransmits = 0
        self.retransmit_bytes = 0
        self.stream = bytearray()
        self.stream_gap = False
        self.stream_overflow = False
        self.collect_stream = collect_stream
        self.fin_seen = False

    def on_segment(self, seq: int, flags: int, payload: bytes, payload_len: int) -> None:
        """Account one segment of this direction."""
        self.pkts += 1
        if flags & SYN:
            self.next_seq = (seq + 1) % _SEQ_MOD
            return
        if flags & RST:
            return
        if payload_len == 0:
            if flags & FIN:
                self._consume_fin(seq)
            return
        if self.next_seq is None:
            # Mid-stream pickup: adopt this segment's sequence space.
            self.next_seq = seq
        if _seq_lt(seq, self.next_seq):
            # Wholly or partially retransmitted data.
            if payload_len == 1 and (self.next_seq - seq) % _SEQ_MOD == 1:
                self.keepalive_retransmits += 1
            else:
                self.retransmits += 1
                self.retransmit_bytes += payload_len
            if flags & FIN:
                self._consume_fin(seq + payload_len)
            return
        gap_before = 0
        if seq != self.next_seq:
            # A capture drop or reordering beyond us: pad the hole so the
            # stream's byte offsets stay aligned for downstream framing.
            self.stream_gap = True
            gap_before = (seq - self.next_seq) % _SEQ_MOD
        self.next_seq = (seq + payload_len) % _SEQ_MOD
        if flags & FIN:
            self._consume_fin(self.next_seq)
        if self.collect_stream:
            # Snaplen truncation cuts segment tails (a 1514-byte frame under
            # the paper's snaplen 1500 loses its last 14 payload bytes); pad
            # with zeros so length-prefixed framings keep parsing, exactly as
            # an analyzer with content gaps must.
            missing_tail = payload_len - len(payload)
            chunk_len = gap_before + len(payload) + max(missing_tail, 0)
            if len(self.stream) + chunk_len <= _STREAM_CAP and gap_before < _STREAM_CAP:
                if gap_before:
                    self.stream += b"\x00" * gap_before
                self.stream += payload
                if missing_tail > 0:
                    self.stream += b"\x00" * missing_tail
            else:
                self.stream_overflow = True
        if len(payload) < payload_len:
            self.stream_gap = True  # snaplen truncation

    def _consume_fin(self, seq_after: int) -> None:
        self.fin_seen = True
        if self.next_seq is not None and seq_after == self.next_seq:
            self.next_seq = (self.next_seq + 1) % _SEQ_MOD


class TcpFlowState:
    """Handshake/teardown tracking for a whole TCP connection."""

    __slots__ = (
        "orig",
        "resp",
        "syn_seen",
        "synack_seen",
        "rst_by_resp",
        "rst_by_orig",
        "data_seen",
    )

    def __init__(self, collect_stream: bool = False) -> None:
        self.orig = TcpDirectionState(collect_stream)
        self.resp = TcpDirectionState(collect_stream)
        self.syn_seen = False
        self.synack_seen = False
        self.rst_by_resp = False
        self.rst_by_orig = False
        self.data_seen = False

    def on_segment(
        self, from_orig: bool, seq: int, flags: int, payload: bytes, payload_len: int
    ) -> None:
        """Account one segment, attributed to originator or responder."""
        direction = self.orig if from_orig else self.resp
        direction.on_segment(seq, flags, payload, payload_len)
        if flags & SYN and not flags & ACK and from_orig:
            self.syn_seen = True
        if flags & SYN and flags & ACK and not from_orig:
            self.synack_seen = True
        if flags & RST:
            if from_orig:
                self.rst_by_orig = True
            else:
                self.rst_by_resp = True
        if payload_len:
            self.data_seen = True

    @property
    def established(self) -> bool:
        """True once the three-way handshake completed (or we joined late)."""
        return self.synack_seen or (not self.syn_seen and self.data_seen)

    def final_state(self) -> ConnState:
        """Classify the connection's terminal state."""
        if self.syn_seen and not self.synack_seen:
            if self.rst_by_resp:
                return ConnState.REJ
            if self.data_seen:
                return ConnState.OTH
            return ConnState.S0
        if not self.syn_seen and not self.synack_seen:
            return ConnState.OTH
        if self.rst_by_orig or self.rst_by_resp:
            return ConnState.RSTO
        if self.orig.fin_seen and self.resp.fin_seen:
            return ConnState.SF
        return ConnState.EST
