"""Connection records — the analysis engine's equivalent of Bro conn logs.

Every analysis in the paper is computed over connection summaries plus
application-layer events; :class:`ConnRecord` is the summary format.  A
"connection" is a TCP connection, a UDP flow (same 5-tuple with no long
idle gap), or an ICMP echo exchange, matching the paper's flow
accounting in Table 3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..util.addr import Subnet, int_to_ip, is_broadcast, is_multicast

__all__ = ["ConnState", "ConnRecord", "DEFAULT_INTERNAL_NET", "Locality", "locality_of"]

#: The monitored site's address block (matches the generator's topology,
#: and is what an analyst would configure for the LBNL traces).
DEFAULT_INTERNAL_NET = Subnet.parse("131.243.0.0/16")


class ConnState(enum.Enum):
    """Terminal state of a connection, Bro-style."""

    S0 = "S0"  # attempt seen, no reply
    SF = "SF"  # established and cleanly finished
    REJ = "REJ"  # attempt rejected with RST
    EST = "EST"  # established, still open (or cut off by the trace window)
    RSTO = "RSTO"  # established, then reset
    OTH = "OTH"  # mid-stream pickup; no handshake observed


class Locality(enum.Enum):
    """Where a flow's endpoints live (§4's origin analysis)."""

    ENT_ENT = "ent-ent"
    ENT_WAN = "ent-wan"  # originated inside, responder outside
    WAN_ENT = "wan-ent"  # originated outside
    WAN_WAN = "wan-wan"
    MCAST_INT = "mcast-int"  # multicast sourced inside the enterprise
    MCAST_EXT = "mcast-ext"


def locality_of(
    orig_ip: int, resp_ip: int, internal_net: Subnet = DEFAULT_INTERNAL_NET
) -> Locality:
    """Classify a flow's locality from its endpoint addresses."""
    if is_multicast(resp_ip) or is_broadcast(resp_ip):
        return (
            Locality.MCAST_INT if orig_ip in internal_net else Locality.MCAST_EXT
        )
    orig_in = orig_ip in internal_net
    resp_in = resp_ip in internal_net
    if orig_in and resp_in:
        return Locality.ENT_ENT
    if orig_in:
        return Locality.ENT_WAN
    if resp_in:
        return Locality.WAN_ENT
    return Locality.WAN_WAN


@dataclass
class ConnRecord:
    """Summary of one connection/flow."""

    proto: str  # "tcp" | "udp" | "icmp"
    orig_ip: int
    resp_ip: int
    orig_port: int
    resp_port: int
    first_ts: float
    last_ts: float
    orig_pkts: int = 0
    resp_pkts: int = 0
    orig_bytes: int = 0  # L4 payload bytes originator → responder
    resp_bytes: int = 0
    state: ConnState = ConnState.OTH
    retransmits: int = 0
    keepalive_retransmits: int = 0
    retransmit_bytes: int = 0
    trace_index: int = -1  # which trace of the dataset this came from
    app: str = ""  # filled by classification

    # Extra annotations some analyzers attach (e.g. SSL handshake seen).
    notes: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Connection duration in seconds."""
        return max(self.last_ts - self.first_ts, 0.0)

    @property
    def total_bytes(self) -> int:
        """Payload bytes in both directions."""
        return self.orig_bytes + self.resp_bytes

    @property
    def total_pkts(self) -> int:
        """Packets in both directions."""
        return self.orig_pkts + self.resp_pkts

    @property
    def established(self) -> bool:
        """True when the connection attempt succeeded."""
        return self.state in (ConnState.SF, ConnState.EST, ConnState.RSTO, ConnState.OTH)

    @property
    def attempt_failed(self) -> bool:
        """True for rejected or unanswered attempts."""
        return self.state in (ConnState.S0, ConnState.REJ)

    def locality(self, internal_net: Subnet = DEFAULT_INTERNAL_NET) -> Locality:
        """The flow's endpoint locality."""
        return locality_of(self.orig_ip, self.resp_ip, internal_net)

    def involves_wan(self, internal_net: Subnet = DEFAULT_INTERNAL_NET) -> bool:
        """True when either endpoint is outside the enterprise."""
        return self.locality(internal_net) in (Locality.ENT_WAN, Locality.WAN_ENT, Locality.WAN_WAN)

    def host_pair(self) -> tuple[int, int]:
        """The (originator, responder) address pair."""
        return (self.orig_ip, self.resp_ip)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Conn {self.proto} {int_to_ip(self.orig_ip)}:{self.orig_port} -> "
            f"{int_to_ip(self.resp_ip)}:{self.resp_port} {self.state.value} "
            f"{self.total_bytes}B>"
        )
