"""Host-role classification from connection patterns.

The paper cites role inference (Tan et al., USENIX '03) as the kind of
deeper enterprise analysis its broad first look should enable, and §4
observes that the fan-in/fan-out tails belong to "busy servers that
communicate with large numbers of on- and off-site hosts".  This module
implements that follow-on analysis: given a dataset's connection records,
classify each internal host's role from what it *does* — no topology
knowledge, ports, payloads, or generator metadata involved beyond the
service-port of connections it answers.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from ..util.addr import Subnet
from .classify import classify_conn
from .conn import DEFAULT_INTERNAL_NET, ConnRecord

__all__ = ["HostProfile", "RoleReport", "classify_roles"]

#: A host answering at least this many distinct clients on one service
#: counts as a server for it.
_SERVER_MIN_CLIENTS = 5
#: Fan-out above this marks a host as client-heavy.
_CLIENT_MIN_PEERS = 3


@dataclass
class HostProfile:
    """Behavioural profile of one internal host."""

    ip: int
    #: service protocol name -> number of distinct clients served.
    served: Counter = field(default_factory=Counter)
    #: distinct peers this host originated conversations to.
    fan_out: int = 0
    #: distinct peers that originated conversations to this host.
    fan_in: int = 0
    conns_as_orig: int = 0
    conns_as_resp: int = 0

    @property
    def roles(self) -> list[str]:
        """Service roles this host plays ("smtp-server", ...)."""
        return sorted(
            f"{proto.lower()}-server"
            for proto, clients in self.served.items()
            if clients >= _SERVER_MIN_CLIENTS
        )

    @property
    def kind(self) -> str:
        """Coarse classification: server / client / mixed / quiet."""
        is_server = bool(self.roles)
        is_client = self.fan_out >= _CLIENT_MIN_PEERS
        if is_server and is_client:
            return "mixed"
        if is_server:
            return "server"
        if is_client:
            return "client"
        return "quiet"


@dataclass
class RoleReport:
    """Role classification over a whole dataset."""

    profiles: dict[int, HostProfile] = field(default_factory=dict)

    def hosts_of_kind(self, kind: str) -> list[HostProfile]:
        """All profiles with the given coarse kind."""
        return [p for p in self.profiles.values() if p.kind == kind]

    def servers_for(self, protocol: str) -> list[HostProfile]:
        """Hosts serving ``protocol`` (e.g. "SMTP"), busiest first."""
        role = f"{protocol.lower()}-server"
        matches = [p for p in self.profiles.values() if role in p.roles]
        return sorted(matches, key=lambda p: -p.served[protocol])

    def kind_counts(self) -> Counter:
        """{kind: host count}."""
        return Counter(p.kind for p in self.profiles.values())


def classify_roles(
    conns: Iterable[ConnRecord],
    internal_net: Subnet = DEFAULT_INTERNAL_NET,
    windows_endpoints: set[tuple[int, int]] | None = None,
) -> RoleReport:
    """Infer internal hosts' roles from their connection patterns.

    Only *established* connections count toward serving (a scanner's
    rejected probes must not make every workstation look like a server),
    and only internal hosts are profiled.
    """
    report = RoleReport()
    out_peers: dict[int, set[int]] = defaultdict(set)
    in_peers: dict[int, set[int]] = defaultdict(set)
    served_clients: dict[tuple[int, str], set[int]] = defaultdict(set)

    for conn in conns:
        orig_internal = conn.orig_ip in internal_net
        resp_internal = conn.resp_ip in internal_net
        if orig_internal:
            profile = report.profiles.setdefault(conn.orig_ip, HostProfile(conn.orig_ip))
            profile.conns_as_orig += 1
            out_peers[conn.orig_ip].add(conn.resp_ip)
        if resp_internal:
            profile = report.profiles.setdefault(conn.resp_ip, HostProfile(conn.resp_ip))
            profile.conns_as_resp += 1
            in_peers[conn.resp_ip].add(conn.orig_ip)
            if conn.established and conn.proto in ("tcp", "udp"):
                proto_name, _category = classify_conn(conn, windows_endpoints)
                if proto_name != "other":
                    served_clients[(conn.resp_ip, proto_name)].add(conn.orig_ip)

    for (ip, proto_name), clients in served_clients.items():
        report.profiles[ip].served[proto_name] = len(clients)
    for ip, peers in out_peers.items():
        report.profiles[ip].fan_out = len(peers)
    for ip, peers in in_peers.items():
        report.profiles[ip].fan_in = len(peers)
    return report
