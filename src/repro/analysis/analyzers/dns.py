"""DNS analyzer (§5.1.3): request types, return codes, latency, clients.

Consumes UDP port-53 datagrams as they are ingested (no buffering),
matching queries to responses by (flow, transaction id).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from ...proto import dns
from ...util.stats import Cdf
from ..conn import DEFAULT_INTERNAL_NET, ConnRecord
from ..engine import Analyzer
from ...net.packet import DecodedPacket

__all__ = ["DnsReport", "DnsAnalyzer"]

_DNS_PORT = 53


@dataclass
class _Side:
    requests: int = 0
    responses: int = 0
    qtypes: Counter = field(default_factory=Counter)
    rcodes: Counter = field(default_factory=Counter)
    latencies: list[float] = field(default_factory=list)

    def qtype_fraction(self, name: str) -> float:
        total = sum(self.qtypes.values())
        return self.qtypes.get(name, 0) / total if total else 0.0

    def rcode_fraction(self, rcode: int) -> float:
        total = sum(self.rcodes.values())
        return self.rcodes.get(rcode, 0) / total if total else 0.0

    def latency_cdf(self) -> Cdf:
        return Cdf(self.latencies)


@dataclass
class DnsReport:
    """Everything §5.1.3 reports about DNS."""

    internal: _Side = field(default_factory=_Side)
    wan: _Side = field(default_factory=_Side)
    requests_per_client: Counter = field(default_factory=Counter)

    def side(self, where: str) -> _Side:
        return self.internal if where == "ent" else self.wan

    def top_client_share(self, n: int = 2) -> float:
        """Share of all requests issued by the top-n clients."""
        total = sum(self.requests_per_client.values())
        if not total:
            return 0.0
        top = sum(count for _ip, count in self.requests_per_client.most_common(n))
        return top / total


class DnsAnalyzer(Analyzer):
    """Parses DNS datagrams and accumulates a :class:`DnsReport`."""

    name = "dns"

    def __init__(self, internal_net=DEFAULT_INTERNAL_NET) -> None:
        self.internal_net = internal_net
        self.report = DnsReport()
        # (conn id, dns id) -> (query ts, side)
        self._pending: dict[tuple[int, int], tuple[float, str]] = defaultdict(tuple)  # type: ignore[arg-type]

    def on_udp(self, record: ConnRecord, from_orig: bool, pkt: DecodedPacket) -> None:
        if record.resp_port != _DNS_PORT or not pkt.payload:
            return
        try:
            message = dns.DnsMessage.decode(pkt.payload)
        except ValueError:
            return
        where = "wan" if record.involves_wan(self.internal_net) else "ent"
        side = self.report.side(where)
        key = (id(record), message.ident)
        if not message.is_response:
            side.requests += 1
            side.qtypes[message.qtype_name] += 1
            self.report.requests_per_client[record.orig_ip] += 1
            self._pending[key] = (pkt.ts, where)
        else:
            side.responses += 1
            side.rcodes[message.rcode] += 1
            pending = self._pending.pop(key, None)
            if pending:
                query_ts, query_where = pending
                self.report.side(query_where).latencies.append(
                    max(pkt.ts - query_ts, 0.0)
                )

    def result(self) -> DnsReport:
        return self.report
