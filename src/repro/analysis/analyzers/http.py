"""HTTP analyzer (§5.1.1): Tables 6-7, Figures 3-4, and the HTTP findings.

Parses reassembled request/response streams on the web ports, separates
automated clients (scanner / Google bots / iFolder) from user browsing by
their User-Agent signatures, and accumulates everything the paper
reports: request and byte shares per automated class, fan-out per client,
host-pair connection success, conditional-GET shares, content types,
reply sizes, and HTTPS handshake behaviour.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from ...proto import http, tls
from ...util.stats import Cdf
from ..conn import DEFAULT_INTERNAL_NET, ConnRecord
from ..engine import Analyzer
from ..failures import PairOutcomes, host_pair_success
from ..flow import FlowResult

__all__ = ["HttpReport", "HttpAnalyzer", "AUTO_CLASSES"]

_WEB_PORTS = (80, 8080)
_TLS_PORT = 443

AUTO_CLASSES = ("scan1", "google1", "google2", "ifolder")


def _client_class(user_agent: str, client_ip: int, google_ips: list[int]) -> str:
    """Classify a request's client by User-Agent signature."""
    ua = user_agent.lower()
    if "sitescanner" in ua:
        return "scan1"
    if "googlebot" in ua:
        if client_ip not in google_ips:
            google_ips.append(client_ip)
        return "google1" if google_ips.index(client_ip) % 2 == 0 else "google2"
    if "ifolder" in ua:
        return "ifolder"
    return "user"


@dataclass
class _Side:
    """Aggregates for one locality (internal or WAN)."""

    requests: int = 0
    data_bytes: int = 0
    conditional_requests: int = 0
    conditional_bytes: int = 0
    methods: Counter = field(default_factory=Counter)
    statuses: Counter = field(default_factory=Counter)
    content_requests: Counter = field(default_factory=Counter)
    content_bytes: Counter = field(default_factory=Counter)
    reply_sizes: list[int] = field(default_factory=list)
    successful_requests: int = 0

    def content_fraction(self, kind: str, by: str = "requests") -> float:
        counter = self.content_requests if by == "requests" else self.content_bytes
        total = sum(counter.values())
        return counter.get(kind, 0) / total if total else 0.0


@dataclass
class HttpReport:
    """Everything §5.1.1 reports about HTTP."""

    internal: _Side = field(default_factory=_Side)
    wan: _Side = field(default_factory=_Side)
    #: Automated-client shares of *internal* HTTP (Table 6).
    auto_requests: Counter = field(default_factory=Counter)
    auto_bytes: Counter = field(default_factory=Counter)
    internal_requests_total: int = 0
    internal_bytes_total: int = 0
    #: client ip -> set of server ips, by server locality (Figure 3).
    fanout_ent: dict[int, set[int]] = field(default_factory=lambda: defaultdict(set))
    fanout_wan: dict[int, set[int]] = field(default_factory=lambda: defaultdict(set))
    #: connection success by host-pair (filled in result()).
    success_internal: PairOutcomes = field(default_factory=PairOutcomes)
    success_wan: PairOutcomes = field(default_factory=PairOutcomes)
    #: Objects fetched per web session (one persistent connection ≈ one
    #: page): "about half the web sessions consist of one object ...
    #: 10-20% include 10 or more" (§5.1.1).
    session_object_counts: list[int] = field(default_factory=list)
    #: HTTPS: host-pair -> connection count; handshake confirmations.
    https_pair_conns: Counter = field(default_factory=Counter)
    https_handshakes_ok: int = 0
    https_conns: int = 0

    def fanout_cdf(self, where: str) -> Cdf:
        """CDF of distinct servers per client (Figure 3)."""
        table = self.fanout_ent if where == "ent" else self.fanout_wan
        return Cdf(len(servers) for servers in table.values())

    def reply_size_cdf(self, where: str) -> Cdf:
        """CDF of reply body sizes (Figure 4)."""
        side = self.internal if where == "ent" else self.wan
        return Cdf(side.reply_sizes)

    def auto_request_fraction(self, klass: str) -> float:
        if not self.internal_requests_total:
            return 0.0
        return self.auto_requests.get(klass, 0) / self.internal_requests_total

    def auto_bytes_fraction(self, klass: str) -> float:
        if not self.internal_bytes_total:
            return 0.0
        return self.auto_bytes.get(klass, 0) / self.internal_bytes_total

    def conditional_fraction(self, where: str) -> float:
        side = self.internal if where == "ent" else self.wan
        return side.conditional_requests / side.requests if side.requests else 0.0

    def conditional_bytes_fraction(self, where: str) -> float:
        side = self.internal if where == "ent" else self.wan
        return side.conditional_bytes / side.data_bytes if side.data_bytes else 0.0

    def session_objects_cdf(self) -> Cdf:
        """CDF of objects per web session."""
        return Cdf(self.session_object_counts)

    def request_success_fraction(self, where: str) -> float:
        """Fraction of requests answered 2xx or 304 ("over 90%")."""
        side = self.internal if where == "ent" else self.wan
        return side.successful_requests / side.requests if side.requests else 0.0


class HttpAnalyzer(Analyzer):
    """Consumes web-port connections and builds an :class:`HttpReport`."""

    name = "http"

    def __init__(self, internal_net=DEFAULT_INTERNAL_NET) -> None:
        self.internal_net = internal_net
        self.report = HttpReport()
        self._google_ips: list[int] = []
        self._auto_ips: set[int] = set()
        self._conns: list[ConnRecord] = []

    def on_connection(self, result: FlowResult, full_payload: bool) -> None:
        record = result.record
        if record.proto != "tcp":
            return
        if record.resp_port == _TLS_PORT:
            self._on_https(result)
            return
        if record.resp_port not in _WEB_PORTS:
            return
        self._conns.append(record)
        if not full_payload or not result.orig_stream:
            return
        requests = http.parse_requests(result.orig_stream, truncated=result.stream_truncated)
        responses = http.parse_responses(result.resp_stream, truncated=result.stream_truncated)
        internal = not record.involves_wan(self.internal_net)
        side = self.report.internal if internal else self.report.wan
        user_requests = 0
        for index, request in enumerate(requests):
            response = responses[index] if index < len(responses) else None
            if self._account_request(record, request, response, side, internal):
                user_requests += 1
        if user_requests:
            self.report.session_object_counts.append(user_requests)

    def _account_request(
        self,
        record: ConnRecord,
        request: http.HttpRequest,
        response: http.HttpResponse | None,
        side: _Side,
        internal: bool,
    ) -> bool:
        """Account one request; returns True for user (non-automated) ones."""
        report = self.report
        klass = _client_class(request.user_agent, record.orig_ip, self._google_ips)
        body = response.body_size if response is not None else 0
        if internal:
            # Table 6's totals include the automated clients ...
            report.internal_requests_total += 1
            report.internal_bytes_total += body
            if klass != "user":
                report.auto_requests[klass] += 1
                report.auto_bytes[klass] += body
                self._auto_ips.add(record.orig_ip)
        if klass != "user":
            # ... but every analysis after Table 6 excludes them ("we
            # exclude these from the remainder of the analysis").
            return False
        side.requests += 1
        side.methods[request.method] += 1
        side.data_bytes += body
        if request.is_conditional:
            side.conditional_requests += 1
            side.conditional_bytes += body
        if record.orig_ip in self.internal_net:
            table = report.fanout_ent if internal else report.fanout_wan
            table[record.orig_ip].add(record.resp_ip)
        if response is not None:
            side.statuses[response.status] += 1
            if response.status in (200, 206):
                side.content_requests[response.content_category] += 1
                side.content_bytes[response.content_category] += body
                if body:
                    side.reply_sizes.append(body)
            if 200 <= response.status < 300 or response.status == 304:
                side.successful_requests += 1
        return True

    def _on_https(self, result: FlowResult) -> None:
        record = result.record
        report = self.report
        report.https_conns += 1
        report.https_pair_conns[record.host_pair()] += 1
        if result.orig_stream and result.resp_stream:
            client = tls.stream_summary(result.orig_stream)
            server = tls.stream_summary(result.resp_stream)
            if client["handshake_records"] and server["handshake_records"]:
                report.https_handshakes_ok += 1

    def result(self) -> HttpReport:
        # Success rates exclude the automated clients, which the paper
        # removes from all analyses after Table 6.
        excluded = self._auto_ips | set(self.scanners)
        conns = [conn for conn in self._conns if conn.orig_ip not in excluded]
        internal = [conn for conn in conns if not conn.involves_wan(self.internal_net)]
        wan = [conn for conn in conns if conn.involves_wan(self.internal_net)]
        self.report.success_internal = host_pair_success(internal)
        self.report.success_wan = host_pair_success(wan)
        return self.report
