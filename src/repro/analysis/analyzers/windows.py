"""Windows services analyzer (§5.2.1): Tables 9, 10, 11.

Demultiplexes the port mess the paper describes: CIFS carried
interchangeably over 139/tcp (behind a Netbios/SSN session handshake) and
445/tcp; DCE/RPC carried both over CIFS named pipes and over stand-alone
TCP connections whose ports are learned from Endpoint Mapper responses.
Activities from all channels are merged per application function, exactly
the analysis §5.2.1 says required "rich Bro protocol analyzers".
"""

from __future__ import annotations

import uuid
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from ...proto import cifs, dcerpc, netbios
from ..conn import DEFAULT_INTERNAL_NET, ConnRecord
from ..engine import Analyzer
from ..failures import PairOutcomes, host_pair_success
from ..flow import FlowResult

__all__ = ["WindowsReport", "WindowsAnalyzer"]

_STANDALONE_RPC_PORTS = frozenset(range(1025, 1101))


@dataclass
class WindowsReport:
    """Everything §5.2.1 reports about Windows services."""

    # Table 10: CIFS command category -> (request count, data bytes).
    cifs_requests: Counter = field(default_factory=Counter)
    cifs_bytes: Counter = field(default_factory=Counter)
    # Table 11: DCE/RPC function label -> (request count, stub bytes).
    rpc_requests: Counter = field(default_factory=Counter)
    rpc_bytes: Counter = field(default_factory=Counter)
    # Table 9: connection success by host-pairs per channel.
    success: dict[str, PairOutcomes] = field(default_factory=dict)
    # NBSS handshake outcomes per host-pair.
    nbss_pairs: dict[tuple[int, int], bool] = field(default_factory=dict)
    #: Endpoint Mapper-learned stand-alone DCE/RPC endpoints.
    endpoints: set[tuple[int, int]] = field(default_factory=set)

    def cifs_request_fraction(self, category: str) -> float:
        total = sum(self.cifs_requests.values())
        return self.cifs_requests.get(category, 0) / total if total else 0.0

    def cifs_bytes_fraction(self, category: str) -> float:
        total = sum(self.cifs_bytes.values())
        return self.cifs_bytes.get(category, 0) / total if total else 0.0

    def rpc_request_fraction(self, label: str) -> float:
        total = sum(self.rpc_requests.values())
        return self.rpc_requests.get(label, 0) / total if total else 0.0

    def rpc_bytes_fraction(self, label: str) -> float:
        total = sum(self.rpc_bytes.values())
        return self.rpc_bytes.get(label, 0) / total if total else 0.0

    def nbss_handshake_success_rate(self) -> float:
        if not self.nbss_pairs:
            return 0.0
        ok = sum(1 for success in self.nbss_pairs.values() if success)
        return ok / len(self.nbss_pairs)


class WindowsAnalyzer(Analyzer):
    """Builds a :class:`WindowsReport` from Windows-port connections."""

    name = "windows"

    def __init__(self, internal_net=DEFAULT_INTERNAL_NET) -> None:
        self.internal_net = internal_net
        self.report = WindowsReport()
        self._conns_by_channel: dict[str, list[ConnRecord]] = defaultdict(list)
        #: (conn id, pipe/context) -> bound interface, for stand-alone RPC.
        self._bound_iface: dict[int, uuid.UUID | None] = {}

    @property
    def windows_endpoints(self) -> set[tuple[int, int]]:
        """Learned (server, port) endpoints; the engine feeds these into
        connection classification."""
        return self.report.endpoints

    def on_connection(self, result: FlowResult, full_payload: bool) -> None:
        record = result.record
        if record.proto != "tcp":
            return
        internal = not record.involves_wan(self.internal_net)
        if not internal:
            return  # Windows traffic is analyzed for internal traffic only
        port = record.resp_port
        if port == cifs.SMB_PORT_NBSS:
            self._conns_by_channel["Netbios/SSN"].append(record)
            if full_payload:
                self._parse_nbss(result)
        elif port == cifs.SMB_PORT_DIRECT:
            self._conns_by_channel["CIFS"].append(record)
            if full_payload:
                self._parse_smb_frames(result)
        elif port == dcerpc.EPMAPPER_PORT:
            self._conns_by_channel["Endpoint Mapper"].append(record)
            if full_payload:
                self._parse_epm(result)
        elif port in _STANDALONE_RPC_PORTS or (
            (record.resp_ip, port) in self.report.endpoints
        ):
            if full_payload:
                self._parse_standalone_rpc(result)

    # -- channel parsers -----------------------------------------------------

    def _parse_nbss(self, result: FlowResult) -> None:
        """139/tcp: session handshake, then NBSS-framed SMB."""
        frames_c = netbios.parse_nbss_stream(result.orig_stream)
        frames_s = netbios.parse_nbss_stream(result.resp_stream)
        requested = any(
            frame.frame_type == netbios.SSN_SESSION_REQUEST for frame in frames_c
        )
        accepted = any(
            frame.frame_type == netbios.SSN_POSITIVE_RESPONSE for frame in frames_s
        )
        if requested:
            pair = result.record.host_pair()
            self.report.nbss_pairs[pair] = self.report.nbss_pairs.get(pair, False) or accepted
        self._consume_smb(frames_c, frames_s)

    def _parse_smb_frames(self, result: FlowResult) -> None:
        """445/tcp: direct-TCP SMB (same 4-byte framing, type 0)."""
        frames_c = netbios.parse_nbss_stream(result.orig_stream)
        frames_s = netbios.parse_nbss_stream(result.resp_stream)
        self._consume_smb(frames_c, frames_s)

    def _consume_smb(self, frames_c, frames_s) -> None:
        payloads_c = [
            frame.payload
            for frame in frames_c
            if frame.frame_type == netbios.SSN_SESSION_MESSAGE
        ]
        payloads_s = [
            frame.payload
            for frame in frames_s
            if frame.frame_type == netbios.SSN_SESSION_MESSAGE
        ]
        for message in cifs.parse_smb_stream(payloads_c + payloads_s):
            category = cifs.command_category(message)
            size = message.wire_size
            if not message.is_response:
                self.report.cifs_requests[category] += 1
            self.report.cifs_bytes[category] += size
            if message.command == cifs.CMD_TRANS and message.is_rpc_pipe:
                self._consume_pipe_rpc(message)

    def _consume_pipe_rpc(self, message: cifs.SmbMessage) -> None:
        iface = dcerpc.PIPE_INTERFACES.get(message.name.upper())
        for pdu in dcerpc.parse_pdu_stream(message.data):
            self._account_rpc(pdu, iface)

    def _parse_epm(self, result: FlowResult) -> None:
        for pdu in dcerpc.parse_pdu_stream(result.orig_stream):
            pass  # requests carry no endpoint information we need
        for pdu in dcerpc.parse_pdu_stream(result.resp_stream):
            if pdu.ptype == dcerpc.PDU_RESPONSE and pdu.opnum == dcerpc.OP_EPM_MAP:
                if len(pdu.data) >= 2:
                    port = int.from_bytes(pdu.data[:2], "big")
                    if 0 < port < 65536:
                        self.report.endpoints.add((result.record.resp_ip, port))

    def _parse_standalone_rpc(self, result: FlowResult) -> None:
        bound: uuid.UUID | None = None
        for stream in (result.orig_stream, result.resp_stream):
            for pdu in dcerpc.parse_pdu_stream(stream):
                if pdu.ptype in (dcerpc.PDU_BIND, dcerpc.PDU_BIND_ACK):
                    bound = pdu.interface or bound
                else:
                    self._account_rpc(pdu, bound)

    def _account_rpc(self, pdu: dcerpc.DcerpcPdu, iface: uuid.UUID | None) -> None:
        if pdu.ptype not in (dcerpc.PDU_REQUEST, dcerpc.PDU_RESPONSE):
            return
        label = dcerpc.function_label(iface, pdu.opnum)
        if pdu.ptype == dcerpc.PDU_REQUEST:
            self.report.rpc_requests[label] += 1
        self.report.rpc_bytes[label] += len(pdu.data)

    def result(self) -> WindowsReport:
        for channel, conns in self._conns_by_channel.items():
            kept = [conn for conn in conns if conn.orig_ip not in self.scanners]
            self.report.success[channel] = host_pair_success(kept)
        return self.report
