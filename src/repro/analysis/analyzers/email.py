"""Email analyzer (§5.1.2): Table 8, Figures 5-6.

SMTP dialogues are parsed from cleartext streams; IMAP/S, POP/S (and any
other TLS-wrapped email) are analyzed at the transport level, as the
paper does — durations, flow sizes, and handshake confirmation only.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ...proto import smtp
from ...util.stats import Cdf
from ..conn import DEFAULT_INTERNAL_NET, ConnRecord
from ..engine import Analyzer
from ..failures import PairOutcomes, host_pair_success
from ..flow import FlowResult

__all__ = ["EmailReport", "EmailAnalyzer", "EMAIL_PORTS"]

#: service port -> protocol label (the Table 8 rows).
EMAIL_PORTS = {
    25: "SMTP",
    143: "IMAP4",
    993: "SIMAP",
    110: "POP3",
    995: "POP/S",
    389: "LDAP",
}


@dataclass
class _ProtocolStats:
    """Per-protocol, per-locality samples."""

    bytes: int = 0
    conns: int = 0
    durations_ent: list[float] = field(default_factory=list)
    durations_wan: list[float] = field(default_factory=list)
    # Flow size toward the data-heavy direction (to SMTP servers; to
    # IMAP/S clients), split by locality.
    flow_sizes_ent: list[int] = field(default_factory=list)
    flow_sizes_wan: list[int] = field(default_factory=list)


@dataclass
class EmailReport:
    """Everything §5.1.2 reports about email."""

    protocols: dict[str, _ProtocolStats] = field(
        default_factory=lambda: defaultdict(_ProtocolStats)
    )
    smtp_dialogues: int = 0
    smtp_accepted: int = 0
    smtp_rcpt_total: int = 0
    success: dict[str, PairOutcomes] = field(default_factory=dict)

    def protocol_bytes(self, label: str) -> int:
        return self.protocols[label].bytes if label in self.protocols else 0

    def total_bytes(self) -> int:
        return sum(stats.bytes for stats in self.protocols.values())

    def dominant_fraction(self) -> float:
        """Share of email bytes carried by SMTP + IMAP(/S) (paper: >94%)."""
        total = self.total_bytes()
        if not total:
            return 0.0
        dominant = (
            self.protocol_bytes("SMTP")
            + self.protocol_bytes("SIMAP")
            + self.protocol_bytes("IMAP4")
        )
        return dominant / total

    def duration_cdf(self, label: str, where: str) -> Cdf:
        stats = self.protocols[label]
        return Cdf(stats.durations_ent if where == "ent" else stats.durations_wan)

    def flow_size_cdf(self, label: str, where: str) -> Cdf:
        stats = self.protocols[label]
        return Cdf(stats.flow_sizes_ent if where == "ent" else stats.flow_sizes_wan)


class EmailAnalyzer(Analyzer):
    """Consumes email-port connections and builds an :class:`EmailReport`."""

    name = "email"

    def __init__(self, internal_net=DEFAULT_INTERNAL_NET) -> None:
        self.internal_net = internal_net
        self.report = EmailReport()
        self._conns_by_label: dict[str, list[ConnRecord]] = defaultdict(list)

    def on_connection(self, result: FlowResult, full_payload: bool) -> None:
        record = result.record
        if record.proto != "tcp" or record.resp_port not in EMAIL_PORTS:
            return
        label = EMAIL_PORTS[record.resp_port]
        stats = self.report.protocols[label]
        internal = not record.involves_wan(self.internal_net)
        stats.conns += 1
        stats.bytes += record.total_bytes
        self._conns_by_label[label].append(record)
        if record.established and record.total_bytes > 0:
            (stats.durations_ent if internal else stats.durations_wan).append(
                record.duration
            )
            # SMTP's data-heavy direction is toward the server; IMAP's is
            # toward the client (Figure 6).
            if label == "SMTP":
                size = record.orig_bytes
            elif label in ("SIMAP", "IMAP4", "POP3", "POP/S"):
                size = record.resp_bytes
            else:
                size = record.total_bytes
            if size:
                (stats.flow_sizes_ent if internal else stats.flow_sizes_wan).append(size)
        if label == "SMTP" and full_payload and result.orig_stream:
            dialogue = smtp.parse_dialogue(result.orig_stream, result.resp_stream)
            if dialogue.mail_from:
                self.report.smtp_dialogues += 1
                self.report.smtp_rcpt_total += len(dialogue.rcpt_to)
                if dialogue.accepted:
                    self.report.smtp_accepted += 1

    def result(self) -> EmailReport:
        for label, conns in self._conns_by_label.items():
            kept = [conn for conn in conns if conn.orig_ip not in self.scanners]
            for where in ("ent", "wan"):
                subset = [
                    conn
                    for conn in kept
                    if conn.involves_wan(self.internal_net) == (where == "wan")
                ]
                self.report.success[f"{label}/{where}"] = host_pair_success(subset)
        return self.report
