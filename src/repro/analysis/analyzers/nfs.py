"""NFS analyzer (§5.2.2): Tables 12-13, Figures 7-8.

Parses ONC RPC over both UDP (per datagram, as ingested) and TCP
(record-marked streams at connection flush).  Replies do not carry the
procedure number, so calls are matched by transaction id.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from ...proto import nfs
from ...util.stats import Cdf
from ..conn import DEFAULT_INTERNAL_NET, ConnRecord
from ..engine import Analyzer
from ..flow import FlowResult
from ...net.packet import DecodedPacket

__all__ = ["NfsReport", "NfsAnalyzer"]


@dataclass
class NfsReport:
    """Everything §5.2.2 reports about NFS."""

    conns: int = 0
    total_bytes: int = 0
    udp_bytes: int = 0
    tcp_bytes: int = 0
    udp_pairs: set[tuple[int, int]] = field(default_factory=set)
    tcp_pairs: set[tuple[int, int]] = field(default_factory=set)
    # Table 13.
    requests_by_type: Counter = field(default_factory=Counter)
    bytes_by_type: Counter = field(default_factory=Counter)
    # Figure 7a.
    requests_per_pair: Counter = field(default_factory=Counter)
    bytes_per_pair: Counter = field(default_factory=Counter)
    # Figure 8a/b.
    request_sizes: list[int] = field(default_factory=list)
    reply_sizes: list[int] = field(default_factory=list)
    # Request success (84-95%, failures mostly missing-file lookups).
    replies_ok: int = 0
    replies_failed: int = 0
    failed_by_type: Counter = field(default_factory=Counter)

    def request_type_fraction(self, row: str) -> float:
        total = sum(self.requests_by_type.values())
        return self.requests_by_type.get(row, 0) / total if total else 0.0

    def bytes_type_fraction(self, row: str) -> float:
        total = sum(self.bytes_by_type.values())
        return self.bytes_by_type.get(row, 0) / total if total else 0.0

    def request_success_rate(self) -> float:
        total = self.replies_ok + self.replies_failed
        return self.replies_ok / total if total else 0.0

    def requests_per_pair_cdf(self) -> Cdf:
        return Cdf(self.requests_per_pair.values())

    def top_pairs_byte_share(self, n: int = 3) -> float:
        total = sum(self.bytes_per_pair.values())
        if not total:
            return 0.0
        top = sum(count for _pair, count in self.bytes_per_pair.most_common(n))
        return top / total

    def udp_pair_fraction(self) -> float:
        pairs = self.udp_pairs | self.tcp_pairs
        return len(self.udp_pairs) / len(pairs) if pairs else 0.0

    def tcp_pair_fraction(self) -> float:
        pairs = self.udp_pairs | self.tcp_pairs
        return len(self.tcp_pairs) / len(pairs) if pairs else 0.0


class NfsAnalyzer(Analyzer):
    """Builds an :class:`NfsReport` from NFS traffic."""

    name = "nfs"

    def __init__(self, internal_net=DEFAULT_INTERNAL_NET) -> None:
        self.internal_net = internal_net
        self.report = NfsReport()
        #: xid -> (row label, request wire size, host pair)
        self._pending: dict[int, tuple[str, int, tuple[int, int]]] = {}

    # -- UDP path --------------------------------------------------------------

    def on_udp(self, record: ConnRecord, from_orig: bool, pkt: DecodedPacket) -> None:
        if record.resp_port != nfs.NFS_PORT or not pkt.payload:
            return
        self.report.udp_bytes += pkt.payload_len
        self.report.udp_pairs.add(record.host_pair())
        # The captured payload may be snaplen-truncated (8 KB datagrams
        # under snaplen 1500); sizes come from the IP total length while
        # parsing uses whatever bytes survived.
        if from_orig:
            self._consume_call(pkt.payload, record.host_pair(), pkt.payload_len)
        else:
            self._consume_reply(pkt.payload, record.host_pair(), pkt.payload_len)

    # -- TCP path --------------------------------------------------------------

    def on_connection(self, result: FlowResult, full_payload: bool) -> None:
        record = result.record
        if record.proto == "udp" and record.resp_port == nfs.NFS_PORT:
            self.report.conns += 1
            self.report.total_bytes += record.total_bytes
            return
        if record.proto != "tcp" or record.resp_port != nfs.NFS_PORT:
            return
        self.report.conns += 1
        self.report.total_bytes += record.total_bytes
        self.report.tcp_bytes += record.total_bytes
        self.report.tcp_pairs.add(record.host_pair())
        if not full_payload:
            return
        for payload in nfs.parse_tcp_records(result.orig_stream):
            self._consume_call(payload, record.host_pair(), len(payload))
        for payload in nfs.parse_tcp_records(result.resp_stream):
            self._consume_reply(payload, record.host_pair(), len(payload))

    # -- shared ------------------------------------------------------------------

    def _consume_call(self, payload: bytes, pair: tuple[int, int], size: int) -> None:
        try:
            call = nfs.RpcCall.decode(payload)
        except ValueError:
            return
        row = nfs.proc_table_row(call.proc)
        report = self.report
        report.requests_by_type[row] += 1
        report.bytes_by_type[row] += size
        report.requests_per_pair[pair] += 1
        report.bytes_per_pair[pair] += size
        report.request_sizes.append(size)
        self._pending[call.xid] = (row, size, pair)

    def _consume_reply(self, payload: bytes, pair: tuple[int, int], size: int) -> None:
        try:
            reply = nfs.RpcReply.decode(payload)
        except ValueError:
            return
        report = self.report
        report.reply_sizes.append(size)
        pending = self._pending.pop(reply.xid, None)
        row = pending[0] if pending else "Other"
        report.bytes_by_type[row] += size
        report.bytes_per_pair[pair] += size
        if reply.status == nfs.NFS3_OK:
            report.replies_ok += 1
        else:
            report.replies_failed += 1
            report.failed_by_type[row] += 1

    def result(self) -> NfsReport:
        return self.report
