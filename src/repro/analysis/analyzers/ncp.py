"""NCP analyzer (§5.2.2): Tables 12/14, Figures 7-8, keep-alive finding.

Parses NCP-over-IP framed streams on 524/tcp.  Sizes follow the paper's
convention of excluding transport framing: a request's size is its full
NCP message (the 14-byte read-request mode), a reply's size is its
completion/status bytes plus returned data (the 2/10/260-byte modes of
Figure 8d).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ...proto import ncp
from ...util.stats import Cdf
from ..conn import DEFAULT_INTERNAL_NET, ConnRecord
from ..engine import Analyzer
from ..failures import PairOutcomes, host_pair_success
from ..flow import FlowResult

__all__ = ["NcpReport", "NcpAnalyzer"]


@dataclass
class NcpReport:
    """Everything §5.2.2 reports about NCP."""

    conns: int = 0
    total_bytes: int = 0
    keepalive_only_conns: int = 0
    established_conns: int = 0
    # Table 14.
    requests_by_type: Counter = field(default_factory=Counter)
    bytes_by_type: Counter = field(default_factory=Counter)
    # Figure 7b / heavy hitters.
    requests_per_pair: Counter = field(default_factory=Counter)
    bytes_per_pair: Counter = field(default_factory=Counter)
    # Figure 8c/d.
    request_sizes: list[int] = field(default_factory=list)
    reply_sizes: list[int] = field(default_factory=list)
    # Request success (~95%, failures dominated by File/Dir Info).
    replies_ok: int = 0
    replies_failed: int = 0
    failed_by_type: Counter = field(default_factory=Counter)
    success: PairOutcomes = field(default_factory=PairOutcomes)

    def request_type_fraction(self, row: str) -> float:
        total = sum(self.requests_by_type.values())
        return self.requests_by_type.get(row, 0) / total if total else 0.0

    def bytes_type_fraction(self, row: str) -> float:
        total = sum(self.bytes_by_type.values())
        return self.bytes_by_type.get(row, 0) / total if total else 0.0

    def keepalive_only_fraction(self) -> float:
        if not self.established_conns:
            return 0.0
        return self.keepalive_only_conns / self.established_conns

    def request_success_rate(self) -> float:
        total = self.replies_ok + self.replies_failed
        return self.replies_ok / total if total else 0.0

    def requests_per_pair_cdf(self) -> Cdf:
        return Cdf(self.requests_per_pair.values())

    def top_pairs_byte_share(self, n: int = 3) -> float:
        total = sum(self.bytes_per_pair.values())
        if not total:
            return 0.0
        top = sum(count for _pair, count in self.bytes_per_pair.most_common(n))
        return top / total


class NcpAnalyzer(Analyzer):
    """Builds an :class:`NcpReport` from 524/tcp connections."""

    name = "ncp"

    def __init__(self, internal_net=DEFAULT_INTERNAL_NET) -> None:
        self.internal_net = internal_net
        self.report = NcpReport()
        self._conns: list[ConnRecord] = []

    def on_connection(self, result: FlowResult, full_payload: bool) -> None:
        record = result.record
        if record.proto != "tcp" or record.resp_port != ncp.NCP_PORT:
            return
        report = self.report
        report.conns += 1
        report.total_bytes += record.total_bytes
        self._conns.append(record)
        if not record.established:
            return
        report.established_conns += 1
        requests_seen = 0
        if full_payload:
            requests_seen = self._parse_streams(result)
        else:
            # Header-only capture: infer activity from payload volume
            # beyond what keep-alive probes account for.
            requests_seen = 1 if record.total_bytes > 2 * (record.keepalive_retransmits + 1) else 0
        if requests_seen == 0 and record.keepalive_retransmits > 0:
            report.keepalive_only_conns += 1

    def _parse_streams(self, result: FlowResult) -> int:
        report = self.report
        pair = result.record.host_pair()
        rows_in_order: list[str] = []
        for payload in ncp.parse_ncp_ip_stream(result.orig_stream):
            try:
                request = ncp.NcpRequest.decode(payload)
            except ValueError:
                continue
            row = ncp.function_table_row(request.function)
            rows_in_order.append(row)
            report.requests_by_type[row] += 1
            report.bytes_by_type[row] += len(payload)
            report.requests_per_pair[pair] += 1
            report.bytes_per_pair[pair] += len(payload)
            report.request_sizes.append(len(payload))
        # Replies come back in request order on a connection; the 8-bit
        # sequence number wraps every 256 requests, so positional pairing
        # is the reliable match.
        for index, payload in enumerate(ncp.parse_ncp_ip_stream(result.resp_stream)):
            try:
                reply = ncp.NcpReply.decode(payload)
            except ValueError:
                continue
            # Reply size: completion code + status + data (transport and
            # reply-header framing excluded), the Figure 8d convention.
            size = len(reply.data) if reply.data else 2
            report.reply_sizes.append(max(size, 2))
            row = rows_in_order[index] if index < len(rows_in_order) else "Other"
            report.bytes_by_type[row] += len(reply.data)
            report.bytes_per_pair[pair] += len(reply.data)
            if reply.succeeded:
                report.replies_ok += 1
            else:
                report.replies_failed += 1
                report.failed_by_type[row] += 1
        return len(rows_in_order)

    def result(self) -> NcpReport:
        kept = [conn for conn in self._conns if conn.orig_ip not in self.scanners]
        self.report.success = host_pair_success(kept)
        return self.report
