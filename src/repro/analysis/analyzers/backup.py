"""Backup analyzer (§5.2.3, Table 15).

Counts connections and bytes per backup product and characterizes
directionality: Veritas data connections are one-way client→server,
while Dantz connections can carry large volumes in *both* directions —
including within a single connection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...proto import backupproto as bp
from ..conn import DEFAULT_INTERNAL_NET
from ..engine import Analyzer
from ..flow import FlowResult

__all__ = ["BackupReport", "BackupAnalyzer"]

_PRODUCT_PORTS = {
    bp.VERITAS_CTRL_PORT: "VERITAS-BACKUP-CTRL",
    bp.VERITAS_DATA_PORT: "VERITAS-BACKUP-DATA",
    bp.DANTZ_PORT: "DANTZ",
    bp.CONNECTED_PORT: "CONNECTED-BACKUP",
}


@dataclass
class _Product:
    conns: int = 0
    bytes: int = 0
    c2s_bytes: int = 0
    s2c_bytes: int = 0
    bidirectional_conns: int = 0  # real volume both ways in one connection


@dataclass
class BackupReport:
    """Table 15 plus directionality findings."""

    products: dict[str, _Product] = field(
        default_factory=lambda: {name: _Product() for name in _PRODUCT_PORTS.values()}
    )

    def conns(self, product: str) -> int:
        return self.products[product].conns

    def bytes(self, product: str) -> int:
        return self.products[product].bytes

    def reverse_fraction(self, product: str) -> float:
        """Server→client share of the product's bytes."""
        stats = self.products[product]
        return stats.s2c_bytes / stats.bytes if stats.bytes else 0.0

    def bidirectional_fraction(self, product: str) -> float:
        stats = self.products[product]
        return stats.bidirectional_conns / stats.conns if stats.conns else 0.0


class BackupAnalyzer(Analyzer):
    """Builds a :class:`BackupReport` from backup-port connections."""

    name = "backup"

    def __init__(self, internal_net=DEFAULT_INTERNAL_NET) -> None:
        self.internal_net = internal_net
        self.report = BackupReport()

    def on_connection(self, result: FlowResult, full_payload: bool) -> None:
        record = result.record
        if record.proto != "tcp" or record.resp_port not in _PRODUCT_PORTS:
            return
        product = _PRODUCT_PORTS[record.resp_port]
        stats = self.report.products[product]
        stats.conns += 1
        stats.bytes += record.total_bytes
        stats.c2s_bytes += record.orig_bytes
        stats.s2c_bytes += record.resp_bytes
        # "Sometimes with tens of MB in both directions" — scaled down,
        # the threshold is real volume (not just acks/control) both ways.
        if min(record.orig_bytes, record.resp_bytes) > 50_000:
            stats.bidirectional_conns += 1

    def result(self) -> BackupReport:
        return self.report
