"""Per-application payload analyzers."""

from .backup import BackupAnalyzer, BackupReport
from .dns import DnsAnalyzer, DnsReport
from .email import EmailAnalyzer, EmailReport
from .http import HttpAnalyzer, HttpReport
from .ncp import NcpAnalyzer, NcpReport
from .netbios import NetbiosAnalyzer, NetbiosReport
from .nfs import NfsAnalyzer, NfsReport
from .windows import WindowsAnalyzer, WindowsReport

__all__ = [
    "BackupAnalyzer",
    "BackupReport",
    "DnsAnalyzer",
    "DnsReport",
    "EmailAnalyzer",
    "EmailReport",
    "HttpAnalyzer",
    "HttpReport",
    "NcpAnalyzer",
    "NcpReport",
    "NetbiosAnalyzer",
    "NetbiosReport",
    "NfsAnalyzer",
    "NfsReport",
    "WindowsAnalyzer",
    "WindowsReport",
]

DEFAULT_ANALYZERS = (
    HttpAnalyzer,
    EmailAnalyzer,
    DnsAnalyzer,
    NetbiosAnalyzer,
    WindowsAnalyzer,
    NfsAnalyzer,
    NcpAnalyzer,
    BackupAnalyzer,
)
