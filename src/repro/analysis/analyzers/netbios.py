"""Netbios Name Service analyzer (§5.1.3).

Accumulates request-type and name-type mixes, the per-*distinct-query*
NXDOMAIN rate (the paper's stale-name finding is about distinct
(name) operations, not raw packet counts), and the client request
spread (top ten clients < 40%).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from ...proto import netbios
from ...proto.dns import RCODE_NXDOMAIN
from ..conn import DEFAULT_INTERNAL_NET, ConnRecord
from ..engine import Analyzer
from ...net.packet import DecodedPacket

__all__ = ["NetbiosReport", "NetbiosAnalyzer"]

_NBNS_PORT = 137

_OPCODE_LABELS = {
    netbios.NB_OPCODE_QUERY: "query",
    netbios.NB_OPCODE_REFRESH: "refresh",
    9: "refresh",  # alternate refresh opcode
    netbios.NB_OPCODE_REGISTRATION: "register",
    netbios.NB_OPCODE_RELEASE: "release",
}


@dataclass
class NetbiosReport:
    """Everything §5.1.3 reports about Netbios/NS."""

    requests: int = 0
    request_types: Counter = field(default_factory=Counter)
    name_types: Counter = field(default_factory=Counter)
    requests_per_client: Counter = field(default_factory=Counter)
    #: distinct query -> did it ever fail / succeed.
    query_outcomes: dict[tuple[int, str], bool] = field(default_factory=dict)

    def request_type_fraction(self, label: str) -> float:
        total = sum(self.request_types.values())
        return self.request_types.get(label, 0) / total if total else 0.0

    def name_type_fraction(self, label: str) -> float:
        total = sum(self.name_types.values())
        return self.name_types.get(label, 0) / total if total else 0.0

    def distinct_query_failure_rate(self) -> float:
        """Fraction of distinct (client, name) queries yielding NXDOMAIN."""
        if not self.query_outcomes:
            return 0.0
        failed = sum(1 for failed in self.query_outcomes.values() if failed)
        return failed / len(self.query_outcomes)

    def top_clients_share(self, n: int = 10) -> float:
        total = sum(self.requests_per_client.values())
        if not total:
            return 0.0
        top = sum(count for _ip, count in self.requests_per_client.most_common(n))
        return top / total


class NetbiosAnalyzer(Analyzer):
    """Parses Netbios/NS datagrams into a :class:`NetbiosReport`."""

    name = "netbios"

    def __init__(self, internal_net=DEFAULT_INTERNAL_NET) -> None:
        self.internal_net = internal_net
        self.report = NetbiosReport()

    def on_udp(self, record: ConnRecord, from_orig: bool, pkt: DecodedPacket) -> None:
        if _NBNS_PORT not in (record.resp_port, record.orig_port) or not pkt.payload:
            return
        try:
            packet = netbios.NbnsPacket.decode(pkt.payload)
        except ValueError:
            return
        report = self.report
        if not packet.is_response:
            report.requests += 1
            label = _OPCODE_LABELS.get(packet.opcode, "other")
            report.request_types[label] += 1
            if label == "query":
                report.name_types[packet.name_category] += 1
            client = pkt.src_ip if pkt.src_ip is not None else record.orig_ip
            report.requests_per_client[client] += 1
        elif packet.opcode == netbios.NB_OPCODE_QUERY:
            client = pkt.dst_ip if pkt.dst_ip is not None else record.orig_ip
            key = (client, packet.name)
            failed = packet.rcode == RCODE_NXDOMAIN
            # Operations between a host-pair nearly always behave the
            # same way (§5); latest observation wins.
            report.query_outcomes[key] = failed

    def result(self) -> NetbiosReport:
        return self.report
