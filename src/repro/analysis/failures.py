"""Host-pair success/failure accounting (§5's methodology).

The paper counts *distinct operations between distinct host-pairs* rather
than raw connection attempts, because automated clients retry endlessly
after rejection (NCP being the worst offender).  Given the short traces,
a specific operation between a host-pair "either nearly always succeeds,
or nearly always fails", so the pair is scored by majority outcome.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable

from .conn import ConnRecord, ConnState

__all__ = ["PairOutcomes", "host_pair_success", "raw_connection_success"]


@dataclass
class PairOutcomes:
    """Success/rejected/unanswered counts by distinct host-pair."""

    total: int = 0
    successful: int = 0
    rejected: int = 0
    unanswered: int = 0

    @property
    def success_rate(self) -> float:
        return self.successful / self.total if self.total else 0.0

    @property
    def rejected_rate(self) -> float:
        return self.rejected / self.total if self.total else 0.0

    @property
    def unanswered_rate(self) -> float:
        return self.unanswered / self.total if self.total else 0.0


def host_pair_success(
    conns: Iterable[ConnRecord],
    select: Callable[[ConnRecord], bool] | None = None,
) -> PairOutcomes:
    """Score host-pairs by majority connection outcome.

    ``select`` restricts which connections participate (e.g. only
    CIFS-port connections for the Table 9 rows).
    """
    by_pair: dict[tuple[int, int], list[ConnRecord]] = defaultdict(list)
    for conn in conns:
        if select is not None and not select(conn):
            continue
        by_pair[conn.host_pair()].append(conn)
    outcome = PairOutcomes()
    for pair_conns in by_pair.values():
        outcome.total += 1
        established = sum(1 for conn in pair_conns if conn.established)
        rejected = sum(1 for conn in pair_conns if conn.state is ConnState.REJ)
        unanswered = sum(1 for conn in pair_conns if conn.state is ConnState.S0)
        if established >= max(rejected, unanswered):
            outcome.successful += 1
        elif rejected >= unanswered:
            outcome.rejected += 1
        else:
            outcome.unanswered += 1
    return outcome


def raw_connection_success(
    conns: Iterable[ConnRecord],
    select: Callable[[ConnRecord], bool] | None = None,
) -> PairOutcomes:
    """The naive per-connection metric the paper argues against.

    Kept for the ablation comparing it with :func:`host_pair_success`
    (retry loops drag raw success rates far below pair-based ones).
    """
    outcome = PairOutcomes()
    for conn in conns:
        if select is not None and not select(conn):
            continue
        outcome.total += 1
        if conn.established:
            outcome.successful += 1
        elif conn.state is ConnState.REJ:
            outcome.rejected += 1
        elif conn.state is ConnState.S0:
            outcome.unanswered += 1
    return outcome
