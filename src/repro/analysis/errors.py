"""Error policies, taxonomy, and budgets for resilient trace ingestion.

Real measurement pipelines meet real measurement pathology: the paper's
traces (§2) included header-only snaplen-68 captures, capture drops the
kernel never reported, and partially written files.  This module gives
the ingestion layer one vocabulary for those defects and three ways to
react to them:

* ``strict`` — raise a typed :class:`IngestionError` on the first defect
  (the historical behavior, and still the default).
* ``tolerant`` — record the defect, salvage what can be salvaged, and
  quarantine a trace only when its :class:`ErrorBudget` is exhausted.
* ``skip-trace`` — quarantine a trace on its first defect but keep the
  rest of the study running.

The taxonomy (:class:`ErrorKind`) is deliberately small and closed: every
defect the reader, decoder, or engine can meet maps onto one of ten
kinds, so error accounting stays comparable across datasets and runs.
(``worker_error`` belongs to the parallel execution runtime: a work unit
that crashed, raised, or timed out in a worker process after exhausting
its retries — see :mod:`repro.runtime`.  ``flow_overflow`` and
``early_eviction`` are the streaming engine's graceful-degradation
notes — a bounded flow table shedding state under pressure rather than
raising (see :mod:`repro.stream`); they are counted in the data-quality
section but never consume a trace's :class:`ErrorBudget`.)
Nothing in this module imports the rest of the analysis package; the
pcap reader imports it lazily to avoid a package cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "ErrorKind",
    "ErrorPolicy",
    "IngestionError",
    "TraceQuarantined",
    "TraceError",
    "ErrorBudget",
    "TraceErrorLog",
    "CircuitBreaker",
    "AnalyzerFailure",
]


class ErrorKind(str, Enum):
    """The closed taxonomy of ingestion defects."""

    #: The file's magic number is not a pcap magic (either byte order).
    BAD_MAGIC = "bad_magic"
    #: The global or a per-record header was cut short.
    TRUNCATED_HEADER = "truncated_header"
    #: A record body holds fewer bytes than its header claims (or the
    #: claim itself is beyond any sane capture length).
    TRUNCATED_BODY = "truncated_body"
    #: A captured frame too short to carry an Ethernet header.
    RUNT_FRAME = "runt_frame"
    #: Packet decoding or flow ingestion failed on a captured record.
    DECODE_ERROR = "decode_error"
    #: An application analyzer hook raised.
    ANALYZER_ERROR = "analyzer_error"
    #: A runtime work unit crashed, raised, or timed out in a worker
    #: process and exhausted its retries (see :mod:`repro.runtime`).
    WORKER_ERROR = "worker_error"
    #: The streaming engine's bounded flow table hit ``max_flows`` and
    #: had to evict a live flow to admit a new one (see :mod:`repro.stream`).
    FLOW_OVERFLOW = "flow_overflow"
    #: A live flow was emitted before its natural end (idle/hard timeout
    #: or table overflow) and later saw more packets, splitting what the
    #: batch engine would have reported as one connection.
    EARLY_EVICTION = "early_eviction"
    #: A storage-plane I/O operation failed (ENOSPC, EIO, a lost
    #: rename) while publishing shards, checkpoints, or telemetry; the
    #: tolerant policies degrade to the cold path and account the loss
    #: here instead of aborting the run (see :mod:`repro.chaos`).
    IO_ERROR = "io_error"


class ErrorPolicy(str, Enum):
    """How the ingestion layer reacts to a recorded defect."""

    STRICT = "strict"
    TOLERANT = "tolerant"
    SKIP_TRACE = "skip-trace"

    @classmethod
    def coerce(cls, value: "ErrorPolicy | str") -> "ErrorPolicy":
        """Accept an :class:`ErrorPolicy` or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(policy.value for policy in cls)
            raise ValueError(
                f"unknown error policy {value!r} (expected one of: {names})"
            ) from None


class IngestionError(ValueError):
    """A typed, located ingestion defect (raised under ``strict``).

    Subclasses :class:`ValueError` so callers written against the
    strict-fail reader keep working unchanged.
    """

    def __init__(
        self,
        kind: ErrorKind,
        path: str = "<stream>",
        offset: int | None = None,
        detail: str = "",
    ) -> None:
        self.kind = kind
        self.path = path
        self.offset = offset
        self.detail = detail
        where = path if offset is None else f"{path} at offset {offset}"
        message = f"{kind.value} in {where}"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class TraceQuarantined(Exception):
    """Internal signal: abandon the current trace but keep the study."""

    def __init__(self, path: str, reason: str) -> None:
        self.path = path
        self.reason = reason
        super().__init__(f"trace {path} quarantined: {reason}")


@dataclass(frozen=True)
class TraceError:
    """One recorded defect (a sample kept for the data-quality report)."""

    kind: ErrorKind
    path: str
    offset: int | None
    detail: str


@dataclass(frozen=True)
class ErrorBudget:
    """How much damage one trace may accumulate before quarantine.

    A trace is quarantined when it exceeds ``max_errors`` defects
    outright, or — once at least ``min_records`` records were ingested
    cleanly — when defects make up more than ``max_fraction`` of all
    records seen.  The fraction test waits for ``min_records`` so a bad
    first packet cannot quarantine an otherwise healthy trace.
    """

    max_errors: int = 1000
    max_fraction: float = 0.25
    min_records: int = 50

    def exceeded(self, errors: int, records_ok: int) -> bool:
        """True when (errors, clean records) breaks this budget."""
        if errors > self.max_errors:
            return True
        if records_ok >= self.min_records:
            return errors / (errors + records_ok) > self.max_fraction
        return False


class TraceErrorLog:
    """Per-trace defect accumulator enforcing one policy and budget.

    The reader and the engine both report into the same log, so the
    budget covers structural file damage and per-packet decode failures
    together.  ``record`` raises :class:`IngestionError` under
    ``strict`` and :class:`TraceQuarantined` when the policy or budget
    says the trace is no longer worth reading.
    """

    #: How many individual defects are kept verbatim per trace.
    SAMPLE_CAP = 20

    def __init__(
        self,
        policy: ErrorPolicy | str = ErrorPolicy.STRICT,
        budget: ErrorBudget | None = None,
        path: str = "<stream>",
    ) -> None:
        self.policy = ErrorPolicy.coerce(policy)
        self.budget = budget if budget is not None else ErrorBudget()
        self.path = path
        self.counts: dict[str, int] = {}
        self.samples: list[TraceError] = []
        #: Records ingested without defect (the budget's denominator);
        #: bumped by whichever layer drives ingestion.
        self.records_ok = 0
        self.quarantined = False

    @property
    def total(self) -> int:
        """Total defects recorded so far."""
        return sum(self.counts.values())

    def record(
        self,
        kind: ErrorKind,
        offset: int | None = None,
        detail: str = "",
        fatal: bool = False,
    ) -> None:
        """Account one defect; may raise depending on the policy.

        ``fatal`` marks defects after which nothing in the trace can be
        trusted (an unreadable global header, say): they quarantine even
        under ``tolerant``.
        """
        if self.policy is ErrorPolicy.STRICT:
            raise IngestionError(kind, self.path, offset, detail)
        self.counts[kind.value] = self.counts.get(kind.value, 0) + 1
        if len(self.samples) < self.SAMPLE_CAP:
            self.samples.append(TraceError(kind, self.path, offset, detail))
        if self.policy is ErrorPolicy.SKIP_TRACE:
            self.quarantined = True
            raise TraceQuarantined(self.path, f"{kind.value} under skip-trace policy")
        if fatal:
            self.quarantined = True
            raise TraceQuarantined(self.path, f"unreadable trace: {kind.value}")
        if self.budget.exceeded(self.total, self.records_ok):
            self.quarantined = True
            raise TraceQuarantined(
                self.path,
                f"error budget exceeded ({self.total} defects, "
                f"{self.records_ok} clean records)",
            )


class CircuitBreaker:
    """Failure counter that disables a misbehaving analyzer.

    One breaker guards one analyzer: after ``max_failures`` exceptions
    from any of its hooks the breaker opens and the engine stops calling
    the analyzer, so a crashing analyzer cannot abort the study or slow
    every remaining packet down with raise/catch churn.
    """

    def __init__(self, name: str, max_failures: int = 3) -> None:
        self.name = name
        self.max_failures = max_failures
        self.failures = 0
        self.first_error = ""
        self.last_error = ""
        self.open = False

    def record_failure(self, hook: str, exc: BaseException) -> bool:
        """Count one hook failure; returns True once the breaker is open."""
        self.failures += 1
        description = f"{hook}: {exc!r}"
        if not self.first_error:
            self.first_error = description
        self.last_error = description
        if self.failures >= self.max_failures:
            self.open = True
        return self.open


@dataclass(frozen=True)
class AnalyzerFailure:
    """Stand-in stored in ``analyzer_results`` for a failed analyzer.

    Downstream report builders can test for this type to render a
    placeholder instead of crashing on a missing report object.
    """

    name: str
    failures: int
    first_error: str
    disabled: bool = True
    errors: tuple[TraceError, ...] = field(default=())

    def __bool__(self) -> bool:  # a failed analyzer is "no result"
        return False
