"""Origins and locality analysis (§4, Figure 2).

Computes the flow-origin breakdown (enterprise↔enterprise dominates at
71-79%) and per-host fan-in/fan-out, split by whether the peer set is
internal or across the WAN.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from ..util.addr import Subnet
from ..util.stats import Cdf
from .conn import DEFAULT_INTERNAL_NET, ConnRecord, Locality

__all__ = ["OriginBreakdown", "FanStats", "origin_breakdown", "fan_stats"]


@dataclass
class OriginBreakdown:
    """Fractions of flows by endpoint origin (§4)."""

    counts: dict[Locality, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, where: Locality) -> float:
        total = self.total
        return self.counts.get(where, 0) / total if total else 0.0


def origin_breakdown(
    conns: Iterable[ConnRecord], internal_net: Subnet = DEFAULT_INTERNAL_NET
) -> OriginBreakdown:
    """Count flows by locality class."""
    breakdown = OriginBreakdown(counts={where: 0 for where in Locality})
    for conn in conns:
        breakdown.counts[conn.locality(internal_net)] += 1
    return breakdown


@dataclass
class FanStats:
    """Fan-in/fan-out distributions for monitored (internal) hosts.

    fan-out: distinct hosts a monitored host originates conversations
    to; fan-in: distinct hosts originating conversations to it — each
    split into enterprise peers and WAN peers (Figure 2).
    """

    fan_in_ent: Cdf
    fan_in_wan: Cdf
    fan_out_ent: Cdf
    fan_out_wan: Cdf
    only_internal_fan_in: float = 0.0
    only_internal_fan_out: float = 0.0


def fan_stats(
    conns: Iterable[ConnRecord], internal_net: Subnet = DEFAULT_INTERNAL_NET
) -> FanStats:
    """Compute fan-in/fan-out per internal host.

    Hosts with zero peers in a class are excluded from that class's CDF
    (matching the paper's per-curve sample counts), but the "only
    internal peers" fractions are computed over all hosts with any peers.
    """
    out_ent: dict[int, set[int]] = defaultdict(set)
    out_wan: dict[int, set[int]] = defaultdict(set)
    in_ent: dict[int, set[int]] = defaultdict(set)
    in_wan: dict[int, set[int]] = defaultdict(set)
    for conn in conns:
        where = conn.locality(internal_net)
        if where is Locality.ENT_ENT:
            out_ent[conn.orig_ip].add(conn.resp_ip)
            in_ent[conn.resp_ip].add(conn.orig_ip)
        elif where is Locality.ENT_WAN:
            out_wan[conn.orig_ip].add(conn.resp_ip)
        elif where is Locality.WAN_ENT:
            in_wan[conn.resp_ip].add(conn.orig_ip)
    hosts_with_out = set(out_ent) | set(out_wan)
    hosts_with_in = set(in_ent) | set(in_wan)
    only_in = sum(
        1 for host in hosts_with_in if host in in_ent and host not in in_wan
    )
    only_out = sum(
        1 for host in hosts_with_out if host in out_ent and host not in out_wan
    )
    return FanStats(
        fan_in_ent=Cdf(len(peers) for peers in in_ent.values()),
        fan_in_wan=Cdf(len(peers) for peers in in_wan.values()),
        fan_out_ent=Cdf(len(peers) for peers in out_ent.values()),
        fan_out_wan=Cdf(len(peers) for peers in out_wan.values()),
        only_internal_fan_in=only_in / len(hosts_with_in) if hosts_with_in else 0.0,
        only_internal_fan_out=only_out / len(hosts_with_out) if hosts_with_out else 0.0,
    )
