"""The service's response cache: LRU over immutable content addresses.

The store is content-addressed (:mod:`repro.store`): a manifest key is
the SHA-256 of everything that determines an analysis, and shard objects
are named by the SHA-256 of their own bytes.  Nothing behind a key ever
changes — a "modified" analysis is a *new* key.  That makes response
caching trivial to get right:

* A cache entry is keyed on the request (path + canonical query string)
  **plus the sorted set of manifest keys currently in the store**.  The
  manifest-key set is one cheap ``readdir``; no shard is opened to
  decide hit or miss.
* A hit replays the stored response bytes verbatim — the store is never
  touched, which is where the ≥5x cached-vs-cold win comes from.
* Invalidation is free: publishing a new analysis adds a manifest key,
  which changes the state token, which misses the cache naturally.  No
  TTLs, no dirty bits, no coherence protocol.

Entries are bounded by an LRU (``max_entries``); eviction only ever
costs a recompute.  The cache is shared by every handler thread of the
:class:`~repro.service.app.ReproService`, so all operations take the
internal lock.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

__all__ = ["CachedResponse", "ResponseCache", "store_state_token"]

#: Default LRU capacity (responses, not bytes; a query response at the
#: scales the service runs at is a few KB to a few hundred KB).
DEFAULT_MAX_ENTRIES = 256


def store_state_token(store_root: str | Path) -> str:
    """Hash of the store's current manifest-key set.

    Manifest keys are immutable content addresses, so this token is a
    complete summary of "what could a store query possibly see": two
    moments with the same token serve byte-identical query responses.
    One sorted ``readdir`` — no file is opened.
    """
    manifests = Path(store_root) / "manifests"
    digest = hashlib.sha256()
    if manifests.is_dir():
        for name in sorted(path.name for path in manifests.glob("*.json")):
            digest.update(name.encode("utf-8"))
            digest.update(b"\0")
    return digest.hexdigest()


@dataclass(frozen=True)
class CachedResponse:
    """One stored response, replayed verbatim on a hit."""

    status: int
    content_type: str
    body: bytes


class ResponseCache:
    """A thread-safe LRU of rendered responses.

    Keys are built by :meth:`key_for` from the request identity and the
    store state token; values are :class:`CachedResponse`.  ``hits`` /
    ``misses`` feed the ``/health`` endpoint and the benchmarks.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.max_entries = max(1, int(max_entries))
        self._entries: OrderedDict[str, CachedResponse] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key_for(path: str, query: str, state_token: str) -> str:
        """The cache key for one GET: request identity × store state."""
        raw = f"{path}?{query}\0{state_token}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()

    def get(self, key: str) -> CachedResponse | None:
        """Look one key up, refreshing its LRU position on a hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, response: CachedResponse) -> None:
        """Store one response, evicting the least recently used past
        capacity.  Replacing an existing key is harmless (same content
        address ⇒ same bytes)."""
        with self._lock:
            self._entries[key] = response
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Counters for ``/health`` and the bench report."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hits / total, 6) if total else 0.0,
            }
