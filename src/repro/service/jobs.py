"""Background study jobs: bounded queue, worker threads, backpressure.

``POST /studies`` does not run a study inside the request handler — a
study takes seconds to minutes, and an HTTP client deserves an answer in
milliseconds.  Instead the handler submits a :class:`StudyJob` to the
:class:`JobManager`, gets a run id back immediately, and the client
polls ``GET /jobs/<id>`` until the job reports ``done`` (or ``failed``).

Execution rides the PR-3 runtime: the default runner calls
:func:`repro.core.study.run_study` with the submitted worker count, so a
job's datasets fan out across the process-pool scheduler with its retry
and watchdog machinery, and the finished analyses land in the service's
ConnStore — where the query endpoints (and the response cache's state
token) pick them up on the next request.

Backpressure is explicit and bounded: the pending queue holds at most
``queue_limit`` jobs.  A submit against a full queue returns ``None``
and the handler answers **429 Too Many Requests** with a
``Retry-After`` estimate — the service never queues unboundedly and
never hangs a client waiting for capacity.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from typing import Callable

from ..analysis.errors import ErrorPolicy
from ..gen.datasets import DATASET_ORDER

__all__ = ["StudyJob", "JobManager", "validate_study_request"]

#: Submitted-parameter defaults: a deliberately small study, so a bare
#: ``POST /studies`` probes the pipeline rather than occupying a worker
#: for minutes.
_DEFAULTS = {
    "seed": 0,
    "scale": 0.004,
    "datasets": ("D0",),
    "max_windows": 2,
    "jobs": 2,
    "error_policy": ErrorPolicy.TOLERANT.value,
    "engine": "batch",
}

#: Hard ceiling on submitted scale: the service is a query front end,
#: not a batch cluster; a full-volume run must go through the CLI.
_MAX_SCALE = 0.1

_TERMINAL = frozenset({"done", "failed"})


def validate_study_request(payload: object) -> dict:
    """Normalize one ``POST /studies`` body; raises ``ValueError``.

    Unknown keys are rejected (a typoed ``dataset`` silently running
    the default study would be worse than a 400), and every accepted
    value is range-checked before it gets near a worker.
    """
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise ValueError("study request must be a JSON object")
    unknown = set(payload) - set(_DEFAULTS)
    if unknown:
        raise ValueError(f"unknown study parameters: {sorted(unknown)}")
    request = dict(_DEFAULTS)
    request.update(payload)
    request["seed"] = int(request["seed"])
    request["scale"] = float(request["scale"])
    if not 0.0 < request["scale"] <= _MAX_SCALE:
        raise ValueError(
            f"scale must be in (0, {_MAX_SCALE}] for service jobs, "
            f"got {request['scale']}"
        )
    datasets = tuple(request["datasets"])
    for name in datasets:
        if name not in DATASET_ORDER:
            raise ValueError(
                f"unknown dataset {name!r} (one of {list(DATASET_ORDER)})"
            )
    if not datasets:
        raise ValueError("datasets must name at least one dataset")
    request["datasets"] = datasets
    if request["max_windows"] is not None:
        request["max_windows"] = int(request["max_windows"])
        if request["max_windows"] < 1:
            raise ValueError("max_windows must be >= 1")
    request["jobs"] = max(0, int(request["jobs"]))
    request["error_policy"] = ErrorPolicy.coerce(request["error_policy"]).value
    if request["engine"] not in ("batch", "stream"):
        raise ValueError(f"unknown engine {request['engine']!r}")
    return request


class StudyJob:
    """One submitted study: its request, lifecycle, and outcome."""

    def __init__(self, request: dict) -> None:
        self.id = uuid.uuid4().hex[:16]
        self.request = request
        self.state = "queued"  # queued | running | done | failed
        self.submitted = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.result: dict | None = None
        self.error: str | None = None

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    def payload(self) -> dict:
        """The ``GET /jobs/<id>`` body."""
        body: dict = {
            "id": self.id,
            "state": self.state,
            "request": {
                **self.request,
                "datasets": list(self.request["datasets"]),
            },
            "submitted": round(self.submitted, 6),
        }
        if self.started is not None:
            body["started"] = round(self.started, 6)
        if self.finished is not None:
            body["finished"] = round(self.finished, 6)
            body["wall_s"] = round(self.finished - (self.started or self.finished), 6)
        if self.result is not None:
            body["result"] = self.result
        if self.error is not None:
            body["error"] = self.error
        return body


def _run_study_job(request: dict, store_dir: str) -> dict:
    """The default runner: the study through the PR-3 runtime, results
    into the service's store (import deferred so the service module can
    load without pulling the whole pipeline in)."""
    from ..core.study import run_study

    results = run_study(
        seed=request["seed"],
        scale=request["scale"],
        datasets=request["datasets"],
        max_windows=request["max_windows"],
        error_policy=request["error_policy"],
        store_dir=store_dir,
        jobs=request["jobs"],
        engine=request["engine"],
    )
    return {
        "datasets": {
            name: {
                "packets": analysis.total_packets,
                "conns": len(analysis.conns),
                "errors": analysis.total_errors,
            }
            for name, analysis in results.analyses.items()
        },
        "unit_failures": len(results.unit_failures),
    }


class JobManager:
    """Bounded background execution of submitted studies."""

    def __init__(
        self,
        store_dir: str,
        workers: int = 1,
        queue_limit: int = 4,
        runner: Callable[[dict, str], dict] | None = None,
    ) -> None:
        self.store_dir = str(store_dir)
        self.workers = max(1, int(workers))
        self.queue_limit = max(1, int(queue_limit))
        self.runner = runner if runner is not None else _run_study_job
        self._queue: queue.Queue[StudyJob | None] = queue.Queue(
            maxsize=self.queue_limit
        )
        self._jobs: dict[str, StudyJob] = {}
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._closed = False
        #: Rolling mean job wall time, seeding the Retry-After estimate.
        self._mean_wall = 2.0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"job-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def close(self, wait: bool = True) -> None:
        """Stop accepting work and wind the workers down.

        Queued-but-unstarted jobs are marked failed (the client polling
        them deserves a terminal state, not an eternal ``queued``).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        drained: list[StudyJob] = []
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is not None:
                drained.append(job)
        for job in drained:
            job.state = "failed"
            job.error = "service shut down before the job started"
            job.finished = time.time()
        for _ in self._threads:
            try:
                self._queue.put_nowait(None)
            except queue.Full:
                pass
        if wait:
            for thread in self._threads:
                thread.join(timeout=5.0)

    # -- submission and polling --------------------------------------------

    def submit(self, request: dict) -> StudyJob | None:
        """Enqueue one validated request; ``None`` means "queue full".

        Never blocks: the whole point of the bounded queue is that a
        saturated service answers 429 immediately instead of hanging
        the client until capacity appears.
        """
        job = StudyJob(request)
        with self._lock:
            if self._closed:
                return None
            self._jobs[job.id] = job
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                del self._jobs[job.id]
            return None
        return job

    def get(self, job_id: str) -> StudyJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[StudyJob]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.submitted)

    def retry_after(self) -> int:
        """Whole seconds a 429'd client should wait before retrying:
        roughly one mean job per queued-or-running job, floor 1s."""
        backlog = self._queue.qsize() + sum(
            1 for job in self.jobs() if job.state == "running"
        )
        return max(1, int(self._mean_wall * max(1, backlog)))

    def stats(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        return {
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "queued": self._queue.qsize(),
            "states": states,
        }

    # -- execution ---------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            job.state = "running"
            job.started = time.time()
            try:
                job.result = self.runner(job.request, self.store_dir)
            except Exception as exc:  # any failure is the job's, not the pool's
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
            else:
                job.state = "done"
            finally:
                job.finished = time.time()
                wall = job.finished - job.started
                # Exponential moving average; cheap and lock-free (the
                # estimate only feeds Retry-After, approximate by design).
                self._mean_wall = 0.7 * self._mean_wall + 0.3 * max(wall, 0.05)
