"""Analysis-as-a-service: the HTTP face of the reproduction.

A stdlib-only long-running service (:class:`~repro.service.app.ReproService`)
serving store queries, CDFs, and paper tables from the content-addressed
:class:`~repro.store.ConnStore` behind an LRU response cache; accepting
study submissions as bounded background jobs on the PR-3 runtime; and
reading the ingestion daemon's per-tenant window artifacts live.  The
matching load harness lives in :mod:`repro.service.loadgen`.

See ``docs/service.md`` for the endpoint reference and operational
semantics (cache keying, backpressure, shutdown).
"""

from .app import ReproService, ServiceError
from .cache import CachedResponse, ResponseCache, store_state_token
from .jobs import JobManager, StudyJob, validate_study_request
from .loadgen import DEFAULT_MIX, Endpoint, run_load

__all__ = [
    "ReproService",
    "ServiceError",
    "CachedResponse",
    "ResponseCache",
    "store_state_token",
    "JobManager",
    "StudyJob",
    "validate_study_request",
    "DEFAULT_MIX",
    "Endpoint",
    "run_load",
]
