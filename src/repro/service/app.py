"""Analysis-as-a-service: the long-running HTTP query front end.

``ReproService`` puts a :class:`ThreadingHTTPServer` (stdlib, no new
dependencies) in front of a :class:`~repro.store.ConnStore`:

* **Store queries** — ``/studies`` (cached analyses), ``/query``
  (filtered aggregations), ``/cdf`` (sample CDFs), ``/tables/...``
  (paper tables plus the load / retransmission / data-quality tables)
  — all served from shards by content address, behind the
  :class:`~repro.service.cache.ResponseCache`: a hit replays stored
  bytes without touching a shard, and invalidation is free because
  content addresses are immutable.
* **Background studies** — ``POST /studies`` submits a run to the
  bounded :class:`~repro.service.jobs.JobManager` (the PR-3 runtime
  underneath) and returns a run id; ``GET /jobs/<id>`` polls it.  A
  full queue answers **429 + Retry-After** instead of hanging.
* **Daemon read-through** — ``/daemon/...`` reads the ingestion
  daemon's per-tenant ``windows/`` JSON artifacts straight off disk.
  The daemon publishes them atomically (PR-5 fsio), so the service can
  watch a *live* daemon's windows without coordinating with it.
* **Telemetry tail** — ``/events`` follows the service's own JSONL
  stream using :func:`~repro.runtime.telemetry.read_events` in follow
  mode; the service's shutdown event is the tail's ``stop`` predicate,
  so in-flight tails end promptly instead of busy-waiting forever.

Every response body is JSON (one endpoint streams NDJSON).  The server
is intentionally boring: one handler class, thread-per-request, shared
state limited to the store (read-only, concurrency-tested), the locked
response cache, and the locked job table.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from ..analysis.load import load_report
from ..report import quality as quality_builders
from ..report import tables as table_builders
from ..report.findings import table5 as findings_table5
from ..report.model import Table
from ..runtime.telemetry import TelemetryLog, read_events
from ..store.cache import DAEMON_DIR
from ..store.tier import open_store
from ..store.query import (
    ConnFilter,
    GROUP_DIMENSIONS,
    SAMPLE_FIELDS,
    StoreQuery,
)
from .cache import CachedResponse, ResponseCache, store_state_token
from .jobs import JobManager, validate_study_request

__all__ = ["ReproService", "ServiceError"]

_JSON = "application/json"
_NDJSON = "application/x-ndjson"

#: GET paths served through the response cache (everything that reads
#: shards; daemon artifacts and job state are live, never cached).
_CACHEABLE = ("/studies", "/query", "/cdf", "/tables/")

#: CDF quantiles reported by ``/cdf`` (the paper's usual key points).
_CDF_QUANTILES = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99)

#: Paper tables buildable from stored analyses alone (Table 1 needs
#: generation-time trace metadata the shards do not carry).
_PAPER_TABLES = (2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)

#: Events-tail bounds: a tail holds one handler thread, so both the
#: wait and the event count are capped.
_EVENTS_MAX_TIMEOUT = 60.0
_EVENTS_MAX_COUNT = 10_000


class ServiceError(Exception):
    """A client-attributable request failure (rendered as 4xx)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _encode(payload: object) -> bytes:
    """Canonical JSON bytes: sorted keys make cold and cached responses
    for the same logical query byte-identical by construction."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _table_payload(table: Table) -> dict:
    return {
        "id": table.id,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
        "rendered": table.render(),
    }


def _single(params: dict[str, list[str]], name: str) -> str | None:
    values = params.get(name)
    if not values:
        return None
    if len(values) > 1:
        raise ServiceError(400, f"parameter {name!r} given more than once")
    return values[0]


def _number(params: dict, name: str, kind=float):
    raw = _single(params, name)
    if raw is None:
        return None
    try:
        return kind(raw)
    except ValueError:
        raise ServiceError(
            400, f"parameter {name!r} must be a {kind.__name__}, got {raw!r}"
        ) from None


def _etag_match(header: str | None, etag: str) -> bool:
    """RFC 9110 §13.1.2 If-None-Match against one strong validator.

    Weak-prefixed candidates compare by opaque value (the weak
    comparison is all a 304 needs); ``*`` matches any representation.
    """
    if header is None:
        return False
    if header.strip() == "*":
        return True
    candidates = (value.strip() for value in header.split(","))
    return any(
        value[2:] == etag if value.startswith("W/") else value == etag
        for value in candidates
    )


def _flag(params: dict, name: str) -> bool:
    raw = _single(params, name)
    if raw is None:
        return False
    if raw.lower() in ("1", "true", "yes", "on"):
        return True
    if raw.lower() in ("0", "false", "no", "off"):
        return False
    raise ServiceError(400, f"parameter {name!r} must be boolean, got {raw!r}")


#: ``/query`` and ``/cdf`` filter parameters → ConnFilter fields.
_FILTER_PARAMS = (
    "dataset", "proto", "service", "locality", "subnet", "state",
)


def _filter_from(params: dict) -> ConnFilter:
    kwargs: dict = {
        name: _single(params, name) for name in _FILTER_PARAMS
    }
    kwargs["since"] = _number(params, "since", float)
    kwargs["until"] = _number(params, "until", float)
    kwargs["min_bytes"] = _number(params, "min_bytes", int)
    kwargs["include_scanners"] = _flag(params, "include_scanners")
    flt = ConnFilter(**kwargs)
    if flt.subnet is not None:
        try:
            flt._subnet()
        except Exception:
            raise ServiceError(400, f"bad subnet {flt.subnet!r}") from None
    return flt


class ReproService:
    """The service: a store, a cache, a job manager, and an HTTP server."""

    def __init__(
        self,
        store_dir: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_entries: int = 256,
        job_workers: int = 1,
        job_queue: int = 4,
        job_runner=None,
        telemetry: TelemetryLog | None = None,
    ) -> None:
        self.store = open_store(store_dir)
        self.host = host
        self.port = port
        self.cache = ResponseCache(cache_entries)
        self.jobs = JobManager(
            str(store_dir),
            workers=job_workers,
            queue_limit=job_queue,
            runner=job_runner,
        )
        self.telemetry = telemetry
        self._telemetry_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._status_counts: dict[str, int] = {}
        self._started_monotonic = time.monotonic()
        self._stopping = threading.Event()
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind the listener and start the job workers (non-blocking)."""
        service = self

        class _Handler(_RequestHandler):
            pass

        _Handler.service = service
        self._server = ThreadingHTTPServer((self.host, self.port), _Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self.jobs.start()
        self.emit(
            "service_start",
            host=self.host,
            port=self.port,
            store=str(self.store.root),
            cache_entries=self.cache.max_entries,
            job_workers=self.jobs.workers,
            job_queue=self.jobs.queue_limit,
        )

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (CLI mode)."""
        if self._server is None:
            self.start()
        self._server.serve_forever(poll_interval=0.1)

    def start_background(self) -> None:
        """Serve from a daemon thread (tests, benchmarks, embedding)."""
        if self._server is None:
            self.start()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-service",
            daemon=True,
        )
        self._thread.start()

    def shutdown(self) -> None:
        """Graceful stop: new accepts cease, live event tails end (the
        stop predicate), job workers drain, queued jobs fail closed."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        self.jobs.close(wait=True)
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.emit("service_stop", **self.status_counts())
        if self.telemetry is not None:
            self.telemetry.close()

    @property
    def stopping(self) -> bool:
        return self._stopping.is_set()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- shared accounting -------------------------------------------------

    def emit(self, event: str, **fields: object) -> None:
        """Thread-safe telemetry emission (handler threads share one log)."""
        if self.telemetry is None:
            return
        with self._telemetry_lock:
            self.telemetry.emit(event, **fields)

    def count_status(self, status: int) -> None:
        bucket = f"{status // 100}xx"
        with self._stats_lock:
            self._status_counts[bucket] = self._status_counts.get(bucket, 0) + 1

    def status_counts(self) -> dict:
        with self._stats_lock:
            return dict(self._status_counts)

    # -- store views -------------------------------------------------------

    def analyses(self) -> dict:
        """Latest cached analysis per dataset (lowest manifest key wins,
        so the pick is deterministic when a dataset is cached under
        several analysis configurations)."""
        chosen: dict[str, dict] = {}
        for manifest in self.store.manifests():
            name = manifest["dataset"]
            if name not in chosen or manifest["key"] < chosen[name]["key"]:
                chosen[name] = manifest
        return {
            name: self.store.load_analysis(manifest).analysis
            for name, manifest in sorted(chosen.items())
        }

    def load_table(self) -> Table:
        """Per-dataset §6 load profile (peak Mbps by timescale)."""
        analyses = self._require_analyses()
        table = Table(
            "Service load",
            "peak utilization per trace, by timescale (Mbps)",
            ["dataset", "traces", "peak 1s", "peak 10s", "peak 60s",
             "median util"],
        )
        for name, analysis in analyses.items():
            report = load_report(analysis.traces)
            cells: list[object] = [name, len(analysis.traces)]
            for scale in (1.0, 10.0, 60.0):
                cdf = report.peak_cdfs.get(scale)
                cells.append(round(cdf.max, 4) if cdf is not None and len(cdf) else "-")
            median = report.utilization_cdfs.get("median")
            cells.append(
                round(median.median, 4) if median is not None and len(median) else "-"
            )
            table.add_row(*cells)
        return table

    def retransmission_table(self) -> Table:
        """Per-dataset §6 retransmission rates, enterprise vs WAN —
        the comparative-rates view the related Pentikousis study argues
        for serving as data rather than prose."""
        analyses = self._require_analyses()
        table = Table(
            "Service retransmission",
            "TCP retransmission rate per trace (ent vs wan, keep-alives "
            "excluded)",
            ["dataset", "where", "traces", "mean", "max", "frac >1%"],
        )
        for name, analysis in analyses.items():
            report = load_report(analysis.traces)
            for where in ("ent", "wan"):
                rates = report.retransmit_rates.get(where, [])
                mean = sum(rates) / len(rates) if rates else 0.0
                table.add_row(
                    name,
                    where,
                    len(rates),
                    round(mean, 6),
                    round(max(rates), 6) if rates else 0.0,
                    round(report.fraction_above(where, 0.01), 6),
                )
        return table

    def _require_analyses(self) -> dict:
        analyses = self.analyses()
        if not analyses:
            raise ServiceError(404, "the store holds no cached analyses yet")
        return analyses

    def build_table(self, name: str) -> Table:
        """One named or numbered table from the cached analyses."""
        if name == "load":
            return self.load_table()
        if name == "retransmission":
            return self.retransmission_table()
        if name == "quality":
            return quality_builders.data_quality_table(self._require_analyses())
        try:
            number = int(name)
        except ValueError:
            raise ServiceError(
                404,
                f"unknown table {name!r} (load, retransmission, quality, "
                f"or a paper table number in {list(_PAPER_TABLES)})",
            ) from None
        if number not in _PAPER_TABLES:
            raise ServiceError(
                404, f"paper table {number} is not servable from the store "
                f"(available: {list(_PAPER_TABLES)})"
            )
        analyses = self._require_analyses()
        if number == 4:
            return table_builders.table4()
        if number == 5:
            return findings_table5(analyses)
        builder = getattr(table_builders, f"table{number}")
        try:
            return builder(analyses)
        except Exception as exc:
            raise ServiceError(
                422,
                f"table {number} cannot be built from the cached analyses: "
                f"{type(exc).__name__}: {exc}",
            ) from None

    # -- daemon read-through -----------------------------------------------

    def daemon_root(self) -> Path:
        return self.store.root / DAEMON_DIR

    def daemon_tenants(self) -> list[dict]:
        root = self.daemon_root()
        tenants = []
        if root.is_dir():
            for path in sorted(p for p in root.iterdir() if p.is_dir()):
                windows = path / "windows"
                tenants.append(
                    {
                        "tenant": path.name,
                        "windows": (
                            sum(1 for _ in windows.glob("*.json"))
                            if windows.is_dir()
                            else 0
                        ),
                        "traces_done": (
                            sum(1 for _ in (path / "traces").glob("t*.json"))
                            if (path / "traces").is_dir()
                            else 0
                        ),
                        "quarantined": (path / "quarantined.json").exists(),
                        "complete": (path / "result.json").exists(),
                    }
                )
        return tenants

    def daemon_windows(
        self,
        tenant: str,
        trace: int | None = None,
        since: int | None = None,
        limit: int = 500,
    ) -> dict:
        """One tenant's rolling windows, straight off the artifact tree.

        Reads are safe against a live daemon: windows are published via
        atomic rename, so every ``*.json`` present is complete.  A file
        that fails to parse anyway (bit rot) is skipped and counted —
        the scrubber's problem, not the reader's.
        """
        windows_dir = self.daemon_root() / tenant / "windows"
        if not windows_dir.is_dir():
            raise ServiceError(404, f"no daemon artifacts for tenant {tenant!r}")
        windows: list[dict] = []
        skipped = 0
        truncated = False
        for path in sorted(windows_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_bytes().decode("utf-8"))
            except (OSError, ValueError):
                skipped += 1
                continue
            if trace is not None and payload.get("trace") != trace:
                continue
            if since is not None and payload.get("index", 0) < since:
                continue
            if len(windows) >= limit:
                truncated = True
                break
            windows.append(payload)
        return {
            "tenant": tenant,
            "windows": windows,
            "count": len(windows),
            "skipped": skipped,
            "truncated": truncated,
        }

    def daemon_result(self, tenant: str) -> dict:
        base = self.daemon_root() / tenant
        if not base.is_dir():
            raise ServiceError(404, f"no daemon artifacts for tenant {tenant!r}")
        payload: dict = {"tenant": tenant}
        result = base / "result.json"
        if result.exists():
            try:
                payload["result"] = json.loads(result.read_bytes().decode("utf-8"))
            except (OSError, ValueError):
                payload["result"] = None
        quarantined = base / "quarantined.json"
        if quarantined.exists():
            try:
                payload["quarantined"] = json.loads(
                    quarantined.read_bytes().decode("utf-8")
                )
            except (OSError, ValueError):
                payload["quarantined"] = {}
        if "result" not in payload and "quarantined" not in payload:
            raise ServiceError(
                404, f"tenant {tenant!r} has no result yet (feed still running?)"
            )
        return payload


class _RequestHandler(BaseHTTPRequestHandler):
    """Thread-per-request handler; all state lives on ``self.service``."""

    service: ReproService  # injected by ReproService.start()
    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"
    #: Headers and body leave as separate small writes; without this the
    #: second write sits behind Nagle + the client's delayed ACK and
    #: every response eats a ~40ms floor on loopback.
    disable_nagle_algorithm = True

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        pass  # requests are telemetry events, not stderr noise

    def _respond(
        self,
        status: int,
        body: bytes,
        content_type: str = _JSON,
        extra_headers: dict | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(
        self, status: int, payload: object, extra_headers: dict | None = None
    ) -> None:
        self._respond(status, _encode(payload), extra_headers=extra_headers)

    def _finish(self, status: int, started: float, cache_state: str | None) -> None:
        service = self.service
        service.count_status(status)
        service.emit(
            "request",
            method=self.command,
            path=self.path.split("?", 1)[0],
            status=status,
            ms=round((time.monotonic() - started) * 1000, 3),
            cache=cache_state,
        )

    # -- dispatch ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        started = time.monotonic()
        cache_state: str | None = None
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        try:
            params = parse_qs(split.query, keep_blank_values=True)
            if method == "GET" and path.startswith(_CACHEABLE):
                cache_state, status = self._cached_get(path, params)
            elif method == "GET" and path == "/events":
                status = self._get_events(params)
            else:
                status = self._route(method, path, params)
        except ServiceError as exc:
            status = exc.status
            headers = (
                {"Retry-After": str(self.service.jobs.retry_after())}
                if status == 429
                else None
            )
            self._respond_json(
                status, {"error": str(exc)}, extra_headers=headers
            )
        except (BrokenPipeError, ConnectionResetError):
            status = 499  # client went away mid-response; nothing to send
        except Exception as exc:  # a bug, honestly reported as 500
            status = 500
            try:
                self._respond_json(
                    status, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except OSError:
                pass
        self._finish(status, started, cache_state)

    def _route(self, method: str, path: str, params: dict) -> int:
        service = self.service
        if path == "/health" and method == "GET":
            self._respond_json(200, self._health())
            return 200
        if path == "/studies" and method == "POST":
            return self._post_study()
        if path == "/jobs" and method == "GET":
            self._respond_json(
                200, {"jobs": [job.payload() for job in service.jobs.jobs()]}
            )
            return 200
        if path.startswith("/jobs/") and method == "GET":
            job = service.jobs.get(path[len("/jobs/"):])
            if job is None:
                raise ServiceError(404, f"unknown job {path[len('/jobs/'):]!r}")
            self._respond_json(200, job.payload())
            return 200
        if path == "/daemon" and method == "GET":
            self._respond_json(200, {"tenants": service.daemon_tenants()})
            return 200
        if path.startswith("/daemon/") and method == "GET":
            return self._get_daemon(path[len("/daemon/"):], params)
        if method != "GET":
            raise ServiceError(405, f"{method} not supported on {path}")
        raise ServiceError(404, f"unknown endpoint {path}")

    # -- cacheable store queries -------------------------------------------

    def _cached_get(self, path: str, params: dict) -> tuple[str, int]:
        """Serve one store query through the response cache; returns the
        cache disposition (hit / miss / bypass / 304) and the status.

        The cache key — SHA-256 of the canonical query and the
        store-state token — *is* the response's content identity, so it
        doubles as the ETag: as long as the manifest listing is
        unchanged, the same request maps to the same key and a client
        replaying its stored validator gets ``304 Not Modified`` with
        an empty body, whether or not the entry still sits in the
        response cache.  Compaction and rebalance never rename a
        manifest, so validators survive both.
        """
        service = self.service
        bypass = _flag(params, "cache_bypass")
        canonical = "&".join(
            f"{name}={value}"
            for name in sorted(params)
            if name != "cache_bypass"
            for value in sorted(params[name])
        )
        token = store_state_token(service.store.root)
        key = service.cache.key_for(path, canonical, token)
        etag = f'"{key[:32]}"'
        if not bypass:
            if _etag_match(self.headers.get("If-None-Match"), etag):
                self._respond(
                    304, b"", extra_headers={"X-Cache": "hit", "ETag": etag}
                )
                return "304", 304
            entry = service.cache.get(key)
            if entry is not None:
                self._respond(
                    entry.status, entry.body, entry.content_type,
                    extra_headers={"X-Cache": "hit", "ETag": etag},
                )
                return "hit", 200
        body = _encode(self._build_query(path, params))
        if not bypass:
            service.cache.put(key, CachedResponse(200, _JSON, body))
        self._respond(
            200, body,
            extra_headers={
                "X-Cache": "bypass" if bypass else "miss", "ETag": etag,
            },
        )
        return ("bypass" if bypass else "miss"), 200

    def _build_query(self, path: str, params: dict) -> dict:
        """Compute one store-query response body (the cold path)."""
        service = self.service
        query = StoreQuery(service.store)
        if path == "/studies":
            manifests = [
                {
                    "dataset": manifest["dataset"],
                    "key": manifest["key"],
                    "schema": manifest["schema"],
                    "traces": len(manifest["traces"]),
                    "packets": sum(
                        entry["packet_count"] for entry in manifest["traces"]
                    ),
                }
                for manifest in service.store.manifests()
            ]
            manifests.sort(key=lambda entry: (entry["dataset"], entry["key"]))
            return {"studies": manifests, "count": len(manifests)}
        if path == "/query":
            by = _single(params, "by") or "category"
            if by not in GROUP_DIMENSIONS:
                raise ServiceError(
                    400, f"unknown group dimension {by!r} "
                    f"(one of {list(GROUP_DIMENSIONS)})"
                )
            rows = query.aggregate(_filter_from(params), by=by)
            return {
                "by": by,
                "rows": [
                    {
                        "group": row.group,
                        "conns": row.conns,
                        "bytes": row.bytes,
                        "pkts": row.pkts,
                    }
                    for row in rows
                ],
                "total": {
                    "conns": sum(row.conns for row in rows),
                    "bytes": sum(row.bytes for row in rows),
                    "pkts": sum(row.pkts for row in rows),
                },
            }
        if path == "/cdf":
            field = _single(params, "field")
            if field not in SAMPLE_FIELDS:
                raise ServiceError(
                    400, f"field must be one of {list(SAMPLE_FIELDS)}, "
                    f"got {field!r}"
                )
            cdf = query.cdf(field, _filter_from(params))
            if not len(cdf):
                return {"field": field, "n": 0, "quantiles": {}, "points": []}
            return {
                "field": field,
                "n": len(cdf),
                "quantiles": {
                    f"p{int(q * 100)}": cdf.quantile(q) for q in _CDF_QUANTILES
                },
                "min": cdf.min,
                "max": cdf.max,
                "points": cdf.points(max_points=200),
            }
        if path.startswith("/tables/"):
            name = path[len("/tables/"):]
            return {"table": _table_payload(service.build_table(name))}
        raise ServiceError(404, f"unknown endpoint {path}")

    # -- jobs --------------------------------------------------------------

    def _post_study(self) -> int:
        service = self.service
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw.strip() else {}
        except ValueError:
            raise ServiceError(400, "request body must be JSON") from None
        try:
            request = validate_study_request(payload)
        except ValueError as exc:
            raise ServiceError(400, str(exc)) from None
        job = service.jobs.submit(request)
        if job is None:
            raise ServiceError(
                429,
                "job queue is full; retry after the Retry-After interval",
            )
        service.emit("job_submitted", job=job.id, **{
            "seed": request["seed"],
            "scale": request["scale"],
            "datasets": list(request["datasets"]),
        })
        self._respond_json(
            202,
            {"id": job.id, "state": job.state, "poll": f"/jobs/{job.id}"},
        )
        return 202

    # -- daemon ------------------------------------------------------------

    def _get_daemon(self, rest: str, params: dict) -> int:
        service = self.service
        parts = rest.split("/")
        if len(parts) == 2 and parts[1] == "windows":
            payload = service.daemon_windows(
                parts[0],
                trace=_number(params, "trace", int),
                since=_number(params, "since", int),
                limit=min(_number(params, "limit", int) or 500, 5000),
            )
            self._respond_json(200, payload)
            return 200
        if len(parts) == 2 and parts[1] == "result":
            self._respond_json(200, service.daemon_result(parts[0]))
            return 200
        raise ServiceError(
            404,
            "daemon endpoints: /daemon, /daemon/<tenant>/windows, "
            "/daemon/<tenant>/result",
        )

    # -- events tail -------------------------------------------------------

    def _get_events(self, params: dict) -> int:
        """Stream the service telemetry as NDJSON until timeout, count
        limit, or service shutdown — whichever comes first."""
        service = self.service
        telemetry = service.telemetry
        if telemetry is None or telemetry.path is None:
            raise ServiceError(
                404, "the service was started without --telemetry; "
                "there is no event stream to tail"
            )
        timeout = min(
            _number(params, "timeout", float) or 10.0, _EVENTS_MAX_TIMEOUT
        )
        limit = min(
            _number(params, "max", int) or 1000, _EVENTS_MAX_COUNT
        )
        wanted_raw = _single(params, "events")
        wanted = set(wanted_raw.split(",")) if wanted_raw else None
        self.send_response(200)
        self.send_header("Content-Type", _NDJSON)
        self.send_header("Connection", "close")
        self.end_headers()
        sent = 0
        # The service's shutdown event is the stop predicate: a live
        # tail ends promptly when the server drains instead of holding
        # its handler thread until the timeout.
        for event in read_events(
            telemetry.path,
            follow=True,
            timeout=timeout,
            stop=lambda: service.stopping or sent >= limit,
        ):
            if wanted is not None and event.get("event") not in wanted:
                continue
            try:
                self.wfile.write(_encode(event))
                self.wfile.flush()
            except OSError:
                break  # client hung up; the tail has no one to talk to
            sent += 1
        return 200

    # -- health ------------------------------------------------------------

    def _health(self) -> dict:
        service = self.service
        store_stats = service.store.stats()
        # A tiered store with a dead root still serves (replicas cover
        # it) but an operator must see the degradation here, not in a
        # post-mortem: any down root or queued repair flips the status.
        status = "ok"
        tier = store_stats.get("tier")
        if tier is not None:
            under = tier.get("under_replicated", {})
            degraded = any(
                root.get("status") == "down" for root in tier["roots"]
            ) or under.get("objects") or under.get("manifests")
            if degraded:
                status = "degraded"
        return {
            "status": status,
            "uptime_s": round(
                time.monotonic() - service._started_monotonic, 3
            ),
            "store": store_stats,
            "cache": service.cache.stats(),
            "jobs": service.jobs.stats(),
            "responses": service.status_counts(),
        }
