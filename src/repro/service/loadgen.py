"""Concurrent load harness for the analysis service.

``run_load`` simulates ``users`` independent clients, each with its own
persistent :class:`http.client.HTTPConnection` (keep-alive, like a real
browser or SDK) and its own seeded RNG drawing requests from a weighted
endpoint mix.  The run has two phases:

* **warmup** — traffic flows but nothing is recorded, so connection
  setup, cache population, and interpreter warm-up do not pollute the
  percentiles;
* **measurement** — every request's wall latency and status code are
  recorded until the deadline.

The report carries p50/p95/p99/mean/max latency (overall and per
endpoint), throughput, an error rate, and the raw status-class counts —
the numbers ``make service-bench`` persists to ``BENCH_service.json``
and the CI smoke job asserts on (p99 present, zero 5xx).

Everything is stdlib; the harness deliberately mirrors the POST-a-
workload / poll-percentiles pattern of the CS450 performance tracker
exemplar, but runs client-side so it can also measure the service's
HTTP stack itself.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from dataclasses import dataclass

__all__ = ["Endpoint", "DEFAULT_MIX", "run_load"]


@dataclass(frozen=True)
class Endpoint:
    """One entry in the workload mix."""

    name: str
    path: str
    weight: float = 1.0
    method: str = "GET"
    body: str | None = None


#: The default mixed workload: read-heavy (as a query service's traffic
#: would be), spanning cheap (/health) through shard-reading endpoints
#: (/query, /cdf, /tables/*).  ``/events`` is excluded — a tail holds
#: its connection open, which is a different experiment.
DEFAULT_MIX = (
    Endpoint("health", "/health", weight=1.0),
    Endpoint("studies", "/studies", weight=2.0),
    Endpoint("query-category", "/query?by=category", weight=3.0),
    Endpoint("query-proto", "/query?by=proto&locality=ent-ent", weight=2.0),
    Endpoint("cdf-bytes", "/cdf?field=total_bytes", weight=3.0),
    Endpoint("cdf-duration", "/cdf?field=duration&proto=tcp", weight=2.0),
    Endpoint("table-load", "/tables/load", weight=1.0),
    Endpoint("table-retrans", "/tables/retransmission", weight=1.0),
    Endpoint("table-quality", "/tables/quality", weight=1.0),
    Endpoint("daemon", "/daemon", weight=1.0),
)


def _percentiles(samples: list[float]) -> dict:
    """Latency summary (milliseconds) of one sorted-on-demand sample."""
    if not samples:
        return {"n": 0}
    ordered = sorted(samples)
    n = len(ordered)

    def pick(q: float) -> float:
        return round(ordered[min(n - 1, int(q * n))], 3)

    return {
        "n": n,
        "p50": pick(0.50),
        "p95": pick(0.95),
        "p99": pick(0.99),
        "mean": round(sum(ordered) / n, 3),
        "max": round(ordered[-1], 3),
    }


class _User:
    """One simulated client: persistent connection, seeded endpoint RNG."""

    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        mix: tuple[Endpoint, ...],
        seed: int,
        timeout: float,
    ) -> None:
        self.index = index
        self.host = host
        self.port = port
        self.mix = mix
        self.rng = random.Random((seed << 16) ^ index)
        self.timeout = timeout
        self.conn: http.client.HTTPConnection | None = None
        #: (endpoint name, status, latency ms) per measured request;
        #: status 0 means the request never got an HTTP answer.
        self.samples: list[tuple[str, int, float]] = []
        self.reconnects = 0

    def _pick(self) -> Endpoint:
        total = sum(endpoint.weight for endpoint in self.mix)
        mark = self.rng.uniform(0.0, total)
        for endpoint in self.mix:
            mark -= endpoint.weight
            if mark <= 0.0:
                return endpoint
        return self.mix[-1]

    def _request(self, endpoint: Endpoint) -> tuple[int, float]:
        if self.conn is None:
            self.conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self.reconnects += 1
        started = time.monotonic()
        try:
            headers = {}
            if endpoint.body is not None:
                headers["Content-Type"] = "application/json"
            self.conn.request(
                endpoint.method, endpoint.path, body=endpoint.body,
                headers=headers,
            )
            response = self.conn.getresponse()
            response.read()  # drain so keep-alive can reuse the socket
            status = response.status
        except (http.client.HTTPException, OSError):
            # Connection-level failure: drop the socket, report status 0.
            try:
                self.conn.close()
            finally:
                self.conn = None
            status = 0
        return status, (time.monotonic() - started) * 1000.0

    def run(
        self,
        barrier: threading.Barrier,
        measure_at: float,
        deadline: float,
    ) -> None:
        try:
            barrier.wait(timeout=30.0)
        except threading.BrokenBarrierError:
            return
        while True:
            now = time.monotonic()
            if now >= deadline:
                break
            endpoint = self._pick()
            status, latency_ms = self._request(endpoint)
            if now >= measure_at:  # warmup requests are not recorded
                self.samples.append((endpoint.name, status, latency_ms))
        if self.conn is not None:
            self.conn.close()


def run_load(
    host: str,
    port: int,
    users: int = 8,
    duration: float = 5.0,
    warmup: float = 1.0,
    seed: int = 0,
    mix: tuple[Endpoint, ...] = DEFAULT_MIX,
    timeout: float = 30.0,
) -> dict:
    """Drive the service with ``users`` concurrent clients; return the
    latency/error report for the measurement phase."""
    users = max(1, int(users))
    threads: list[threading.Thread] = []
    clients = [
        _User(index, host, port, tuple(mix), seed, timeout)
        for index in range(users)
    ]
    barrier = threading.Barrier(users + 1)
    start = time.monotonic()
    measure_at = start + max(0.0, warmup)
    deadline = measure_at + max(0.1, duration)
    for client in clients:
        thread = threading.Thread(
            target=client.run,
            args=(barrier, measure_at, deadline),
            name=f"loadgen-user-{client.index}",
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    barrier.wait(timeout=30.0)
    for thread in threads:
        thread.join(timeout=warmup + duration + timeout + 30.0)
    wall = time.monotonic() - measure_at

    all_latencies: list[float] = []
    by_endpoint: dict[str, dict] = {}
    status_counts: dict[str, int] = {}
    errors = 0
    for client in clients:
        for name, status, latency_ms in client.samples:
            all_latencies.append(latency_ms)
            bucket = f"{status // 100}xx" if status else "conn-error"
            status_counts[bucket] = status_counts.get(bucket, 0) + 1
            slot = by_endpoint.setdefault(
                name, {"latencies": [], "errors": 0}
            )
            slot["latencies"].append(latency_ms)
            if status == 0 or status >= 400:
                errors += 1
                slot["errors"] += 1
    total = len(all_latencies)
    return {
        "users": users,
        "warmup_s": round(max(0.0, warmup), 3),
        "duration_s": round(wall, 3),
        "seed": seed,
        "requests": total,
        "throughput_rps": round(total / wall, 3) if wall > 0 else 0.0,
        "errors": errors,
        "error_rate": round(errors / total, 6) if total else 0.0,
        "status_counts": status_counts,
        "reconnects": sum(client.reconnects for client in clients),
        "latency_ms": _percentiles(all_latencies),
        "endpoints": {
            name: {
                **_percentiles(slot["latencies"]),
                "errors": slot["errors"],
            }
            for name, slot in sorted(by_endpoint.items())
        },
    }


def render_report(report: dict) -> str:
    """Human-readable summary for the CLI (JSON stays the API)."""
    lines = [
        f"loadgen: {report['users']} users, "
        f"{report['requests']} requests in {report['duration_s']}s "
        f"({report['throughput_rps']} req/s)",
        f"  errors: {report['errors']} "
        f"(rate {report['error_rate']}), "
        f"statuses {json.dumps(report['status_counts'], sort_keys=True)}",
    ]
    overall = report["latency_ms"]
    if overall.get("n"):
        lines.append(
            f"  latency ms: p50 {overall['p50']}  p95 {overall['p95']}  "
            f"p99 {overall['p99']}  mean {overall['mean']}  max {overall['max']}"
        )
    for name, stats in report["endpoints"].items():
        if stats.get("n"):
            lines.append(
                f"    {name:18s} n={stats['n']:<6d} p50 {stats['p50']:<9} "
                f"p99 {stats['p99']:<9} err {stats['errors']}"
            )
    return "\n".join(lines)
