"""Streaming pcap writer with snaplen truncation."""

from __future__ import annotations

from pathlib import Path
from typing import BinaryIO, Iterable

from ..chaos import fsio
from ..net.packet import CapturedPacket
from .records import RECORD_HEADER, PcapGlobalHeader

__all__ = ["PcapWriter", "write_pcap"]


class PcapWriter:
    """Writes :class:`CapturedPacket` objects to a pcap stream.

    Packets longer than the writer's snaplen are truncated on write while
    preserving the original wire length, exactly as a capture with that
    snaplen would — this is how the header-only D1/D2 datasets are made.

    Usable as a context manager; closing is idempotent.
    """

    def __init__(self, stream: BinaryIO, snaplen: int = 65535) -> None:
        if snaplen <= 0:
            raise ValueError("snaplen must be positive")
        self._stream = stream
        self.snaplen = snaplen
        self.packets_written = 0
        self._stream.write(PcapGlobalHeader(snaplen=snaplen).encode())

    @classmethod
    def open(cls, path: str | Path, snaplen: int = 65535) -> "PcapWriter":
        """Open ``path`` for writing and emit the global header.

        The stream goes through the chaos I/O seam, so an active fault
        plane can tear or fail individual record writes.
        """
        return cls(fsio.open_write(path, op="trace-write"), snaplen=snaplen)

    def write(self, pkt: CapturedPacket) -> None:
        """Append one packet record, truncating to the snaplen."""
        data = pkt.data[: self.snaplen]
        ts_sec = int(pkt.ts)
        ts_usec = int(round((pkt.ts - ts_sec) * 1e6))
        if ts_usec >= 1_000_000:  # rounding can carry into the next second
            ts_sec += 1
            ts_usec -= 1_000_000
        self._stream.write(RECORD_HEADER.pack(ts_sec, ts_usec, len(data), pkt.wire_len))
        self._stream.write(data)
        self.packets_written += 1

    def write_all(self, packets: Iterable[CapturedPacket]) -> int:
        """Append many packets; returns the number written."""
        count = 0
        for pkt in packets:
            self.write(pkt)
            count += 1
        return count

    def close(self) -> None:
        """Flush and close the underlying stream."""
        if not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_pcap(
    path: str | Path, packets: Iterable[CapturedPacket], snaplen: int = 65535
) -> int:
    """Write ``packets`` to ``path``; returns the number written."""
    with PcapWriter.open(path, snaplen=snaplen) as writer:
        return writer.write_all(packets)
