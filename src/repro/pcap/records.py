"""Binary layout of the classic pcap (libpcap v2.4) file format.

The generator writes traces in this format and the analysis engine reads
them back, so the serialization boundary between the two halves of the
reproduction is the same one the original study had (tcpdump files).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "PCAP_MAGIC",
    "PCAP_MAGIC_SWAPPED",
    "LINKTYPE_ETHERNET",
    "GLOBAL_HEADER",
    "RECORD_HEADER",
    "PcapGlobalHeader",
]

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1

GLOBAL_HEADER = struct.Struct("<IHHiIII")
RECORD_HEADER = struct.Struct("<IIII")


@dataclass(frozen=True)
class PcapGlobalHeader:
    """The 24-byte pcap file header."""

    snaplen: int
    linktype: int = LINKTYPE_ETHERNET
    version_major: int = 2
    version_minor: int = 4
    thiszone: int = 0
    sigfigs: int = 0

    def encode(self) -> bytes:
        """Serialize in little-endian byte order."""
        return GLOBAL_HEADER.pack(
            PCAP_MAGIC,
            self.version_major,
            self.version_minor,
            self.thiszone,
            self.sigfigs,
            self.snaplen,
            self.linktype,
        )

    @classmethod
    def decode(cls, data: bytes) -> tuple["PcapGlobalHeader", bool]:
        """Parse the file header; returns (header, byte_swapped)."""
        if len(data) < GLOBAL_HEADER.size:
            raise ValueError("truncated pcap global header")
        magic = struct.unpack_from("<I", data)[0]
        if magic == PCAP_MAGIC:
            swapped = False
            fmt = GLOBAL_HEADER
        elif magic == PCAP_MAGIC_SWAPPED:
            swapped = True
            fmt = struct.Struct(">IHHiIII")
        else:
            raise ValueError(f"not a pcap file (magic {magic:#010x})")
        (_, major, minor, thiszone, sigfigs, snaplen, linktype) = fmt.unpack_from(data)
        header = cls(
            snaplen=snaplen,
            linktype=linktype,
            version_major=major,
            version_minor=minor,
            thiszone=thiszone,
            sigfigs=sigfigs,
        )
        return header, swapped
