"""pcap (libpcap v2.4) trace file reading and writing."""

from .reader import PcapReader, read_pcap
from .records import LINKTYPE_ETHERNET, PCAP_MAGIC, PcapGlobalHeader
from .writer import PcapWriter, write_pcap

__all__ = [
    "PcapReader",
    "read_pcap",
    "LINKTYPE_ETHERNET",
    "PCAP_MAGIC",
    "PcapGlobalHeader",
    "PcapWriter",
    "write_pcap",
]
