"""Streaming pcap reader."""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Iterator

from ..net.packet import CapturedPacket
from .records import GLOBAL_HEADER, RECORD_HEADER, PcapGlobalHeader

__all__ = ["PcapReader", "read_pcap"]


class PcapReader:
    """Iterates :class:`CapturedPacket` records out of a pcap stream.

    Handles both byte orders.  A record header that claims more captured
    bytes than remain in the file raises ``ValueError`` — silent
    truncation at the *file* level (as opposed to the per-packet snaplen)
    indicates a corrupt trace and should never pass unnoticed.
    """

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        header_bytes = stream.read(GLOBAL_HEADER.size)
        self.header, self._swapped = PcapGlobalHeader.decode(header_bytes)
        self._record = struct.Struct(">IIII") if self._swapped else RECORD_HEADER

    @classmethod
    def open(cls, path: str | Path) -> "PcapReader":
        """Open ``path`` and parse its global header."""
        return cls(io.open(path, "rb"))

    @property
    def snaplen(self) -> int:
        """The capture snaplen recorded in the file header."""
        return self.header.snaplen

    def __iter__(self) -> Iterator[CapturedPacket]:
        while True:
            header = self._stream.read(self._record.size)
            if not header:
                return
            if len(header) < self._record.size:
                raise ValueError("truncated pcap record header")
            ts_sec, ts_usec, caplen, wire_len = self._record.unpack(header)
            data = self._stream.read(caplen)
            if len(data) < caplen:
                raise ValueError("truncated pcap record body")
            yield CapturedPacket(
                ts=ts_sec + ts_usec / 1e6, data=data, wire_len=wire_len
            )

    def close(self) -> None:
        """Close the underlying stream."""
        if not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_pcap(path: str | Path) -> list[CapturedPacket]:
    """Read every packet record from ``path`` into a list."""
    with PcapReader.open(path) as reader:
        return list(reader)
