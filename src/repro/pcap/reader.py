"""Streaming pcap reader with optional recovery mode.

By default the reader is strict: any structural damage raises a typed
:class:`~repro.analysis.errors.IngestionError` (a ``ValueError``
subclass) naming the file and byte offset.  Handed a tolerant
:class:`~repro.analysis.errors.TraceErrorLog`, it instead records the
defect and stops cleanly at the last intact record, reporting what was
salvaged — the treatment a partially written capture deserves.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import TYPE_CHECKING, BinaryIO, Iterator

from ..net.packet import CapturedPacket
from .records import GLOBAL_HEADER, RECORD_HEADER, PcapGlobalHeader

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from ..analysis.errors import TraceErrorLog

__all__ = ["PcapReader", "read_pcap", "MAX_SANE_CAPLEN"]

#: Upper bound on a believable per-record capture length (matches
#: libpcap's MAXIMUM_SNAPLEN); claims beyond it are corrupt headers, and
#: honoring them would make the reader allocate unbounded buffers.
MAX_SANE_CAPLEN = 262144


def _errors_module():
    # Imported lazily: repro.analysis.engine imports this module, so a
    # top-level import of repro.analysis here would be a package cycle.
    from ..analysis import errors

    return errors


class PcapReader:
    """Iterates :class:`CapturedPacket` records out of a pcap stream.

    Handles both byte orders.  Structural damage — a truncated global or
    record header, a body shorter than its header claims, an absurd
    capture length — is reported through ``errors`` (a
    :class:`~repro.analysis.errors.TraceErrorLog`); with no log supplied
    the reader builds a strict one, preserving the historical
    raise-on-corruption behavior.  Silent truncation at the *file* level
    (as opposed to the per-packet snaplen) should never pass unnoticed.
    """

    def __init__(
        self,
        stream: BinaryIO,
        *,
        path: str = "<stream>",
        errors: "TraceErrorLog | None" = None,
    ) -> None:
        errmod = _errors_module()
        self._stream = stream
        self.path = path
        self.errors = errors if errors is not None else errmod.TraceErrorLog(path=path)
        #: Records yielded so far (what recovery mode salvaged).
        self.records_read = 0
        #: Byte offset of the first unread record (advanced per record;
        #: the streaming engine checkpoints it and seeks back on resume).
        self.offset = GLOBAL_HEADER.size
        header_bytes = stream.read(GLOBAL_HEADER.size)
        try:
            self.header, self._swapped = PcapGlobalHeader.decode(header_bytes)
        except ValueError as exc:
            kind = (
                errmod.ErrorKind.TRUNCATED_HEADER
                if len(header_bytes) < GLOBAL_HEADER.size
                else errmod.ErrorKind.BAD_MAGIC
            )
            # Without a trusted header even the byte order is unknown, so
            # nothing after it can be salvaged: fatal under any policy.
            self.errors.record(kind, offset=0, detail=str(exc), fatal=True)
            raise AssertionError("record() must raise for fatal defects")  # pragma: no cover
        self._record = struct.Struct(">IIII") if self._swapped else RECORD_HEADER

    @classmethod
    def open(
        cls, path: str | Path, *, errors: "TraceErrorLog | None" = None
    ) -> "PcapReader":
        """Open ``path`` and parse its global header.

        The stream is closed again if header parsing fails, and the
        raised error names the file.
        """
        stream = io.open(path, "rb")
        try:
            return cls(stream, path=str(path), errors=errors)
        except BaseException:
            stream.close()
            raise

    @property
    def snaplen(self) -> int:
        """The capture snaplen recorded in the file header."""
        return self.header.snaplen

    def seek_record(self, offset: int) -> None:
        """Position the stream at a record boundary (checkpoint resume).

        ``offset`` must come from a previous reader's :attr:`offset` over
        the same file; no validation beyond the seek is performed.
        """
        self._stream.seek(offset)
        self.offset = offset

    def __iter__(self) -> Iterator[CapturedPacket]:
        errmod = _errors_module()
        record_struct = self._record
        offset = self.offset
        while True:
            header = self._stream.read(record_struct.size)
            if not header:
                return
            if len(header) < record_struct.size:
                # Under a tolerant policy record() returns and the read
                # stops cleanly at the last intact record.
                self.errors.record(
                    errmod.ErrorKind.TRUNCATED_HEADER,
                    offset=offset,
                    detail=f"{len(header)} of {record_struct.size} record header bytes",
                )
                return
            ts_sec, ts_usec, caplen, wire_len = record_struct.unpack(header)
            if caplen > MAX_SANE_CAPLEN:
                self.errors.record(
                    errmod.ErrorKind.TRUNCATED_BODY,
                    offset=offset,
                    detail=f"caplen {caplen} exceeds sane maximum {MAX_SANE_CAPLEN}",
                )
                return
            data = self._stream.read(caplen)
            if len(data) < caplen:
                self.errors.record(
                    errmod.ErrorKind.TRUNCATED_BODY,
                    offset=offset,
                    detail=f"{len(data)} of {caplen} body bytes",
                )
                return
            offset += record_struct.size + caplen
            self.offset = offset
            self.records_read += 1
            yield CapturedPacket(
                ts=ts_sec + ts_usec / 1e6, data=data, wire_len=wire_len
            )

    def close(self) -> None:
        """Close the underlying stream."""
        if not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_pcap(
    path: str | Path, *, materialize: bool = True
) -> list[CapturedPacket] | Iterator[CapturedPacket]:
    """Read the packet records of ``path``.

    With ``materialize=True`` (the historical behavior) every record is
    loaded into one list — O(file size) memory, only worth opting into
    when the caller genuinely needs random access.  With
    ``materialize=False`` an iterator is returned instead: packets are
    decoded one record at a time and the file is closed when the
    iterator is exhausted (or garbage-collected), so peak memory stays
    at one record regardless of trace size.  Header damage raises
    eagerly in both modes.
    """
    reader = PcapReader.open(path)
    if materialize:
        with reader:
            return list(reader)
    return _iter_then_close(reader)


def _iter_then_close(reader: PcapReader) -> Iterator[CapturedPacket]:
    with reader:
        yield from reader
