"""The single-pass streaming dataset analyzer.

:class:`StreamDatasetAnalyzer` subclasses the batch
:class:`~repro.analysis.engine.DatasetAnalyzer` and replaces its
trace-ingestion path with a bounded-memory single pass:

* packets come from a :class:`~repro.stream.source.PacketSource`, one
  record in memory at a time, instead of a materialized list;
* flows live in a :class:`~repro.stream.flowtable.StreamFlowTable`
  with idle/hard-timeout and LRU-overflow eviction;
* per-second utilization accumulates in a sparse
  :class:`~repro.util.timeline.StreamingTimeline` (O(duration), not
  O(packets));
* a :class:`~repro.stream.aggregates.WindowAggregator` maintains live
  per-window byte/connection/retransmission aggregates;
* with a store attached, the finished-flow buffer is drained into
  checkpoint shards every ``checkpoint_every`` packets and the run can
  resume from the last published checkpoint after a crash.

Everything *around* ingestion — decode and runt handling, the error
policy and budget, the data-quality accounting, analyzer circuit
breakers, the scan filter — is inherited unchanged, and finished flows
are handed to the inherited ``_dispatch_results`` in the batch table's
canonical order (see :mod:`repro.stream.flowtable`), which is what keeps
the study digest byte-identical between the two engines under the
default eviction knobs.

The bounded-table eviction counters (``flow_overflow``,
``early_eviction``) are folded into the trace's data-quality counts
directly — they are graceful-degradation notes, not defects, so they
never consume the error budget and never raise under ``strict``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..analysis.engine import DatasetAnalyzer, TraceStats
from ..analysis.errors import (
    ErrorKind,
    ErrorPolicy,
    IngestionError,
    TraceErrorLog,
    TraceQuarantined,
)
from ..net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4, ETHERTYPE_IPX
from ..net.ipv4 import PROTO_TCP
from ..net.packet import CapturedPacket, decode_packet
from ..util.timeline import StreamingTimeline
from .aggregates import WindowAggregator, WindowObserver
from .checkpoint import StreamCheckpointer, table_restore, table_snapshot
from .flowtable import (
    DEFAULT_IDLE_TIMEOUT,
    DEFAULT_MAX_FLOWS,
    StreamFlowTable,
)
from .source import PacketSource

__all__ = ["StreamConfig", "StreamDatasetAnalyzer", "StreamDrained"]


class StreamDrained(Exception):
    """A cooperative mid-trace stop, requested via ``drain_event``.

    Raised from inside the packet loop *after* a final checkpoint has
    been flushed (when checkpointing is active), so the trace is not a
    loss: a follow-up run resumes exactly at the drained packet.  This
    is how the ingestion daemon implements graceful SIGTERM — the
    supervisor sets the event, the feed surfaces this instead of a
    half-finished trace result.
    """

    def __init__(self, label: str, packets: int) -> None:
        super().__init__(f"drained {label} after {packets} packets")
        self.label = label
        self.packets = packets


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the streaming engine.

    ``max_flows``, ``idle_timeout``, and ``hard_timeout`` can change
    which connection records are emitted (they split flows when turned
    down), so non-default values fork the analysis cache key; ``window``
    and ``checkpoint_every`` are pure observability/durability knobs and
    never affect records.
    """

    #: Aggregation window for the live per-window statistics, seconds.
    window: float = 60.0
    #: Flow-table capacity (LRU eviction beyond it).
    max_flows: int = DEFAULT_MAX_FLOWS
    #: TCP idle eviction timeout, seconds (UDP/ICMP always use the
    #: batch gap threshold).
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT
    #: Optional flow age cap, seconds.
    hard_timeout: float | None = None
    #: Packets between checkpoint flushes; 0 disables checkpointing.
    checkpoint_every: int = 0

    def parity_default(self) -> bool:
        """True when the record-affecting knobs are at their defaults,
        i.e. output is guaranteed byte-identical to the batch engine."""
        return (
            self.max_flows == DEFAULT_MAX_FLOWS
            and self.idle_timeout == DEFAULT_IDLE_TIMEOUT
            and self.hard_timeout is None
        )

    def record_knobs(self) -> dict:
        """The key-forking payload for non-parity configurations."""
        return {
            "max_flows": self.max_flows,
            "idle_timeout": self.idle_timeout,
            "hard_timeout": self.hard_timeout,
        }


class StreamDatasetAnalyzer(DatasetAnalyzer):
    """Single-pass, bounded-memory drop-in for :class:`DatasetAnalyzer`.

    Parameters beyond the inherited ones:

    ``config``
        The :class:`StreamConfig` (defaults are digest-parity safe).
    ``store`` / ``checkpoint_base``
        A :class:`~repro.store.cache.ConnStore` to flush checkpoints
        into, and the key prefix naming this run (the study passes the
        analysis cache key; each trace appends its index).  Without a
        store, checkpointing is off and finished flows stay buffered in
        memory until the trace ends — exactly the batch footprint for
        results, still streaming for packets.
    ``window_observer``
        Called once per closed aggregation window (live progress).
    ``drain_event``
        An object with ``is_set()`` (a ``threading.Event`` works).  When
        it reads true mid-trace, the engine flushes a final checkpoint
        and raises :class:`StreamDrained` instead of finishing the
        trace — the daemon's graceful-shutdown hook.
    """

    def __init__(
        self,
        name: str,
        *args,
        config: StreamConfig | None = None,
        store=None,
        checkpoint_base: str = "",
        window_observer: WindowObserver | None = None,
        drain_event=None,
        **kwargs,
    ) -> None:
        super().__init__(name, *args, **kwargs)
        self.config = config if config is not None else StreamConfig()
        self.store = store
        self.checkpoint_base = checkpoint_base or name
        self.window_observer = window_observer
        self.drain_event = drain_event
        #: Per-trace window aggregate summaries, in trace order.
        self.window_summaries: list[dict] = []

    # -- ingestion ------------------------------------------------------------

    def process_pcap(self, path: str | Path) -> TraceStats:
        """Stream one trace file through the bounded pipeline."""
        label = str(path)
        errors = self._new_error_log(label)
        try:
            source = PacketSource.open(path, errors=errors)
        except TraceQuarantined as exc:
            return self._quarantined_trace(label, errors, exc.reason)
        with source:
            return self.process_stream(source, label=label, errors=errors)

    def process_packets(
        self,
        packets: Iterable[CapturedPacket],
        label: str = "<memory>",
        errors: TraceErrorLog | None = None,
    ) -> TraceStats:
        """Stream an in-memory packet iterable (no checkpoint support)."""
        source = (
            packets
            if isinstance(packets, PacketSource)
            else PacketSource(packets, path=label)
        )
        return self.process_stream(source, label=label, errors=errors)

    def _checkpoint_key(self, trace_index: int) -> str:
        return f"{self.checkpoint_base}-t{trace_index:03d}"

    def process_stream(
        self,
        source: PacketSource,
        label: str = "<memory>",
        errors: TraceErrorLog | None = None,
    ) -> TraceStats:
        """The single pass: decode, account, flow-track, checkpoint."""
        errlog = errors if errors is not None else self._new_error_log(label)
        index = len(self.analysis.traces)
        stats = TraceStats(index=index, path=label)
        config = self.config

        checkpointer: StreamCheckpointer | None = None
        resume_state: dict | None = None
        checkpointing = (
            self.store is not None
            and config.checkpoint_every > 0
            and source.offset is not None
        )
        if checkpointing:
            key = self._checkpoint_key(index)
            loaded = StreamCheckpointer.load(self.store, key)
            if loaded is not None:
                checkpointer, resume_state = loaded
            else:
                checkpointer = StreamCheckpointer(self.store, key)

        aggregator = self._make_aggregator(resume_state)
        table = self._make_table(index, aggregator, resume_state)

        if resume_state is not None:
            trace = resume_state["trace"]
            stats.packets = trace["packets"]
            stats.timestamp_regressions = trace["timestamp_regressions"]
            stats.other_ip_protocols = dict(trace["other_ip_protocols"])
            l2 = dict(trace["l2"])
            min_ts = trace["min_ts"]
            max_ts = trace["max_ts"]
            prev_ts = trace["prev_ts"]
            timeline = StreamingTimeline.restore(resume_state["timeline"])
            saved = resume_state["errlog"]
            errlog.counts.update(saved["counts"])
            errlog.samples.extend(saved["samples"])
            errlog.records_ok = saved["records_ok"]
            source.resume_at(
                resume_state["source"]["offset"],
                resume_state["source"]["packets_read"],
            )
        else:
            l2 = {"ip": 0, "arp": 0, "ipx": 0, "other": 0}
            min_ts = None
            max_ts = 0.0
            prev_ts = None
            timeline = StreamingTimeline(1.0)

        checkpoint_every = config.checkpoint_every if checkpointer is not None else 0
        strict = self.error_policy is ErrorPolicy.STRICT
        drain = self.drain_event
        try:
            for pkt in source:
                stats.packets += 1
                try:
                    decoded = decode_packet(pkt)
                except Exception as exc:  # decoder contract is "never raise"
                    errlog.record(ErrorKind.DECODE_ERROR, detail=repr(exc))
                    continue
                if decoded.runt:
                    errlog.record(
                        ErrorKind.RUNT_FRAME,
                        detail=f"{decoded.caplen}-byte frame (record {stats.packets})",
                    )
                    continue
                errlog.records_ok += 1
                ts = decoded.ts
                if prev_ts is not None and ts < prev_ts:
                    stats.timestamp_regressions += 1
                prev_ts = ts
                if min_ts is None:
                    min_ts = max_ts = ts
                else:
                    min_ts = min(min_ts, ts)
                    max_ts = max(max_ts, ts)
                if decoded.ethertype == ETHERTYPE_IPV4:
                    l2["ip"] += 1
                elif decoded.ethertype == ETHERTYPE_ARP:
                    l2["arp"] += 1
                elif decoded.ethertype == ETHERTYPE_IPX:
                    l2["ipx"] += 1
                else:
                    l2["other"] += 1
                timeline.add(ts, decoded.wire_len)
                aggregator.observe_packet(ts, decoded.wire_len)
                if decoded.proto is not None and decoded.proto not in (1, 6, 17):
                    stats.other_ip_protocols[decoded.proto] = (
                        stats.other_ip_protocols.get(decoded.proto, 0) + 1
                    )
                try:
                    table.process(decoded)
                except Exception as exc:
                    # Same contract as the batch loop: strict propagates
                    # the raw exception (it may be an analyzer bug from
                    # the UDP observer), tolerant records and moves on.
                    if strict:
                        raise
                    errlog.record(
                        ErrorKind.DECODE_ERROR, detail=f"flow ingestion: {exc!r}"
                    )
                if checkpoint_every and stats.packets % checkpoint_every == 0:
                    try:
                        self._write_checkpoint(
                            checkpointer, source, table, aggregator, timeline,
                            errlog, stats, l2, min_ts, max_ts, prev_ts,
                        )
                    except OSError as exc:
                        # Checkpoints are durability, not correctness: a
                        # full or failing disk costs resumability, never
                        # results.  Strict still treats it as the defect
                        # it is; tolerant degrades to buffering in memory
                        # until trace end, with a data-quality row.
                        if strict:
                            raise IngestionError(
                                ErrorKind.IO_ERROR, label, None,
                                f"checkpoint publication failed: {exc}",
                            ) from exc
                        errlog.counts[ErrorKind.IO_ERROR.value] = (
                            errlog.counts.get(ErrorKind.IO_ERROR.value, 0) + 1
                        )
                        checkpoint_every = 0
                if drain is not None and drain.is_set():
                    # Checked *after* the packet is fully accounted, so
                    # the saved source offset (next unread record) agrees
                    # with every counter — resume replays nothing, skips
                    # nothing.
                    if checkpoint_every:
                        try:
                            self._write_checkpoint(
                                checkpointer, source, table, aggregator,
                                timeline, errlog, stats, l2, min_ts, max_ts,
                                prev_ts,
                            )
                        except OSError:
                            # Best-effort: a drain must not hang on a bad
                            # disk; resume replays the last good state.
                            pass
                    raise StreamDrained(label, stats.packets)
        except TraceQuarantined as exc:
            stats.l2_counts = l2
            stats.errors = dict(errlog.counts)
            stats.quarantined = True
            stats.quarantine_reason = exc.reason
            self.analysis.traces.append(stats)
            if checkpointer is not None:
                checkpointer.clear()  # nothing left worth resuming
            return stats
        stats.l2_counts = l2
        stats.errors = dict(errlog.counts)
        if min_ts is not None:
            stats.start_ts = min_ts
            stats.end_ts = max(max_ts, min_ts + 1.0)
            stats.utilization = timeline.freeze(stats.start_ts, stats.end_ts)
        aggregator.finish()
        self.window_summaries.append(aggregator.summary())
        self._finish_stream_trace(table, checkpointer, stats)
        self.analysis.traces.append(stats)
        return stats

    # -- helpers --------------------------------------------------------------

    def _make_aggregator(self, resume_state: dict | None) -> WindowAggregator:
        if resume_state is not None:
            return WindowAggregator.restore(
                resume_state["aggregator"], observer=self.window_observer
            )
        return WindowAggregator(self.config.window, observer=self.window_observer)

    def _make_table(
        self, index: int, aggregator: WindowAggregator, resume_state: dict | None
    ) -> StreamFlowTable:
        if resume_state is not None:
            table = table_restore(
                resume_state["table"],
                collect_payload=self.analysis.full_payload,
                udp_observer=self._udp_observer,
                trace_index=index,
            )
            table.flow_observer = aggregator.observe_flow
            table.tcp_observer = aggregator.observe_tcp
            return table
        config = self.config
        return StreamFlowTable(
            collect_payload=self.analysis.full_payload,
            udp_observer=self._udp_observer,
            trace_index=index,
            max_flows=config.max_flows,
            idle_timeout=config.idle_timeout,
            hard_timeout=config.hard_timeout,
            flow_observer=aggregator.observe_flow,
            tcp_observer=aggregator.observe_tcp,
        )

    def _write_checkpoint(
        self,
        checkpointer: StreamCheckpointer,
        source: PacketSource,
        table: StreamFlowTable,
        aggregator: WindowAggregator,
        timeline: StreamingTimeline,
        errlog: TraceErrorLog,
        stats: TraceStats,
        l2: dict[str, int],
        min_ts: float | None,
        max_ts: float,
        prev_ts: float | None,
    ) -> None:
        """Drain safe results into a batch shard and publish the state."""
        drained = table.drain()
        if drained:
            try:
                checkpointer.flush_batch(drained)
            except BaseException:
                # The batch never hit the disk: hand its results back to
                # the table so nothing is lost when the caller degrades.
                table.requeue(drained)
                raise
        checkpointer.save(
            {
                "trace": {
                    "packets": stats.packets,
                    "timestamp_regressions": stats.timestamp_regressions,
                    "l2": dict(l2),
                    "other_ip_protocols": dict(stats.other_ip_protocols),
                    "min_ts": min_ts,
                    "max_ts": max_ts,
                    "prev_ts": prev_ts,
                },
                "timeline": timeline.snapshot(),
                "errlog": {
                    "counts": dict(errlog.counts),
                    "samples": list(errlog.samples),
                    "records_ok": errlog.records_ok,
                },
                "aggregator": aggregator.snapshot(),
                "table": table_snapshot(table),
                "source": {
                    "offset": source.offset,
                    "packets_read": source.packets_read,
                },
            }
        )

    def _finish_stream_trace(
        self,
        table: StreamFlowTable,
        checkpointer: StreamCheckpointer | None,
        stats: TraceStats,
    ) -> None:
        """Merge, order, and dispatch every result of the trace.

        Previously drained checkpoint batches are re-read from the
        store, joined with the still-buffered results, promotion-mapped,
        and sorted into the batch table's canonical flush order before
        the inherited dispatch runs — the analyzers and the connection
        list cannot tell which engine fed them.
        """
        pending = table.finish()
        if checkpointer is not None and checkpointer.batch_digests:
            pending = checkpointer.load_batches() + pending
        promotions = table.promotions
        pending.sort(key=lambda item: item.sort_key(promotions))
        self._dispatch_results((item.result for item in pending), stats)
        if table.flow_overflow:
            stats.errors[ErrorKind.FLOW_OVERFLOW.value] = (
                stats.errors.get(ErrorKind.FLOW_OVERFLOW.value, 0)
                + table.flow_overflow
            )
        if table.early_eviction:
            stats.errors[ErrorKind.EARLY_EVICTION.value] = (
                stats.errors.get(ErrorKind.EARLY_EVICTION.value, 0)
                + table.early_eviction
            )
        if checkpointer is not None:
            checkpointer.clear()
