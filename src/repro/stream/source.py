"""The incremental packet source: one record in memory at a time.

The batch pipeline materializes a trace before analyzing it
(``read_pcap`` returns a list), which caps trace size at RAM.  A
:class:`PacketSource` instead wraps :class:`~repro.pcap.reader.PcapReader`
iteration directly — the reader already streams record by record — and
adds what the single-pass engine needs on top: progress counters, the
current record boundary (for checkpointing), and resume-by-offset.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from ..net.packet import CapturedPacket
from ..pcap.reader import PcapReader

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from ..analysis.errors import TraceErrorLog

__all__ = ["PacketSource"]


class PacketSource:
    """Iterates a trace's packets without ever materializing the trace.

    Wraps either an open :class:`PcapReader` (the normal case) or any
    iterable of :class:`CapturedPacket` (in-memory tests, generated
    traffic).  ``packets_read`` counts what this source yielded;
    ``offset`` tracks the byte position of the next unread record when
    backed by a reader, so a checkpoint can record exactly where to
    resume.
    """

    def __init__(
        self,
        packets: "PcapReader | Iterable[CapturedPacket]",
        path: str = "<memory>",
    ) -> None:
        self._reader = packets if isinstance(packets, PcapReader) else None
        self._packets = packets
        self.path = self._reader.path if self._reader is not None else path
        self.packets_read = 0

    @classmethod
    def open(
        cls, path: str | Path, *, errors: "TraceErrorLog | None" = None
    ) -> "PacketSource":
        """Open a pcap file as a streaming source."""
        return cls(PcapReader.open(path, errors=errors))

    @property
    def offset(self) -> int | None:
        """Byte offset of the next unread record (None for iterables)."""
        return self._reader.offset if self._reader is not None else None

    def resume_at(self, offset: int, packets_read: int) -> None:
        """Fast-forward to a checkpointed record boundary.

        Only file-backed sources can seek; resuming an in-memory source
        is a caller bug, reported as such.
        """
        if self._reader is None:
            raise ValueError("cannot resume an in-memory packet source")
        self._reader.seek_record(offset)
        self.packets_read = packets_read

    def __iter__(self) -> Iterator[CapturedPacket]:
        for pkt in self._packets:
            self.packets_read += 1
            yield pkt

    def close(self) -> None:
        """Close the underlying reader, if any."""
        if self._reader is not None:
            self._reader.close()

    def __enter__(self) -> "PacketSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
