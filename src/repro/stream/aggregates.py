"""Windowed online aggregates: what the stream looks like *right now*.

The batch pipeline only reports after a whole dataset is ingested.  A
streaming engine can do better: as packets flow through, a
:class:`WindowAggregator` maintains per-window byte/packet counts,
connection starts broken down by traffic category (the paper's §3-§4
application mix, via :func:`~repro.analysis.classify.classify_conn`),
and the TCP retransmission rate per window (§6's loss proxy) — all in
O(1) state per window, with dataset-wide distributions tracked through
the streaming moment and quantile estimators in :mod:`repro.util.stats`.

These aggregates are observability, not analysis products: they feed
the ``repro stream`` CLI's live progress lines and the final window
summary, and never touch the study digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..analysis.classify import classify_conn
from ..analysis.conn import ConnRecord
from ..util.stats import P2Quantile, StreamingMoments

__all__ = ["WindowStats", "WindowAggregator"]


@dataclass
class WindowStats:
    """One completed (or in-flight) aggregation window."""

    index: int
    start_ts: float
    duration: float
    packets: int = 0
    bytes: int = 0
    tcp_packets: int = 0
    retransmits: int = 0
    #: Traffic category -> connections *started* in this window.
    conn_starts: dict[str, int] = field(default_factory=dict)

    @property
    def mbps(self) -> float:
        """Mean offered load over the window, in Mbit/s."""
        if self.duration <= 0:
            return 0.0
        return self.bytes * 8 / 1e6 / self.duration

    @property
    def retransmit_rate(self) -> float:
        """Retransmitted fraction of this window's TCP packets."""
        if self.tcp_packets == 0:
            return 0.0
        return self.retransmits / self.tcp_packets

    def payload(self) -> dict:
        return {
            "index": self.index,
            "start_ts": self.start_ts,
            "duration": self.duration,
            "packets": self.packets,
            "bytes": self.bytes,
            "tcp_packets": self.tcp_packets,
            "retransmits": self.retransmits,
            "conn_starts": dict(self.conn_starts),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "WindowStats":
        return cls(**payload)


#: Called with each window as it closes (the next window has begun).
WindowObserver = Callable[[WindowStats], None]


class WindowAggregator:
    """Single-pass aggregation over fixed-duration time windows.

    Windows are anchored at the first observed timestamp and close as
    time advances past their end; ``observer`` (when given) fires once
    per closed window, which is what drives live progress output.  The
    per-window load distribution is summarized incrementally — mean and
    variance by Welford's method, median and p95 by the P² estimator —
    so the summary costs O(1) memory no matter how long the stream runs.
    """

    def __init__(
        self,
        window: float = 60.0,
        observer: WindowObserver | None = None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        self.window = window
        self.observer = observer
        self.current: WindowStats | None = None
        self.windows_closed = 0
        self.load_moments = StreamingMoments()
        self.load_median = P2Quantile(0.5)
        self.load_p95 = P2Quantile(0.95)

    def _roll(self, ts: float) -> WindowStats:
        """Close windows the stream has moved past; return the live one."""
        current = self.current
        if current is None:
            current = self.current = WindowStats(0, ts, self.window)
            return current
        while ts >= current.start_ts + current.duration:
            self._close(current)
            current = WindowStats(
                current.index + 1,
                current.start_ts + current.duration,
                self.window,
            )
            self.current = current
        return current

    def _close(self, window: WindowStats) -> None:
        self.windows_closed += 1
        mbps = window.mbps
        self.load_moments.add(mbps)
        self.load_median.add(mbps)
        self.load_p95.add(mbps)
        if self.observer is not None:
            self.observer(window)

    # -- observation hooks ---------------------------------------------------

    def observe_packet(self, ts: float, nbytes: int) -> None:
        """Account one captured packet's wire bytes."""
        window = self._roll(ts)
        window.packets += 1
        window.bytes += nbytes

    def observe_tcp(self, ts: float, retransmits: int) -> None:
        """Account one TCP segment and how many retransmissions the
        flow's state machine charged it with (0 or 1 in practice)."""
        window = self._roll(ts)
        window.tcp_packets += 1
        window.retransmits += retransmits

    def observe_flow(self, record: ConnRecord) -> None:
        """Count a newly created flow under its traffic category."""
        window = self._roll(record.first_ts)
        _, category = classify_conn(record)
        window.conn_starts[category] = window.conn_starts.get(category, 0) + 1

    def finish(self) -> None:
        """Close the final, partial window (end of stream)."""
        if self.current is not None:
            self._close(self.current)
            self.current = None

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """Dataset-wide per-window load distribution so far."""
        return {
            "windows": self.windows_closed,
            "window_seconds": self.window,
            "mbps_mean": self.load_moments.mean,
            "mbps_stddev": self.load_moments.stddev,
            "mbps_min": self.load_moments.minimum,
            "mbps_max": self.load_moments.maximum,
            "mbps_p50": self.load_median.value,
            "mbps_p95": self.load_p95.value,
        }

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "window": self.window,
            "current": None if self.current is None else self.current.payload(),
            "windows_closed": self.windows_closed,
            "load_moments": self.load_moments.snapshot(),
            "load_median": self.load_median.snapshot(),
            "load_p95": self.load_p95.snapshot(),
        }

    @classmethod
    def restore(
        cls, state: dict, observer: WindowObserver | None = None
    ) -> "WindowAggregator":
        agg = cls(window=state["window"], observer=observer)
        if state["current"] is not None:
            agg.current = WindowStats.from_payload(state["current"])
        agg.windows_closed = state["windows_closed"]
        agg.load_moments = StreamingMoments.restore(state["load_moments"])
        agg.load_median = P2Quantile.restore(state["load_median"])
        agg.load_p95 = P2Quantile.restore(state["load_p95"])
        return agg
