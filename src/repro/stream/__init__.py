"""Single-pass, bounded-memory streaming analysis engine.

The batch pipeline loads a whole trace, then analyzes it; this package
analyzes while reading.  Its contract: with the default eviction knobs,
the streaming engine's analysis products — connection records, trace
statistics, the full study digest — are byte-identical to the batch
engine's, while peak memory stays bounded by the live-flow population
instead of the trace size.  See ``docs/streaming.md``.
"""

from .aggregates import WindowAggregator, WindowStats
from .checkpoint import StreamCheckpointer
from .engine import StreamConfig, StreamDatasetAnalyzer, StreamDrained
from .flowtable import StreamFlowTable
from .source import PacketSource

__all__ = [
    "PacketSource",
    "StreamCheckpointer",
    "StreamConfig",
    "StreamDatasetAnalyzer",
    "StreamDrained",
    "StreamFlowTable",
    "WindowAggregator",
    "WindowStats",
]
