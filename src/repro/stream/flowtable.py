"""A bounded-memory flow table with digest-parity eviction ordering.

The batch :class:`~repro.analysis.flow.FlowTable` keeps every flow until
the trace ends, so its memory grows with the number of distinct flows.
:class:`StreamFlowTable` bounds that: flows are evicted when idle past a
timeout, when older than a hard age limit, or — least-recently-used
first — when the table hits ``max_flows``.  TCP state transitions reuse
:mod:`repro.analysis.tcpstate` unchanged, so an evicted flow carries the
same record the batch table would have produced for the same segments.

Parity with the batch engine is an ordering problem as much as a
content problem: the study digest hashes rendered tables whose row
order descends from the order connections were appended, and the batch
table has a precise flush order —

1. mid-trace evictions of UDP/ICMP flows whose key saw a packet after a
   ``_UDP_TIMEOUT`` gap, in packet-arrival (occurrence) order, then
2. TCP flows in creation order, then
3. remaining UDP flows in creation order, then
4. remaining ICMP flows in creation order.

The streaming table may evict a flow long before the batch table would
have flushed it, so every emitted result carries a *sort key* — a
``(phase, sequence)`` pair naming where the batch engine would have
placed it — and the engine sorts before dispatching.  Phase 0 is the
mid-trace occurrence sequence; phases 1/2/3 are TCP/UDP/ICMP creation
order.  A proactively evicted UDP/ICMP flow leaves a *tombstone*: if a
same-key packet later arrives past the batch gap threshold, the batch
table would have evicted it at that instant, so the tombstone resolves
to a phase-0 occurrence number (recorded as a *promotion*, because the
result may already have been flushed to a checkpoint shard and cannot be
rewritten).  If the packet arrives inside the gap threshold — or the
flow was TCP, which batch never evicts — the connection has genuinely
been split in two; that is counted as ``early_eviction`` and is the one
place streaming output can diverge from batch.  Under the default knobs
(no hard timeout, a TCP idle timeout far beyond any trace window, and
the UDP/ICMP idle timeout equal to the batch gap threshold) no split can
occur on a time-sorted trace and the digest is byte-identical.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable

from ..analysis.conn import ConnRecord, ConnState
from ..analysis.flow import (
    _UDP_ORIENT_PORTS,
    _UDP_TIMEOUT,
    STREAM_PORTS,
    TLS_HEAD_PORTS,
    FlowResult,
    FlowTable,
    UdpObserver,
    finalize_tcp_flow,
)
from ..analysis.tcpstate import TcpFlowState
from ..net.ethernet import ETHERTYPE_IPV4
from ..net.icmp import ICMP_ECHO_REPLY, ICMP_ECHO_REQUEST
from ..net.ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP
from ..net.packet import DecodedPacket

__all__ = [
    "StreamFlowTable",
    "PendingResult",
    "DEFAULT_MAX_FLOWS",
    "DEFAULT_IDLE_TIMEOUT",
    "PHASE_OCCURRENCE",
    "PHASE_TCP",
    "PHASE_UDP",
    "PHASE_ICMP",
]

#: Default flow-table capacity: far above any seed dataset's live-flow
#: count, so overflow eviction only fires when explicitly provoked.
DEFAULT_MAX_FLOWS = 262144

#: Default TCP idle timeout.  The batch table never times TCP out, so
#: parity requires a value beyond any plausible intra-connection gap
#: within one tap window (the paper's traces span minutes to hours).
DEFAULT_IDLE_TIMEOUT = 3600.0

PHASE_OCCURRENCE = 0
PHASE_TCP = 1
PHASE_UDP = 2
PHASE_ICMP = 3

_PHASE_OF = {"tcp": PHASE_TCP, "udp": PHASE_UDP, "icmp": PHASE_ICMP}


class PendingResult:
    """One finished flow awaiting ordered dispatch.

    ``flow_id`` is the flow's creation sequence number (unique within a
    trace) and keys the promotion map; ``(phase, seq)`` is the batch-
    equivalent sort key as known at emission time.
    """

    __slots__ = ("flow_id", "phase", "seq", "result")

    def __init__(self, flow_id: int, phase: int, seq: int, result: FlowResult) -> None:
        self.flow_id = flow_id
        self.phase = phase
        self.seq = seq
        self.result = result

    def sort_key(self, promotions: dict[int, int]) -> tuple[int, int]:
        """The final ordering key, with any phase-0 promotion applied."""
        promoted = promotions.get(self.flow_id)
        if promoted is not None:
            return (PHASE_OCCURRENCE, promoted)
        return (self.phase, self.seq)


class _StreamFlow:
    __slots__ = ("kind", "key", "record", "state", "seq")

    def __init__(
        self,
        kind: str,
        key: tuple,
        record: ConnRecord,
        state: TcpFlowState | None,
        seq: int,
    ) -> None:
        self.kind = kind
        self.key = key
        self.record = record
        self.state = state
        self.seq = seq


class _Tombstone:
    __slots__ = ("flow_id", "last_ts")

    def __init__(self, flow_id: int, last_ts: float) -> None:
        self.flow_id = flow_id
        self.last_ts = last_ts


class StreamFlowTable:
    """Bounded flow tracking over a single pass of decoded packets.

    Parameters mirror :class:`~repro.analysis.flow.FlowTable` where they
    overlap (``collect_payload``, ``udp_observer``, ``trace_index``);
    the bounding knobs are new:

    ``max_flows``
        Hard cap on simultaneously tracked flows.  Admitting a flow
        beyond it evicts the globally least-recently-touched flow first
        and counts ``flow_overflow``.
    ``idle_timeout``
        Seconds of inactivity after which a TCP flow is evicted.  UDP
        and ICMP always use the batch gap threshold (60 s), which is
        what makes their proactive eviction parity-safe.
    ``hard_timeout``
        Optional cap on flow age (``None`` disables it, the default).
    ``flow_observer``
        Called with each newly created flow's record (drives per-window
        connection-start aggregates).
    ``tcp_observer``
        Called per TCP segment with ``(ts, retransmit_delta)`` — how
        many retransmissions the flow's state machine charged the
        segment with — which is what makes a live per-window
        retransmission rate possible without a second pass.
    """

    def __init__(
        self,
        collect_payload: bool = True,
        udp_observer: UdpObserver | None = None,
        trace_index: int = -1,
        *,
        max_flows: int = DEFAULT_MAX_FLOWS,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        hard_timeout: float | None = None,
        flow_observer: Callable[[ConnRecord], None] | None = None,
        tcp_observer: Callable[[float, int], None] | None = None,
    ) -> None:
        if max_flows < 1:
            raise ValueError(f"max_flows must be positive: {max_flows}")
        self.collect_payload = collect_payload
        self.udp_observer = udp_observer
        self.trace_index = trace_index
        self.max_flows = max_flows
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.flow_observer = flow_observer
        self.tcp_observer = tcp_observer
        # Per-protocol flow maps, maintained in recency order (touched
        # flows move to the back), so the front is the LRU candidate.
        self._tables: dict[str, OrderedDict[tuple, _StreamFlow]] = {
            "tcp": OrderedDict(),
            "udp": OrderedDict(),
            "icmp": OrderedDict(),
        }
        # Creation-order queue for hard-timeout sweeps; entries are
        # dropped lazily once their flow is no longer live.  Only
        # maintained when a hard timeout is configured, so dead refs
        # cannot pile up in the default configuration.
        self._by_creation: deque[_StreamFlow] = deque()
        self._pending: list[PendingResult] = []
        self._tombstones: dict[tuple[str, tuple], _Tombstone] = {}
        #: flow_id -> occurrence sequence, for results already emitted
        #: (possibly already checkpointed) that a later same-key packet
        #: proved the batch engine would have evicted mid-trace.
        self.promotions: dict[int, int] = {}
        self._creation_seq = 0
        self._occurrence_seq = 0
        #: Capacity-forced evictions (the table was full).
        self.flow_overflow = 0
        #: Connections split by a premature eviction (a same-key packet
        #: arrived after the flow was already emitted, inside the window
        #: where the batch engine would have kept the flow alive).
        self.early_eviction = 0

    # -- introspection -----------------------------------------------------

    @property
    def live_flows(self) -> int:
        """Flows currently tracked."""
        return sum(len(table) for table in self._tables.values())

    @property
    def pending_results(self) -> int:
        """Finished flows buffered for ordered dispatch (undrained)."""
        return len(self._pending)

    # -- sequence allocation ------------------------------------------------

    def _next_creation(self) -> int:
        seq = self._creation_seq
        self._creation_seq += 1
        return seq

    def _next_occurrence(self) -> int:
        seq = self._occurrence_seq
        self._occurrence_seq += 1
        return seq

    # -- ingestion ----------------------------------------------------------

    def process(self, pkt: DecodedPacket) -> None:
        """Account one decoded packet, then sweep expired flows."""
        if pkt.ethertype == ETHERTYPE_IPV4 and pkt.proto is not None:
            if pkt.proto == PROTO_TCP and pkt.src_port is not None:
                self._process_tcp(pkt)
            elif pkt.proto == PROTO_UDP and pkt.src_port is not None:
                self._process_udp(pkt)
            elif pkt.proto == PROTO_ICMP and pkt.icmp_type is not None:
                self._process_icmp(pkt)
        self._expire(pkt.ts)

    def _resolve_tombstone(self, kind: str, key: tuple, now: float) -> None:
        """A new flow is starting on a key a previous flow once owned."""
        tomb = self._tombstones.pop((kind, key), None)
        if tomb is None:
            return
        if kind != "tcp" and now - tomb.last_ts > _UDP_TIMEOUT:
            # The batch table would have evicted the old flow at this
            # very packet: promote its result into the occurrence phase.
            self.promotions[tomb.flow_id] = self._next_occurrence()
        else:
            # Batch would have kept the old flow alive (TCP is never
            # timed out; UDP/ICMP only past the gap threshold), so the
            # eviction split one connection into two records.
            self.early_eviction += 1

    def _admit(self, flow: _StreamFlow) -> None:
        """Insert a new flow, evicting LRU victims if at capacity."""
        while self.live_flows >= self.max_flows:
            victim = self._lru_victim()
            if victim is None:  # pragma: no cover - max_flows >= 1 guard
                break
            self._evict(victim, overflow=True)
        self._tables[flow.kind][flow.key] = flow
        if self.hard_timeout is not None:
            self._by_creation.append(flow)

    def _lru_victim(self) -> _StreamFlow | None:
        """The least-recently-touched flow across all three protocols."""
        victim: _StreamFlow | None = None
        for table in self._tables.values():
            if not table:
                continue
            flow = next(iter(table.values()))
            if victim is None or flow.record.last_ts < victim.record.last_ts:
                victim = flow
        return victim

    def _process_tcp(self, pkt: DecodedPacket) -> None:
        key = FlowTable._canonical_key(pkt)
        table = self._tables["tcp"]
        flow = table.get(key)
        if flow is None:
            self._resolve_tombstone("tcp", key, pkt.ts)
            orig_ip, orig_port, resp_ip, resp_port = FlowTable._orient(pkt)
            record = ConnRecord(
                proto="tcp",
                orig_ip=orig_ip,
                resp_ip=resp_ip,
                orig_port=orig_port,
                resp_port=resp_port,
                first_ts=pkt.ts,
                last_ts=pkt.ts,
                trace_index=self.trace_index,
            )
            collect = self.collect_payload and (
                resp_port in STREAM_PORTS or resp_port in TLS_HEAD_PORTS
            )
            flow = _StreamFlow("tcp", key, record, TcpFlowState(collect), self._next_creation())
            self._admit(flow)
            if self.flow_observer is not None:
                self.flow_observer(record)
        else:
            table.move_to_end(key)
        record = flow.record
        record.last_ts = pkt.ts
        from_orig = pkt.src_ip == record.orig_ip and pkt.src_port == record.orig_port
        if from_orig:
            record.orig_pkts += 1
            record.orig_bytes += pkt.payload_len
        else:
            record.resp_pkts += 1
            record.resp_bytes += pkt.payload_len
        state = flow.state
        before = state.orig.retransmits + state.resp.retransmits
        state.on_segment(from_orig, pkt.seq, pkt.tcp_flags, pkt.payload, pkt.payload_len)
        if self.tcp_observer is not None:
            self.tcp_observer(
                pkt.ts, state.orig.retransmits + state.resp.retransmits - before
            )

    def _process_udp(self, pkt: DecodedPacket) -> None:
        key = FlowTable._canonical_key(pkt)
        table = self._tables["udp"]
        flow = table.get(key)
        if flow is not None and pkt.ts - flow.record.last_ts > _UDP_TIMEOUT:
            # The batch table's lazy eviction: a same-key packet past the
            # gap finishes the old flow here and now, in occurrence order.
            self._finish_gap(flow)
            flow = None
        if flow is None:
            self._resolve_tombstone("udp", key, pkt.ts)
            src_is_service = pkt.src_port in _UDP_ORIENT_PORTS
            dst_is_service = pkt.dst_port in _UDP_ORIENT_PORTS
            if src_is_service and not dst_is_service:
                orig = (pkt.dst_ip, pkt.dst_port)
                resp = (pkt.src_ip, pkt.src_port)
            else:
                orig = (pkt.src_ip, pkt.src_port)
                resp = (pkt.dst_ip, pkt.dst_port)
            record = ConnRecord(
                proto="udp",
                orig_ip=orig[0],
                resp_ip=resp[0],
                orig_port=orig[1],
                resp_port=resp[1],
                first_ts=pkt.ts,
                last_ts=pkt.ts,
                state=ConnState.EST,
                trace_index=self.trace_index,
            )
            flow = _StreamFlow("udp", key, record, None, self._next_creation())
            self._admit(flow)
            if self.flow_observer is not None:
                self.flow_observer(record)
        else:
            table.move_to_end(key)
        record = flow.record
        record.last_ts = pkt.ts
        from_orig = pkt.src_ip == record.orig_ip and pkt.src_port == record.orig_port
        if from_orig:
            record.orig_pkts += 1
            record.orig_bytes += pkt.payload_len
        else:
            record.resp_pkts += 1
            record.resp_bytes += pkt.payload_len
        if self.udp_observer is not None:
            self.udp_observer(record, from_orig, pkt)

    def _process_icmp(self, pkt: DecodedPacket) -> None:
        if pkt.icmp_type == ICMP_ECHO_REQUEST:
            key = (pkt.src_ip, pkt.dst_ip)
            from_orig = True
        elif pkt.icmp_type == ICMP_ECHO_REPLY:
            key = (pkt.dst_ip, pkt.src_ip)
            from_orig = False
        else:
            key = (pkt.src_ip, pkt.dst_ip)
            from_orig = True
        table = self._tables["icmp"]
        flow = table.get(key)
        if flow is not None and pkt.ts - flow.record.last_ts > _UDP_TIMEOUT:
            self._finish_gap(flow)
            flow = None
        if flow is None:
            self._resolve_tombstone("icmp", key, pkt.ts)
            record = ConnRecord(
                proto="icmp",
                orig_ip=key[0],
                resp_ip=key[1],
                orig_port=0,
                resp_port=0,
                first_ts=pkt.ts,
                last_ts=pkt.ts,
                state=ConnState.EST,
                trace_index=self.trace_index,
            )
            flow = _StreamFlow("icmp", key, record, None, self._next_creation())
            self._admit(flow)
            if self.flow_observer is not None:
                self.flow_observer(record)
        else:
            table.move_to_end(key)
        record = flow.record
        record.last_ts = pkt.ts
        if from_orig:
            record.orig_pkts += 1
            record.orig_bytes += pkt.payload_len
        else:
            record.resp_pkts += 1
            record.resp_bytes += pkt.payload_len

    # -- eviction ------------------------------------------------------------

    def _finalize(self, flow: _StreamFlow) -> FlowResult:
        if flow.state is not None:
            return finalize_tcp_flow(flow.record, flow.state)
        return FlowResult(record=flow.record)

    def _remove(self, flow: _StreamFlow) -> None:
        del self._tables[flow.kind][flow.key]

    def _finish_gap(self, flow: _StreamFlow) -> None:
        """Batch-equivalent mid-trace eviction: phase 0, occurrence order."""
        self._remove(flow)
        self._pending.append(
            PendingResult(flow.seq, PHASE_OCCURRENCE, self._next_occurrence(), self._finalize(flow))
        )

    def _evict(self, flow: _StreamFlow, *, overflow: bool = False) -> None:
        """Proactive eviction (idle, hard, or capacity pressure).

        The result keeps its end-of-trace phase for now; a tombstone
        watches the key so a later same-key packet can promote it to the
        occurrence phase (or prove it a split).
        """
        self._remove(flow)
        self._pending.append(
            PendingResult(flow.seq, _PHASE_OF[flow.kind], flow.seq, self._finalize(flow))
        )
        self._tombstones[(flow.kind, flow.key)] = _Tombstone(flow.seq, flow.record.last_ts)
        if overflow:
            self.flow_overflow += 1

    def _expire(self, now: float) -> None:
        """Sweep idle and over-age flows, oldest first."""
        for kind, timeout in (
            ("tcp", self.idle_timeout),
            ("udp", _UDP_TIMEOUT),
            ("icmp", _UDP_TIMEOUT),
        ):
            table = self._tables[kind]
            while table:
                flow = next(iter(table.values()))
                if now - flow.record.last_ts <= timeout:
                    break
                self._evict(flow)
        if self.hard_timeout is None:
            return
        queue = self._by_creation
        while queue:
            flow = queue[0]
            if self._tables[flow.kind].get(flow.key) is not flow:
                queue.popleft()  # already evicted or finished
                continue
            if now - flow.record.first_ts <= self.hard_timeout:
                break
            queue.popleft()
            self._evict(flow)

    # -- draining ------------------------------------------------------------

    def drain(self) -> list[PendingResult]:
        """Hand over buffered results whose sort keys can no longer change.

        A result with a live tombstone may still be promoted into the
        occurrence phase by a future packet, so it stays buffered; all
        others are safe to flush into a checkpoint shard.  Results that
        were already *promoted* are also safe — the promotion map travels
        in the checkpoint state, not in the result.
        """
        watched = {tomb.flow_id for tomb in self._tombstones.values()}
        drained: list[PendingResult] = []
        kept: list[PendingResult] = []
        for pending in self._pending:
            (kept if pending.flow_id in watched else drained).append(pending)
        self._pending = kept
        return drained

    def requeue(self, results: list[PendingResult]) -> None:
        """Put drained-but-unpersisted results back in the buffer.

        The checkpointer calls this when a batch flush dies on an I/O
        fault: the results return to ``_pending`` so no connection is
        lost, and the next drain (or ``finish``) hands them over again.
        Buffer order is irrelevant — dispatch sorts by
        :meth:`PendingResult.sort_key` at trace end.
        """
        self._pending[:0] = results

    def finish(self) -> list[PendingResult]:
        """Finish every live flow and return all still-buffered results.

        Surviving flows get their batch flush position: end-of-trace
        phase by protocol, creation order within it.  The caller merges
        these with previously drained batches, applies ``promotions``,
        and sorts by :meth:`PendingResult.sort_key`.
        """
        for kind in ("tcp", "udp", "icmp"):
            table = self._tables[kind]
            for flow in table.values():
                self._pending.append(
                    PendingResult(flow.seq, _PHASE_OF[kind], flow.seq, self._finalize(flow))
                )
            table.clear()
        self._by_creation.clear()
        self._tombstones.clear()
        pending = self._pending
        self._pending = []
        return pending
