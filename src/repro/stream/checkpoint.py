"""Live checkpoints: crash-safe snapshots of a streaming run.

A long single-pass run should not lose hours of work to a crash, and it
should not have to buffer every finished connection in memory until the
trace ends.  Both problems have the same answer: periodically *drain*
the finished-flow buffer into a content-addressed **result batch** shard
(kind 3, same RCS1 framing as the rest of the store) and write a small
**state** shard capturing everything needed to continue — live flows
(including reassembled TCP stream bytes), the trace accumulators, the
window aggregator, the error log, and the byte offset of the next
unread pcap record.

A checkpoint becomes visible through a *checkpoint manifest*: a JSON
file in the store's manifests directory marked ``"kind": "checkpoint"``.
The manifest is published atomically after its objects exist, so a
reader sees either a complete checkpoint or none.  The store's
manifest listing skips checkpoint manifests (they are not analyses) but
its garbage collector treats their objects as referenced, so an
interrupted run's checkpoint survives a ``store gc``.  When the trace
completes, the manifest is deleted and the batch objects become
unreferenced — the next gc sweeps them.

Resume restores the engine state, seeks the reader to the recorded
record boundary, and continues; drained batches are re-read only at
trace end, when results are merged, promotion-sorted, and dispatched.
Connection records, trace statistics, and window aggregates resume
exactly.  Per-datagram analyzer state (``on_udp`` accumulations from
before the checkpoint) is not captured — ``on_connection`` dispatch
happens entirely at trace end and is unaffected — so a resumed run is
bit-equal to an uninterrupted one unless stateful UDP analyzers are
attached (see ``docs/streaming.md``).
"""

from __future__ import annotations

from ..analysis.conn import ConnRecord, ConnState
from ..analysis.flow import FlowResult
from ..analysis.tcpstate import TcpDirectionState, TcpFlowState
from ..store import codec
from ..store.cache import ConnStore
from ..store.schema import SCHEMA_VERSION
from ..store.shard import (
    KIND_STREAM,
    ShardError,
    decode_conn_columns,
    decode_shard,
    encode_conn_columns,
    encode_shard,
)
from .flowtable import PendingResult, StreamFlowTable

__all__ = [
    "StreamCheckpointer",
    "encode_result_batch",
    "decode_result_batch",
    "encode_state",
    "decode_state",
    "table_snapshot",
    "table_restore",
]

#: Prefix distinguishing checkpoint manifests from analysis manifests.
_MANIFEST_PREFIX = "ckpt-"


# -- TCP state serialization -------------------------------------------------


def _direction_payload(direction: TcpDirectionState) -> dict:
    return {
        "next_seq": direction.next_seq,
        "pkts": direction.pkts,
        "payload_bytes": direction.payload_bytes,
        "retransmits": direction.retransmits,
        "keepalive_retransmits": direction.keepalive_retransmits,
        "retransmit_bytes": direction.retransmit_bytes,
        "stream": bytes(direction.stream),
        "stream_gap": direction.stream_gap,
        "stream_overflow": direction.stream_overflow,
        "collect_stream": direction.collect_stream,
        "fin_seen": direction.fin_seen,
    }


def _direction_from_payload(payload: dict) -> TcpDirectionState:
    direction = TcpDirectionState(payload["collect_stream"])
    direction.next_seq = payload["next_seq"]
    direction.pkts = payload["pkts"]
    direction.payload_bytes = payload["payload_bytes"]
    direction.retransmits = payload["retransmits"]
    direction.keepalive_retransmits = payload["keepalive_retransmits"]
    direction.retransmit_bytes = payload["retransmit_bytes"]
    direction.stream = bytearray(payload["stream"])
    direction.stream_gap = payload["stream_gap"]
    direction.stream_overflow = payload["stream_overflow"]
    direction.fin_seen = payload["fin_seen"]
    return direction


def _tcpstate_payload(state: TcpFlowState) -> dict:
    return {
        "orig": _direction_payload(state.orig),
        "resp": _direction_payload(state.resp),
        "syn_seen": state.syn_seen,
        "synack_seen": state.synack_seen,
        "rst_by_resp": state.rst_by_resp,
        "rst_by_orig": state.rst_by_orig,
        "data_seen": state.data_seen,
    }


def _tcpstate_from_payload(payload: dict) -> TcpFlowState:
    state = TcpFlowState()
    state.orig = _direction_from_payload(payload["orig"])
    state.resp = _direction_from_payload(payload["resp"])
    state.syn_seen = payload["syn_seen"]
    state.synack_seen = payload["synack_seen"]
    state.rst_by_resp = payload["rst_by_resp"]
    state.rst_by_orig = payload["rst_by_orig"]
    state.data_seen = payload["data_seen"]
    return state


# -- connection record serialization ----------------------------------------


def _record_payload(record: ConnRecord) -> dict:
    return {
        "proto": record.proto,
        "orig_ip": record.orig_ip,
        "resp_ip": record.resp_ip,
        "orig_port": record.orig_port,
        "resp_port": record.resp_port,
        "first_ts": record.first_ts,
        "last_ts": record.last_ts,
        "orig_pkts": record.orig_pkts,
        "resp_pkts": record.resp_pkts,
        "orig_bytes": record.orig_bytes,
        "resp_bytes": record.resp_bytes,
        "state": record.state.value,
        "retransmits": record.retransmits,
        "keepalive_retransmits": record.keepalive_retransmits,
        "retransmit_bytes": record.retransmit_bytes,
        "trace_index": record.trace_index,
        "app": record.app,
        "notes": record.notes,
    }


def _record_from_payload(payload: dict) -> ConnRecord:
    payload = dict(payload)
    payload["state"] = ConnState(payload["state"])
    return ConnRecord(**payload)


# -- flow-table serialization ------------------------------------------------


def table_snapshot(table: StreamFlowTable) -> dict:
    """Everything a :class:`StreamFlowTable` needs to continue later.

    Flow maps are captured in recency (LRU) order, the creation queue as
    flow sequence numbers, and still-buffered results with their sort
    keys, so a restored table evicts, promotes, and orders exactly as
    the uninterrupted one would have.
    """
    flows: dict[str, list[dict]] = {}
    for kind, mapping in table._tables.items():
        flows[kind] = [
            {
                "key": flow.key,
                "record": _record_payload(flow.record),
                "state": None if flow.state is None else _tcpstate_payload(flow.state),
                "seq": flow.seq,
            }
            for flow in mapping.values()
        ]
    creation_order = [
        flow.seq
        for flow in table._by_creation
        if table._tables[flow.kind].get(flow.key) is flow
    ]
    return {
        "max_flows": table.max_flows,
        "idle_timeout": table.idle_timeout,
        "hard_timeout": table.hard_timeout,
        "flows": flows,
        "creation_order": creation_order,
        "pending": [
            {
                "flow_id": pending.flow_id,
                "phase": pending.phase,
                "seq": pending.seq,
                "record": _record_payload(pending.result.record),
                "orig_stream": pending.result.orig_stream,
                "resp_stream": pending.result.resp_stream,
                "stream_truncated": pending.result.stream_truncated,
            }
            for pending in table._pending
        ],
        "tombstones": [
            {"kind": kind, "key": key, "flow_id": tomb.flow_id, "last_ts": tomb.last_ts}
            for (kind, key), tomb in table._tombstones.items()
        ],
        "promotions": dict(table.promotions),
        "creation_seq": table._creation_seq,
        "occurrence_seq": table._occurrence_seq,
        "flow_overflow": table.flow_overflow,
        "early_eviction": table.early_eviction,
    }


def table_restore(
    state: dict,
    *,
    collect_payload: bool,
    udp_observer=None,
    trace_index: int = -1,
) -> StreamFlowTable:
    """Rebuild a :class:`StreamFlowTable` from :func:`table_snapshot`."""
    table = StreamFlowTable(
        collect_payload=collect_payload,
        udp_observer=udp_observer,
        trace_index=trace_index,
        max_flows=state["max_flows"],
        idle_timeout=state["idle_timeout"],
        hard_timeout=state["hard_timeout"],
    )
    from .flowtable import _StreamFlow, _Tombstone  # sibling internals

    by_seq: dict[int, _StreamFlow] = {}
    for kind, entries in state["flows"].items():
        mapping = table._tables[kind]
        for entry in entries:
            flow = _StreamFlow(
                kind,
                entry["key"],
                _record_from_payload(entry["record"]),
                None if entry["state"] is None else _tcpstate_from_payload(entry["state"]),
                entry["seq"],
            )
            mapping[flow.key] = flow
            by_seq[flow.seq] = flow
    if state["hard_timeout"] is not None:
        table._by_creation.extend(
            by_seq[seq] for seq in state["creation_order"] if seq in by_seq
        )
    for entry in state["pending"]:
        table._pending.append(
            PendingResult(
                entry["flow_id"],
                entry["phase"],
                entry["seq"],
                FlowResult(
                    record=_record_from_payload(entry["record"]),
                    orig_stream=entry["orig_stream"],
                    resp_stream=entry["resp_stream"],
                    stream_truncated=entry["stream_truncated"],
                ),
            )
        )
    for entry in state["tombstones"]:
        table._tombstones[(entry["kind"], entry["key"])] = _Tombstone(
            entry["flow_id"], entry["last_ts"]
        )
    table.promotions = dict(state["promotions"])
    table._creation_seq = state["creation_seq"]
    table._occurrence_seq = state["occurrence_seq"]
    table.flow_overflow = state["flow_overflow"]
    table.early_eviction = state["early_eviction"]
    return table


# -- shard payloads ----------------------------------------------------------


def encode_result_batch(results: list[PendingResult]) -> bytes:
    """Frame drained results as one kind-3 shard.

    Records ride in the same struct-packed columns as trace shards;
    sort keys and reassembled streams travel alongside, row-aligned.
    """
    sections = {
        "keys": codec.encode(
            [(pending.flow_id, pending.phase, pending.seq) for pending in results]
        ),
        "conns": encode_conn_columns([pending.result.record for pending in results]),
        "streams": codec.encode(
            [
                (
                    pending.result.orig_stream,
                    pending.result.resp_stream,
                    pending.result.stream_truncated,
                )
                for pending in results
            ]
        ),
    }
    return encode_shard(KIND_STREAM, sections)


def decode_result_batch(data: bytes, path: str = "<shard>") -> list[PendingResult]:
    """Decode one result-batch shard back into pending results."""
    _, _, sections = decode_shard(data, path, expect_kind=KIND_STREAM)
    if "keys" not in sections:
        raise _batch_sections_error(path, sections)
    keys = codec.decode(sections["keys"])
    records = decode_conn_columns(sections["conns"], path)
    streams = codec.decode(sections["streams"])
    return [
        PendingResult(
            flow_id,
            phase,
            seq,
            FlowResult(
                record=record,
                orig_stream=orig,
                resp_stream=resp,
                stream_truncated=truncated,
            ),
        )
        for (flow_id, phase, seq), record, (orig, resp, truncated) in zip(
            keys, records, streams
        )
    ]


def encode_state(payload: dict) -> bytes:
    """Frame one engine-state snapshot as a kind-3 shard."""
    return encode_shard(KIND_STREAM, {"state": codec.encode(payload)})


def decode_state(data: bytes, path: str = "<shard>") -> dict:
    """Decode one engine-state shard."""
    _, _, sections = decode_shard(data, path, expect_kind=KIND_STREAM)
    if "state" not in sections:
        raise _state_sections_error(path, sections)
    return codec.decode(sections["state"])


def _batch_sections_error(path: str, sections: dict) -> ShardError:
    from ..analysis.errors import ErrorKind

    return ShardError(
        ErrorKind.DECODE_ERROR, path, None,
        f"not a result-batch shard (sections: {sorted(sections)})",
    )


def _state_sections_error(path: str, sections: dict) -> ShardError:
    from ..analysis.errors import ErrorKind

    return ShardError(
        ErrorKind.DECODE_ERROR, path, None,
        f"not a state shard (sections: {sorted(sections)})",
    )


# -- the checkpointer --------------------------------------------------------


class StreamCheckpointer:
    """Manages one trace's checkpoint lifecycle against a store.

    ``key`` names the run (the engine derives it from the analysis cache
    key and the trace index, so concurrent dataset workers never
    collide).  The lifecycle is: any number of ``flush_batch`` +
    ``save`` rounds while streaming, ``load``/``load_batches`` on
    resume, and ``clear`` once the trace's results were dispatched.
    """

    def __init__(self, store: ConnStore, key: str) -> None:
        self.store = store
        self.key = key
        #: Digests of every result batch drained so far, oldest first.
        self.batch_digests: list[str] = []

    @property
    def manifest_key(self) -> str:
        return _MANIFEST_PREFIX + self.key

    def flush_batch(self, results: list[PendingResult]) -> str:
        """Persist one drained result batch; returns its digest."""
        digest = self.store.put_object(encode_result_batch(results))
        self.batch_digests.append(digest)
        return digest

    def save(self, state: dict) -> None:
        """Publish a checkpoint: state object first, manifest last.

        The manifest write is atomic, so a crash between the two leaves
        at worst an unreferenced object for gc — never a manifest
        pointing at missing bytes.
        """
        state = dict(state)
        state["batches"] = list(self.batch_digests)
        digest = self.store.put_object(encode_state(state))
        self.store.manifests_dir.mkdir(parents=True, exist_ok=True)
        self.store._write_manifest(
            self.manifest_key,
            {
                "schema": SCHEMA_VERSION,
                "kind": "checkpoint",
                "key": self.key,
                "state": digest,
                "batches": list(self.batch_digests),
            },
        )

    @classmethod
    def load(cls, store: ConnStore, key: str) -> "tuple[StreamCheckpointer, dict] | None":
        """Open an existing checkpoint, or None when none was published."""
        checkpointer = cls(store, key)
        manifest = store.lookup(checkpointer.manifest_key)
        if manifest is None or manifest.get("kind") != "checkpoint":
            return None
        state = decode_state(
            store.get_object(manifest["state"]),
            str(store._object_path(manifest["state"])),
        )
        checkpointer.batch_digests = list(state.get("batches", []))
        return checkpointer, state

    def load_batches(self) -> list[PendingResult]:
        """Re-read every drained batch, oldest first."""
        results: list[PendingResult] = []
        for digest in self.batch_digests:
            results.extend(
                decode_result_batch(
                    self.store.get_object(digest),
                    str(self.store._object_path(digest)),
                )
            )
        return results

    def clear(self) -> None:
        """Retire the checkpoint (the trace finished and dispatched).

        Goes through the store's delete hook so a replicated tiered
        store retires the mirror copies along with the primary."""
        self.store._delete_manifest(self.manifest_key)
        self.batch_digests = []
