"""The unit-of-work model for the parallel execution runtime.

A study decomposes into :class:`Task` units — one per dataset today,
finer-grained (per-trace) tomorrow — held in a :class:`TaskGraph` that
validates keys and dependencies up front so the scheduler can assume a
well-formed DAG.  Payloads must be plain picklable data (dicts, tuples,
scalars): they cross a process boundary under ``--jobs N``.

Determinism note: tasks carry no RNG state of their own.  Every unit
derives its random streams from the *study* seed plus its own stable
key (see :mod:`repro.util.rng`), so the bytes a unit produces cannot
depend on which worker ran it, in what order, or how many workers there
were.  ``docs/runtime.md`` spells out the seeding rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = ["Task", "TaskGraph", "TaskGraphError"]


class TaskGraphError(ValueError):
    """A malformed task graph: duplicate keys, unknown deps, or a cycle."""


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    ``key`` is the unit's stable identity — it names the unit in
    telemetry events, seeds its RNG streams, and is what dependencies
    point at.  ``payload`` is the picklable spec handed to the worker
    callable; ``kind`` groups units for display ("dataset", ...).
    """

    key: str
    payload: Mapping
    kind: str = "unit"
    deps: tuple[str, ...] = ()


@dataclass
class TaskGraph:
    """A validated DAG of :class:`Task` units."""

    tasks: dict[str, Task] = field(default_factory=dict)

    def add(self, task: Task) -> Task:
        """Register one task; duplicate keys are rejected."""
        if task.key in self.tasks:
            raise TaskGraphError(f"duplicate task key {task.key!r}")
        self.tasks[task.key] = task
        return task

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks.values())

    def validate(self) -> None:
        """Check every dependency exists and the graph is acyclic."""
        for task in self.tasks.values():
            for dep in task.deps:
                if dep not in self.tasks:
                    raise TaskGraphError(
                        f"task {task.key!r} depends on unknown task {dep!r}"
                    )
        self.topo_order()

    def topo_order(self) -> list[Task]:
        """Tasks in dependency order (stable: insertion order breaks ties)."""
        indegree = {key: len(task.deps) for key, task in self.tasks.items()}
        dependents: dict[str, list[str]] = {key: [] for key in self.tasks}
        for task in self.tasks.values():
            for dep in task.deps:
                if dep in dependents:
                    dependents[dep].append(task.key)
        ready = [key for key in self.tasks if indegree[key] == 0]
        order: list[Task] = []
        while ready:
            key = ready.pop(0)
            order.append(self.tasks[key])
            for dependent in dependents[key]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self.tasks):
            stuck = sorted(set(self.tasks) - {task.key for task in order})
            raise TaskGraphError(f"dependency cycle involving {stuck}")
        return order

    def ready(self, done: set[str], running: set[str]) -> list[Task]:
        """Tasks whose dependencies are all done and that aren't started."""
        return [
            task
            for task in self.tasks.values()
            if task.key not in done
            and task.key not in running
            and all(dep in done for dep in task.deps)
        ]
