"""The process-pool scheduler: fan units out, survive worker faults.

``ProcessPoolScheduler`` runs a :class:`~repro.runtime.task.TaskGraph`
across ``jobs`` worker processes.  Each unit runs in its own forked
child (one process per unit, bounded by ``jobs``): a unit that raises,
dies, or overruns its timeout only costs that unit, never the pool, and
is retried with exponential backoff before being reported as a failure
through the :class:`~repro.analysis.errors.ErrorKind` taxonomy
(``worker_error``) instead of aborting the run.

Two watchdog behaviors guard the pool itself (see ``docs/runtime.md``):
with :attr:`RetryPolicy.heartbeat_timeout` set, every child sends
heartbeat pings over its result pipe, and a worker that stays *alive
but silent* past the limit is SIGKILLed and its unit requeued —
distinct from the deadline ``timeout``, which fires even while a worker
is making progress.  And a *poison unit* — one whose work reliably
kills its worker — is quarantined after :attr:`RetryPolicy.max_crashes`
hard deaths (crashes plus hang-kills) rather than grinding through
every retry: it lands in the study's ``unit_failures`` and the pool
moves on.

With ``jobs=1`` no subprocess is ever created — units run inline in the
calling process, in dependency order, which keeps single-job runs
byte-identical to (and as debuggable as) plain sequential code.

The worker callable must be importable at module top level and its
payloads plain picklable data; results travel back over a pipe, so they
must pickle too.  Determinism comes from the units themselves (seeded
by study seed + unit key, see :mod:`repro.runtime.task`): the scheduler
may finish units in any order, but callers index results by unit key,
so assembly order never depends on completion order.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..analysis.errors import ErrorKind, TraceError
from .task import Task, TaskGraph
from .telemetry import COUNTER_KEYS, TelemetryLog

__all__ = [
    "RetryPolicy",
    "UnitResult",
    "ProcessPoolScheduler",
    "resolve_jobs",
    "start_heartbeat",
    "stop_heartbeat",
]

#: How long the parent waits on result pipes per poll cycle.
_POLL_SECONDS = 0.05

#: How long a finished worker waits for its beat thread to wind down.
_HEARTBEAT_JOIN_SECONDS = 1.0


def start_heartbeat(
    conn, send_lock: threading.Lock, interval: float
) -> tuple[threading.Thread, threading.Event]:
    """Start the liveness beat shared by pool workers and daemon feeds.

    A daemon thread sends ``("hb", ts)`` pings over ``conn`` every
    ``interval`` seconds until the returned event is set; ``send_lock``
    keeps a ping from interleaving with a real message on the pipe.  A
    process wedged hard enough to stop its threads stops beating too —
    which is exactly the signal the supervising side watches for.
    """
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(interval):
            try:
                with send_lock:
                    conn.send(("hb", time.monotonic()))
            except OSError:
                return  # supervisor went away; nothing left to prove

    thread = threading.Thread(target=_beat, name="hb", daemon=True)
    thread.start()
    return thread, stop


def stop_heartbeat(
    thread: threading.Thread | None,
    stop: threading.Event | None,
    timeout: float = _HEARTBEAT_JOIN_SECONDS,
) -> None:
    """Wind a heartbeat down promptly on normal exit.

    The join (with timeout) matters in long-lived processes: a beat
    thread left running at interpreter shutdown can wake after module
    globals are torn down and die noisily.  Accepts ``None`` for both so
    callers without a heartbeat need no branch.
    """
    if stop is not None:
        stop.set()
    if thread is not None:
        thread.join(timeout)


def resolve_jobs(jobs: int | None) -> int:
    """Map a user-facing ``--jobs`` value to a worker count.

    ``None`` and ``0`` mean "all cores"; anything else is clamped to at
    least 1.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


@dataclass(frozen=True)
class RetryPolicy:
    """How a faulty unit is retried before it is declared failed."""

    #: Re-runs after the first failure (attempts = ``max_retries + 1``).
    max_retries: int = 2
    #: First backoff in seconds; doubles per subsequent retry.
    backoff: float = 0.25
    #: Per-attempt wall-clock limit (None = no limit).
    timeout: float | None = None
    #: Watchdog: a worker silent this long (no heartbeat) while still
    #: alive is presumed hung — wedged in a syscall, stopped, or
    #: deadlocked — and is SIGKILLed and requeued.  Distinct from
    #: ``timeout``, which bounds *total* attempt time even while the
    #: worker is making progress.  ``None`` disables the watchdog.
    heartbeat_timeout: float | None = None
    #: Poison-unit quarantine: a unit that kills this many workers
    #: (crashes or hang-kills, across attempts) is declared failed
    #: immediately, even with retries to spare — a deterministic
    #: crasher must not grind through every retry the policy allows.
    max_crashes: int = 3

    def backoff_for(self, attempt: int) -> float:
        """Backoff before re-running after failed attempt ``attempt``."""
        return self.backoff * (2 ** (attempt - 1))

    @property
    def heartbeat_interval(self) -> float | None:
        """How often a worker beats (several beats per timeout window,
        so one missed scheduling slice never looks like a hang)."""
        if self.heartbeat_timeout is None:
            return None
        return self.heartbeat_timeout / 4.0


@dataclass
class UnitResult:
    """What became of one unit: its value, or its accounted failure."""

    key: str
    status: str  # "ok" | "failed" | "skipped"
    value: object = None
    attempts: int = 0
    wall_s: float = 0.0
    error: TraceError | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class _Running:
    """Parent-side state of one in-flight child process."""

    task: Task
    process: multiprocessing.process.BaseProcess
    conn: multiprocessing.connection.Connection
    attempt: int
    started: float
    deadline: float | None
    #: When the child last proved liveness (a heartbeat or launch time).
    last_beat: float = 0.0


def _child_main(
    conn,
    worker: Callable[[Mapping], object],
    payload: Mapping,
    heartbeat_interval: float | None = None,
) -> None:
    """Child-process entry: run the worker, ship back one message.

    With a heartbeat interval, a daemon thread sends ``("hb", ts)``
    pings while the worker runs; the parent's watchdog treats their
    absence as a hang.  The send lock keeps a ping from interleaving
    with the final result on the pipe.  A worker wedged hard enough to
    stop its threads (stopped, or stuck with the GIL held in a native
    call) stops beating too — which is exactly the signal.
    """
    send_lock = threading.Lock()
    beat: threading.Thread | None = None
    stop: threading.Event | None = None
    if heartbeat_interval is not None:
        beat, stop = start_heartbeat(conn, send_lock, heartbeat_interval)
    try:
        value = worker(payload)
        with send_lock:
            conn.send(("ok", value))
    except Exception:
        tail = traceback.format_exc(limit=10)
        with send_lock:
            conn.send(("error", tail[-4000:]))
    finally:
        stop_heartbeat(beat, stop)
        conn.close()


class ProcessPoolScheduler:
    """Run a task graph across a bounded pool of worker processes."""

    def __init__(
        self,
        worker: Callable[[Mapping], object],
        jobs: int | None = None,
        retry: RetryPolicy | None = None,
        telemetry: TelemetryLog | None = None,
    ) -> None:
        self.worker = worker
        self.jobs = resolve_jobs(jobs)
        self.retry = retry if retry is not None else RetryPolicy()
        self.telemetry = telemetry
        # Fork keeps worker dispatch cheap and lets tests monkeypatch the
        # worker callable (the child inherits parent memory); fall back to
        # the platform default where fork does not exist.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    # -- public API --------------------------------------------------------

    def run(self, graph: TaskGraph) -> dict[str, UnitResult]:
        """Execute every unit; returns results keyed by unit key.

        Never raises for unit failures — a unit that exhausts its
        retries yields a ``failed`` :class:`UnitResult` carrying a
        :class:`~repro.analysis.errors.TraceError` of kind
        ``worker_error``, and units downstream of it are ``skipped``.
        """
        graph.validate()
        started = time.monotonic()
        if self.jobs <= 1:
            results = self._run_inline(graph)
        else:
            results = self._run_pool(graph)
        self._emit(
            "study_finish",
            wall_s=round(time.monotonic() - started, 6),
            units_ok=sum(1 for r in results.values() if r.ok),
            units_failed=sum(1 for r in results.values() if r.status == "failed"),
        )
        return results

    # -- shared helpers ----------------------------------------------------

    def _emit(self, event: str, **fields: object) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(event, **fields)

    def _counters(self, value: object) -> dict:
        if isinstance(value, Mapping):
            return {key: value.get(key) for key in COUNTER_KEYS}
        return {key: None for key in COUNTER_KEYS}

    def _finish_ok(
        self, task: Task, value: object, attempts: int, wall_s: float
    ) -> UnitResult:
        self._emit(
            "unit_finish",
            unit=task.key,
            kind=task.kind,
            status="ok",
            attempts=attempts,
            wall_s=round(wall_s, 6),
            **self._counters(value),
        )
        return UnitResult(task.key, "ok", value, attempts, wall_s)

    def _finish_failed(
        self, task: Task, detail: str, attempts: int, wall_s: float
    ) -> UnitResult:
        error = TraceError(ErrorKind.WORKER_ERROR, task.key, None, detail)
        self._emit(
            "unit_finish",
            unit=task.key,
            kind=task.kind,
            status="failed",
            attempts=attempts,
            wall_s=round(wall_s, 6),
            error=detail,
            **self._counters(None),
        )
        return UnitResult(task.key, "failed", None, attempts, wall_s, error)

    def _skip(self, task: Task, failed_dep: str) -> UnitResult:
        detail = f"dependency {failed_dep} failed"
        self._emit("unit_skipped", unit=task.key, error=detail)
        return UnitResult(
            task.key,
            "skipped",
            error=TraceError(ErrorKind.WORKER_ERROR, task.key, None, detail),
        )

    def _failed_dep(
        self, task: Task, results: dict[str, UnitResult]
    ) -> str | None:
        for dep in task.deps:
            if dep in results and not results[dep].ok:
                return dep
        return None

    # -- inline execution (jobs=1) -----------------------------------------

    def _run_inline(self, graph: TaskGraph) -> dict[str, UnitResult]:
        results: dict[str, UnitResult] = {}
        for task in graph.topo_order():
            failed_dep = self._failed_dep(task, results)
            if failed_dep is not None:
                results[task.key] = self._skip(task, failed_dep)
                continue
            unit_started = time.monotonic()
            for attempt in range(1, self.retry.max_retries + 2):
                self._emit(
                    "unit_start", unit=task.key, kind=task.kind, attempt=attempt
                )
                try:
                    value = self.worker(task.payload)
                except Exception as exc:
                    detail = f"{type(exc).__name__}: {exc}"
                    if attempt > self.retry.max_retries:
                        results[task.key] = self._finish_failed(
                            task, detail, attempt, time.monotonic() - unit_started
                        )
                        break
                    backoff = self.retry.backoff_for(attempt)
                    self._emit(
                        "unit_retry",
                        unit=task.key,
                        attempt=attempt,
                        backoff_s=round(backoff, 6),
                        error=detail,
                    )
                    time.sleep(backoff)
                else:
                    results[task.key] = self._finish_ok(
                        task, value, attempt, time.monotonic() - unit_started
                    )
                    break
        return results

    # -- pooled execution (jobs>1) -----------------------------------------

    def _launch(self, task: Task, attempt: int) -> _Running:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_child_main,
            args=(
                child_conn,
                self.worker,
                task.payload,
                self.retry.heartbeat_interval,
            ),
            name=f"repro-unit-{task.key}",
        )
        process.start()
        child_conn.close()
        self._emit("unit_start", unit=task.key, kind=task.kind, attempt=attempt)
        now = time.monotonic()
        deadline = (
            now + self.retry.timeout if self.retry.timeout is not None else None
        )
        return _Running(
            task, process, parent_conn, attempt, now, deadline, last_beat=now
        )

    def _reap(self, running: _Running) -> tuple[str, object] | None:
        """One non-blocking look at a child: a message, a fault, or None.

        Heartbeat pings are drained here (each refreshes ``last_beat``);
        the first real message wins.  Faults are typed: ``timeout`` for
        a blown deadline, ``hung`` for a live-but-silent worker the
        watchdog had to SIGKILL, ``crash`` for a worker that died
        without reporting.  Only ``crash`` and ``hung`` count against
        the unit's :attr:`RetryPolicy.max_crashes` poison budget.
        """
        while running.conn.poll():
            try:
                message = running.conn.recv()
            except (EOFError, OSError):
                break
            if (
                isinstance(message, tuple)
                and len(message) == 2
                and message[0] == "hb"
            ):
                running.last_beat = time.monotonic()
                continue
            if message is not None:
                return message
        now = time.monotonic()
        if running.deadline is not None and now > running.deadline:
            self._terminate(running.process)
            return ("timeout", f"timed out after {self.retry.timeout}s")
        heartbeat_timeout = self.retry.heartbeat_timeout
        if (
            heartbeat_timeout is not None
            and running.process.exitcode is None
            and now - running.last_beat > heartbeat_timeout
        ):
            silent = now - running.last_beat
            self._emit(
                "unit_hang",
                unit=running.task.key,
                attempt=running.attempt,
                silent_s=round(silent, 3),
            )
            # SIGKILL, not terminate(): a worker too wedged to beat is
            # too wedged to honor SIGTERM.
            running.process.kill()
            return (
                "hung",
                f"worker hung: no heartbeat for {silent:.1f}s "
                f"(limit {heartbeat_timeout}s), killed",
            )
        if running.process.exitcode is not None:
            return (
                "crash",
                f"worker crashed with exit code {running.process.exitcode}",
            )
        return None

    @staticmethod
    def _terminate(process: multiprocessing.process.BaseProcess) -> None:
        process.terminate()
        process.join(timeout=2.0)
        if process.exitcode is None:
            process.kill()
            process.join(timeout=2.0)

    def _run_pool(self, graph: TaskGraph) -> dict[str, UnitResult]:
        results: dict[str, UnitResult] = {}
        running: dict[str, _Running] = {}
        first_start: dict[str, float] = {}
        retry_at: dict[str, float] = {}
        attempts: dict[str, int] = {}
        #: Workers each unit has killed (crashes + hang-kills).
        crashes: dict[str, int] = {}
        try:
            while len(results) < len(graph):
                now = time.monotonic()
                for task in graph.ready(set(results), set(running)):
                    if len(running) >= self.jobs:
                        break
                    failed_dep = self._failed_dep(task, results)
                    if failed_dep is not None:
                        results[task.key] = self._skip(task, failed_dep)
                        continue
                    if retry_at.get(task.key, 0.0) > now:
                        continue
                    attempt = attempts.get(task.key, 0) + 1
                    attempts[task.key] = attempt
                    first_start.setdefault(task.key, now)
                    running[task.key] = self._launch(task, attempt)
                if not running:
                    # Everything unfinished is waiting out a backoff.
                    pending_at = [
                        at
                        for key, at in retry_at.items()
                        if key not in results
                    ]
                    if pending_at:
                        time.sleep(
                            max(0.0, min(pending_at) - time.monotonic())
                        )
                    continue
                multiprocessing.connection.wait(
                    [unit.conn for unit in running.values()],
                    timeout=_POLL_SECONDS,
                )
                for key in list(running):
                    unit = running[key]
                    outcome = self._reap(unit)
                    if outcome is None:
                        continue
                    del running[key]
                    unit.process.join(timeout=2.0)
                    if unit.process.exitcode is None:
                        self._terminate(unit.process)
                    unit.conn.close()
                    status, payload = outcome
                    wall = time.monotonic() - first_start[key]
                    if status in ("crash", "hung"):
                        crashes[key] = crashes.get(key, 0) + 1
                    if status == "ok":
                        results[key] = self._finish_ok(
                            unit.task, payload, unit.attempt, wall
                        )
                    elif (
                        status in ("crash", "hung")
                        and crashes[key] >= self.retry.max_crashes
                    ):
                        # Poison unit: it has now taken down max_crashes
                        # workers.  Quarantine it immediately — however
                        # many retries remain — so a deterministic
                        # crasher cannot stall the pool.
                        self._emit(
                            "unit_poisoned",
                            unit=key,
                            crashes=crashes[key],
                            attempt=unit.attempt,
                            error=str(payload),
                        )
                        results[key] = self._finish_failed(
                            unit.task,
                            f"poison unit quarantined after killing "
                            f"{crashes[key]} workers: {payload}",
                            unit.attempt,
                            wall,
                        )
                    elif unit.attempt > self.retry.max_retries:
                        results[key] = self._finish_failed(
                            unit.task, str(payload), unit.attempt, wall
                        )
                    else:
                        backoff = self.retry.backoff_for(unit.attempt)
                        retry_at[key] = time.monotonic() + backoff
                        self._emit(
                            "unit_retry",
                            unit=key,
                            attempt=unit.attempt,
                            backoff_s=round(backoff, 6),
                            error=str(payload),
                        )
        finally:
            for unit in running.values():
                self._terminate(unit.process)
                unit.conn.close()
        return results
