"""The process-pool scheduler: fan units out, survive worker faults.

``ProcessPoolScheduler`` runs a :class:`~repro.runtime.task.TaskGraph`
across ``jobs`` worker processes.  Each unit runs in its own forked
child (one process per unit, bounded by ``jobs``): a unit that raises,
dies, or overruns its timeout only costs that unit, never the pool, and
is retried with exponential backoff before being reported as a failure
through the :class:`~repro.analysis.errors.ErrorKind` taxonomy
(``worker_error``) instead of aborting the run.

With ``jobs=1`` no subprocess is ever created — units run inline in the
calling process, in dependency order, which keeps single-job runs
byte-identical to (and as debuggable as) plain sequential code.

The worker callable must be importable at module top level and its
payloads plain picklable data; results travel back over a pipe, so they
must pickle too.  Determinism comes from the units themselves (seeded
by study seed + unit key, see :mod:`repro.runtime.task`): the scheduler
may finish units in any order, but callers index results by unit key,
so assembly order never depends on completion order.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..analysis.errors import ErrorKind, TraceError
from .task import Task, TaskGraph
from .telemetry import COUNTER_KEYS, TelemetryLog

__all__ = ["RetryPolicy", "UnitResult", "ProcessPoolScheduler", "resolve_jobs"]

#: How long the parent waits on result pipes per poll cycle.
_POLL_SECONDS = 0.05


def resolve_jobs(jobs: int | None) -> int:
    """Map a user-facing ``--jobs`` value to a worker count.

    ``None`` and ``0`` mean "all cores"; anything else is clamped to at
    least 1.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


@dataclass(frozen=True)
class RetryPolicy:
    """How a faulty unit is retried before it is declared failed."""

    #: Re-runs after the first failure (attempts = ``max_retries + 1``).
    max_retries: int = 2
    #: First backoff in seconds; doubles per subsequent retry.
    backoff: float = 0.25
    #: Per-attempt wall-clock limit (None = no limit).
    timeout: float | None = None

    def backoff_for(self, attempt: int) -> float:
        """Backoff before re-running after failed attempt ``attempt``."""
        return self.backoff * (2 ** (attempt - 1))


@dataclass
class UnitResult:
    """What became of one unit: its value, or its accounted failure."""

    key: str
    status: str  # "ok" | "failed" | "skipped"
    value: object = None
    attempts: int = 0
    wall_s: float = 0.0
    error: TraceError | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class _Running:
    """Parent-side state of one in-flight child process."""

    task: Task
    process: multiprocessing.process.BaseProcess
    conn: multiprocessing.connection.Connection
    attempt: int
    started: float
    deadline: float | None


def _child_main(conn, worker: Callable[[Mapping], object], payload: Mapping) -> None:
    """Child-process entry: run the worker, ship back one message."""
    try:
        value = worker(payload)
        conn.send(("ok", value))
    except Exception:
        tail = traceback.format_exc(limit=10)
        conn.send(("error", tail[-4000:]))
    finally:
        conn.close()


class ProcessPoolScheduler:
    """Run a task graph across a bounded pool of worker processes."""

    def __init__(
        self,
        worker: Callable[[Mapping], object],
        jobs: int | None = None,
        retry: RetryPolicy | None = None,
        telemetry: TelemetryLog | None = None,
    ) -> None:
        self.worker = worker
        self.jobs = resolve_jobs(jobs)
        self.retry = retry if retry is not None else RetryPolicy()
        self.telemetry = telemetry
        # Fork keeps worker dispatch cheap and lets tests monkeypatch the
        # worker callable (the child inherits parent memory); fall back to
        # the platform default where fork does not exist.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    # -- public API --------------------------------------------------------

    def run(self, graph: TaskGraph) -> dict[str, UnitResult]:
        """Execute every unit; returns results keyed by unit key.

        Never raises for unit failures — a unit that exhausts its
        retries yields a ``failed`` :class:`UnitResult` carrying a
        :class:`~repro.analysis.errors.TraceError` of kind
        ``worker_error``, and units downstream of it are ``skipped``.
        """
        graph.validate()
        started = time.monotonic()
        if self.jobs <= 1:
            results = self._run_inline(graph)
        else:
            results = self._run_pool(graph)
        self._emit(
            "study_finish",
            wall_s=round(time.monotonic() - started, 6),
            units_ok=sum(1 for r in results.values() if r.ok),
            units_failed=sum(1 for r in results.values() if r.status == "failed"),
        )
        return results

    # -- shared helpers ----------------------------------------------------

    def _emit(self, event: str, **fields: object) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(event, **fields)

    def _counters(self, value: object) -> dict:
        if isinstance(value, Mapping):
            return {key: value.get(key) for key in COUNTER_KEYS}
        return {key: None for key in COUNTER_KEYS}

    def _finish_ok(
        self, task: Task, value: object, attempts: int, wall_s: float
    ) -> UnitResult:
        self._emit(
            "unit_finish",
            unit=task.key,
            kind=task.kind,
            status="ok",
            attempts=attempts,
            wall_s=round(wall_s, 6),
            **self._counters(value),
        )
        return UnitResult(task.key, "ok", value, attempts, wall_s)

    def _finish_failed(
        self, task: Task, detail: str, attempts: int, wall_s: float
    ) -> UnitResult:
        error = TraceError(ErrorKind.WORKER_ERROR, task.key, None, detail)
        self._emit(
            "unit_finish",
            unit=task.key,
            kind=task.kind,
            status="failed",
            attempts=attempts,
            wall_s=round(wall_s, 6),
            error=detail,
            **self._counters(None),
        )
        return UnitResult(task.key, "failed", None, attempts, wall_s, error)

    def _skip(self, task: Task, failed_dep: str) -> UnitResult:
        detail = f"dependency {failed_dep} failed"
        self._emit("unit_skipped", unit=task.key, error=detail)
        return UnitResult(
            task.key,
            "skipped",
            error=TraceError(ErrorKind.WORKER_ERROR, task.key, None, detail),
        )

    def _failed_dep(
        self, task: Task, results: dict[str, UnitResult]
    ) -> str | None:
        for dep in task.deps:
            if dep in results and not results[dep].ok:
                return dep
        return None

    # -- inline execution (jobs=1) -----------------------------------------

    def _run_inline(self, graph: TaskGraph) -> dict[str, UnitResult]:
        results: dict[str, UnitResult] = {}
        for task in graph.topo_order():
            failed_dep = self._failed_dep(task, results)
            if failed_dep is not None:
                results[task.key] = self._skip(task, failed_dep)
                continue
            unit_started = time.monotonic()
            for attempt in range(1, self.retry.max_retries + 2):
                self._emit(
                    "unit_start", unit=task.key, kind=task.kind, attempt=attempt
                )
                try:
                    value = self.worker(task.payload)
                except Exception as exc:
                    detail = f"{type(exc).__name__}: {exc}"
                    if attempt > self.retry.max_retries:
                        results[task.key] = self._finish_failed(
                            task, detail, attempt, time.monotonic() - unit_started
                        )
                        break
                    backoff = self.retry.backoff_for(attempt)
                    self._emit(
                        "unit_retry",
                        unit=task.key,
                        attempt=attempt,
                        backoff_s=round(backoff, 6),
                        error=detail,
                    )
                    time.sleep(backoff)
                else:
                    results[task.key] = self._finish_ok(
                        task, value, attempt, time.monotonic() - unit_started
                    )
                    break
        return results

    # -- pooled execution (jobs>1) -----------------------------------------

    def _launch(self, task: Task, attempt: int) -> _Running:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_child_main,
            args=(child_conn, self.worker, task.payload),
            name=f"repro-unit-{task.key}",
        )
        process.start()
        child_conn.close()
        self._emit("unit_start", unit=task.key, kind=task.kind, attempt=attempt)
        now = time.monotonic()
        deadline = (
            now + self.retry.timeout if self.retry.timeout is not None else None
        )
        return _Running(task, process, parent_conn, attempt, now, deadline)

    def _reap(self, running: _Running) -> tuple[str, object] | None:
        """One non-blocking look at a child: a message, a fault, or None."""
        if running.conn.poll():
            try:
                message = running.conn.recv()
            except EOFError:
                message = None
            if message is not None:
                return message
        if running.deadline is not None and time.monotonic() > running.deadline:
            self._terminate(running.process)
            return ("error", f"timed out after {self.retry.timeout}s")
        if running.process.exitcode is not None:
            return (
                "error",
                f"worker crashed with exit code {running.process.exitcode}",
            )
        return None

    @staticmethod
    def _terminate(process: multiprocessing.process.BaseProcess) -> None:
        process.terminate()
        process.join(timeout=2.0)
        if process.exitcode is None:
            process.kill()
            process.join(timeout=2.0)

    def _run_pool(self, graph: TaskGraph) -> dict[str, UnitResult]:
        results: dict[str, UnitResult] = {}
        running: dict[str, _Running] = {}
        first_start: dict[str, float] = {}
        retry_at: dict[str, float] = {}
        attempts: dict[str, int] = {}
        try:
            while len(results) < len(graph):
                now = time.monotonic()
                for task in graph.ready(set(results), set(running)):
                    if len(running) >= self.jobs:
                        break
                    failed_dep = self._failed_dep(task, results)
                    if failed_dep is not None:
                        results[task.key] = self._skip(task, failed_dep)
                        continue
                    if retry_at.get(task.key, 0.0) > now:
                        continue
                    attempt = attempts.get(task.key, 0) + 1
                    attempts[task.key] = attempt
                    first_start.setdefault(task.key, now)
                    running[task.key] = self._launch(task, attempt)
                if not running:
                    # Everything unfinished is waiting out a backoff.
                    pending_at = [
                        at
                        for key, at in retry_at.items()
                        if key not in results
                    ]
                    if pending_at:
                        time.sleep(
                            max(0.0, min(pending_at) - time.monotonic())
                        )
                    continue
                multiprocessing.connection.wait(
                    [unit.conn for unit in running.values()],
                    timeout=_POLL_SECONDS,
                )
                for key in list(running):
                    unit = running[key]
                    outcome = self._reap(unit)
                    if outcome is None:
                        continue
                    del running[key]
                    unit.process.join(timeout=2.0)
                    if unit.process.exitcode is None:
                        self._terminate(unit.process)
                    unit.conn.close()
                    status, payload = outcome
                    wall = time.monotonic() - first_start[key]
                    if status == "ok":
                        results[key] = self._finish_ok(
                            unit.task, payload, unit.attempt, wall
                        )
                    elif unit.attempt > self.retry.max_retries:
                        results[key] = self._finish_failed(
                            unit.task, str(payload), unit.attempt, wall
                        )
                    else:
                        backoff = self.retry.backoff_for(unit.attempt)
                        retry_at[key] = time.monotonic() + backoff
                        self._emit(
                            "unit_retry",
                            unit=key,
                            attempt=unit.attempt,
                            backoff_s=round(backoff, 6),
                            error=str(payload),
                        )
        finally:
            for unit in running.values():
                self._terminate(unit.process)
                unit.conn.close()
        return results
