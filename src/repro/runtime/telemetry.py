"""Structured progress telemetry for the execution runtime.

Every scheduler run narrates itself as a stream of flat JSON events —
one object per line, append-only, so a crashed run still leaves a
readable prefix.  The same stream drives three consumers:

* a JSONL file (``--telemetry PATH``) for offline analysis,
* live one-line progress on stderr (``--progress``),
* the final per-unit timing table (:meth:`TelemetryLog.timing_table`).

Event schema (all events carry ``event`` and ``ts``, a Unix timestamp)::

    study_start   jobs, units, datasets, seed
    unit_start    unit, kind, attempt
    unit_retry    unit, attempt, backoff_s, error
    unit_finish   unit, kind, status, attempts, wall_s,
                  packets, bytes, cache      # counters when known
    unit_skipped  unit, error                # an upstream dependency failed
    study_finish  wall_s, units_ok, units_failed

``packets`` / ``bytes`` / ``cache`` are filled from the worker's return
value when it is a mapping carrying those keys (the study's dataset
worker does); they are ``None`` for workers that return opaque values.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import IO, Callable, Iterable, Iterator

from ..chaos import fsio
from ..report.model import Table

__all__ = ["TelemetryLog", "COUNTER_KEYS", "read_events", "follow_events"]

#: Worker-result keys the scheduler copies into ``unit_finish`` events.
COUNTER_KEYS = ("packets", "bytes", "cache")

#: Events echoed as human-readable progress lines.
_PROGRESS_EVENTS = {"unit_start", "unit_retry", "unit_finish", "study_finish"}


def read_events(path: str | Path, follow: bool = False, **follow_kwargs):
    """Load a telemetry JSONL file, tolerating a truncated tail.

    A run killed mid-write (power loss, SIGKILL, an injected crash)
    leaves at most a partial trailing line; ``strict`` parsing would
    throw away the whole file for it.  Returns ``(events, bad_lines)``
    where ``bad_lines`` counts lines that failed to parse — they are
    skipped, never raised.

    With ``follow=True`` this is instead a *tail*: it returns the
    :func:`follow_events` iterator (any ``follow_kwargs`` pass through),
    which polls the file and yields events as a live writer appends
    them — what ``repro-study daemon tail`` and the daemon tests use to
    watch a running daemon's alert stream.
    """
    if follow:
        return follow_events(path, **follow_kwargs)
    events: list[dict] = []
    bad_lines = 0
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                bad_lines += 1
                continue
            if isinstance(record, dict):
                events.append(record)
            else:
                bad_lines += 1
    return events, bad_lines


def follow_events(
    path: str | Path,
    poll_interval: float = 0.1,
    timeout: float | None = None,
    stop: Callable[[], bool] | None = None,
) -> Iterator[dict]:
    """Tail a telemetry JSONL file, yielding events as they land.

    Built for watching a *live* writer: the file may not exist yet (the
    tail waits for it), and the writer may be mid-line when we read — a
    line is only consumed once its newline arrives, so a truncated tail
    is buffered, never mis-parsed, and completes on a later poll.
    Malformed complete lines are skipped, same as :func:`read_events`.

    The tail ends when ``stop()`` returns true (checked after draining
    each read, so a stopped writer's final events are still delivered
    but a *busy* writer cannot pin a stopped tail — the HTTP service
    tails its own request log, which grows on every poll) or when
    ``timeout`` seconds pass without the tail being stopped.  With
    neither, it follows forever — the CLI's Ctrl-C is the exit.
    """
    path = Path(path)
    deadline = None if timeout is None else time.monotonic() + timeout
    handle = None
    buffer = b""
    try:
        while True:
            if handle is None:
                try:
                    handle = open(path, "rb")
                except OSError:
                    if stop is not None and stop():
                        return
                    if deadline is not None and time.monotonic() > deadline:
                        return
                    time.sleep(poll_interval)
                    continue
            chunk = handle.read()
            if chunk:
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    text = line.decode("utf-8", errors="replace").strip()
                    if not text:
                        continue
                    try:
                        record = json.loads(text)
                    except ValueError:
                        continue
                    if isinstance(record, dict):
                        yield record
                if stop is not None and stop():
                    return  # delivered what was read; don't re-poll
                continue  # drain until the file is quiet before sleeping
            if stop is not None and stop():
                return
            if deadline is not None and time.monotonic() > deadline:
                return
            time.sleep(poll_interval)
    finally:
        if handle is not None:
            handle.close()


class TelemetryLog:
    """Collects runtime events; optionally tees them to JSONL and stderr."""

    def __init__(
        self,
        path: str | Path | None = None,
        progress: bool = False,
        stream: IO[str] | None = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.progress = progress
        self.events: list[dict] = []
        #: JSONL lines lost to write failures (the log never raises).
        self.dropped_writes = 0
        self._stream = stream if stream is not None else sys.stderr
        self._handle: IO[str] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")

    # -- emission ----------------------------------------------------------

    def emit(self, event: str, **fields: object) -> dict:
        """Record one event; mirrors it to the JSONL file and stderr.

        Each line is flushed as it is written, so a killed run's file
        still holds every completed event (at worst plus one truncated
        trailing line, which :func:`read_events` tolerates).  A failing
        disk never takes the run down with it: write errors are counted
        in :attr:`dropped_writes` and the file sink is closed, while the
        in-memory stream keeps recording.
        """
        record: dict = {"event": event, "ts": round(time.time(), 6)}
        record.update(fields)
        self.events.append(record)
        if self._handle is not None:
            try:
                fsio.guard("append", self.path)
                self._handle.write(json.dumps(record, sort_keys=True) + "\n")
                self._handle.flush()
            except OSError:
                self.dropped_writes += 1
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
        elif self.path is not None:
            # The sink is already dead; keep honest books on what it lost.
            self.dropped_writes += 1
        if self.progress and event in _PROGRESS_EVENTS:
            print(self._progress_line(record), file=self._stream, flush=True)
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetryLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- rendering ---------------------------------------------------------

    @staticmethod
    def _progress_line(record: dict) -> str:
        event = record["event"]
        if event == "unit_start":
            suffix = (
                "" if record.get("attempt", 1) == 1
                else f" (attempt {record['attempt']})"
            )
            return f"[runtime] {record['unit']} started{suffix}"
        if event == "unit_retry":
            lines = str(record.get("error", "")).strip().splitlines()
            reason = lines[-1] if lines else ""
            return (
                f"[runtime] {record['unit']} attempt {record['attempt']} failed, "
                f"retrying in {record['backoff_s']:.2f}s: {reason}"
            )
        if event == "unit_finish":
            counters = []
            if record.get("cache") is not None:
                counters.append(f"cache {record['cache']}")
            if record.get("packets") is not None:
                counters.append(f"{record['packets']} pkts")
            if record.get("bytes") is not None:
                counters.append(f"{record['bytes']} bytes")
            detail = f" ({', '.join(counters)})" if counters else ""
            return (
                f"[runtime] {record['unit']} {record['status']} "
                f"in {record['wall_s']:.2f}s{detail}"
            )
        if event == "study_finish":
            return (
                f"[runtime] done in {record['wall_s']:.2f}s: "
                f"{record['units_ok']} ok, {record['units_failed']} failed"
            )
        return f"[runtime] {event}"

    def unit_events(self, event: str) -> Iterable[dict]:
        """All recorded events of one type, in emission order."""
        return [record for record in self.events if record["event"] == event]

    def timing_table(self) -> Table:
        """The final per-unit timing table (one row per finished unit)."""
        table = Table(
            "Runtime",
            "per-unit wall time and counters",
            ["unit", "status", "attempts", "wall_s", "packets", "bytes", "cache"],
        )
        for record in self.unit_events("unit_finish"):
            table.add_row(
                record["unit"],
                record["status"],
                record.get("attempts", 1),
                round(record.get("wall_s", 0.0), 3),
                record.get("packets") if record.get("packets") is not None else "-",
                record.get("bytes") if record.get("bytes") is not None else "-",
                record.get("cache") or "-",
            )
        for record in self.unit_events("unit_skipped"):
            table.add_row(record["unit"], "skipped", 0, 0.0, "-", "-", "-")
        return table
