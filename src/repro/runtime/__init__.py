"""Parallel execution runtime: task graphs, a process-pool scheduler,
worker fault recovery, and structured progress telemetry.

The paper's datasets are embarrassingly parallel — each tap period is an
independent trace — and this package encodes that shape as a reusable
subsystem: split work into seeded :class:`Task` units, fan them out
across processes with :class:`ProcessPoolScheduler`, and account every
fault through the ingestion error taxonomy instead of aborting.  See
``docs/runtime.md``.
"""

from .scheduler import (
    ProcessPoolScheduler,
    RetryPolicy,
    UnitResult,
    resolve_jobs,
    start_heartbeat,
    stop_heartbeat,
)
from .task import Task, TaskGraph, TaskGraphError
from .telemetry import TelemetryLog, follow_events, read_events

__all__ = [
    "Task",
    "TaskGraph",
    "TaskGraphError",
    "ProcessPoolScheduler",
    "RetryPolicy",
    "UnitResult",
    "resolve_jobs",
    "start_heartbeat",
    "stop_heartbeat",
    "TelemetryLog",
    "follow_events",
    "read_events",
]
