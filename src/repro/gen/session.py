"""Abstract application sessions, later realized into packets.

Application generators describe traffic as :class:`TcpSession` /
:class:`UdpExchange` / :class:`IcmpExchange` / :class:`RawPackets`
objects: who talks to whom, when, over what ports, and the exact
application payload bytes exchanged.  :mod:`repro.gen.tcpsim` and
:mod:`repro.gen.packetize` turn these into wire packets with working
TCP/UDP mechanics.  Keeping the two stages separate lets the application
generators stay purely about *workload* while transport mechanics
(handshakes, segmentation, acks, loss, keep-alives) live in one place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "Dir",
    "Outcome",
    "AppEvent",
    "TcpSession",
    "UdpExchange",
    "IcmpExchange",
    "RawPackets",
    "Session",
    "ROUTER_MAC",
    "MULTICAST_MAC_BASE",
]

#: MAC used for packets entering a subnet from elsewhere (the router port).
ROUTER_MAC = 0x00E0FE000001

#: Base MAC for IPv4 multicast destinations (01:00:5e + low 23 bits).
MULTICAST_MAC_BASE = 0x01005E000000


class Dir(enum.IntEnum):
    """Direction of one application event."""

    C2S = 0
    S2C = 1


class Outcome(enum.Enum):
    """How a TCP connection attempt fares (drives success-rate analyses)."""

    SUCCESS = "success"
    REJECTED = "rejected"  # SYN answered by RST
    UNANSWERED = "unanswered"  # SYN retransmitted, never answered


@dataclass
class AppEvent:
    """One application-level send.

    ``dt`` is the think/processing delay *before* this event, measured
    from the completion of the previous one.
    """

    dt: float
    direction: Dir
    payload: bytes


@dataclass
class TcpSession:
    """A TCP connection described at the application level.

    The realizer adds the three-way handshake, MSS segmentation,
    acknowledgments, optional periodic keep-alives, loss-driven
    retransmissions, and the close (FIN exchange, RST, or nothing when
    the session outlives the trace window).
    """

    client_ip: int
    server_ip: int
    client_mac: int
    server_mac: int
    sport: int
    dport: int
    start: float
    rtt: float
    events: list[AppEvent] = field(default_factory=list)
    outcome: Outcome = Outcome.SUCCESS
    #: Per-segment loss probability.  ``None`` lets the realizer apply an
    #: ambient rate (lower inside the enterprise than across the WAN, per
    #: §6's Figure 10); set explicitly for outliers like the lossy
    #: Veritas connection.
    loss_rate: float | None = None
    keepalive_interval: float | None = None
    keepalive_count: int = 0
    end_idle: float = 0.0
    close: str = "fin"  # "fin" | "rst" | "none"
    mss: int = 1460

    @property
    def app_bytes(self) -> int:
        """Total application payload bytes in both directions."""
        return sum(len(event.payload) for event in self.events)


@dataclass
class UdpExchange:
    """A sequence of UDP datagrams between two endpoints.

    A single :class:`UdpExchange` corresponds to one "connection" in the
    paper's UDP flow accounting (same 5-tuple, nearby in time).
    """

    client_ip: int
    server_ip: int
    client_mac: int
    server_mac: int
    sport: int
    dport: int
    start: float
    rtt: float
    events: list[AppEvent] = field(default_factory=list)


@dataclass
class IcmpExchange:
    """Echo request/reply pairs (or unanswered probes) between two hosts."""

    src_ip: int
    dst_ip: int
    src_mac: int
    dst_mac: int
    start: float
    rtt: float
    count: int = 1
    answered: bool = True
    interval: float = 1.0
    ident: int = 1


@dataclass
class RawPackets:
    """Pre-built packets (ARP, IPX, and other non-IP traffic)."""

    packets: list = field(default_factory=list)


Session = TcpSession | UdpExchange | IcmpExchange | RawPackets
