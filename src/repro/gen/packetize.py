"""Realize abstract sessions into a time-ordered packet stream."""

from __future__ import annotations

import heapq
from random import Random
from typing import Iterable, Iterator

from ..net.icmp import ICMP_ECHO_REPLY, ICMP_ECHO_REQUEST
from ..net.packet import CapturedPacket, make_icmp_packet, make_udp_packet
from .session import Dir, IcmpExchange, RawPackets, Session, TcpSession, UdpExchange
from .tcpsim import realize_tcp

__all__ = ["realize_session", "realize_all"]


def realize_session(
    session: Session, rng: Random, window_end: float | None = None
) -> list[CapturedPacket]:
    """Expand one session into its wire packets (any session kind).

    The returned list is sorted by timestamp: TCP emission interleaves
    delayed ACKs with data segments, so the raw emission order can be
    locally out of order (Timsort makes the fix-up nearly free on the
    mostly-sorted input).
    """
    if isinstance(session, TcpSession):
        packets = realize_tcp(session, rng, window_end)
    elif isinstance(session, UdpExchange):
        packets = _realize_udp(session, window_end)
    elif isinstance(session, IcmpExchange):
        packets = _realize_icmp(session, window_end)
    elif isinstance(session, RawPackets):
        packets = [
            pkt
            for pkt in session.packets
            if window_end is None or pkt.ts <= window_end
        ]
    else:
        raise TypeError(f"unknown session type: {type(session).__name__}")
    packets.sort(key=lambda pkt: pkt.ts)
    return packets


def _realize_udp(session: UdpExchange, window_end: float | None) -> list[CapturedPacket]:
    packets: list[CapturedPacket] = []
    clock = session.start
    last_dir: Dir | None = None
    for event in session.events:
        clock += event.dt
        if last_dir is not None and event.direction != last_dir:
            clock += session.rtt / 2.0
        last_dir = event.direction
        if window_end is not None and clock > window_end:
            break
        if event.direction is Dir.C2S:
            src_ip, dst_ip = session.client_ip, session.server_ip
            src_mac, dst_mac = session.client_mac, session.server_mac
            sport, dport = session.sport, session.dport
        else:
            src_ip, dst_ip = session.server_ip, session.client_ip
            src_mac, dst_mac = session.server_mac, session.client_mac
            sport, dport = session.dport, session.sport
        packets.append(
            make_udp_packet(
                ts=clock,
                src_mac=src_mac,
                dst_mac=dst_mac,
                src_ip=src_ip,
                dst_ip=dst_ip,
                src_port=sport,
                dst_port=dport,
                payload=event.payload,
            )
        )
    return packets


def _realize_icmp(session: IcmpExchange, window_end: float | None) -> list[CapturedPacket]:
    packets: list[CapturedPacket] = []
    for index in range(session.count):
        ts = session.start + index * session.interval
        if window_end is not None and ts > window_end:
            break
        packets.append(
            make_icmp_packet(
                ts=ts,
                src_mac=session.src_mac,
                dst_mac=session.dst_mac,
                src_ip=session.src_ip,
                dst_ip=session.dst_ip,
                icmp_type=ICMP_ECHO_REQUEST,
                ident=session.ident,
                sequence=index,
                payload=b"\x00" * 48,
            )
        )
        if session.answered:
            reply_ts = ts + session.rtt
            if window_end is not None and reply_ts > window_end:
                continue
            packets.append(
                make_icmp_packet(
                    ts=reply_ts,
                    src_mac=session.dst_mac,
                    dst_mac=session.src_mac,
                    src_ip=session.dst_ip,
                    dst_ip=session.src_ip,
                    icmp_type=ICMP_ECHO_REPLY,
                    ident=session.ident,
                    sequence=index,
                    payload=b"\x00" * 48,
                )
            )
    return packets


def realize_all(
    sessions: Iterable[Session],
    rng: Random,
    window_end: float | None = None,
) -> Iterator[CapturedPacket]:
    """Realize many sessions and merge them into timestamp order.

    Each session's packets are already time-ordered, so a k-way heap
    merge keeps memory proportional to the number of sessions, not the
    number of packets.
    """
    streams = []
    for session in sessions:
        packets = realize_session(session, rng, window_end)
        if packets:
            streams.append(packets)
    yield from heapq.merge(*streams, key=lambda pkt: pkt.ts)
