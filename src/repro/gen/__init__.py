"""The synthetic enterprise trace generator.

Stand-in for the paper's LBNL packet traces: builds a two-router,
40-subnet enterprise (:mod:`repro.gen.topology`), describes application
workloads as abstract sessions (:mod:`repro.gen.apps`), realizes them
into wire packets with working TCP mechanics (:mod:`repro.gen.tcpsim`),
and captures them through the paper's tap schedule into pcap files
(:mod:`repro.gen.capture`).
"""

from .capture import (
    ALL_GENERATORS,
    DatasetTraces,
    TapWindow,
    Trace,
    generate_dataset,
    generate_study,
    schedule_windows,
)
from .datasets import DATASET_ORDER, DATASETS, DatasetConfig, Dials
from .faults import FAULTS, Fault, apply_fault, corrupt_dataset, corrupt_pcap
from .session import (
    AppEvent,
    Dir,
    IcmpExchange,
    Outcome,
    RawPackets,
    Session,
    TcpSession,
    UdpExchange,
)
from .topology import ENTERPRISE_NET, Enterprise, EnterpriseSubnet, Host, Role

__all__ = [
    "ALL_GENERATORS",
    "DatasetTraces",
    "TapWindow",
    "Trace",
    "generate_dataset",
    "generate_study",
    "schedule_windows",
    "DATASET_ORDER",
    "DATASETS",
    "DatasetConfig",
    "Dials",
    "FAULTS",
    "Fault",
    "apply_fault",
    "corrupt_dataset",
    "corrupt_pcap",
    "AppEvent",
    "Dir",
    "IcmpExchange",
    "Outcome",
    "RawPackets",
    "Session",
    "TcpSession",
    "UdpExchange",
    "ENTERPRISE_NET",
    "Enterprise",
    "EnterpriseSubnet",
    "Host",
    "Role",
]
