"""The modelled enterprise: routers, subnets, hosts, and server roles.

The paper's site (LBNL) had two central routers with 18-22 monitored
subnets each and several thousand internal hosts.  Server *placement*
drives many of the paper's observations — D0-D2 monitored the subnets
holding the main SMTP/IMAP servers and a major authentication server,
while D3-D4 monitored the main DNS/Netbios-NS servers and a major print
server — so placement is explicit here and the dataset configurations
select which router (and hence which servers) a dataset taps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from random import Random

from ..util.addr import Subnet, ip_to_int
from ..util.rng import SeedSequence

__all__ = ["Role", "Host", "EnterpriseSubnet", "Enterprise", "ENTERPRISE_NET"]

#: The enterprise address block; everything outside is "WAN" for locality.
ENTERPRISE_NET = Subnet.parse("131.243.0.0/16")

_MAC_BASE = 0x00A0C9000000  # an Intel OUI, host MACs assigned sequentially


class Role(enum.Enum):
    """What a host does; a host may hold several roles."""

    WORKSTATION = "workstation"
    WEB_SERVER = "web-server"
    SMTP_SERVER = "smtp-server"
    IMAP_SERVER = "imap-server"
    DNS_SERVER = "dns-server"
    NBNS_SERVER = "nbns-server"
    AUTH_SERVER = "auth-server"  # the domain controller (NetLogon/LsaRPC)
    PRINT_SERVER = "print-server"  # the Spoolss-heavy server of D3/D4
    FILE_SERVER_NFS = "nfs-server"
    FILE_SERVER_NCP = "ncp-server"
    FILE_SERVER_CIFS = "cifs-server"
    BACKUP_VERITAS = "veritas-server"
    BACKUP_DANTZ = "dantz-server"
    STREAM_SERVER = "stream-server"
    SCANNER = "scanner"  # the site's proactive vulnerability scanner
    GOOGLE_BOT = "google-bot"  # internal search-appliance crawler
    IFOLDER_SERVER = "ifolder-server"


@dataclass(eq=False)
class Host:
    """One enterprise host."""

    ip: int
    mac: int
    subnet_index: int
    router: int
    roles: set[Role] = field(default_factory=set)

    def has_role(self, role: Role) -> bool:
        return role in self.roles

    @property
    def is_server(self) -> bool:
        return bool(self.roles - {Role.WORKSTATION})

    def __hash__(self) -> int:
        return self.ip

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from ..util.addr import int_to_ip

        names = ",".join(sorted(role.value for role in self.roles)) or "host"
        return f"<Host {int_to_ip(self.ip)} {names}>"


@dataclass
class EnterpriseSubnet:
    """One monitored subnet: its prefix and resident hosts."""

    index: int
    router: int
    subnet: Subnet
    hosts: list[Host] = field(default_factory=list)

    @property
    def workstations(self) -> list[Host]:
        """Hosts usable as ordinary clients."""
        return [host for host in self.hosts if Role.WORKSTATION in host.roles]

    def servers(self, role: Role) -> list[Host]:
        """Hosts on this subnet holding ``role``."""
        return [host for host in self.hosts if role in host.roles]


# (role, router, subnet position, count) — the placement table.  Router 0
# corresponds to the D0-D2 tap and router 1 to the D3-D4 tap.
_PLACEMENTS: list[tuple[Role, int, int, int]] = [
    (Role.SMTP_SERVER, 0, 2, 2),  # the two main SMTP servers (D0-D2)
    (Role.IMAP_SERVER, 0, 2, 1),  # the main IMAP(/S) server (D0-D2)
    (Role.AUTH_SERVER, 0, 3, 1),  # the major authentication server of D0
    (Role.NBNS_SERVER, 0, 4, 1),  # one of the two main Netbios/NS servers
    (Role.NBNS_SERVER, 1, 2, 1),  # ... and the other (D3-D4)
    (Role.DNS_SERVER, 1, 1, 2),  # the main DNS servers (D3-D4)
    (Role.PRINT_SERVER, 1, 3, 1),  # the major print server of D3-D4
    (Role.FILE_SERVER_NFS, 0, 5, 2),
    (Role.FILE_SERVER_NFS, 1, 5, 2),
    (Role.FILE_SERVER_NCP, 0, 6, 3),  # NCP is heavier at the router-0 vantage
    (Role.FILE_SERVER_NCP, 1, 6, 1),
    (Role.FILE_SERVER_CIFS, 0, 7, 3),
    (Role.FILE_SERVER_CIFS, 1, 7, 3),
    (Role.BACKUP_VERITAS, 0, 8, 1),
    (Role.BACKUP_DANTZ, 0, 8, 1),
    (Role.BACKUP_VERITAS, 1, 8, 1),
    (Role.BACKUP_DANTZ, 1, 8, 1),
    (Role.WEB_SERVER, 0, 9, 4),
    (Role.WEB_SERVER, 1, 9, 4),
    (Role.STREAM_SERVER, 0, 10, 1),
    (Role.STREAM_SERVER, 1, 10, 1),
    (Role.SCANNER, 0, 1, 1),  # the 2 known internal scanners (§3)
    (Role.SCANNER, 1, 4, 1),
    (Role.GOOGLE_BOT, 0, 11, 2),  # google1 / google2 of Table 6
    (Role.GOOGLE_BOT, 1, 11, 2),
    (Role.IFOLDER_SERVER, 1, 12, 1),  # iFolder matters most in D4 (Table 6)
]


class Enterprise:
    """The generated site topology.

    Parameters
    ----------
    seed:
        Master seed; host placement is deterministic given it.
    subnets_router0, subnets_router1:
        Number of subnets behind each central router (22 and 18 in the
        paper's Table 1).
    hosts_per_subnet:
        Mean workstation count per subnet.
    """

    def __init__(
        self,
        seed: int = 0,
        subnets_router0: int = 22,
        subnets_router1: int = 18,
        hosts_per_subnet: int = 90,
    ) -> None:
        self.seed_seq = SeedSequence(seed).child("topology")
        rng = self.seed_seq.stream("layout")
        self.subnets: list[EnterpriseSubnet] = []
        self._servers: dict[Role, list[Host]] = {role: [] for role in Role}
        next_mac = _MAC_BASE
        index = 0
        for router, count in ((0, subnets_router0), (1, subnets_router1)):
            for position in range(count):
                prefix = Subnet(
                    ENTERPRISE_NET.network + (((router * 100) + position + 1) << 8), 24
                )
                subnet = EnterpriseSubnet(index=index, router=router, subnet=prefix)
                population = max(int(rng.gauss(hosts_per_subnet, hosts_per_subnet / 4)), 10)
                population = min(population, prefix.num_hosts)
                for host_index in range(population):
                    host = Host(
                        ip=prefix.host(host_index),
                        mac=next_mac,
                        subnet_index=index,
                        router=router,
                        roles={Role.WORKSTATION},
                    )
                    next_mac += 1
                    subnet.hosts.append(host)
                self.subnets.append(subnet)
                index += 1
        self._place_servers()
        self._host_by_ip = {
            host.ip: host for subnet in self.subnets for host in subnet.hosts
        }

    def _place_servers(self) -> None:
        by_router: dict[int, list[EnterpriseSubnet]] = {0: [], 1: []}
        for subnet in self.subnets:
            by_router[subnet.router].append(subnet)
        for role, router, position, count in _PLACEMENTS:
            candidates = by_router[router]
            subnet = candidates[position % len(candidates)]
            for offset in range(count):
                # Use hosts from the tail of the subnet so server addresses
                # do not collide across roles sharing a subnet.
                host = subnet.hosts[-(1 + offset + self._role_tail_offset(subnet, role))]
                host.roles.add(role)
                self._servers[role].append(host)

    @staticmethod
    def _role_tail_offset(subnet: EnterpriseSubnet, role: Role) -> int:
        """Distinct tail region per already-placed role on this subnet."""
        placed_roles = {
            existing
            for host in subnet.hosts
            for existing in host.roles
            if existing not in (Role.WORKSTATION, role)
        }
        return 4 * len(placed_roles)

    # -- lookups ---------------------------------------------------------

    @property
    def num_hosts(self) -> int:
        """Total internal hosts."""
        return len(self._host_by_ip)

    def host_by_ip(self, ip: int) -> Host | None:
        """The internal host with address ``ip``, if any."""
        return self._host_by_ip.get(ip)

    def servers(self, role: Role) -> list[Host]:
        """All hosts holding ``role``, site-wide."""
        return list(self._servers[role])

    def subnets_of_router(self, router: int) -> list[EnterpriseSubnet]:
        """The subnets attached to one central router."""
        return [subnet for subnet in self.subnets if subnet.router == router]

    def pick_workstation(self, rng: Random, subnet: EnterpriseSubnet) -> Host:
        """A random workstation on ``subnet``."""
        return rng.choice(subnet.workstations)

    def pick_peer_subnet(self, rng: Random, exclude_index: int) -> EnterpriseSubnet:
        """A random subnet other than ``exclude_index`` (cross-subnet peer)."""
        while True:
            subnet = rng.choice(self.subnets)
            if subnet.index != exclude_index:
                return subnet

    def pick_internal_peer(self, rng: Random, exclude_index: int) -> Host:
        """A random workstation on some *other* subnet.

        The router vantage point only sees traffic crossing the router,
        so internal peers always come from a different subnet.
        """
        subnet = self.pick_peer_subnet(rng, exclude_index)
        return self.pick_workstation(rng, subnet)

    @staticmethod
    def is_internal(ip: int) -> bool:
        """True when ``ip`` lies inside the enterprise block."""
        return ip in ENTERPRISE_NET


# A pool of WAN address blocks external peers are drawn from.
_WAN_BLOCKS = [
    ip_to_int("64.233.160.0"),
    ip_to_int("207.46.0.0"),
    ip_to_int("128.32.0.0"),
    ip_to_int("192.150.186.0"),
    ip_to_int("66.35.250.0"),
    ip_to_int("198.128.0.0"),
    ip_to_int("152.3.0.0"),
    ip_to_int("18.7.0.0"),
]


def wan_address(rng: Random, spread: int = 4096) -> int:
    """Draw a WAN peer address from one of several remote blocks.

    ``spread`` bounds the per-block host diversity, which controls how
    many distinct remote hosts a dataset accumulates (Table 1's "Remote
    Hosts" row grows with trace duration).
    """
    block = rng.choice(_WAN_BLOCKS)
    return block + rng.randrange(spread)
