"""Seeded fault injection for generated pcap traces.

The paper's measurement apparatus produced imperfect files — header-only
captures, drops the kernel never reported, traces cut off mid-write (§2).
The generator, by construction, only writes perfect ones.  This module
closes that gap: each :class:`Fault` deterministically corrupts a valid
pcap byte string in one specific way, so the ingestion layer's error
policies can be exercised against every defect class it claims to
survive.

Faults are pure functions ``(data, rng) -> data`` registered in
:data:`FAULTS`.  ``strict_fatal`` marks the classes that break the
file's structure (or a frame beyond parsing) and therefore must raise a
typed :class:`~repro.analysis.errors.IngestionError` under the
``strict`` policy; the remaining classes are wire-legal pathologies
(duplicates, reordering, gaps, flipped header bytes) that every policy
must absorb silently.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import TYPE_CHECKING, Callable

from ..pcap.records import GLOBAL_HEADER, PCAP_MAGIC_SWAPPED
from ..util.rng import substream

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from .capture import DatasetTraces

__all__ = ["Fault", "FAULTS", "apply_fault", "corrupt_pcap", "corrupt_dataset"]

_RECORD_LE = struct.Struct("<IIII")
_RECORD_BE = struct.Struct(">IIII")


@dataclass
class _Record:
    """One mutable pcap record (header fields plus body bytes)."""

    ts_sec: int
    ts_usec: int
    caplen: int
    wire_len: int
    body: bytes

    def encode(self, fmt: struct.Struct) -> bytes:
        return (
            fmt.pack(self.ts_sec, self.ts_usec, self.caplen, self.wire_len)
            + self.body
        )


def _parse(data: bytes) -> tuple[bytes, struct.Struct, list[_Record]]:
    """Split a valid pcap byte string into (header, record fmt, records)."""
    if len(data) < GLOBAL_HEADER.size:
        raise ValueError("not a complete pcap file")
    magic = struct.unpack_from("<I", data)[0]
    fmt = _RECORD_BE if magic == PCAP_MAGIC_SWAPPED else _RECORD_LE
    header = data[: GLOBAL_HEADER.size]
    records: list[_Record] = []
    offset = GLOBAL_HEADER.size
    while offset < len(data):
        ts_sec, ts_usec, caplen, wire_len = fmt.unpack_from(data, offset)
        body = data[offset + fmt.size : offset + fmt.size + caplen]
        if len(body) < caplen:
            raise ValueError("refusing to fault-inject an already corrupt pcap")
        records.append(_Record(ts_sec, ts_usec, caplen, wire_len, body))
        offset += fmt.size + caplen
    return header, fmt, records


def _join(header: bytes, fmt: struct.Struct, records: list[_Record]) -> bytes:
    return header + b"".join(record.encode(fmt) for record in records)


def _pick(rng: Random, records: list[_Record]) -> int:
    """A random record index (biased away from nothing in particular)."""
    return rng.randrange(len(records))


# -- fault functions ----------------------------------------------------------
# Each takes the full file bytes and a seeded Random and returns new bytes.
# Record-level faults need at least one record; the generator's traces
# always have plenty, and _parse guards the precondition.


def _truncated_global_header(data: bytes, rng: Random) -> bytes:
    _parse(data)
    return data[: rng.randrange(1, GLOBAL_HEADER.size)]


def _bad_magic(data: bytes, rng: Random) -> bytes:
    _parse(data)
    return struct.pack("<I", 0xDEADBEEF) + data[4:]


def _truncated_record_header(data: bytes, rng: Random) -> bytes:
    header, fmt, records = _parse(data)
    # Keep every record intact, then append a partial header: the file
    # ends mid-record-header, as an interrupted writer leaves it.
    partial = records[-1].encode(fmt)[: rng.randrange(1, fmt.size)]
    return _join(header, fmt, records) + partial


def _truncated_record_body(data: bytes, rng: Random) -> bytes:
    header, fmt, records = _parse(data)
    last = records[-1]
    keep = rng.randrange(0, max(last.caplen, 1))
    # The header still claims the full caplen; the body stops short.
    cut = fmt.pack(last.ts_sec, last.ts_usec, last.caplen, last.wire_len)
    cut += last.body[:keep]
    return _join(header, fmt, records[:-1]) + cut


def _zero_caplen(data: bytes, rng: Random) -> bytes:
    header, fmt, records = _parse(data)
    victim = records[_pick(rng, records)]
    victim.caplen = 0
    victim.body = b""
    return _join(header, fmt, records)


def _oversized_caplen(data: bytes, rng: Random) -> bytes:
    header, fmt, records = _parse(data)
    victim = records[_pick(rng, records)]
    victim.caplen = 0x40000000  # 1 GiB: beyond any sane snaplen
    return _join(header, fmt, records)


def _runt_frame(data: bytes, rng: Random) -> bytes:
    header, fmt, records = _parse(data)
    victim = records[_pick(rng, records)]
    length = rng.randrange(1, 14)  # below the 14-byte Ethernet header
    victim.body = bytes(rng.randrange(256) for _ in range(length))
    victim.caplen = length
    return _join(header, fmt, records)


def _flip_bytes(records: list[_Record], rng: Random, lo: int, hi: int) -> None:
    flips = max(1, len(records) // 10)
    for _ in range(flips):
        victim = records[_pick(rng, records)]
        if len(victim.body) <= lo:
            continue
        body = bytearray(victim.body)
        index = rng.randrange(lo, min(hi, len(body)))
        body[index] ^= rng.randrange(1, 256)
        victim.body = bytes(body)


def _byte_flip_l2(data: bytes, rng: Random) -> bytes:
    header, fmt, records = _parse(data)
    _flip_bytes(records, rng, 0, 14)  # MACs and ethertype
    return _join(header, fmt, records)


def _byte_flip_l3(data: bytes, rng: Random) -> bytes:
    header, fmt, records = _parse(data)
    _flip_bytes(records, rng, 14, 34)  # the IPv4 header
    return _join(header, fmt, records)


def _timestamp_regression(data: bytes, rng: Random) -> bytes:
    header, fmt, records = _parse(data)
    if len(records) >= 2:
        index = rng.randrange(1, len(records))
        victim = records[index]
        victim.ts_sec = max(victim.ts_sec - rng.randrange(60, 1000), 0)
    return _join(header, fmt, records)


def _duplicate_records(data: bytes, rng: Random) -> bytes:
    header, fmt, records = _parse(data)
    copies = min(len(records), rng.randrange(2, 5))
    start = rng.randrange(0, len(records) - copies + 1)
    dupes = records[start : start + copies]
    out = records[: start + copies] + dupes + records[start + copies :]
    return _join(header, fmt, out)


def _drop_gap(data: bytes, rng: Random) -> bytes:
    header, fmt, records = _parse(data)
    if len(records) < 5:
        return _join(header, fmt, records)
    width = max(1, len(records) // 5)
    start = rng.randrange(1, len(records) - width)
    return _join(header, fmt, records[:start] + records[start + width :])


@dataclass(frozen=True)
class Fault:
    """One corruption class.

    ``strict_fatal`` declares the contract with the error policies: the
    fault must raise a typed ingestion error under ``strict`` and must
    be survived (with non-zero error accounting) under ``tolerant``.
    Non-fatal faults are wire-legal and must pass under every policy.
    """

    name: str
    strict_fatal: bool
    description: str
    fn: Callable[[bytes, Random], bytes]


FAULTS: dict[str, Fault] = {
    fault.name: fault
    for fault in (
        Fault(
            "truncated_global_header", True,
            "file cut inside the 24-byte pcap header", _truncated_global_header,
        ),
        Fault(
            "bad_magic", True,
            "magic number overwritten with garbage", _bad_magic,
        ),
        Fault(
            "truncated_record_header", True,
            "file ends inside a record header", _truncated_record_header,
        ),
        Fault(
            "truncated_record_body", True,
            "last record's body stops short of its caplen", _truncated_record_body,
        ),
        Fault(
            "zero_caplen", True,
            "a record claims zero captured bytes", _zero_caplen,
        ),
        Fault(
            "oversized_caplen", True,
            "a record claims a 1 GiB capture length", _oversized_caplen,
        ),
        Fault(
            "runt_frame", True,
            "a frame shorter than an Ethernet header", _runt_frame,
        ),
        Fault(
            "byte_flip_l2", False,
            "bit flips in Ethernet headers", _byte_flip_l2,
        ),
        Fault(
            "byte_flip_l3", False,
            "bit flips in IPv4 headers", _byte_flip_l3,
        ),
        Fault(
            "timestamp_regression", False,
            "a record timestamped before its predecessor", _timestamp_regression,
        ),
        Fault(
            "duplicate_records", False,
            "a run of records repeated verbatim", _duplicate_records,
        ),
        Fault(
            "drop_gap", False,
            "a contiguous run of records removed mid-file", _drop_gap,
        ),
    )
}


def apply_fault(data: bytes, fault: str | Fault, seed: int = 0) -> bytes:
    """Corrupt pcap bytes with one fault class, deterministically."""
    if isinstance(fault, str):
        try:
            fault = FAULTS[fault]
        except KeyError:
            raise KeyError(
                f"unknown fault {fault!r} (known: {', '.join(FAULTS)})"
            ) from None
    rng = substream(seed, f"fault:{fault.name}")
    return fault.fn(data, rng)


def corrupt_pcap(
    path: str | Path,
    fault: str | Fault,
    seed: int = 0,
    out_path: str | Path | None = None,
) -> Path:
    """Corrupt the trace at ``path`` (in place unless ``out_path`` given)."""
    path = Path(path)
    target = Path(out_path) if out_path is not None else path
    target.write_bytes(apply_fault(path.read_bytes(), fault, seed))
    return target


def corrupt_dataset(
    traces: "DatasetTraces",
    seed: int = 0,
    faults: list[str] | None = None,
) -> dict[str, str]:
    """Corrupt every trace of a generated dataset, cycling fault classes.

    Returns ``{trace path: fault name}``.  Each trace gets its own
    seeded RNG stream, so the corruption is reproducible per file and
    independent of dataset ordering.
    """
    names = list(faults) if faults is not None else list(FAULTS)
    applied: dict[str, str] = {}
    for index, trace in enumerate(traces.traces):
        name = names[index % len(names)]
        corrupt_pcap(trace.path, name, seed=seed + trace.window.index)
        applied[str(trace.path)] = name
    return applied
