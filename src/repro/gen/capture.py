"""The capture model: tap windows, trace files, and dataset generation.

Mirrors the paper's measurement apparatus (§2): taps on one central
router could capture two subnets at a time, so an expect script cycled
through the router's 18-22 subnets, producing one trace file per
(subnet, round).  Each trace records traffic crossing the router to or
from the monitored subnet — never traffic that stays inside the subnet —
truncated to the dataset's snaplen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from ..net.packet import CapturedPacket
from ..pcap.writer import PcapWriter
from ..util.rng import SeedSequence
from .apps.backup_gen import BackupGenerator
from .apps.base import AppGenerator, WindowContext
from .apps.bulk_gen import BulkGenerator
from .apps.dns_gen import DnsGenerator
from .apps.email_gen import EmailGenerator
from .apps.http_gen import HttpGenerator
from .apps.inbound_gen import InboundWanGenerator
from .apps.interactive_gen import InteractiveGenerator
from .apps.link_gen import LinkGenerator
from .apps.misc_gen import MiscGenerator
from .apps.netbios_gen import NetbiosNsGenerator
from .apps.netmgnt_gen import NetMgntGenerator
from .apps.nfs_gen import NfsGenerator
from .apps.ncp_gen import NcpGenerator
from .apps.scanner_gen import ScannerGenerator
from .apps.streaming_gen import StreamingGenerator
from .apps.windows_gen import WindowsGenerator
from .datasets import DATASET_ORDER, DATASETS, DatasetConfig
from .packetize import realize_all
from .topology import Enterprise

__all__ = [
    "TapWindow",
    "Trace",
    "DatasetTraces",
    "ALL_GENERATORS",
    "schedule_windows",
    "generate_dataset",
    "generate_study",
]

#: Every application generator, in a stable order (stable RNG streams).
ALL_GENERATORS: tuple[type[AppGenerator], ...] = (
    LinkGenerator,
    DnsGenerator,
    NetbiosNsGenerator,
    NetMgntGenerator,
    MiscGenerator,
    HttpGenerator,
    InboundWanGenerator,
    EmailGenerator,
    WindowsGenerator,
    NfsGenerator,
    NcpGenerator,
    BackupGenerator,
    BulkGenerator,
    InteractiveGenerator,
    StreamingGenerator,
    ScannerGenerator,
)

#: Nominal capture epochs, one per dataset (absolute values are cosmetic).
_EPOCHS = {"D0": 1096873200.0, "D1": 1103097600.0, "D2": 1103184000.0,
           "D3": 1105000000.0, "D4": 1105086400.0}


@dataclass(frozen=True)
class TapWindow:
    """One (subnet, time-range) monitoring assignment."""

    index: int
    subnet_index: int
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class Trace:
    """One written trace file and its capture metadata."""

    dataset: str
    window: TapWindow
    path: Path
    packet_count: int = 0
    snaplen: int = 65535


@dataclass
class DatasetTraces:
    """All traces of one generated dataset."""

    config: DatasetConfig
    traces: list[Trace] = field(default_factory=list)

    @property
    def total_packets(self) -> int:
        return sum(trace.packet_count for trace in self.traces)


def schedule_windows(config: DatasetConfig, enterprise: Enterprise) -> list[TapWindow]:
    """Build the tap schedule: two subnets at a time, ``per_tap`` rounds."""
    subnets = enterprise.subnets_of_router(config.router)[: config.num_subnets]
    epoch = _EPOCHS.get(config.name, 1.1e9)
    windows: list[TapWindow] = []
    slot = 0
    index = 0
    for _round in range(config.per_tap):
        for pair_start in range(0, len(subnets), 2):
            pair = subnets[pair_start : pair_start + 2]
            t0 = epoch + slot * config.tap_seconds
            t1 = t0 + config.tap_seconds
            for subnet in pair:
                windows.append(
                    TapWindow(index=index, subnet_index=subnet.index, t0=t0, t1=t1)
                )
                index += 1
            slot += 1
    return windows


def _window_packets(
    enterprise: Enterprise,
    config: DatasetConfig,
    window: TapWindow,
    seed_seq: SeedSequence,
    scale: float,
) -> Iterator[CapturedPacket]:
    """Generate the time-ordered packet stream for one window."""
    subnet = enterprise.subnets[window.subnet_index]
    window_seq = seed_seq.child(f"{config.name}:w{window.index}")
    sessions = []
    for generator_cls in ALL_GENERATORS:
        generator = generator_cls()
        ctx = WindowContext(
            enterprise=enterprise,
            subnet=subnet,
            t0=window.t0,
            t1=window.t1,
            rng=window_seq.stream(generator.name),
            config=config,
            scale=scale,
        )
        sessions.extend(generator.generate(ctx))
    realize_rng = window_seq.stream("realize")
    yield from realize_all(sessions, realize_rng, window_end=window.t1)


def generate_dataset(
    name: str,
    enterprise: Enterprise,
    out_dir: str | Path,
    seed: int = 0,
    scale: float = 0.01,
    max_windows: int | None = None,
    capture_drop_rate: float = 0.0,
) -> DatasetTraces:
    """Generate one dataset's traces into ``out_dir``.

    ``scale`` shrinks traffic volume relative to the paper's (1.0 would
    approximate the full LBNL volume); ``max_windows`` truncates the tap
    schedule, which is useful for fast tests.

    ``capture_drop_rate`` silently drops that fraction of packets at the
    capture point — the artifact §2 suspects in the real traces ("a TCP
    receiver acknowledged data not present in the trace") even though
    the kernel reported no drops.  Zero by default so the reproduced
    tables stay exact; tests use it to verify the analyzers cope.
    """
    config = DATASETS[name]
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    seed_seq = SeedSequence(seed).child("traffic")
    windows = schedule_windows(config, enterprise)
    if max_windows is not None:
        windows = windows[:max_windows]
    result = DatasetTraces(config=config)
    for window in windows:
        path = out_path / f"{name}-w{window.index:03d}-subnet{window.subnet_index:02d}.pcap"
        packets = _window_packets(enterprise, config, window, seed_seq, scale)
        if capture_drop_rate > 0:
            drop_rng = seed_seq.child(f"{name}:w{window.index}").stream("capture-drop")
            packets = (
                pkt for pkt in packets if drop_rng.random() >= capture_drop_rate
            )
        with PcapWriter.open(path, snaplen=config.snaplen) as writer:
            count = writer.write_all(packets)
        result.traces.append(
            Trace(
                dataset=name,
                window=window,
                path=path,
                packet_count=count,
                snaplen=config.snaplen,
            )
        )
    return result


def generate_study(
    out_dir: str | Path,
    seed: int = 0,
    scale: float = 0.01,
    datasets: Iterable[str] | None = None,
    max_windows: int | None = None,
    enterprise: Enterprise | None = None,
) -> dict[str, DatasetTraces]:
    """Generate all (or selected) datasets; returns {name: traces}."""
    if enterprise is None:
        enterprise = Enterprise(seed=seed)
    names = list(datasets) if datasets is not None else list(DATASET_ORDER)
    return {
        name: generate_dataset(
            name, enterprise, Path(out_dir) / name, seed=seed, scale=scale,
            max_windows=max_windows,
        )
        for name in names
    }
