"""The five dataset configurations (Table 1) and their workload dials.

Most cross-dataset variation in the paper is a *vantage point* effect —
D0-D2 tapped the router serving the mail and authentication subnets while
D3-D4 tapped the router serving the main DNS/Netbios-NS servers and a
major print server — and that variation is emergent here from topology
placement plus the ``router`` field.  The dials below carry only what was
genuinely workload (not vantage) variation: the IMAP→IMAP/S policy change
between D0 and D1, the per-dataset NFS/NCP operation mixes of Tables
13-14, the automated-HTTP-client activity of Table 6, and volume knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Dials", "DatasetConfig", "DATASETS", "DATASET_ORDER"]


def _d(**kwargs: float) -> dict[str, float]:
    return dict(**kwargs)


@dataclass(frozen=True)
class Dials:
    """Per-dataset workload knobs (fractions and rate multipliers)."""

    # -- email -----------------------------------------------------------
    #: Fraction of IMAP sessions using IMAP over SSL (the D0→D1 policy
    #: change of Table 8).
    imap_tls_frac: float = 0.99
    email_rate: float = 1.0

    # -- web (Table 6 automated clients, per-window request rates) --------
    scan1_rate: float = 1.0
    google1_rate: float = 0.0
    google2_rate: float = 1.0
    ifolder_rate: float = 0.0
    web_rate: float = 1.0

    # -- network file systems (Tables 12-14) ------------------------------
    #: NFS request-type mix; keys Read/Write/GetAttr/LookUp/Access/Other.
    nfs_mix: dict[str, float] = field(
        default_factory=lambda: _d(
            Read=0.25, Write=0.01, GetAttr=0.53, LookUp=0.16, Access=0.04, Other=0.01
        )
    )
    #: NCP request-type mix; keys match Table 14 rows.
    ncp_mix: dict[str, float] = field(
        default_factory=lambda: _d(
            Read=0.44,
            Write=0.21,
            FileDirInfo=0.16,
            **{"File Open/Close": 0.02, "File Size": 0.07, "File Search": 0.07},
            **{"Directory Service": 0.007},
            Other=0.03,
        )
    )
    nfs_rate: float = 1.0
    ncp_rate: float = 1.0
    #: Multiplier on heavy-hitter NFS/NCP pair volume.
    nfs_bulk: float = 1.0
    ncp_bulk: float = 1.0

    # -- backup (Table 15, and the ×5 D0→D4 swing of Figure 1a) -----------
    backup_rate: float = 1.0

    # -- everything else ---------------------------------------------------
    windows_rate: float = 1.0
    name_rate: float = 1.0
    netmgnt_rate: float = 1.0
    misc_rate: float = 1.0
    streaming_rate: float = 1.0
    interactive_rate: float = 1.0
    bulk_rate: float = 1.0
    other_rate: float = 1.0
    scan_rate: float = 1.0


@dataclass(frozen=True)
class DatasetConfig:
    """One dataset of Table 1."""

    name: str
    date: str
    router: int
    num_subnets: int
    tap_seconds: float
    per_tap: int
    snaplen: int
    dials: Dials

    @property
    def full_payload(self) -> bool:
        """True when application payloads were captured (D0, D3, D4)."""
        return self.snaplen >= 1500

    @property
    def num_windows(self) -> int:
        """Total tap windows (= traces) in the dataset."""
        return self.num_subnets * self.per_tap


_D0_NFS_MIX = _d(Read=0.70, Write=0.15, GetAttr=0.09, LookUp=0.04, Access=0.005, Other=0.015)
_D3_NFS_MIX = _d(Read=0.25, Write=0.01, GetAttr=0.53, LookUp=0.16, Access=0.04, Other=0.01)
_D4_NFS_MIX = _d(Read=0.01, Write=0.19, GetAttr=0.50, LookUp=0.23, Access=0.05, Other=0.02)

_D0_NCP_MIX = _d(
    Read=0.42, Write=0.01, FileDirInfo=0.27,
    **{"File Open/Close": 0.09, "File Size": 0.09, "File Search": 0.09, "Directory Service": 0.02},
    Other=0.01,
)
_D3_NCP_MIX = _d(
    Read=0.44, Write=0.21, FileDirInfo=0.16,
    **{"File Open/Close": 0.02, "File Size": 0.07, "File Search": 0.07, "Directory Service": 0.007},
    Other=0.023,
)
_D4_NCP_MIX = _d(
    Read=0.41, Write=0.02, FileDirInfo=0.26,
    **{"File Open/Close": 0.07, "File Size": 0.05, "File Search": 0.16, "Directory Service": 0.01},
    Other=0.02,
)

DATASETS: dict[str, DatasetConfig] = {
    "D0": DatasetConfig(
        name="D0",
        date="10/4/04",
        router=0,
        num_subnets=22,
        tap_seconds=600.0,
        per_tap=1,
        snaplen=1500,
        dials=Dials(
            imap_tls_frac=0.46,  # pre-policy-change: IMAP4 and IMAP/S coexist (Table 8)
            email_rate=1.0,
            scan1_rate=1.0,
            google1_rate=1.2,  # google1: 23% of D0 requests (Table 6)
            google2_rate=0.8,
            ifolder_rate=0.05,
            nfs_mix=_D0_NFS_MIX,
            ncp_mix=_D0_NCP_MIX,
            nfs_bulk=7.5,  # D0: 6.3 GB NFS in a 10-minute-per-tap dataset
            ncp_bulk=2.5,
            ncp_rate=2.5,  # NCP conns outnumber NFS only in D0 (Table 12)
            backup_rate=2.0,
            bulk_rate=0.6,
            windows_rate=1.0,
        ),
    ),
    "D1": DatasetConfig(
        name="D1",
        date="12/15/04",
        router=0,
        num_subnets=22,
        tap_seconds=3600.0,
        per_tap=2,
        snaplen=68,
        dials=Dials(
            imap_tls_frac=0.99,
            google1_rate=0.0,
            google2_rate=1.0,
            ifolder_rate=0.05,
            nfs_mix=_D3_NFS_MIX,
            ncp_mix=_D3_NCP_MIX,
            nfs_bulk=0.45,
            ncp_bulk=0.40,
            backup_rate=1.2,
            bulk_rate=0.6,
        ),
    ),
    "D2": DatasetConfig(
        name="D2",
        date="12/16/04",
        router=0,
        num_subnets=22,
        tap_seconds=3600.0,
        per_tap=1,
        snaplen=68,
        dials=Dials(
            imap_tls_frac=0.99,
            google1_rate=0.0,
            google2_rate=1.0,
            ifolder_rate=0.05,
            nfs_mix=_D3_NFS_MIX,
            ncp_mix=_D3_NCP_MIX,
            nfs_bulk=0.55,
            ncp_bulk=0.70,
            backup_rate=1.0,
            bulk_rate=0.6,
        ),
    ),
    "D3": DatasetConfig(
        name="D3",
        date="1/6/05",
        router=1,
        num_subnets=18,
        tap_seconds=3600.0,
        per_tap=1,
        snaplen=1500,
        dials=Dials(
            imap_tls_frac=0.99,
            email_rate=0.5,  # no mail-server subnets behind router 1
            scan1_rate=1.6,  # scan1: 45% of D3 internal requests (Table 6)
            google1_rate=0.0,
            google2_rate=0.6,
            ifolder_rate=0.1,
            nfs_mix=_D3_NFS_MIX,
            ncp_mix=_D3_NCP_MIX,
            nfs_bulk=0.18,
            ncp_bulk=0.35,
            nfs_rate=0.8,
            ncp_rate=0.5,
            backup_rate=0.5,
            bulk_rate=0.45,
            interactive_rate=0.6,
        ),
    ),
    "D4": DatasetConfig(
        name="D4",
        date="1/7/05",
        router=1,
        num_subnets=18,
        tap_seconds=3600.0,
        per_tap=2,  # "1-2" in Table 1; we schedule 1.5 rounds as 2 for half
        snaplen=1500,
        dials=Dials(
            imap_tls_frac=0.99,
            email_rate=0.5,
            scan1_rate=1.0,
            google1_rate=0.05,
            google2_rate=0.4,
            ifolder_rate=1.0,  # iFolder: 10% of D4 requests, 9% of bytes
            nfs_mix=_D4_NFS_MIX,
            ncp_mix=_D4_NCP_MIX,
            nfs_bulk=0.18,
            ncp_bulk=0.30,
            nfs_rate=0.9,
            ncp_rate=0.5,
            backup_rate=0.4,  # the ×5 backup swing from D0 (Figure 1a)
            bulk_rate=0.45,
            interactive_rate=0.6,
        ),
    ),
}

#: Datasets in paper order.
DATASET_ORDER = ["D0", "D1", "D2", "D3", "D4"]
