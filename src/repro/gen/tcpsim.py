"""TCP endpoint emulation: session descriptions → wire packets.

Implements enough TCP mechanics for every transport-level analysis in the
paper to be meaningful: three-way handshake, MSS segmentation, delayed
acknowledgments, loss-driven retransmissions (Figure 10), 1-byte TCP
keep-alives (the NCP/SSH behaviour of §5.2.2/§6), connection rejection
via RST and unanswered SYN retries (the success-rate analyses of §5), and
FIN/RST teardown.

Timestamps model the tap's vantage at the router: a packet crossing from
one side to the other is seen once, and a reply to it appears one RTT
later on the opposite direction.
"""

from __future__ import annotations

from random import Random

from ..net.packet import CapturedPacket, make_tcp_packet
from ..net.tcp import ACK, FIN, PSH, RST, SYN
from .session import AppEvent, Dir, Outcome, TcpSession

__all__ = ["realize_tcp"]

_LINE_RATE_BPS = 100e6  # the 100 Mbps subnets of §6
_SYN_RETRIES = (0.0, 3.0, 9.0)  # classic BSD SYN retransmission schedule
_MIN_RTO = 0.2

# Ambient per-segment loss when a session does not set its own rate.
# WAN paths lose noticeably more than the switched enterprise LAN
# (Figure 10: WAN rates sit above internal ones, both usually < 1%).
_AMBIENT_LOSS_ENT = 0.0015
_AMBIENT_LOSS_WAN = 0.006
_WAN_RTT_THRESHOLD = 0.005  # rtt above ~5 ms implies a WAN path


def _effective_loss(session: TcpSession, rng: Random) -> float:
    if session.loss_rate is not None:
        return session.loss_rate
    base = (
        _AMBIENT_LOSS_WAN if session.rtt > _WAN_RTT_THRESHOLD else _AMBIENT_LOSS_ENT
    )
    return base * (0.3 + 1.4 * rng.random())  # per-connection variability


class _Endpoint:
    """Sequence-number state for one side of the connection."""

    __slots__ = ("ip", "mac", "port", "snd_nxt")

    def __init__(self, ip: int, mac: int, port: int, isn: int) -> None:
        self.ip = ip
        self.mac = mac
        self.port = port
        self.snd_nxt = isn


def realize_tcp(
    session: TcpSession,
    rng: Random,
    window_end: float | None = None,
) -> list[CapturedPacket]:
    """Expand a :class:`TcpSession` into its packets.

    ``window_end`` models the end of the tap window: packets after it are
    not captured, naturally producing the cut-off connections every real
    trace contains.
    """
    packets: list[CapturedPacket] = []
    client = _Endpoint(
        session.client_ip, session.client_mac, session.sport, rng.getrandbits(24)
    )
    server = _Endpoint(
        session.server_ip, session.server_mac, session.dport, rng.getrandbits(24)
    )
    half_rtt = session.rtt / 2.0

    def emit(
        ts: float, src: _Endpoint, dst: _Endpoint, flags: int, payload: bytes = b"", seq: int | None = None, mss: int | None = None
    ) -> float:
        if window_end is not None and ts > window_end:
            return ts
        packets.append(
            make_tcp_packet(
                ts=ts,
                src_mac=src.mac,
                dst_mac=dst.mac,
                src_ip=src.ip,
                dst_ip=dst.ip,
                src_port=src.port,
                dst_port=dst.port,
                seq=seq if seq is not None else src.snd_nxt,
                ack=dst.snd_nxt if flags & ACK else 0,
                flags=flags,
                payload=payload,
                mss=mss,
            )
        )
        return ts

    clock = session.start

    if session.outcome is Outcome.UNANSWERED:
        for delay in _SYN_RETRIES:
            emit(session.start + delay, client, server, SYN, mss=session.mss)
        return packets

    emit(clock, client, server, SYN, mss=session.mss)
    client.snd_nxt += 1

    if session.outcome is Outcome.REJECTED:
        emit(clock + session.rtt, server, client, RST | ACK)
        return packets

    clock += session.rtt
    emit(clock, server, client, SYN | ACK, mss=session.mss)
    server.snd_nxt += 1
    clock += half_rtt
    emit(clock, client, server, ACK)

    loss_rate = _effective_loss(session, rng)
    last_dir = Dir.C2S
    for event in session.events:
        clock += event.dt
        if event.direction != last_dir:
            clock += half_rtt
            last_dir = event.direction
        sender, receiver = (
            (client, server) if event.direction is Dir.C2S else (server, client)
        )
        clock = _send_data(
            session, rng, emit, sender, receiver, event, clock, loss_rate
        )

    clock += session.end_idle
    clock = _send_keepalives(session, emit, client, server, clock, window_end)

    if session.close == "rst":
        emit(clock + half_rtt, client, server, RST | ACK)
    elif session.close == "fin":
        ts = clock + half_rtt
        emit(ts, client, server, FIN | ACK)
        client.snd_nxt += 1
        ts += session.rtt
        emit(ts, server, client, FIN | ACK)
        server.snd_nxt += 1
        emit(ts + session.rtt, client, server, ACK)
    return packets


def _send_data(
    session: TcpSession,
    rng: Random,
    emit,
    sender: _Endpoint,
    receiver: _Endpoint,
    event: AppEvent,
    clock: float,
    loss_rate: float,
) -> float:
    """Emit MSS-sized segments, delayed ACKs, and loss retransmissions."""
    payload = event.payload
    mss = session.mss
    unacked_segments = 0
    offset = 0
    while offset < len(payload):
        chunk = payload[offset : offset + mss]
        tx_delay = len(chunk) * 8.0 / _LINE_RATE_BPS
        clock += tx_delay
        emit(clock, sender, receiver, ACK | (PSH if offset + mss >= len(payload) else 0), chunk)
        if loss_rate and rng.random() < loss_rate:
            # The segment (or its ACK) was lost downstream of the tap; the
            # sender retransmits it after an RTO, and the tap sees both.
            rto = max(2.5 * session.rtt, _MIN_RTO)
            emit(clock + rto, sender, receiver, ACK | PSH, chunk, seq=sender.snd_nxt)
            clock += rto
        sender.snd_nxt += len(chunk)
        offset += len(chunk)
        unacked_segments += 1
        if unacked_segments >= 2:  # delayed ACK: one ACK per two segments
            emit(clock + session.rtt / 2, receiver, sender, ACK)
            unacked_segments = 0
    if unacked_segments:
        emit(clock + session.rtt / 2, receiver, sender, ACK)
    return clock


def _send_keepalives(
    session: TcpSession,
    emit,
    client: _Endpoint,
    server: _Endpoint,
    clock: float,
    window_end: float | None,
) -> float:
    """Emit periodic 1-byte keep-alive probes and their ACKs.

    TCP keep-alives re-send one garbage byte below ``snd_nxt``; every
    probe after the first therefore looks like a 1-byte retransmission,
    which is exactly the artifact §6 excludes from loss-rate analysis.
    """
    if not session.keepalive_interval or not session.keepalive_count:
        return clock
    for _ in range(session.keepalive_count):
        clock += session.keepalive_interval
        if window_end is not None and clock > window_end:
            break
        emit(clock, client, server, ACK, b"\x00", seq=client.snd_nxt - 1)
        emit(clock + session.rtt, server, client, ACK)
    return clock
