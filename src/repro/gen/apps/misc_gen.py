"""Miscellaneous application generator: the "misc", "name"-adjacent
SrvLoc, and "other-tcp"/"other-udp" categories.

Covers the Table 4 "misc" protocols (LPD, IPP, Oracle-SQL, MS-SQL,
Steltor, MetaSys), SrvLoc (whose peer-to-peer response pattern produces
the long internal fan-out tail of §4), and unclassified high-port
traffic.  Like "net-mgnt", the misc connection share is stable across
datasets (periodic probes and announcements).
"""

from __future__ import annotations

from ...proto import misc
from ...util.addr import ip_to_int
from ...util.sampling import LogNormal
from ..session import (
    MULTICAST_MAC_BASE,
    AppEvent,
    Dir,
    RawPackets,
    TcpSession,
    UdpExchange,
)
from ...net.packet import make_udp_packet
from .base import AppGenerator, WindowContext

__all__ = ["MiscGenerator"]

LPD_PORT = 515
IPP_PORT = 631
ORACLE_PORT = 1521
MSSQL_PORT = 1433
STELTOR_PORT = 1627
METASYS_PORT = 11001

_MISC_TCP_RATE = 500.0
_OTHER_TCP_RATE = 400.0
_OTHER_UDP_RATE = 2400.0
_SRVLOC_RATE = 2400.0
#: Windows in which a SrvLoc responder bursts to many peers (fan-out tail).
_SRVLOC_BURST_PROB = 0.25

_SRVLOC_GROUP = ip_to_int("239.255.255.253")

_MISC_REPLY = LogNormal(median=600, sigma=1.2)


class MiscGenerator(AppGenerator):
    """Generates misc/other-category traffic."""

    name = "misc"

    def generate(self, ctx: WindowContext) -> list:
        dials = ctx.config.dials
        sessions: list = []
        self._misc_tcp(ctx, dials.misc_rate, sessions)
        self._other_tcp(ctx, dials.other_rate, sessions)
        self._other_udp(ctx, dials.other_rate, sessions)
        self._srvloc(ctx, dials.name_rate, sessions)
        return sessions

    def _misc_tcp(self, ctx: WindowContext, rate: float, out: list) -> None:
        ports = (LPD_PORT, IPP_PORT, ORACLE_PORT, MSSQL_PORT, STELTOR_PORT, METASYS_PORT)
        weights = (0.2, 0.15, 0.2, 0.2, 0.15, 0.1)
        for _ in range(ctx.count(_MISC_TCP_RATE * rate)):
            client = ctx.local_client()
            server = ctx.internal_peer()
            port = ctx.rng.choices(ports, weights=weights, k=1)[0]
            reply_size = _MISC_REPLY.sample_int(ctx.rng, minimum=40)
            session = TcpSession(
                client_ip=client.ip,
                server_ip=server.ip,
                client_mac=ctx.mac_of(client),
                server_mac=ctx.mac_of(server),
                sport=ctx.ephemeral_port(),
                dport=port,
                start=ctx.start_time(),
                rtt=ctx.ent_rtt(),
                events=[
                    AppEvent(0.0, Dir.C2S, b"\x01" + b"q" * 90),
                    AppEvent(0.01, Dir.S2C, b"\x02" + b"r" * reply_size),
                ],
            )
            out.append(session)

    def _other_tcp(self, ctx: WindowContext, rate: float, out: list) -> None:
        for _ in range(ctx.count(_OTHER_TCP_RATE * rate)):
            client = ctx.local_client()
            server = ctx.internal_peer()
            size = _MISC_REPLY.sample_int(ctx.rng, minimum=20)
            out.append(
                TcpSession(
                    client_ip=client.ip,
                    server_ip=server.ip,
                    client_mac=ctx.mac_of(client),
                    server_mac=ctx.mac_of(server),
                    sport=ctx.ephemeral_port(),
                    dport=ctx.rng.randrange(10_000, 40_000),
                    start=ctx.start_time(),
                    rtt=ctx.ent_rtt(),
                    events=[
                        AppEvent(0.0, Dir.C2S, b"x" * 64),
                        AppEvent(0.01, Dir.S2C, b"y" * size),
                    ],
                )
            )

    def _other_udp(self, ctx: WindowContext, rate: float, out: list) -> None:
        for _ in range(ctx.count(_OTHER_UDP_RATE * rate)):
            client = ctx.local_client()
            server = ctx.internal_peer()
            out.append(
                UdpExchange(
                    client_ip=client.ip,
                    server_ip=server.ip,
                    client_mac=ctx.mac_of(client),
                    server_mac=ctx.mac_of(server),
                    sport=ctx.ephemeral_port(),
                    dport=ctx.rng.randrange(10_000, 50_000),
                    start=ctx.start_time(),
                    rtt=ctx.ent_rtt(),
                    events=[
                        AppEvent(0.0, Dir.C2S, b"u" * ctx.rng.randrange(20, 200)),
                    ]
                    + (
                        [AppEvent(0.0, Dir.S2C, b"v" * ctx.rng.randrange(20, 400))]
                        if ctx.rng.random() < 0.6
                        else []
                    ),
                )
            )

    def _srvloc(self, ctx: WindowContext, rate: float, out: list) -> None:
        """SrvLoc: multicast requests plus unicast responder bursts.

        The burst behaviour — one responder answering ~100+ distinct
        requesters — creates the internal fan-out tail of Figure 2(b).
        """
        request = misc.build_srvloc_request()
        for _ in range(ctx.count(_SRVLOC_RATE * rate)):
            source = ctx.local_client()
            out.append(
                RawPackets(
                    packets=[
                        make_udp_packet(
                            ts=ctx.start_time(),
                            src_mac=source.mac,
                            dst_mac=MULTICAST_MAC_BASE | (_SRVLOC_GROUP & 0x7FFFFF),
                            src_ip=source.ip,
                            dst_ip=_SRVLOC_GROUP,
                            src_port=ctx.ephemeral_port(),
                            dst_port=misc.SRVLOC_PORT,
                            payload=request,
                        )
                    ]
                )
            )
        if ctx.rng.random() < _SRVLOC_BURST_PROB:
            responder = ctx.local_client()
            peers = max(ctx.count(110.0 / max(ctx.scale, 1e-9)), 30)
            for _ in range(min(peers, 220)):
                requester = ctx.internal_peer()
                out.append(
                    UdpExchange(
                        client_ip=responder.ip,
                        server_ip=requester.ip,
                        client_mac=ctx.mac_of(responder),
                        server_mac=ctx.mac_of(requester),
                        sport=misc.SRVLOC_PORT,
                        dport=ctx.ephemeral_port(),
                        start=ctx.start_time(),
                        rtt=ctx.ent_rtt(),
                        events=[AppEvent(0.0, Dir.C2S, request + b"\x00" * 30)],
                    )
                )
