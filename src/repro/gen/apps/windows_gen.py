"""Windows services workload generator (§5.2.1, Tables 9-11).

Models the paper's findings:

* Clients connect to the Netbios/SSN port (139/tcp) and the CIFS port
  (445/tcp) **in parallel**, using whichever works; a sizable share of
  servers listen only on 139, so 445 attempts are rejected — this is what
  drives CIFS connection success down to 46-68% by host-pairs while
  Netbios/SSN stays at 82-92% (Table 9).
* After connecting on 139, the NBSS handshake itself succeeds 89-99% of
  the time.
* CIFS command mix (Table 10): DCE/RPC named pipes carry the most
  messages and bytes, ahead of Windows File Sharing; "SMB Basic" session
  plumbing is numerous but byte-light; LANMAN is a small remainder.
* DCE/RPC functions (Table 11): printing (Spoolss, WritePrinter above
  all) dominates at the D3/D4 vantage (major print server), while user
  authentication (NetLogon/LsaRPC) dominates at the D0 vantage (major
  domain controller) — both emerge here from server placement.
* Endpoint Mapper connections (135/tcp) nearly always succeed, and map
  clients to stand-alone DCE/RPC endpoints on ephemeral ports.
"""

from __future__ import annotations

import hashlib
from random import Random

from ...proto import cifs, dcerpc
from ...proto.netbios import NbssFrame, SSN_POSITIVE_RESPONSE, SSN_SESSION_MESSAGE
from ...util.sampling import LogNormal
from ..session import AppEvent, Dir, Outcome, TcpSession
from ..topology import Host, Role
from .base import AppGenerator, WindowContext

__all__ = ["WindowsGenerator"]

#: Client/server pair conversations per subnet-hour.
_PAIR_RATE = 300.0
#: Endpoint-mapper consultations per subnet-hour.
_EPM_RATE = 40.0
#: Inbound pair conversations per hour at a monitored major server.
_SERVER_INBOUND_RATE = 2500.0

_PRINT_JOB_SIZE = LogNormal(median=140_000, sigma=1.3)
_FILE_IO_SIZE = LogNormal(median=32_000, sigma=1.4)

_WRITE_CHUNK = 16_384


def _listens_on_445(server_ip: int) -> bool:
    """~55% of servers accept direct CIFS; the rest are 139-only (§5.2.1)."""
    digest = hashlib.blake2b(server_ip.to_bytes(4, "big"), digest_size=4).digest()
    return int.from_bytes(digest, "big") / 0xFFFFFFFF < 0.55


class WindowsGenerator(AppGenerator):
    """Generates Netbios/SSN, CIFS, DCE/RPC, and EPM sessions."""

    name = "windows"

    def generate(self, ctx: WindowContext) -> list[TcpSession]:
        rate = ctx.config.dials.windows_rate
        sessions: list[TcpSession] = []
        for _ in range(ctx.count(_PAIR_RATE * rate)):
            client = ctx.local_client()
            server = self._pick_server(ctx)
            if server is None or not ctx.crosses_router(client, server):
                continue
            sessions.extend(self._pair_conversation(ctx, client, server))
        for server in self._monitored_major_servers(ctx):
            for _ in range(ctx.count(_SERVER_INBOUND_RATE * rate)):
                client = ctx.internal_peer()
                sessions.extend(self._pair_conversation(ctx, client, server))
        for _ in range(ctx.count(_EPM_RATE * rate)):
            client = ctx.local_client()
            server = ctx.off_subnet_server(Role.FILE_SERVER_CIFS)
            if server is None:
                continue
            sessions.extend(self._epm_consultation(ctx, client, server))
        return sessions

    @staticmethod
    def _monitored_major_servers(ctx: WindowContext) -> list[Host]:
        return ctx.subnet.servers(Role.AUTH_SERVER) + ctx.subnet.servers(
            Role.PRINT_SERVER
        )

    def _pick_server(self, ctx: WindowContext) -> Host | None:
        roll = ctx.rng.random()
        if roll < 0.45:
            return ctx.off_subnet_server(Role.FILE_SERVER_CIFS)
        if roll < 0.70:
            return ctx.off_subnet_server(Role.PRINT_SERVER)
        if roll < 0.90:
            return ctx.off_subnet_server(Role.AUTH_SERVER)
        return ctx.internal_peer()  # workstation-to-workstation attempts

    # -- one client/server conversation --------------------------------------

    def _pair_conversation(
        self, ctx: WindowContext, client: Host, server: Host
    ) -> list[TcpSession]:
        """The parallel 139+445 connect, then CIFS activity on the winner."""
        rng = ctx.rng
        start = ctx.start_time()
        sessions: list[TcpSession] = []
        unanswered = rng.random() < 0.10
        dual_connect = rng.random() < 0.75  # some clients try only one port
        listens_445 = _listens_on_445(server.ip)
        smb_payloads = None

        def base(dport: int) -> TcpSession:
            return TcpSession(
                client_ip=client.ip,
                server_ip=server.ip,
                client_mac=ctx.mac_of(client),
                server_mac=ctx.mac_of(server),
                sport=ctx.ephemeral_port(),
                dport=dport,
                start=start + rng.random() * 0.01,
                rtt=ctx.ent_rtt(),
            )

        if unanswered:
            for dport in (cifs.SMB_PORT_NBSS, cifs.SMB_PORT_DIRECT) if dual_connect else (cifs.SMB_PORT_NBSS,):
                session = base(dport)
                session.outcome = Outcome.UNANSWERED
                sessions.append(session)
            return sessions

        if dual_connect or not listens_445:
            ssn = base(cifs.SMB_PORT_NBSS)
            if rng.random() < 0.08:
                ssn.outcome = Outcome.REJECTED
            else:
                handshake_ok = rng.random() < 0.95  # NBSS handshake (§5.2.1)
                ssn.events = [
                    AppEvent(
                        0.0, Dir.C2S, NbssFrame.session_request("SERVER", "CLIENT").encode()
                    ),
                ]
                if handshake_ok:
                    ssn.events.append(
                        AppEvent(0.002, Dir.S2C, NbssFrame(SSN_POSITIVE_RESPONSE).encode())
                    )
                    if not listens_445 or not dual_connect:
                        smb_payloads = self._cifs_activity(ctx, server)
                        self._append_smb(ssn, smb_payloads, rng)
                else:
                    ssn.events.append(
                        AppEvent(0.002, Dir.S2C, NbssFrame(0x83, b"\x82").encode())
                    )
            sessions.append(ssn)

        if dual_connect or listens_445:
            direct = base(cifs.SMB_PORT_DIRECT)
            if not listens_445:
                direct.outcome = Outcome.REJECTED
            else:
                smb_payloads = self._cifs_activity(ctx, server)
                self._append_smb(direct, smb_payloads, rng)
            sessions.append(direct)
        return sessions

    @staticmethod
    def _append_smb(session: TcpSession, payloads: list[tuple[int, bytes]], rng: Random) -> None:
        """Wrap SMB messages in NBSS session-message framing on the wire."""
        for direction, payload in payloads:
            framed = NbssFrame(SSN_SESSION_MESSAGE, payload).encode()
            session.events.append(
                AppEvent(0.002 + rng.random() * 0.004, Dir(direction), framed)
            )

    # -- CIFS activity shaped by the server's role ---------------------------

    def _cifs_activity(self, ctx: WindowContext, server: Host) -> list[tuple[int, bytes]]:
        rng = ctx.rng
        messages = self._smb_session_setup(rng)
        if server.has_role(Role.PRINT_SERVER):
            messages += self._print_job(rng)
        elif server.has_role(Role.AUTH_SERVER):
            messages += self._authentication(rng)
        elif server.has_role(Role.FILE_SERVER_CIFS):
            messages += self._file_sharing(rng)
            if rng.random() < 0.25:
                messages += self._lanman(rng)
        else:
            messages += self._lanman(rng)
        messages += [
            (Dir.C2S, cifs.SmbMessage(command=cifs.CMD_TREE_DISCONNECT).encode()),
            (
                Dir.S2C,
                cifs.SmbMessage(command=cifs.CMD_TREE_DISCONNECT, is_response=True).encode(),
            ),
        ]
        return messages

    @staticmethod
    def _smb_session_setup(rng: Random) -> list[tuple[int, bytes]]:
        out = []
        for command, name in (
            (cifs.CMD_NEGOTIATE, ""),
            (cifs.CMD_SESSION_SETUP_ANDX, ""),
            (cifs.CMD_TREE_CONNECT_ANDX, "\\\\SERVER\\IPC$"),
        ):
            request = cifs.SmbMessage(command=command, name=name, mid=rng.getrandbits(15))
            response = cifs.SmbMessage(
                command=command, is_response=True, mid=request.mid, data=b"\x00" * 32
            )
            out.append((Dir.C2S, request.encode()))
            out.append((Dir.S2C, response.encode()))
        return out

    def _print_job(self, rng: Random) -> list[tuple[int, bytes]]:
        """Spoolss over the \\PIPE\\spoolss named pipe: one print job."""
        out = self._pipe_open(rng, "\\spoolss")
        out += self._rpc_on_pipe(rng, "\\PIPE\\SPOOLSS", dcerpc.IFACE_SPOOLSS)
        for opnum in (dcerpc.OP_SPOOLSS_OPENPRINTER, dcerpc.OP_SPOOLSS_STARTDOC):
            out += self._rpc_call(rng, "\\PIPE\\SPOOLSS", opnum, 96, 48)
        job_size = _PRINT_JOB_SIZE.sample_int(rng, minimum=4000)
        offset = 0
        while offset < job_size:
            chunk = min(_WRITE_CHUNK, job_size - offset)
            out += self._rpc_call(
                rng, "\\PIPE\\SPOOLSS", dcerpc.OP_SPOOLSS_WRITEPRINTER, chunk, 24
            )
            offset += chunk
        for opnum in (dcerpc.OP_SPOOLSS_ENDDOC, dcerpc.OP_SPOOLSS_CLOSEPRINTER):
            out += self._rpc_call(rng, "\\PIPE\\SPOOLSS", opnum, 48, 24)
        return out

    def _authentication(self, rng: Random) -> list[tuple[int, bytes]]:
        """NetLogon SamLogon plus LsaRPC lookups against the DC."""
        pipe = "\\PIPE\\NETLOGON" if rng.random() < 0.6 else "\\PIPE\\LSARPC"
        iface = dcerpc.PIPE_INTERFACES[pipe]
        out = self._pipe_open(rng, pipe.split("\\")[-1].lower())
        out += self._rpc_on_pipe(rng, pipe, iface)
        calls = rng.randrange(4, 12)
        opnum = (
            dcerpc.OP_NETLOGON_SAMLOGON
            if iface == dcerpc.IFACE_NETLOGON
            else dcerpc.OP_LSA_LOOKUPSIDS
        )
        for _ in range(calls):
            out += self._rpc_call(rng, pipe, opnum, 760, 980)
        return out

    def _file_sharing(self, rng: Random) -> list[tuple[int, bytes]]:
        """NTCreate + Read/WriteAndX against a file share."""
        out: list[tuple[int, bytes]] = []
        fid = rng.getrandbits(14)
        create = cifs.SmbMessage(
            command=cifs.CMD_NT_CREATE_ANDX, name=f"\\docs\\file{rng.randrange(4000)}.dat"
        )
        out.append((Dir.C2S, create.encode()))
        out.append(
            (Dir.S2C, cifs.SmbMessage(command=cifs.CMD_NT_CREATE_ANDX, is_response=True, fid=fid).encode())
        )
        size = _FILE_IO_SIZE.sample_int(rng, minimum=512)
        reading = rng.random() < 0.7
        offset = 0
        while offset < size:
            chunk = min(_WRITE_CHUNK, size - offset)
            if reading:
                request = cifs.SmbMessage(command=cifs.CMD_READ_ANDX, fid=fid)
                response = cifs.SmbMessage(
                    command=cifs.CMD_READ_ANDX, is_response=True, fid=fid, data=b"r" * chunk
                )
            else:
                request = cifs.SmbMessage(
                    command=cifs.CMD_WRITE_ANDX, fid=fid, data=b"w" * chunk
                )
                response = cifs.SmbMessage(
                    command=cifs.CMD_WRITE_ANDX, is_response=True, fid=fid
                )
            out.append((Dir.C2S, request.encode()))
            out.append((Dir.S2C, response.encode()))
            offset += chunk
        out.append((Dir.C2S, cifs.SmbMessage(command=cifs.CMD_CLOSE, fid=fid).encode()))
        out.append(
            (Dir.S2C, cifs.SmbMessage(command=cifs.CMD_CLOSE, is_response=True).encode())
        )
        # File-server sessions also chat over SrvSvc named pipes (share
        # enumeration, session info) — DCE/RPC rides along with file IO.
        if rng.random() < 0.7:
            out += self._rpc_on_pipe(rng, "\\PIPE\\SRVSVC", dcerpc.IFACE_SRVSVC)
            for _ in range(rng.randrange(2, 6)):
                out += self._rpc_call(rng, "\\PIPE\\SRVSVC", 15, 140, 260)
        return out

    @staticmethod
    def _lanman(rng: Random) -> list[tuple[int, bytes]]:
        """LANMAN network-neighborhood management over its named pipe."""
        request = cifs.SmbMessage(
            command=cifs.CMD_TRANS, name=cifs.LANMAN_PIPE, data=b"\x00\x00WrLeh" + b"\x00" * 20
        )
        response = cifs.SmbMessage(
            command=cifs.CMD_TRANS,
            is_response=True,
            name=cifs.LANMAN_PIPE,
            data=b"\x00" * (200 + rng.randrange(1200)),
        )
        return [(Dir.C2S, request.encode()), (Dir.S2C, response.encode())]

    @staticmethod
    def _pipe_open(rng: Random, pipe_name: str) -> list[tuple[int, bytes]]:
        fid = rng.getrandbits(14)
        request = cifs.SmbMessage(command=cifs.CMD_NT_CREATE_ANDX, name=pipe_name)
        response = cifs.SmbMessage(
            command=cifs.CMD_NT_CREATE_ANDX, is_response=True, fid=fid
        )
        return [(Dir.C2S, request.encode()), (Dir.S2C, response.encode())]

    @staticmethod
    def _rpc_on_pipe(rng: Random, pipe: str, iface) -> list[tuple[int, bytes]]:
        bind = dcerpc.DcerpcPdu(ptype=dcerpc.PDU_BIND, interface=iface)
        ack = dcerpc.DcerpcPdu(ptype=dcerpc.PDU_BIND_ACK, interface=iface)
        return [
            (Dir.C2S, cifs.SmbMessage(command=cifs.CMD_TRANS, name=pipe, data=bind.encode()).encode()),
            (
                Dir.S2C,
                cifs.SmbMessage(
                    command=cifs.CMD_TRANS, is_response=True, name=pipe, data=ack.encode()
                ).encode(),
            ),
        ]

    @staticmethod
    def _rpc_call(
        rng: Random, pipe: str, opnum: int, req_bytes: int, resp_bytes: int
    ) -> list[tuple[int, bytes]]:
        call_id = rng.getrandbits(16)
        request = dcerpc.DcerpcPdu(
            ptype=dcerpc.PDU_REQUEST, call_id=call_id, opnum=opnum, data=b"q" * req_bytes
        )
        response = dcerpc.DcerpcPdu(
            ptype=dcerpc.PDU_RESPONSE, call_id=call_id, opnum=opnum, data=b"s" * resp_bytes
        )
        return [
            (
                Dir.C2S,
                cifs.SmbMessage(command=cifs.CMD_TRANS, name=pipe, data=request.encode()).encode(),
            ),
            (
                Dir.S2C,
                cifs.SmbMessage(
                    command=cifs.CMD_TRANS, is_response=True, name=pipe, data=response.encode()
                ).encode(),
            ),
        ]

    # -- Endpoint Mapper + stand-alone DCE/RPC --------------------------------

    def _epm_consultation(
        self, ctx: WindowContext, client: Host, server: Host
    ) -> list[TcpSession]:
        rng = ctx.rng
        start = ctx.start_time()
        epm = TcpSession(
            client_ip=client.ip,
            server_ip=server.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(server),
            sport=ctx.ephemeral_port(),
            dport=dcerpc.EPMAPPER_PORT,
            start=start,
            rtt=ctx.ent_rtt(),
        )
        if rng.random() < 0.005:  # EPM succeeds 99-100% (Table 9)
            epm.outcome = Outcome.UNANSWERED
            return [epm]
        bind = dcerpc.DcerpcPdu(ptype=dcerpc.PDU_BIND, interface=dcerpc.IFACE_EPMAPPER)
        ack = dcerpc.DcerpcPdu(ptype=dcerpc.PDU_BIND_ACK, interface=dcerpc.IFACE_EPMAPPER)
        map_req = dcerpc.DcerpcPdu(
            ptype=dcerpc.PDU_REQUEST, opnum=dcerpc.OP_EPM_MAP, data=b"m" * 80
        )
        mapped_port = 1025 + rng.randrange(64)
        map_resp = dcerpc.DcerpcPdu(
            ptype=dcerpc.PDU_RESPONSE,
            opnum=dcerpc.OP_EPM_MAP,
            data=mapped_port.to_bytes(2, "big") + b"\x00" * 78,
        )
        epm.events = [
            AppEvent(0.0, Dir.C2S, bind.encode()),
            AppEvent(0.002, Dir.S2C, ack.encode()),
            AppEvent(0.002, Dir.C2S, map_req.encode()),
            AppEvent(0.002, Dir.S2C, map_resp.encode()),
        ]
        # The follow-up stand-alone DCE/RPC connection to the mapped port.
        follow = TcpSession(
            client_ip=client.ip,
            server_ip=server.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(server),
            sport=ctx.ephemeral_port(),
            dport=mapped_port,
            start=start + 0.05,
            rtt=ctx.ent_rtt(),
        )
        iface = dcerpc.IFACE_SRVSVC
        bind2 = dcerpc.DcerpcPdu(ptype=dcerpc.PDU_BIND, interface=iface)
        ack2 = dcerpc.DcerpcPdu(ptype=dcerpc.PDU_BIND_ACK, interface=iface)
        follow.events = [
            AppEvent(0.0, Dir.C2S, bind2.encode()),
            AppEvent(0.002, Dir.S2C, ack2.encode()),
        ]
        for _ in range(rng.randrange(1, 5)):
            call_id = rng.getrandbits(16)
            follow.events.append(
                AppEvent(
                    0.004,
                    Dir.C2S,
                    dcerpc.DcerpcPdu(
                        ptype=dcerpc.PDU_REQUEST, call_id=call_id, opnum=15, data=b"q" * 120
                    ).encode(),
                )
            )
            follow.events.append(
                AppEvent(
                    0.003,
                    Dir.S2C,
                    dcerpc.DcerpcPdu(
                        ptype=dcerpc.PDU_RESPONSE, call_id=call_id, opnum=15, data=b"s" * 200
                    ).encode(),
                )
            )
        return [epm, follow]
