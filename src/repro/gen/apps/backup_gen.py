"""Backup workload generator (§5.2.3, Table 15).

Models the three backup systems the paper observes:

* **Veritas** — separate control (many tiny connections) and data
  connections; data flows strictly client → server.  One Veritas data
  connection per study is given a ~5% loss rate, reproducing the
  retransmission outlier of §6/Figure 10.
* **Dantz** — control and data share one connection, with substantial
  volume in *both* directions (sometimes tens of MB each way within a
  single connection).
* **Connected** — a small service backing data up to an external site.

Backup is a few huge flows, so volume here scales with the study's
``scale`` through flow *sizes* rather than flow counts.
"""

from __future__ import annotations

from random import Random

from ...proto import backupproto as bp
from ...util.sampling import LogNormal
from ..session import ROUTER_MAC, AppEvent, Dir, TcpSession
from ..topology import Host, Role
from .base import AppGenerator, WindowContext

__all__ = ["BackupGenerator"]

#: Backup jobs per subnet-hour.
_VERITAS_JOB_RATE = 0.8
_DANTZ_JOB_RATE = 0.8
_CONNECTED_RATE = 0.4
#: Control connections per data connection (Table 15: 1271 ctrl vs 352 data).
_VERITAS_CTRL_PER_JOB = 3.6

_VERITAS_JOB_BYTES = LogNormal(median=70e6, sigma=1.2)
_DANTZ_JOB_BYTES = LogNormal(median=75e6, sigma=1.3)
_DANTZ_REVERSE_FRAC = 0.35  # Dantz moves real volume server→client too
_CONNECTED_BYTES = LogNormal(median=8e6, sigma=1.0)

_CHUNK = 64 * 1024  # application-level record size for bulk data


class BackupGenerator(AppGenerator):
    """Generates Veritas/Dantz/Connected backup sessions."""

    name = "backup"

    def generate(self, ctx: WindowContext) -> list[TcpSession]:
        rate = ctx.config.dials.backup_rate
        sessions: list[TcpSession] = []
        if self._is_outlier_window(ctx):
            # The §6 outlier: one Veritas connection per study with ~5%
            # retransmissions (congestion or a flaky NIC downstream).
            server = ctx.off_subnet_server(Role.BACKUP_VERITAS)
            if server is not None:
                sessions.extend(
                    self._veritas_job(ctx, ctx.local_client(), server, rate, lossy=True)
                )
        for _ in range(ctx.count(_VERITAS_JOB_RATE * rate / max(ctx.scale, 1e-9))):
            # Job counts stay unscaled; sizes carry the scale instead.
            server = ctx.off_subnet_server(Role.BACKUP_VERITAS)
            if server is None:
                break
            sessions.extend(self._veritas_job(ctx, ctx.local_client(), server, rate))
        for _ in range(ctx.count(_DANTZ_JOB_RATE * rate / max(ctx.scale, 1e-9))):
            server = ctx.off_subnet_server(Role.BACKUP_DANTZ)
            if server is None:
                break
            sessions.append(self._dantz_job(ctx, ctx.local_client(), server, rate))
        for _ in range(ctx.count(_CONNECTED_RATE * rate / max(ctx.scale, 1e-9))):
            sessions.append(self._connected_job(ctx, ctx.local_client(), rate))
        return sessions

    # -- Veritas ---------------------------------------------------------------

    @staticmethod
    def _is_outlier_window(ctx: WindowContext) -> bool:
        return ctx.config.name == "D4" and ctx.subnet.index % 18 == 5

    def _veritas_job(
        self, ctx: WindowContext, client: Host, server: Host, rate: float,
        lossy: bool = False,
    ) -> list[TcpSession]:
        rng = ctx.rng
        sessions: list[TcpSession] = []
        start = ctx.start_time()
        for index in range(max(int(round(rng.gauss(_VERITAS_CTRL_PER_JOB, 1.0))), 1)):
            ctrl = TcpSession(
                client_ip=client.ip,
                server_ip=server.ip,
                client_mac=ctx.mac_of(client),
                server_mac=ctx.mac_of(server),
                sport=ctx.ephemeral_port(),
                dport=bp.VERITAS_CTRL_PORT,
                start=start + index * 0.5,
                rtt=ctx.ent_rtt(),
            )
            record = bp.BackupRecord(bp.MAGIC_VERITAS, bp.REC_CONTROL, b"c" * 60)
            ctrl.events = [
                AppEvent(0.0, Dir.C2S, record.encode()),
                AppEvent(0.01, Dir.S2C, record.encode()),
            ]
            sessions.append(ctrl)
        data = TcpSession(
            client_ip=client.ip,
            server_ip=server.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(server),
            sport=ctx.ephemeral_port(),
            dport=bp.VERITAS_DATA_PORT,
            start=start + 2.0,
            rtt=ctx.ent_rtt(),
        )
        total = int(_VERITAS_JOB_BYTES.sample(rng) * ctx.scale * rate)
        if lossy:
            data.loss_rate = 0.05
            total = max(total, int(2e9 * ctx.scale))  # the 2 GB/hour transfer
        self._bulk_events(data, total, Dir.C2S)
        sessions.append(data)
        return sessions

    # -- Dantz -------------------------------------------------------------------

    def _dantz_job(
        self, ctx: WindowContext, client: Host, server: Host, rate: float
    ) -> TcpSession:
        rng = ctx.rng
        session = TcpSession(
            client_ip=client.ip,
            server_ip=server.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(server),
            sport=ctx.ephemeral_port(),
            dport=bp.DANTZ_PORT,
            start=ctx.start_time(),
            rtt=ctx.ent_rtt(),
        )
        total = int(_DANTZ_JOB_BYTES.sample(rng) * ctx.scale * rate)
        reverse = int(total * _DANTZ_REVERSE_FRAC * rng.random() * 2)
        control = bp.BackupRecord(bp.MAGIC_DANTZ, bp.REC_CONTROL, b"c" * 80)
        session.events = [
            AppEvent(0.0, Dir.C2S, control.encode()),
            AppEvent(0.01, Dir.S2C, control.encode()),
        ]
        # Interleave forward and reverse data within the same connection —
        # the bi-directionality the paper observes *within* connections.
        fwd_left, rev_left = total, reverse
        while fwd_left > 0 or rev_left > 0:
            if fwd_left > 0:
                chunk = min(_CHUNK * 8, fwd_left)
                record = bp.BackupRecord(bp.MAGIC_DANTZ, bp.REC_DATA, b"\x00" * chunk)
                session.events.append(AppEvent(0.002, Dir.C2S, record.encode()))
                fwd_left -= chunk
            if rev_left > 0:
                chunk = min(_CHUNK * 4, rev_left)
                record = bp.BackupRecord(bp.MAGIC_DANTZ, bp.REC_DATA, b"\x00" * chunk)
                session.events.append(AppEvent(0.002, Dir.S2C, record.encode()))
                rev_left -= chunk
        return session

    # -- Connected ----------------------------------------------------------------

    def _connected_job(self, ctx: WindowContext, client: Host, rate: float) -> TcpSession:
        session = TcpSession(
            client_ip=client.ip,
            server_ip=ctx.wan_ip(),
            client_mac=ctx.mac_of(client),
            server_mac=ROUTER_MAC,
            sport=ctx.ephemeral_port(),
            dport=bp.CONNECTED_PORT,
            start=ctx.start_time(),
            rtt=ctx.wan_rtt(),
        )
        total = int(_CONNECTED_BYTES.sample(ctx.rng) * ctx.scale * rate)
        self._bulk_events(session, total, Dir.C2S, magic=bp.MAGIC_CONNECTED)
        return session

    @staticmethod
    def _bulk_events(
        session: TcpSession, total: int, direction: Dir, magic: bytes = bp.MAGIC_VERITAS
    ) -> None:
        """Append framed bulk-data records totalling ``total`` bytes."""
        left = max(total, _CHUNK)
        while left > 0:
            chunk = min(_CHUNK * 8, left)
            record = bp.BackupRecord(magic, bp.REC_DATA, b"\x00" * chunk)
            session.events.append(AppEvent(0.002, direction, record.encode()))
            left -= chunk
