"""Bulk-transfer workload generator: FTP and HPSS (the "bulk" category).

Figure 1(a) shows "bulk" among the top byte categories.  FTP uses the
classic control (21/tcp) + data (20/tcp or passive ephemeral) split; HPSS
(the lab's mass-storage system) moves large objects over its mover ports.
Byte volume scales through transfer sizes.
"""

from __future__ import annotations

from ...util.sampling import LogNormal
from ..session import ROUTER_MAC, AppEvent, Dir, TcpSession
from ..topology import Host, Role
from .base import AppGenerator, WindowContext

__all__ = ["BulkGenerator"]

FTP_CTRL_PORT = 21
FTP_DATA_PORT = 20
HPSS_PORT = 1217

#: Transfers per subnet-hour (counts stay unscaled; sizes carry the scale).
_FTP_RATE = 2.0
_HPSS_RATE = 1.0

_FTP_SIZE = LogNormal(median=24e6, sigma=1.5)
_HPSS_SIZE = LogNormal(median=150e6, sigma=1.2)

_CHUNK = 512 * 1024


class BulkGenerator(AppGenerator):
    """Generates FTP and HPSS bulk transfers."""

    name = "bulk"

    def generate(self, ctx: WindowContext) -> list[TcpSession]:
        rate = ctx.config.dials.bulk_rate
        sessions: list[TcpSession] = []
        for _ in range(ctx.count(_FTP_RATE * rate / max(ctx.scale, 1e-9))):
            sessions.extend(self._ftp_transfer(ctx, rate))
        for _ in range(ctx.count(_HPSS_RATE * rate / max(ctx.scale, 1e-9))):
            sessions.append(self._hpss_transfer(ctx, rate))
        return sessions

    def _ftp_transfer(self, ctx: WindowContext, rate: float) -> list[TcpSession]:
        rng = ctx.rng
        client = ctx.local_client()
        wan = rng.random() < 0.5
        if wan:
            server_ip, server_mac, rtt = ctx.wan_ip(), ROUTER_MAC, ctx.wan_rtt()
        else:
            peer = ctx.internal_peer()
            server_ip, server_mac, rtt = peer.ip, ctx.mac_of(peer), ctx.ent_rtt()
        start = ctx.start_time()
        ctrl = TcpSession(
            client_ip=client.ip,
            server_ip=server_ip,
            client_mac=ctx.mac_of(client),
            server_mac=server_mac,
            sport=ctx.ephemeral_port(),
            dport=FTP_CTRL_PORT,
            start=start,
            rtt=rtt,
        )
        ctrl.events = [
            AppEvent(0.0, Dir.S2C, b"220 FTP server ready\r\n"),
            AppEvent(0.05, Dir.C2S, b"USER anonymous\r\nPASS guest\r\nPASV\r\nRETR data.tar\r\n"),
            AppEvent(0.05, Dir.S2C, b"230 OK\r\n227 Entering Passive Mode\r\n150 Opening\r\n"),
            AppEvent(2.0, Dir.S2C, b"226 Transfer complete\r\n"),
            AppEvent(0.05, Dir.C2S, b"QUIT\r\n"),
        ]
        size = int(_FTP_SIZE.sample(rng) * ctx.scale * rate)
        data = TcpSession(
            client_ip=client.ip,
            server_ip=server_ip,
            client_mac=ctx.mac_of(client),
            server_mac=server_mac,
            sport=ctx.ephemeral_port(),
            dport=FTP_DATA_PORT,
            start=start + 0.2,
            rtt=rtt,
        )
        left = max(size, 10_000)
        while left > 0:
            chunk = min(_CHUNK, left)
            data.events.append(AppEvent(0.002, Dir.S2C, b"\x00" * chunk))
            left -= chunk
        return [ctrl, data]

    def _hpss_transfer(self, ctx: WindowContext, rate: float) -> TcpSession:
        rng = ctx.rng
        client = ctx.local_client()
        peer = ctx.internal_peer()
        session = TcpSession(
            client_ip=client.ip,
            server_ip=peer.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(peer),
            sport=ctx.ephemeral_port(),
            dport=HPSS_PORT,
            start=ctx.start_time(),
            rtt=ctx.ent_rtt(),
        )
        size = int(_HPSS_SIZE.sample(rng) * ctx.scale * rate)
        storing = rng.random() < 0.5
        direction = Dir.C2S if storing else Dir.S2C
        session.events.append(AppEvent(0.0, Dir.C2S, b"HPSS-OPEN" + b"\x00" * 55))
        session.events.append(AppEvent(0.01, Dir.S2C, b"HPSS-OK" + b"\x00" * 25))
        left = max(size, 10_000)
        while left > 0:
            chunk = min(_CHUNK, left)
            session.events.append(AppEvent(0.002, direction, b"\x00" * chunk))
            left -= chunk
        return session
