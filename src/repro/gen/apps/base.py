"""Shared infrastructure for application traffic generators.

Every generator receives a :class:`WindowContext` — one monitored subnet
over one tap window — and returns abstract sessions.  The context carries
the topology, the dataset's workload dials, and a generator-private RNG
substream so adding draws to one generator never perturbs another.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING

from ...util.sampling import LogNormal
from ..session import ROUTER_MAC
from ..topology import Enterprise, EnterpriseSubnet, Host, Role, wan_address

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..datasets import DatasetConfig

__all__ = ["WindowContext", "AppGenerator", "poisson", "EPHEMERAL_BASE"]

EPHEMERAL_BASE = 1024

_ENT_RTT = LogNormal(median=0.0004, sigma=0.6)  # ~0.4 ms internal (§5.1.3)
_WAN_RTT = LogNormal(median=0.030, sigma=1.0)  # tens of ms across the WAN
_WAN_DNS_RTT = LogNormal(median=0.020, sigma=0.7)  # ~20 ms to off-site DNS


def poisson(rng: Random, mean: float) -> int:
    """Sample a Poisson count (inversion for small means, normal tail)."""
    if mean <= 0:
        return 0
    if mean > 50:
        return max(int(round(rng.gauss(mean, math.sqrt(mean)))), 0)
    limit = math.exp(-mean)
    product = rng.random()
    count = 0
    while product > limit:
        product *= rng.random()
        count += 1
    return count


@dataclass
class WindowContext:
    """One monitored subnet over one tap window."""

    enterprise: Enterprise
    subnet: EnterpriseSubnet
    t0: float
    t1: float
    rng: Random
    config: "DatasetConfig"
    scale: float

    @property
    def duration(self) -> float:
        """Window length in seconds."""
        return self.t1 - self.t0

    def count(self, rate_per_hour: float) -> int:
        """Poisson count for a whole-window rate, scaled by the study scale."""
        mean = rate_per_hour * (self.duration / 3600.0) * self.scale
        return poisson(self.rng, mean)

    def start_time(self) -> float:
        """A uniformly random session start within the window."""
        return self.t0 + self.rng.random() * self.duration

    def ephemeral_port(self) -> int:
        """A random ephemeral source port."""
        return self.rng.randrange(EPHEMERAL_BASE, 65536)

    def ent_rtt(self) -> float:
        """A sampled intra-enterprise round-trip time."""
        return _ENT_RTT.sample(self.rng)

    def wan_rtt(self) -> float:
        """A sampled wide-area round-trip time."""
        return _WAN_RTT.sample(self.rng)

    def wan_dns_rtt(self) -> float:
        """A sampled RTT to off-site DNS servers (closer than generic WAN)."""
        return _WAN_DNS_RTT.sample(self.rng)

    # -- endpoint helpers -------------------------------------------------

    def local_client(self) -> Host:
        """A random workstation on the monitored subnet."""
        return self.enterprise.pick_workstation(self.rng, self.subnet)

    def internal_peer(self) -> Host:
        """A random workstation on another subnet (crosses the router)."""
        return self.enterprise.pick_internal_peer(self.rng, self.subnet.index)

    def wan_ip(self) -> int:
        """A random external peer address."""
        return wan_address(self.rng)

    def server(self, role: Role, prefer_local: bool = False) -> Host | None:
        """A server holding ``role``; optionally prefer one on this subnet.

        Returns ``None`` when the site has no server of that kind.
        """
        if prefer_local:
            local = self.subnet.servers(role)
            if local:
                return self.rng.choice(local)
        candidates = self.enterprise.servers(role)
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def off_subnet_server(self, role: Role) -> Host | None:
        """A server holding ``role`` on a *different* subnet, if any."""
        candidates = [
            host
            for host in self.enterprise.servers(role)
            if host.subnet_index != self.subnet.index
        ]
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def mac_of(self, host: Host) -> int:
        """The MAC a packet from ``host`` shows on the monitored subnet.

        Hosts on the monitored subnet use their own MAC; anything arriving
        through the router shows the router port's MAC.
        """
        if host.subnet_index == self.subnet.index:
            return host.mac
        return ROUTER_MAC

    def crosses_router(self, a: Host, b: Host) -> bool:
        """True when traffic between ``a`` and ``b`` is visible at the tap."""
        return a.subnet_index != b.subnet_index


class AppGenerator:
    """Base class: one application family's workload model.

    Subclasses implement :meth:`generate`, returning the abstract
    sessions this application contributes to one window.
    """

    #: Name used to derive the generator's RNG substream.
    name = "app"

    def generate(self, ctx: WindowContext) -> list:
        raise NotImplementedError
