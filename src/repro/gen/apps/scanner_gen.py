"""Scanning traffic generator (§3).

The traces contain two kinds of scanners, both of which the analysis
pipeline must find and remove before any traffic breakdown:

* the site's **two internal vulnerability scanners**, sweeping TCP
  services across hosts in ascending address order, and
* **external ICMP scanners** probing the monitored subnet (most other
  external scans are blocked at the LBNL border).

Scan traffic accounts for 4-18% of connections across datasets before
filtering.  Sweeps touch > 50 distinct hosts in monotonic address order,
so the §3 heuristic (≥ 50 distinct peers, ≥ 45 in order) fires on them.
"""

from __future__ import annotations

from ..session import ROUTER_MAC, IcmpExchange, Outcome, TcpSession
from ..topology import Role
from .base import AppGenerator, WindowContext

__all__ = ["ScannerGenerator"]

#: Internal TCP sweeps per subnet-hour (each touches many hosts).  Sweep
#: counts stay unscaled — a scan hits a fixed target set regardless of how
#: much background traffic the study generates.
_INTERNAL_SWEEP_RATE = 0.3
#: External ICMP sweeps per subnet-hour.
_EXTERNAL_SWEEP_RATE = 0.4

_SWEEP_PORTS = (22, 80, 111, 135, 139, 445, 1433, 3306)


class ScannerGenerator(AppGenerator):
    """Generates internal TCP scans and external ICMP scans."""

    name = "scanner"

    def generate(self, ctx: WindowContext) -> list:
        rate = ctx.config.dials.scan_rate
        sessions: list = []
        unscale = 1.0 / max(ctx.scale, 1e-9)
        for _ in range(ctx.count(_INTERNAL_SWEEP_RATE * rate * unscale)):
            sessions.extend(self._internal_sweep(ctx))
        for _ in range(ctx.count(_EXTERNAL_SWEEP_RATE * rate * unscale)):
            sessions.extend(self._external_icmp_sweep(ctx))
        return sessions

    def _internal_sweep(self, ctx: WindowContext) -> list[TcpSession]:
        """One internal scanner sweeping a TCP port across this subnet."""
        scanners = ctx.enterprise.servers(Role.SCANNER)
        if not scanners:
            return []
        scanner = ctx.rng.choice(scanners)
        if scanner.subnet_index == ctx.subnet.index:
            return []  # intra-subnet traffic is invisible at the router tap
        port = ctx.rng.choice(_SWEEP_PORTS)
        start = ctx.start_time()
        sessions: list[TcpSession] = []
        targets = ctx.subnet.hosts[: min(70, len(ctx.subnet.hosts))]
        for index, target in enumerate(targets):  # ascending address order
            session = TcpSession(
                client_ip=scanner.ip,
                server_ip=target.ip,
                client_mac=ROUTER_MAC,
                server_mac=target.mac,
                sport=ctx.ephemeral_port(),
                dport=port,
                start=start + index * 0.05,
                rtt=ctx.ent_rtt(),
            )
            roll = ctx.rng.random()
            if roll < 0.75:
                session.outcome = Outcome.REJECTED
            elif roll < 0.92:
                session.outcome = Outcome.UNANSWERED
            else:
                # The scanner engaged an otherwise-idle service (§3's
                # warning about scanners inflating protocol diversity).
                from ..session import AppEvent, Dir

                session.events = [
                    AppEvent(0.0, Dir.S2C, b"220 service ready\r\n"),
                    AppEvent(0.01, Dir.C2S, b"PROBE\r\n"),
                ]
                session.close = "rst"
            sessions.append(session)
        return sessions

    def _external_icmp_sweep(self, ctx: WindowContext) -> list[IcmpExchange]:
        """One external host ping-sweeping the monitored subnet."""
        source = ctx.wan_ip()
        start = ctx.start_time()
        exchanges: list[IcmpExchange] = []
        targets = ctx.subnet.hosts[: min(60, len(ctx.subnet.hosts))]
        for index, target in enumerate(targets):  # ascending address order
            exchanges.append(
                IcmpExchange(
                    src_ip=source,
                    dst_ip=target.ip,
                    src_mac=ROUTER_MAC,
                    dst_mac=target.mac,
                    start=start + index * 0.02,
                    rtt=ctx.wan_rtt(),
                    count=1,
                    answered=ctx.rng.random() < 0.3,
                    ident=index & 0xFFFF,
                )
            )
        return exchanges
