"""Netbios Name Service workload generator (§5.1.3).

Models the paper's findings: requests go overwhelmingly to the two main
NBNS servers; the request mix is 81-85% name queries and 12-15% refreshes
with a sprinkle of registrations/releases; 63-71% of queried names are
workstation/server names and 22-32% domain/browser names; and — the
headline — 36-50% of *distinct* queries fail with NXDOMAIN because
loosely-managed names go stale.  Failure is a property of the *name*
(re-querying the same stale name keeps failing), which we reproduce by
hashing the name to decide its fate.  Requests are spread fairly evenly
over clients (top ten clients < 40% of requests).
"""

from __future__ import annotations

import hashlib

from ...proto import netbios
from ...proto.dns import RCODE_NOERROR, RCODE_NXDOMAIN
from ..session import AppEvent, Dir, UdpExchange
from ..topology import Role
from .base import AppGenerator, WindowContext

__all__ = ["NetbiosNsGenerator"]

NBNS_PORT = 137

#: Requests per subnet-hour from monitored workstations.
_CLIENT_RATE = 3600.0
#: Inbound requests per hour to a monitored main NBNS server.
_INBOUND_RATE = 8000.0

#: Fraction of query targets that are stale (drives the NXDOMAIN rate).
_STALE_FRAC = 0.42

_HOST_NAMES = [f"WS{i:04d}" for i in range(300)] + [f"SRV{i:03d}" for i in range(40)]
_DOMAIN_NAMES = [f"DOMAIN{i:02d}" for i in range(24)]


def _name_is_stale(name: str) -> bool:
    """Deterministically mark ~_STALE_FRAC of names as stale."""
    digest = hashlib.blake2b(name.encode(), digest_size=4).digest()
    return int.from_bytes(digest, "big") / 0xFFFFFFFF < _STALE_FRAC


class NetbiosNsGenerator(AppGenerator):
    """Generates Netbios/NS request/response exchanges for one window."""

    name = "netbios-ns"

    def generate(self, ctx: WindowContext) -> list[UdpExchange]:
        rate = ctx.config.dials.name_rate
        sessions: list[UdpExchange] = []
        servers = self._main_servers(ctx)
        if not servers:
            return sessions
        for _ in range(ctx.count(_CLIENT_RATE * rate)):
            client = ctx.local_client()
            server = ctx.rng.choice(servers)
            if not ctx.crosses_router(client, server):
                continue
            sessions.append(self._exchange(ctx, client, server))
        # Inbound load when a main server sits on the monitored subnet.
        for server in ctx.subnet.servers(Role.NBNS_SERVER):
            for _ in range(ctx.count(_INBOUND_RATE * rate)):
                client = ctx.internal_peer()
                sessions.append(self._exchange(ctx, client, server))
        return sessions

    @staticmethod
    def _main_servers(ctx: WindowContext):
        return ctx.enterprise.servers(Role.NBNS_SERVER)

    def _exchange(self, ctx: WindowContext, client, server) -> UdpExchange:
        rng = ctx.rng
        action = rng.random()
        if action < 0.83:
            opcode = netbios.NB_OPCODE_QUERY
        elif action < 0.965:
            opcode = netbios.NB_OPCODE_REFRESH
        elif action < 0.99:
            opcode = netbios.NB_OPCODE_REGISTRATION
        else:
            opcode = netbios.NB_OPCODE_RELEASE
        if rng.random() < 0.67:
            name = rng.choice(_HOST_NAMES)
            suffix = netbios.NAME_TYPE_SERVER if name.startswith("SRV") else netbios.NAME_TYPE_WORKSTATION
        else:
            name = rng.choice(_DOMAIN_NAMES)
            suffix = netbios.NAME_TYPE_DOMAIN if rng.random() < 0.5 else 0x1C
        if opcode == netbios.NB_OPCODE_QUERY and _name_is_stale(name):
            rcode = RCODE_NXDOMAIN
        else:
            rcode = RCODE_NOERROR
        ident = rng.getrandbits(16)
        request = netbios.NbnsPacket(ident=ident, opcode=opcode, name=name, suffix=suffix)
        response = netbios.NbnsPacket(
            ident=ident,
            opcode=opcode,
            name=name,
            suffix=suffix,
            is_response=True,
            rcode=rcode,
            addr=client.ip if rcode == RCODE_NOERROR else 0,
        )
        return UdpExchange(
            client_ip=client.ip,
            server_ip=server.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(server),
            sport=NBNS_PORT,
            dport=NBNS_PORT,
            start=ctx.start_time(),
            rtt=ctx.ent_rtt(),
            events=[
                AppEvent(0.0, Dir.C2S, request.encode()),
                AppEvent(0.0, Dir.S2C, response.encode()),
            ],
        )
