"""Interactive workload generator: SSH, telnet, rlogin, X11.

§3 notes interactive traffic's packet share is about twice its byte share
(small packets), and that SSH doubles as a file-copy and tunneling tool —
so a fraction of SSH sessions here carry bulk subtransfers.  SSH sessions
also emit TCP keep-alives, which §6 excludes from retransmission
analysis.
"""

from __future__ import annotations

from ...util.sampling import LogNormal
from ..session import ROUTER_MAC, AppEvent, Dir, TcpSession
from .base import AppGenerator, WindowContext

__all__ = ["InteractiveGenerator"]

SSH_PORT = 22
TELNET_PORT = 23
RLOGIN_PORT = 513
X11_PORT = 6000

_SSH_RATE = 14.0
_TELNET_RATE = 2.0
_X11_RATE = 2.5

_KEYSTROKES = LogNormal(median=120, sigma=1.0)
_SCP_SIZE = LogNormal(median=4e6, sigma=1.4)


class InteractiveGenerator(AppGenerator):
    """Generates interactive login sessions."""

    name = "interactive"

    def generate(self, ctx: WindowContext) -> list[TcpSession]:
        rate = ctx.config.dials.interactive_rate
        sessions: list[TcpSession] = []
        for _ in range(ctx.count(_SSH_RATE * rate)):
            sessions.append(self._ssh_session(ctx))
        for _ in range(ctx.count(_TELNET_RATE * rate)):
            sessions.append(self._char_session(ctx, TELNET_PORT))
        for _ in range(ctx.count(_X11_RATE * rate)):
            sessions.append(self._char_session(ctx, X11_PORT))
        return sessions

    def _ssh_session(self, ctx: WindowContext) -> TcpSession:
        rng = ctx.rng
        local = ctx.local_client()
        roll = rng.random()
        if roll < 0.15:
            # Inbound: a remote user logging into a monitored host.
            client_ip, client_mac = ctx.wan_ip(), ROUTER_MAC
            server_ip, server_mac, rtt = local.ip, ctx.mac_of(local), ctx.wan_rtt()
        elif roll < 0.45:
            client_ip, client_mac = local.ip, ctx.mac_of(local)
            server_ip, server_mac, rtt = ctx.wan_ip(), ROUTER_MAC, ctx.wan_rtt()
        else:
            peer = ctx.internal_peer()
            client_ip, client_mac = local.ip, ctx.mac_of(local)
            server_ip, server_mac, rtt = peer.ip, ctx.mac_of(peer), ctx.ent_rtt()
        session = TcpSession(
            client_ip=client_ip,
            server_ip=server_ip,
            client_mac=client_mac,
            server_mac=server_mac,
            sport=ctx.ephemeral_port(),
            dport=SSH_PORT,
            start=ctx.start_time(),
            rtt=rtt,
        )
        session.events = [
            AppEvent(0.0, Dir.S2C, b"SSH-2.0-OpenSSH_3.9p1\r\n"),
            AppEvent(0.01, Dir.C2S, b"SSH-2.0-OpenSSH_3.8\r\n"),
            AppEvent(0.02, Dir.C2S, b"\x00" * 640),  # key exchange
            AppEvent(0.02, Dir.S2C, b"\x00" * 760),
        ]
        # Interactive keystroke/echo exchange: many tiny packets.
        for _ in range(_KEYSTROKES.sample_int(rng, minimum=5)):
            gap = rng.expovariate(1.0 / 0.8)
            session.events.append(AppEvent(gap, Dir.C2S, b"k" * rng.randrange(1, 16)))
            session.events.append(AppEvent(0.002, Dir.S2C, b"e" * rng.randrange(1, 80)))
        if rng.random() < 0.15:
            # SSH as a copy tool (scp/tunnel): a bulk subtransfer.  Session
            # counts already carry the study scale, so sizes stay unscaled.
            size = int(_SCP_SIZE.sample(rng))
            direction = Dir.C2S if rng.random() < 0.5 else Dir.S2C
            left = size
            while left > 0:
                chunk = min(256 * 1024, left)
                session.events.append(AppEvent(0.002, direction, b"\x00" * chunk))
                left -= chunk
        session.keepalive_interval = 60.0
        session.keepalive_count = rng.randrange(0, 4)
        if session.keepalive_count:
            session.close = "none"
        return session

    def _char_session(self, ctx: WindowContext, port: int) -> TcpSession:
        rng = ctx.rng
        client = ctx.local_client()
        peer = ctx.internal_peer()
        session = TcpSession(
            client_ip=client.ip,
            server_ip=peer.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(peer),
            sport=ctx.ephemeral_port(),
            dport=port,
            start=ctx.start_time(),
            rtt=ctx.ent_rtt(),
        )
        for _ in range(_KEYSTROKES.sample_int(rng, minimum=3)):
            gap = rng.expovariate(1.0 / 1.0)
            session.events.append(AppEvent(gap, Dir.C2S, b"c" * rng.randrange(1, 8)))
            session.events.append(AppEvent(0.002, Dir.S2C, b"s" * rng.randrange(1, 120)))
        return session
