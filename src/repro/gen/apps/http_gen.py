"""HTTP/HTTPS workload generator (§5.1.1).

Reproduces the structure behind Tables 6-7 and Figures 3-4:

* **Automated clients** (Table 6): the site's vulnerability scanner
  (many requests, 404-heavy, near-zero bytes), two Google search
  appliances crawling internal servers (moderate requests, most of the
  internal HTTP bytes), and Novell iFolder clients (POST-heavy with
  uniform 32,780-byte replies, significant in D4).
* **Fan-out** (Figure 3): clients visit roughly an order of magnitude
  more external servers than internal ones.
* **Success rate**: internal connections fail 8-28% (server RSTs),
  wide-area connections 1-5%.
* **Conditional GETs**: 29-53% of internal requests vs 12-21% of WAN
  requests, and conditional requests carry few data bytes (304s).
* **Content types / reply sizes** (Table 7, Figure 4): no significant
  internal/WAN difference, so one model serves both.
* **HTTPS**: TLS sessions on 443, including the "numerous small
  connections between a given host-pair" artifact (795 in one D4 hour).
"""

from __future__ import annotations

from random import Random

from ...proto import http, tls
from ...util.sampling import LogNormal, weighted_choice, zipf_weights
from ..session import ROUTER_MAC, AppEvent, Dir, Outcome, TcpSession
from ..topology import Host, Role
from .base import AppGenerator, WindowContext

__all__ = ["HttpGenerator"]

HTTP_PORT = 80
HTTPS_PORT = 443

#: Browsing sessions per subnet-hour (each is one client visiting one server).
_WAN_BROWSE_RATE = 700.0
_ENT_BROWSE_RATE = 250.0
_WAN_INBOUND_RATE = 160.0
_HTTPS_RATE = 120.0

#: Automated-client request rates per hour (modulated by per-dataset dials).
_SCANNER_RATE = 1300.0
_GOOGLE_RATE = 800.0
_IFOLDER_RATE = 500.0

_IFOLDER_REPLY_SIZE = 32780  # the uniform iFolder reply size (§5.1.1)

# Content-type model (Table 7): type -> (request weight, size distribution).
_CONTENT_MODEL = [
    ("text/html", 0.22, LogNormal(median=3000, sigma=1.3)),
    ("image/gif", 0.40, LogNormal(median=1800, sigma=1.2)),
    ("image/jpeg", 0.28, LogNormal(median=6000, sigma=1.4)),
    ("application/javascript", 0.04, LogNormal(median=9000, sigma=1.0)),
    ("application/octet-stream", 0.035, LogNormal(median=120_000, sigma=1.3)),
    ("application/pdf", 0.015, LogNormal(median=220_000, sigma=1.5)),
    ("audio/mpeg", 0.005, LogNormal(median=900_000, sigma=1.2)),
    ("video/mpeg", 0.003, LogNormal(median=1_500_000, sigma=1.0)),
    ("multipart/mixed", 0.002, LogNormal(median=15_000, sigma=1.5)),
]

_OBJECTS_PER_SESSION = LogNormal(median=2.0, sigma=1.3)

_WAN_SERVERS = 400  # distinct popular external web servers (Zipf popularity)
_WAN_WEIGHTS = zipf_weights(_WAN_SERVERS, alpha=0.9)


class HttpGenerator(AppGenerator):
    """Generates HTTP and HTTPS sessions for one window."""

    name = "http"

    def generate(self, ctx: WindowContext) -> list[TcpSession]:
        dials = ctx.config.dials
        sessions: list[TcpSession] = []
        self._browsing(ctx, sessions)
        self._scanner(ctx, dials.scan1_rate, sessions)
        self._google(ctx, dials.google1_rate + dials.google2_rate, sessions)
        self._ifolder(ctx, dials.ifolder_rate, sessions)
        self._https(ctx, sessions)
        return sessions

    # -- ordinary browsing -------------------------------------------------

    def _browsing(self, ctx: WindowContext, out: list[TcpSession]) -> None:
        rate = ctx.config.dials.web_rate
        # Browsing is bursty and concentrated: in any window only some
        # subnets have users actively browsing, and those users make many
        # visits.  This gives clients the order-of-magnitude fan-out gap
        # of Figure 3 even at reduced study scales.
        workstations = ctx.subnet.workstations
        if ctx.rng.random() > 0.35:
            browse_boost = 0.0
        else:
            browse_boost = 1.0 / 0.35
        browsers = workstations[: max(1, len(workstations) // 45)]
        for _ in range(ctx.count(_WAN_BROWSE_RATE * rate * browse_boost)):
            client = ctx.rng.choice(browsers)
            server_ip = self._wan_server(ctx.rng)
            out.append(
                self._browse_session(ctx, client, server_ip, ROUTER_MAC, internal=False)
            )
        for _ in range(ctx.count(_ENT_BROWSE_RATE * rate * browse_boost)):
            client = ctx.rng.choice(browsers)
            server = ctx.off_subnet_server(Role.WEB_SERVER)
            if server is None:
                continue
            out.append(
                self._browse_session(
                    ctx, client, server.ip, ctx.mac_of(server), internal=True
                )
            )
        # Inbound browsing to web servers hosted on the monitored subnet —
        # from elsewhere in the enterprise and from the WAN.
        from ..topology import Host

        for server in ctx.subnet.servers(Role.WEB_SERVER):
            for _ in range(ctx.count(_ENT_BROWSE_RATE * rate * 0.7)):
                client = ctx.internal_peer()
                out.append(
                    self._browse_session(
                        ctx, client, server.ip, ctx.mac_of(server), internal=True,
                        client_mac=ctx.mac_of(client),
                    )
                )
            for _ in range(ctx.count(_WAN_INBOUND_RATE * rate)):
                wan_client = Host(ip=ctx.wan_ip(), mac=ROUTER_MAC, subnet_index=-1, router=-1)
                out.append(
                    self._browse_session(
                        ctx, wan_client, server.ip, ctx.mac_of(server), internal=False,
                        client_mac=ROUTER_MAC,
                    )
                )

    def _browse_session(
        self,
        ctx: WindowContext,
        client: Host,
        server_ip: int,
        server_mac: int,
        internal: bool,
        client_mac: int | None = None,
    ) -> TcpSession:
        rng = ctx.rng
        rtt = ctx.ent_rtt() if internal else ctx.wan_rtt()
        session = TcpSession(
            client_ip=client.ip,
            server_ip=server_ip,
            client_mac=client_mac if client_mac is not None else ctx.mac_of(client),
            server_mac=server_mac,
            sport=ctx.ephemeral_port(),
            dport=HTTP_PORT,
            start=ctx.start_time(),
            rtt=rtt,
        )
        fail_rate = 0.16 if internal else 0.02
        if rng.random() < fail_rate:
            # Internal failures are mostly server RSTs, not timeouts (§5.1.1).
            session.outcome = (
                Outcome.REJECTED if rng.random() < 0.8 else Outcome.UNANSWERED
            )
            return session
        conditional_frac = 0.40 if internal else 0.16
        num_objects = max(1, _OBJECTS_PER_SESSION.sample_int(rng))
        host = "intranet.internal.example" if internal else "www.remote.example"
        for index in range(num_objects):
            ctype, size_dist = self._pick_content(rng)
            conditional = rng.random() < conditional_frac
            method = "POST" if rng.random() < 0.02 else "GET"
            headers = {"If-Modified-Since": "Mon, 01 Nov 2004 00:00:00 GMT"} if conditional else {}
            request = http.build_request(
                method, f"/obj/{rng.randrange(10_000)}", host, headers=headers
            )
            session.events.append(AppEvent(0.05 if index else 0.0, Dir.C2S, request))
            if conditional:
                if rng.random() < 0.85:
                    response = http.build_response(304, "Not Modified")
                else:
                    # The object changed: a fresh copy comes back, but
                    # cache-validated objects skew small (pages, not
                    # downloads) — conditional requests end up carrying
                    # only 1-9% of HTTP data bytes (§5.1.1).
                    size = LogNormal(median=2500, sigma=0.9).sample_int(rng, minimum=64)
                    response = http.build_response(200, "OK", "text/html", b"x" * size)
                session.events.append(AppEvent(0.01, Dir.S2C, response))
                continue
            if rng.random() < 0.02:
                response = http.build_response(
                    404, "Not Found", "text/html", b"<html>not found</html>"
                )
            else:
                size = size_dist.sample_int(rng, minimum=64)
                chunked = ctype == "text/html" and rng.random() < 0.12
                response = http.build_response(
                    200, "OK", ctype, b"x" * size, chunked=chunked
                )
            session.events.append(AppEvent(0.01, Dir.S2C, response))
        return session

    @staticmethod
    def _pick_content(rng: Random):
        entry = weighted_choice(
            rng, _CONTENT_MODEL, [weight for _, weight, _ in _CONTENT_MODEL]
        )
        return entry[0], entry[2]

    def _wan_server(self, rng: Random) -> int:
        from ..topology import _WAN_BLOCKS  # popularity-weighted server pool

        index = weighted_choice(rng, range(_WAN_SERVERS), _WAN_WEIGHTS)
        block = _WAN_BLOCKS[index % len(_WAN_BLOCKS)]
        return block + 10_000 + index

    # -- automated clients (Table 6) ----------------------------------------

    def _scanner(self, ctx: WindowContext, rate: float, out: list[TcpSession]) -> None:
        """The site's vulnerability scanner sweeping web servers.

        Very high fan-out, lots of 404s, almost no data bytes.
        """
        scanners = ctx.enterprise.servers(Role.SCANNER)
        if not scanners or rate <= 0:
            return
        scanner = scanners[0]
        for _ in range(ctx.count(_SCANNER_RATE * rate)):
            target = ctx.local_client()
            session = TcpSession(
                client_ip=scanner.ip,
                server_ip=target.ip,
                client_mac=ctx.mac_of(scanner),
                server_mac=ctx.mac_of(target),
                sport=ctx.ephemeral_port(),
                dport=HTTP_PORT,
                start=ctx.start_time(),
                rtt=ctx.ent_rtt(),
            )
            request = http.build_request(
                "GET", "/cgi-bin/test", "scan-target", user_agent="SiteScanner/2.0"
            )
            response = http.build_response(404, "Not Found", "text/html", b"<html></html>")
            session.events = [
                AppEvent(0.0, Dir.C2S, request),
                AppEvent(0.001, Dir.S2C, response),
            ]
            out.append(session)

    def _google(self, ctx: WindowContext, rate: float, out: list[TcpSession]) -> None:
        """Google search-appliance bots crawling internal web servers.

        Moderate request counts but very large data volume (45-69% of
        internal HTTP bytes in Table 6).
        """
        bots = ctx.enterprise.servers(Role.GOOGLE_BOT)
        if not bots or rate <= 0:
            return
        # Crawls are visible both at the crawled server's subnet and at
        # the appliance's own subnet (traffic crosses the router).
        local_bots = [b for b in bots if b.subnet_index == ctx.subnet.index]
        web_servers = ctx.subnet.servers(Role.WEB_SERVER)
        if not web_servers and not local_bots:
            return
        size_dist = LogNormal(median=150_000, sigma=1.3)
        for _ in range(ctx.count(_GOOGLE_RATE * rate)):
            if local_bots and (not web_servers or ctx.rng.random() < 0.5):
                bot = ctx.rng.choice(local_bots)
                server = ctx.off_subnet_server(Role.WEB_SERVER)
                if server is None:
                    continue
            else:
                bot = ctx.rng.choice(bots)
                server = ctx.rng.choice(web_servers)
            session = TcpSession(
                client_ip=bot.ip,
                server_ip=server.ip,
                client_mac=ctx.mac_of(bot),
                server_mac=ctx.mac_of(server),
                sport=ctx.ephemeral_port(),
                dport=HTTP_PORT,
                start=ctx.start_time(),
                rtt=ctx.ent_rtt(),
            )
            for index in range(ctx.rng.randrange(2, 6)):
                request = http.build_request(
                    "GET", f"/crawl/{ctx.rng.randrange(100_000)}", "intranet",
                    user_agent="googlebot-appliance",
                )
                size = size_dist.sample_int(ctx.rng, minimum=1000)
                response = http.build_response(200, "OK", "text/html", b"g" * size)
                session.events.append(AppEvent(0.02 if index else 0.0, Dir.C2S, request))
                session.events.append(AppEvent(0.005, Dir.S2C, response))
            out.append(session)

    def _ifolder(self, ctx: WindowContext, rate: float, out: list[TcpSession]) -> None:
        """Novell iFolder sync clients: POST-heavy, uniform 32,780-B replies."""
        servers = ctx.enterprise.servers(Role.IFOLDER_SERVER)
        if not servers or rate <= 0:
            return
        server = servers[0]
        for _ in range(ctx.count(_IFOLDER_RATE * rate)):
            client = ctx.local_client()
            if not ctx.crosses_router(client, server):
                continue
            session = TcpSession(
                client_ip=client.ip,
                server_ip=server.ip,
                client_mac=ctx.mac_of(client),
                server_mac=ctx.mac_of(server),
                sport=ctx.ephemeral_port(),
                dport=HTTP_PORT,
                start=ctx.start_time(),
                rtt=ctx.ent_rtt(),
            )
            request = http.build_request(
                "POST", "/ifolder/sync", "ifolder", body=b"s" * 512,
                user_agent="iFolderClient/2.0",
            )
            response = http.build_response(
                200, "OK", "application/octet-stream", b"i" * _IFOLDER_REPLY_SIZE
            )
            session.events = [
                AppEvent(0.0, Dir.C2S, request),
                AppEvent(0.01, Dir.S2C, response),
            ]
            out.append(session)

    # -- HTTPS ---------------------------------------------------------------

    def _https(self, ctx: WindowContext, out: list[TcpSession]) -> None:
        rng = ctx.rng
        for _ in range(ctx.count(_HTTPS_RATE * ctx.config.dials.web_rate)):
            client = ctx.local_client()
            internal = rng.random() < 0.4
            if internal:
                server = ctx.off_subnet_server(Role.WEB_SERVER)
                if server is None:
                    continue
                server_ip, server_mac, rtt = server.ip, ctx.mac_of(server), ctx.ent_rtt()
            else:
                server_ip, server_mac, rtt = self._wan_server(rng), ROUTER_MAC, ctx.wan_rtt()
            out.append(self._tls_session(ctx, client, server_ip, server_mac, rtt))
        # The D4 artifact: one host-pair making hundreds of short TLS
        # connections in an hour (fail-and-retry above the SSL layer).
        if ctx.config.name == "D4" and ctx.subnet.index % 18 == 7:
            client = ctx.subnet.workstations[3]
            server = ctx.off_subnet_server(Role.WEB_SERVER)
            if server is not None:
                for _ in range(ctx.count(750.0)):
                    out.append(
                        self._tls_session(
                            ctx, client, server.ip, ctx.mac_of(server), ctx.ent_rtt(),
                            short=True,
                        )
                    )

    def _tls_session(
        self,
        ctx: WindowContext,
        client: Host,
        server_ip: int,
        server_mac: int,
        rtt: float,
        short: bool = False,
    ) -> TcpSession:
        rng = ctx.rng
        session = TcpSession(
            client_ip=client.ip,
            server_ip=server_ip,
            client_mac=ctx.mac_of(client),
            server_mac=server_mac,
            sport=ctx.ephemeral_port(),
            dport=HTTPS_PORT,
            start=ctx.start_time(),
            rtt=rtt,
        )
        random32 = bytes(rng.getrandbits(8) for _ in range(32))
        session.events = [
            AppEvent(0.0, Dir.C2S, tls.build_client_hello(random32)),
            AppEvent(0.002, Dir.S2C, tls.build_server_hello(random32)),
        ]
        if short:
            # Handshake, one application message each way, immediate close.
            session.events.append(
                AppEvent(0.001, Dir.C2S, tls.build_application_data(b"q" * 180))
            )
            session.events.append(
                AppEvent(0.001, Dir.S2C, tls.build_application_data(b"r" * 240))
            )
        else:
            size = LogNormal(median=9000, sigma=1.6).sample_int(rng, minimum=200)
            session.events.append(
                AppEvent(0.003, Dir.C2S, tls.build_application_data(b"q" * 400))
            )
            session.events.append(
                AppEvent(0.005, Dir.S2C, tls.build_application_data(b"r" * size))
            )
        return session
