"""Email workload generator: SMTP, IMAP4, IMAP/S, POP, LDAP (§5.1.2).

Reproduces the structure behind Table 8 and Figures 5-6:

* SMTP and IMAP(/S) dominate email bytes (>94%); the rest is
  LDAP/POP3/POP-SSL.
* The D0→D1 transition from cleartext IMAP4 to IMAP over SSL is a dial
  (``imap_tls_frac``).
* Email volume concentrates at the main mail servers, which sit behind
  router 0 — D0-D2 monitor their subnets, D3-D4 do not (the volume gap in
  Table 8 and the WAN-curve gaps in Figures 5b/6b are vantage effects).
* SMTP durations scale with RTT (~0.2-0.4 s internal vs seconds across
  the WAN); IMAP/S internal connections live 1-2 orders of magnitude
  longer than WAN ones (clients poll every ~10 minutes, capped at ~50
  minutes by the server).
* Flow sizes are mostly < 1 MB with significant upper tails, roughly
  alike internally and over the WAN.
* Success rates: internal SMTP 95-98%; WAN SMTP degrades at the busy
  servers (71-93% in D0-D2); IMAP/S 99-100%.
"""

from __future__ import annotations

from random import Random

from ...proto import imap, smtp, tls
from ...util.sampling import LogNormal
from ..session import ROUTER_MAC, AppEvent, Dir, Outcome, TcpSession
from ..topology import Host, Role
from .base import AppGenerator, WindowContext

__all__ = ["EmailGenerator"]

SMTP_PORT = 25
IMAP_PORT = 143
IMAPS_PORT = 993
POP3_PORT = 110
POPS_PORT = 995
LDAP_PORT = 389

#: Sessions per subnet-hour from monitored workstations.
_CLIENT_SMTP_RATE = 40.0
_CLIENT_IMAP_RATE = 160.0
_CLIENT_POP_RATE = 6.0
_CLIENT_LDAP_RATE = 25.0

#: Per-hour rates at a monitored main mail server.
_SERVER_WAN_SMTP_IN = 2600.0
_SERVER_WAN_SMTP_OUT = 900.0
_SERVER_ENT_SMTP_IN = 1600.0
_SERVER_ENT_IMAP_IN = 2200.0
_SERVER_WAN_IMAP_IN = 500.0

_MESSAGE_SIZE = LogNormal(median=15000.0, sigma=2.0)
_SMTP_STEP = LogNormal(median=0.04, sigma=0.7)  # server processing per step

_IMAP_POLL_INTERVAL = 600.0  # clients poll every ~10 minutes
_IMAP_MAX_DURATION = 3000.0  # the server's ~50-minute cap


class EmailGenerator(AppGenerator):
    """Generates SMTP/IMAP/POP/LDAP sessions for one window."""

    name = "email"

    def generate(self, ctx: WindowContext) -> list[TcpSession]:
        rate = ctx.config.dials.email_rate
        sessions: list[TcpSession] = []
        self._client_side(ctx, rate, sessions)
        self._server_side(ctx, rate, sessions)
        return sessions

    # -- client side: monitored workstations using the mail servers ---------

    def _client_side(self, ctx: WindowContext, rate: float, out: list) -> None:
        smtp_server = ctx.off_subnet_server(Role.SMTP_SERVER)
        imap_server = ctx.off_subnet_server(Role.IMAP_SERVER)
        if smtp_server is not None:
            for _ in range(ctx.count(_CLIENT_SMTP_RATE * rate)):
                client = ctx.local_client()
                out.append(
                    self._smtp_session(
                        ctx, client.ip, ctx.mac_of(client), smtp_server.ip,
                        ctx.mac_of(smtp_server), internal=True,
                    )
                )
        if imap_server is not None:
            for _ in range(ctx.count(_CLIENT_IMAP_RATE * rate)):
                client = ctx.local_client()
                out.append(
                    self._imap_session(
                        ctx, client.ip, ctx.mac_of(client), imap_server.ip,
                        ctx.mac_of(imap_server), internal=True,
                    )
                )
            for _ in range(ctx.count(_CLIENT_POP_RATE * rate)):
                client = ctx.local_client()
                out.append(self._pop_session(ctx, client, imap_server))
        if smtp_server is not None:
            for _ in range(ctx.count(_CLIENT_LDAP_RATE * rate)):
                client = ctx.local_client()
                out.append(self._ldap_session(ctx, client, smtp_server))

    # -- server side: a monitored main mail server's aggregate load ---------

    def _server_side(self, ctx: WindowContext, rate: float, out: list) -> None:
        for server in ctx.subnet.servers(Role.SMTP_SERVER):
            for _ in range(ctx.count(_SERVER_WAN_SMTP_IN * rate)):
                out.append(
                    self._smtp_session(
                        ctx, ctx.wan_ip(), ROUTER_MAC, server.ip, server.mac,
                        internal=False,
                    )
                )
            for _ in range(ctx.count(_SERVER_WAN_SMTP_OUT * rate)):
                out.append(
                    self._smtp_session(
                        ctx, server.ip, server.mac, ctx.wan_ip(), ROUTER_MAC,
                        internal=False,
                    )
                )
            for _ in range(ctx.count(_SERVER_ENT_SMTP_IN * rate)):
                peer = ctx.internal_peer()
                out.append(
                    self._smtp_session(
                        ctx, peer.ip, ROUTER_MAC, server.ip, server.mac, internal=True
                    )
                )
        for server in ctx.subnet.servers(Role.IMAP_SERVER):
            for _ in range(ctx.count(_SERVER_ENT_IMAP_IN * rate)):
                peer = ctx.internal_peer()
                out.append(
                    self._imap_session(
                        ctx, peer.ip, ROUTER_MAC, server.ip, server.mac, internal=True
                    )
                )
            for _ in range(ctx.count(_SERVER_WAN_IMAP_IN * rate)):
                out.append(
                    self._imap_session(
                        ctx, ctx.wan_ip(), ROUTER_MAC, server.ip, server.mac,
                        internal=False,
                    )
                )

    # -- session builders ----------------------------------------------------

    def _smtp_session(
        self,
        ctx: WindowContext,
        client_ip: int,
        client_mac: int,
        server_ip: int,
        server_mac: int,
        internal: bool,
    ) -> TcpSession:
        rng = ctx.rng
        rtt = ctx.ent_rtt() if internal else ctx.wan_rtt()
        session = TcpSession(
            client_ip=client_ip,
            server_ip=server_ip,
            client_mac=client_mac,
            server_mac=server_mac,
            sport=ctx.ephemeral_port(),
            dport=SMTP_PORT,
            start=ctx.start_time(),
            rtt=rtt,
        )
        fail_rate = 0.03 if internal else 0.12
        if rng.random() < fail_rate:
            session.outcome = (
                Outcome.REJECTED if rng.random() < 0.5 else Outcome.UNANSWERED
            )
            return session
        size = _MESSAGE_SIZE.sample_int(rng, minimum=400)
        num_rcpt = 1 + (rng.random() < 0.15)
        message = b"Subject: report\r\n\r\n" + b"m" * size
        accept = rng.random() > 0.04
        client_stream = smtp.build_client_stream(
            "client.internal.example", "user@internal.example",
            [f"rcpt{i}@peer.example" for i in range(num_rcpt)], message,
        )
        server_stream = smtp.build_server_stream("mail.internal.example", num_rcpt, accept)
        # The dialogue is interleaved; we model it as alternating segments
        # whose think times reflect per-step server processing plus the
        # RTT-proportional transfer of the DATA section [Padhye et al.].
        step = _SMTP_STEP.sample(rng)
        banner_end = server_stream.find(b"\r\n") + 2
        data_start = client_stream.find(b"DATA\r\n") + 6
        transfer_dt = (size / 8192.0) * rtt * 2.0
        session.events = [
            AppEvent(step, Dir.S2C, server_stream[:banner_end]),
            AppEvent(step, Dir.C2S, client_stream[:data_start]),
            AppEvent(step, Dir.S2C, server_stream[banner_end:-20]),
            AppEvent(transfer_dt, Dir.C2S, client_stream[data_start:]),
            AppEvent(step, Dir.S2C, server_stream[-20:]),
        ]
        return session

    def _imap_session(
        self,
        ctx: WindowContext,
        client_ip: int,
        client_mac: int,
        server_ip: int,
        server_mac: int,
        internal: bool,
    ) -> TcpSession:
        rng = ctx.rng
        use_tls = rng.random() < ctx.config.dials.imap_tls_frac
        rtt = ctx.ent_rtt() if internal else ctx.wan_rtt()
        session = TcpSession(
            client_ip=client_ip,
            server_ip=server_ip,
            client_mac=client_mac,
            server_mac=server_mac,
            sport=ctx.ephemeral_port(),
            dport=IMAPS_PORT if use_tls else IMAP_PORT,
            start=ctx.start_time(),
            rtt=rtt,
        )
        if rng.random() < 0.005:
            session.outcome = Outcome.REJECTED
            return session
        fetches = max(0, int(rng.gauss(1.5, 1.5)))
        sizes = [
            _MESSAGE_SIZE.sample_int(rng, minimum=300) for _ in range(fetches)
        ]
        if internal:
            # Long-lived polling sessions: 1-2 orders of magnitude longer
            # than WAN ones, capped around 50 minutes.
            polls = rng.randrange(1, 6)
            duration = min(polls * _IMAP_POLL_INTERVAL, _IMAP_MAX_DURATION)
        else:
            polls = 0
            duration = LogNormal(median=4.0, sigma=1.2).sample(rng)
        if use_tls:
            random32 = bytes(rng.getrandbits(8) for _ in range(32))
            session.events = [
                AppEvent(0.0, Dir.C2S, tls.build_client_hello(random32)),
                AppEvent(0.002, Dir.S2C, tls.build_server_hello(random32)),
                AppEvent(0.01, Dir.C2S, tls.build_application_data(b"l" * 120)),
            ]
            # Mail is fetched right after login; the long tail of the
            # session is idle NOOP polling (otherwise tap windows shorter
            # than the session would cut the data off).
            for size in sizes:
                session.events.append(
                    AppEvent(0.02, Dir.C2S, tls.build_application_data(b"f" * 48))
                )
                session.events.append(
                    AppEvent(0.03, Dir.S2C, tls.build_application_data(b"m" * size))
                )
            poll_gap = duration / (polls + 1) if polls else 0.0
            for _ in range(polls):
                session.events.append(
                    AppEvent(poll_gap, Dir.C2S, tls.build_application_data(b"n" * 40))
                )
                session.events.append(
                    AppEvent(0.01, Dir.S2C, tls.build_application_data(b"k" * 60))
                )
            if not polls:
                session.end_idle = duration
        else:
            client_stream = imap.build_client_stream("user", polls, fetches)
            server_stream = imap.build_server_stream(sizes)
            split = server_stream.find(b"\r\n") + 2
            session.events = [
                AppEvent(0.0, Dir.S2C, server_stream[:split]),
                AppEvent(0.01, Dir.C2S, client_stream),
                AppEvent(0.05, Dir.S2C, server_stream[split:]),
            ]
            session.end_idle = duration
        return session

    def _pop_session(self, ctx: WindowContext, client: Host, server: Host) -> TcpSession:
        rng = ctx.rng
        use_tls = rng.random() < 0.5
        session = TcpSession(
            client_ip=client.ip,
            server_ip=server.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(server),
            sport=ctx.ephemeral_port(),
            dport=POPS_PORT if use_tls else POP3_PORT,
            start=ctx.start_time(),
            rtt=ctx.ent_rtt(),
        )
        size = _MESSAGE_SIZE.sample_int(rng, minimum=300)
        if use_tls:
            session.events = [
                AppEvent(0.0, Dir.C2S, tls.build_client_hello()),
                AppEvent(0.002, Dir.S2C, tls.build_server_hello()),
                AppEvent(0.01, Dir.C2S, tls.build_application_data(b"p" * 60)),
                AppEvent(0.02, Dir.S2C, tls.build_application_data(b"m" * size)),
            ]
        else:
            session.events = [
                AppEvent(0.0, Dir.S2C, b"+OK POP3 ready\r\n"),
                AppEvent(0.01, Dir.C2S, b"USER user\r\nPASS ******\r\nRETR 1\r\n"),
                AppEvent(0.02, Dir.S2C, b"+OK\r\n" + b"m" * size + b"\r\n.\r\n"),
                AppEvent(0.01, Dir.C2S, b"QUIT\r\n"),
            ]
        return session

    def _ldap_session(self, ctx: WindowContext, client: Host, server: Host) -> TcpSession:
        rng = ctx.rng
        session = TcpSession(
            client_ip=client.ip,
            server_ip=server.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(server),
            sport=ctx.ephemeral_port(),
            dport=LDAP_PORT,
            start=ctx.start_time(),
            rtt=ctx.ent_rtt(),
        )
        # Address-book lookups: small bind/search/result exchanges.
        result_size = LogNormal(median=900, sigma=0.9).sample_int(rng, minimum=80)
        session.events = [
            AppEvent(0.0, Dir.C2S, b"\x30\x0c" + b"b" * 12),
            AppEvent(0.005, Dir.S2C, b"\x30\x0c" + b"r" * 12),
            AppEvent(0.01, Dir.C2S, b"\x30\x25" + b"s" * 37),
            AppEvent(0.01, Dir.S2C, b"\x30\x82" + b"e" * result_size),
        ]
        return session
