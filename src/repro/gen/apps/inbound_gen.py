"""Inbound wide-area traffic generator (§4's wan→ent flows).

6-11% of the paper's flows originate *outside* the enterprise.  Beyond
the server-subnet cases other generators already produce (WAN SMTP at the
mail hubs, WAN queries at the DNS servers, inbound browsing at web
servers), a national-lab site receives wide-area traffic all over:
collaborators ssh/ftp into workstations, off-site monitors poll services,
and external hosts ping internal machines.  This generator spreads that
ambient inbound load across every monitored subnet.
"""

from __future__ import annotations

from ...util.sampling import LogNormal
from ..session import ROUTER_MAC, AppEvent, Dir, IcmpExchange, Outcome, TcpSession
from .base import AppGenerator, WindowContext

__all__ = ["InboundWanGenerator"]

#: Inbound sessions per subnet-hour.
_SSH_RATE = 200.0
_FTP_RATE = 60.0
_HTTP_RATE = 240.0
_ICMP_RATE = 260.0
_OTHER_RATE = 180.0

_FTP_SIZE = LogNormal(median=2e6, sigma=1.3)


class InboundWanGenerator(AppGenerator):
    """Generates ambient WAN-originated sessions to monitored hosts."""

    name = "inbound-wan"

    def generate(self, ctx: WindowContext) -> list:
        rate = ctx.config.dials.other_rate
        sessions: list = []
        for _ in range(ctx.count(_SSH_RATE * rate)):
            sessions.append(self._ssh(ctx))
        for _ in range(ctx.count(_FTP_RATE * rate)):
            sessions.append(self._ftp(ctx))
        for _ in range(ctx.count(_HTTP_RATE * rate)):
            sessions.append(self._http(ctx))
        for _ in range(ctx.count(_OTHER_RATE * rate)):
            sessions.append(self._other(ctx))
        for _ in range(ctx.count(_ICMP_RATE * rate)):
            sessions.append(self._icmp(ctx))
        return sessions

    def _base(self, ctx: WindowContext, dport: int) -> TcpSession:
        target = ctx.local_client()
        return TcpSession(
            client_ip=ctx.wan_ip(),
            server_ip=target.ip,
            client_mac=ROUTER_MAC,
            server_mac=target.mac,
            sport=ctx.ephemeral_port(),
            dport=dport,
            start=ctx.start_time(),
            rtt=ctx.wan_rtt(),
        )

    def _ssh(self, ctx: WindowContext) -> TcpSession:
        rng = ctx.rng
        session = self._base(ctx, 22)
        if rng.random() < 0.25:
            # Most hosts do not run sshd; inbound attempts often fail.
            session.outcome = (
                Outcome.REJECTED if rng.random() < 0.6 else Outcome.UNANSWERED
            )
            return session
        session.events = [
            AppEvent(0.0, Dir.S2C, b"SSH-2.0-OpenSSH_3.9p1\r\n"),
            AppEvent(0.02, Dir.C2S, b"SSH-2.0-OpenSSH_3.8\r\n"),
            AppEvent(0.05, Dir.C2S, b"\x00" * 640),
            AppEvent(0.05, Dir.S2C, b"\x00" * 760),
        ]
        for _ in range(rng.randrange(10, 120)):
            session.events.append(AppEvent(rng.expovariate(1.2), Dir.C2S, b"k" * rng.randrange(1, 16)))
            session.events.append(AppEvent(0.002, Dir.S2C, b"e" * rng.randrange(1, 80)))
        return session

    def _ftp(self, ctx: WindowContext) -> TcpSession:
        rng = ctx.rng
        session = self._base(ctx, 21)
        if rng.random() < 0.4:
            session.outcome = Outcome.REJECTED
            return session
        session.events = [
            AppEvent(0.0, Dir.S2C, b"220 FTP ready\r\n"),
            AppEvent(0.1, Dir.C2S, b"USER collaborator\r\nPASS ****\r\nRETR results.dat\r\n"),
            AppEvent(0.1, Dir.S2C, b"150 Opening\r\n" + b"\x00" * _FTP_SIZE.sample_int(rng, minimum=1000)),
            AppEvent(0.1, Dir.S2C, b"226 Done\r\n"),
        ]
        return session

    def _http(self, ctx: WindowContext) -> TcpSession:
        rng = ctx.rng
        session = self._base(ctx, 80)
        # Off-site visitors mostly reach real personal/project pages; the
        # LBNL border filtered blind probing (WAN HTTP succeeds 95-99%).
        if rng.random() < 0.04:
            session.outcome = (
                Outcome.REJECTED if rng.random() < 0.7 else Outcome.UNANSWERED
            )
            return session
        from ...proto import http

        session.events = [
            AppEvent(0.0, Dir.C2S, http.build_request("GET", "/~user/", "host")),
            AppEvent(0.05, Dir.S2C, http.build_response(
                200, "OK", "text/html", b"p" * rng.randrange(500, 20_000)
            )),
        ]
        return session

    def _other(self, ctx: WindowContext) -> TcpSession:
        rng = ctx.rng
        session = self._base(ctx, rng.randrange(1024, 40_000))
        if rng.random() < 0.6:
            session.outcome = Outcome.UNANSWERED
        else:
            session.events = [
                AppEvent(0.0, Dir.C2S, b"x" * rng.randrange(20, 400)),
                AppEvent(0.05, Dir.S2C, b"y" * rng.randrange(20, 2_000)),
            ]
        return session

    def _icmp(self, ctx: WindowContext) -> IcmpExchange:
        target = ctx.local_client()
        return IcmpExchange(
            src_ip=ctx.wan_ip(),
            dst_ip=target.ip,
            src_mac=ROUTER_MAC,
            dst_mac=target.mac,
            start=ctx.start_time(),
            rtt=ctx.wan_rtt(),
            count=ctx.rng.randrange(1, 4),
            answered=ctx.rng.random() < 0.8,
            ident=ctx.rng.getrandbits(16),
        )
