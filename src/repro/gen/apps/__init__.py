"""Per-application workload generators."""

from .backup_gen import BackupGenerator
from .base import AppGenerator, WindowContext, poisson
from .bulk_gen import BulkGenerator
from .dns_gen import DnsGenerator
from .email_gen import EmailGenerator
from .http_gen import HttpGenerator
from .inbound_gen import InboundWanGenerator
from .interactive_gen import InteractiveGenerator
from .link_gen import LinkGenerator
from .misc_gen import MiscGenerator
from .ncp_gen import NcpGenerator
from .netbios_gen import NetbiosNsGenerator
from .netmgnt_gen import NetMgntGenerator
from .nfs_gen import NfsGenerator
from .scanner_gen import ScannerGenerator
from .streaming_gen import StreamingGenerator
from .windows_gen import WindowsGenerator

__all__ = [
    "AppGenerator",
    "WindowContext",
    "poisson",
    "BackupGenerator",
    "BulkGenerator",
    "DnsGenerator",
    "EmailGenerator",
    "HttpGenerator",
    "InboundWanGenerator",
    "InteractiveGenerator",
    "LinkGenerator",
    "MiscGenerator",
    "NcpGenerator",
    "NetbiosNsGenerator",
    "NetMgntGenerator",
    "NfsGenerator",
    "ScannerGenerator",
    "StreamingGenerator",
    "WindowsGenerator",
]
