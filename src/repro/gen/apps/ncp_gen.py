"""NCP workload generator (§5.2.2, Tables 12/14, Figures 7-8).

Models the paper's findings:

* 40-80% of NCP connections consist **only** of periodic 1-byte TCP
  keep-alive retransmissions — long-lived idle connections NCP keeps open
  to detect runaway clients.  These carry no requests at all.
* Active connections issue request mixes per Table 14 (read-dominated
  bytes, with file/dir info, open/close, size, search, and a little NDS
  directory service).
* Message sizes are modal (Figure 8c/d): 14-byte read requests; replies
  of 2 bytes (completion code only), 10 bytes (GetFileCurrentSize), 260
  bytes (partial ReadFile), or ~8 KB data reads.
* The top three host-pairs carry 35-62% of NCP bytes — concentrated, but
  less extremely than NFS.
* Connection attempts succeed 88-98% of the time; ~95% of subsequent
  requests succeed, failures dominated by File/Dir Info.
"""

from __future__ import annotations

import hashlib
from random import Random

from ...proto import ncp
from ...util.sampling import BoundedPareto, weighted_choice
from ..session import AppEvent, Dir, Outcome, TcpSession
from ..topology import Host, Role
from .base import AppGenerator, WindowContext

__all__ = ["NcpGenerator"]

#: NCP connections per subnet-hour (keep-alive-only ones included).
_CONN_RATE = 150.0
#: Fraction of connections that are keep-alive-only.
_KEEPALIVE_ONLY_FRAC = 0.6
#: Probability a server-subnet window hosts a heavy pair.
_HEAVY_PAIR_PROB = 0.8
_HEAVY_PAIR_BYTES = 0.9e9

_LIGHT_REQUESTS = BoundedPareto(low=2, high=2000, alpha=0.75)

_IO_SIZE = 8192


class NcpGenerator(AppGenerator):
    """Generates NCP connections for one window."""

    name = "ncp"

    def generate(self, ctx: WindowContext) -> list[TcpSession]:
        dials = ctx.config.dials
        sessions: list[TcpSession] = []
        for _ in range(ctx.count(_CONN_RATE * dials.ncp_rate)):
            client = ctx.local_client()
            server = ctx.off_subnet_server(Role.FILE_SERVER_NCP)
            if server is None:
                continue
            sessions.extend(self._connection(ctx, client, server))
        hours = ctx.duration / 3600.0
        for server in ctx.subnet.servers(Role.FILE_SERVER_NCP):
            if ctx.rng.random() > _HEAVY_PAIR_PROB:
                continue
            client = ctx.internal_peer()
            budget = _HEAVY_PAIR_BYTES * dials.ncp_bulk * ctx.scale * hours
            requests = max(int(budget / (0.45 * _IO_SIZE + 80)), 10)
            sessions.append(self._active_session(ctx, client, server, requests))
        return sessions

    @staticmethod
    def _pair_broken(client: Host, server: Host) -> bool:
        """~8% of (client, server) pairs persistently refuse connections;
        an operation between a host-pair nearly always behaves the same
        way across a trace (§5)."""
        key = client.ip.to_bytes(4, "big") + server.ip.to_bytes(4, "big")
        digest = hashlib.blake2b(key, digest_size=4).digest()
        return int.from_bytes(digest, "big") / 0xFFFFFFFF < 0.08

    def _connection(self, ctx: WindowContext, client: Host, server: Host) -> list[TcpSession]:
        rng = ctx.rng
        if self._pair_broken(client, server):
            # NCP clients retry endlessly after rejection — the behaviour
            # that motivates the paper's host-pair success metric (§5).
            retries = rng.randrange(8, 40)
            sessions = []
            for attempt in range(retries):
                session = self._base_session(ctx, client, server)
                session.start = min(session.start + attempt * 2.0, ctx.t1)
                session.outcome = (
                    Outcome.REJECTED if rng.random() < 0.7 else Outcome.UNANSWERED
                )
                sessions.append(session)
            return sessions
        if rng.random() < _KEEPALIVE_ONLY_FRAC:
            return [self._keepalive_only(ctx, client, server)]
        requests = _LIGHT_REQUESTS.sample_int(rng, minimum=1)
        return [self._active_session(ctx, client, server, requests)]

    def _base_session(self, ctx: WindowContext, client: Host, server: Host) -> TcpSession:
        return TcpSession(
            client_ip=client.ip,
            server_ip=server.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(server),
            sport=ctx.ephemeral_port(),
            dport=ncp.NCP_PORT,
            start=ctx.start_time(),
            rtt=ctx.ent_rtt(),
        )

    def _keepalive_only(self, ctx: WindowContext, client: Host, server: Host) -> TcpSession:
        """An idle NCP connection kept open by 1-byte TCP keep-alives."""
        session = self._base_session(ctx, client, server)
        remaining = max(ctx.t1 - session.start, 60.0)
        session.keepalive_interval = 55.0 + ctx.rng.random() * 10.0
        session.keepalive_count = max(int(remaining / session.keepalive_interval), 1)
        session.close = "none"  # outlives the trace window
        return session

    def _active_session(
        self, ctx: WindowContext, client: Host, server: Host, requests: int
    ) -> TcpSession:
        rng = ctx.rng
        mix = ctx.config.dials.ncp_mix
        rows = list(mix.keys())
        weights = list(mix.values())
        session = self._base_session(ctx, client, server)
        sequence = 0
        for index in range(requests):
            row = weighted_choice(rng, rows, weights)
            sequence = (sequence + 1) & 0xFF
            request, reply = self._build_op(rng, row, sequence)
            gap = rng.random() * 0.008
            session.events.append(
                AppEvent(gap if index else 0.0, Dir.C2S, ncp.frame_ncp_ip(request.encode()))
            )
            session.events.append(
                AppEvent(0.0005, Dir.S2C, ncp.frame_ncp_ip(reply.encode()))
            )
        if rng.random() < 0.5:
            # Long-lived connections also keep-alive between activity bursts.
            session.keepalive_interval = 60.0
            session.keepalive_count = rng.randrange(1, 6)
            session.close = "none"
        return session

    @staticmethod
    def _build_op(rng: Random, row: str, sequence: int) -> tuple[ncp.NcpRequest, ncp.NcpReply]:
        """One request/reply pair shaped to the Figure 8 size modes."""
        if row == "Read":
            request = ncp.NcpRequest(sequence=sequence, function=ncp.FUNC_READ_FILE, data=b"\x00" * 6)
            if rng.random() < 0.25:
                reply_data = b"r" * 258  # the 260-byte partial-read mode
            else:
                reply_data = b"r" * (_IO_SIZE - 2)
            reply = ncp.NcpReply(sequence=sequence, data=b"\x00\x00" + reply_data)
        elif row == "Write":
            request = ncp.NcpRequest(
                sequence=sequence, function=ncp.FUNC_WRITE_FILE, data=b"w" * _IO_SIZE
            )
            reply = ncp.NcpReply(sequence=sequence, data=b"\x00\x00")
        elif row == "FileDirInfo":
            failed = rng.random() < 0.08  # File/Dir Info dominates failures
            request = ncp.NcpRequest(
                sequence=sequence, function=ncp.FUNC_FILE_DIR_INFO, data=b"\x00" * 30
            )
            reply = ncp.NcpReply(
                sequence=sequence,
                completion_code=0x9C if failed else 0,
                data=b"\x00\x00" + (b"" if failed else b"i" * 120),
            )
        elif row == "File Open/Close":
            opening = rng.random() < 0.5
            request = ncp.NcpRequest(
                sequence=sequence,
                function=ncp.FUNC_OPEN_FILE if opening else ncp.FUNC_CLOSE_FILE,
                data=b"\x00" * 24,
            )
            reply = ncp.NcpReply(sequence=sequence, data=b"\x00\x00" + (b"h" * 6 if opening else b""))
        elif row == "File Size":
            request = ncp.NcpRequest(
                sequence=sequence, function=ncp.FUNC_FILE_SIZE, data=b"\x00" * 6
            )
            reply = ncp.NcpReply(sequence=sequence, data=b"\x00\x00" + b"s" * 8)  # 10-byte mode
        elif row == "File Search":
            request = ncp.NcpRequest(
                sequence=sequence, function=ncp.FUNC_FILE_SEARCH, data=b"\x00" * 40
            )
            reply = ncp.NcpReply(sequence=sequence, data=b"\x00\x00" + b"f" * 140)
        elif row == "Directory Service":
            request = ncp.NcpRequest(
                sequence=sequence, function=ncp.FUNC_DIRECTORY_SERVICE, data=b"\x00" * 60
            )
            reply = ncp.NcpReply(sequence=sequence, data=b"\x00\x00" + b"d" * 220)
        else:
            request = ncp.NcpRequest(sequence=sequence, function=23, data=b"\x00" * 12)
            reply = ncp.NcpReply(sequence=sequence, data=b"\x00\x00")
        return request, reply
