"""Streaming workload generator: RTSP, IPVideo, RealStream, multicast.

§3 observes that *multicast* streaming carries 5-10% of all TCP/UDP
payload bytes — more than unicast streaming.  We generate a small number
of long-lived multicast video flows (size-scaled) plus RTSP-controlled
unicast sessions.
"""

from __future__ import annotations

from ...util.addr import ip_to_int
from ...util.sampling import LogNormal
from ..session import (
    MULTICAST_MAC_BASE,
    AppEvent,
    Dir,
    RawPackets,
    TcpSession,
    UdpExchange,
)
from ..topology import Role
from ...net.packet import make_udp_packet
from .base import AppGenerator, WindowContext

__all__ = ["StreamingGenerator"]

RTSP_PORT = 554
REALSTREAM_PORT = 7070
IPVIDEO_PORT = 5004

#: Unicast streaming sessions per subnet-hour.
_UNICAST_RATE = 3.0
#: Multicast channels concurrently playing into a subnet (unscaled;
#: channels run for the whole window, so volume scales with duration).
_MULTICAST_CHANNELS = 0.9

_UNICAST_SIZE = LogNormal(median=9e6, sigma=1.2)
#: Multicast channel rate in bytes/second before the study scale.
_MULTICAST_BPS = 32_000.0

_MCAST_GROUP = ip_to_int("224.2.127.254")
_PACKET_SIZE = 1316  # typical MPEG-TS over UDP payload


class StreamingGenerator(AppGenerator):
    """Generates unicast RTSP sessions and multicast video channels."""

    name = "streaming"

    def generate(self, ctx: WindowContext) -> list:
        rate = ctx.config.dials.streaming_rate
        sessions: list = []
        # Like the multicast channels, unicast viewing sessions keep their
        # real-world frequency and carry the study scale in their sizes —
        # a few scaled-count sessions with unscaled multi-MB bodies would
        # make tiny studies wildly noisy.
        for _ in range(ctx.count(_UNICAST_RATE * rate / max(ctx.scale, 1e-9))):
            sessions.extend(self._unicast_session(ctx))
        from .base import poisson

        for _ in range(poisson(ctx.rng, _MULTICAST_CHANNELS * rate)):
            sessions.append(self._multicast_channel(ctx))
        return sessions

    def _unicast_session(self, ctx: WindowContext) -> list:
        rng = ctx.rng
        client = ctx.local_client()
        server = ctx.off_subnet_server(Role.STREAM_SERVER)
        if server is None:
            return []
        start = ctx.start_time()
        control = TcpSession(
            client_ip=client.ip,
            server_ip=server.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(server),
            sport=ctx.ephemeral_port(),
            dport=RTSP_PORT if rng.random() < 0.7 else REALSTREAM_PORT,
            start=start,
            rtt=ctx.ent_rtt(),
        )
        control.events = [
            AppEvent(0.0, Dir.C2S, b"DESCRIBE rtsp://server/stream RTSP/1.0\r\nCSeq: 1\r\n\r\n"),
            AppEvent(0.01, Dir.S2C, b"RTSP/1.0 200 OK\r\nCSeq: 1\r\n\r\n" + b"v=0\r\n" * 20),
            AppEvent(0.02, Dir.C2S, b"SETUP rtsp://server/stream RTSP/1.0\r\nCSeq: 2\r\n\r\n"),
            AppEvent(0.01, Dir.S2C, b"RTSP/1.0 200 OK\r\nCSeq: 2\r\n\r\n"),
            AppEvent(0.02, Dir.C2S, b"PLAY rtsp://server/stream RTSP/1.0\r\nCSeq: 3\r\n\r\n"),
            AppEvent(0.01, Dir.S2C, b"RTSP/1.0 200 OK\r\nCSeq: 3\r\n\r\n"),
        ]
        data = UdpExchange(
            client_ip=client.ip,
            server_ip=server.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(server),
            sport=ctx.ephemeral_port(),
            dport=IPVIDEO_PORT,
            start=start + 0.2,
            rtt=ctx.ent_rtt(),
        )
        total = int(_UNICAST_SIZE.sample(rng) * ctx.scale)
        sent = 0
        while sent < total:
            data.events.append(AppEvent(0.01, Dir.S2C, b"\x00" * _PACKET_SIZE))
            sent += _PACKET_SIZE
        return [control, data]

    def _multicast_channel(self, ctx: WindowContext) -> RawPackets:
        """One multicast video channel playing into the monitored subnet."""
        rng = ctx.rng
        source = ctx.off_subnet_server(Role.STREAM_SERVER)
        if source is None or rng.random() < 0.3:
            # Some channels originate outside the enterprise.
            src_ip = ctx.wan_ip()
            src_mac = 0x00E0FE000001
        else:
            src_ip = source.ip
            src_mac = ctx.mac_of(source)
        group = _MCAST_GROUP + rng.randrange(16)
        dst_mac = MULTICAST_MAC_BASE | (group & 0x7FFFFF)
        total = int(_MULTICAST_BPS * ctx.duration * ctx.scale)
        count = max(total // _PACKET_SIZE, 10)
        span = ctx.duration * 0.9
        start = ctx.t0 + 0.05 * ctx.duration
        sport = ctx.ephemeral_port()  # one flow per channel, not per packet
        packets = [
            make_udp_packet(
                ts=start + (index / count) * span,
                src_mac=src_mac,
                dst_mac=dst_mac,
                src_ip=src_ip,
                dst_ip=group,
                src_port=sport,
                dst_port=IPVIDEO_PORT,
                payload=b"\x00" * _PACKET_SIZE,
            )
            for index in range(count)
        ]
        return RawPackets(packets=packets)
