"""Network-management workload generator: NTP, SNMP, DHCP, ident, SAP,
NetInfo, syslog — plus ordinary (non-scanner) ICMP echo traffic.

The "net-mgnt" category's *connection* share is large and notably stable
across datasets (§3 attributes this to periodic probes and
announcements), while its byte share is tiny.  SAP multicast
announcements alone contribute 5-10% of all connections.
"""

from __future__ import annotations

from ...proto import misc
from ...util.addr import ip_to_int
from ..session import (
    MULTICAST_MAC_BASE,
    ROUTER_MAC,
    AppEvent,
    Dir,
    IcmpExchange,
    RawPackets,
    UdpExchange,
)
from ...net.packet import make_udp_packet
from .base import AppGenerator, WindowContext

__all__ = ["NetMgntGenerator"]

_NTP_RATE = 1500.0
_SNMP_RATE = 900.0
_DHCP_RATE = 120.0
_IDENT_RATE = 60.0
_SYSLOG_RATE = 250.0
_NETINFO_RATE = 180.0
_ICMP_RATE = 1600.0

#: SAP multicast announcement sources per window (each announces steadily).
_SAP_SOURCES = 8.0
_SAP_GROUP = ip_to_int("224.2.127.254")
_NETINFO_PORT = 1033


class NetMgntGenerator(AppGenerator):
    """Generates periodic network-management exchanges."""

    name = "net-mgnt"

    def generate(self, ctx: WindowContext) -> list:
        rate = ctx.config.dials.netmgnt_rate
        sessions: list = []
        self._ntp(ctx, rate, sessions)
        self._snmp(ctx, rate, sessions)
        self._dhcp(ctx, rate, sessions)
        self._small_udp(ctx, rate, sessions)
        self._sap(ctx, rate, sessions)
        self._icmp(ctx, rate, sessions)
        return sessions

    def _udp_pair(
        self, ctx: WindowContext, client, server_host, dport: int,
        request: bytes, response: bytes | None, sport: int | None = None,
    ) -> UdpExchange:
        events = [AppEvent(0.0, Dir.C2S, request)]
        if response is not None:
            events.append(AppEvent(0.0, Dir.S2C, response))
        return UdpExchange(
            client_ip=client.ip,
            server_ip=server_host.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(server_host),
            sport=sport if sport is not None else ctx.ephemeral_port(),
            dport=dport,
            start=ctx.start_time(),
            rtt=ctx.ent_rtt(),
            events=events,
        )

    def _ntp(self, ctx: WindowContext, rate: float, out: list) -> None:
        for _ in range(ctx.count(_NTP_RATE * rate)):
            client = ctx.local_client()
            server = ctx.internal_peer()
            out.append(
                self._udp_pair(
                    ctx, client, server, misc.NTP_PORT,
                    misc.build_ntp(mode=3), misc.build_ntp(mode=4),
                )
            )

    def _snmp(self, ctx: WindowContext, rate: float, out: list) -> None:
        for _ in range(ctx.count(_SNMP_RATE * rate)):
            manager = ctx.internal_peer()
            agent = ctx.local_client()
            request = misc.build_snmp_get()
            out.append(
                UdpExchange(
                    client_ip=manager.ip,
                    server_ip=agent.ip,
                    client_mac=ctx.mac_of(manager),
                    server_mac=ctx.mac_of(agent),
                    sport=ctx.ephemeral_port(),
                    dport=misc.SNMP_PORT,
                    start=ctx.start_time(),
                    rtt=ctx.ent_rtt(),
                    events=[
                        AppEvent(0.0, Dir.C2S, request),
                        AppEvent(0.0, Dir.S2C, request + b"\x00" * 12),
                    ],
                )
            )

    def _dhcp(self, ctx: WindowContext, rate: float, out: list) -> None:
        for _ in range(ctx.count(_DHCP_RATE * rate)):
            client = ctx.local_client()
            server = ctx.internal_peer()  # relayed through the router
            out.append(
                self._udp_pair(
                    ctx, client, server, misc.DHCP_SERVER_PORT,
                    misc.build_dhcp_discover(client.mac, ctx.rng.getrandbits(32)),
                    misc.build_dhcp_discover(client.mac, ctx.rng.getrandbits(32)),
                    sport=misc.DHCP_CLIENT_PORT,
                )
            )

    def _small_udp(self, ctx: WindowContext, rate: float, out: list) -> None:
        for _ in range(ctx.count(_SYSLOG_RATE * rate)):
            client = ctx.local_client()
            server = ctx.internal_peer()
            out.append(
                self._udp_pair(
                    ctx, client, server, misc.SYSLOG_PORT,
                    misc.build_syslog(6, "daemon restarted"), None,
                )
            )
        for _ in range(ctx.count(_NETINFO_RATE * rate)):
            client = ctx.local_client()
            server = ctx.internal_peer()
            out.append(
                self._udp_pair(
                    ctx, client, server, _NETINFO_PORT,
                    b"\x01\x02" + b"\x00" * 30, b"\x01\x03" + b"\x00" * 60,
                )
            )
        for _ in range(ctx.count(_IDENT_RATE * rate)):
            client = ctx.internal_peer()
            server = ctx.local_client()
            out.append(
                self._udp_pair(
                    ctx, client, server, misc.IDENT_PORT,
                    b"40000, 25\r\n", b"40000, 25 : USERID : UNIX : user\r\n",
                )
            )

    def _sap(self, ctx: WindowContext, rate: float, out: list) -> None:
        """Periodic SAP multicast announcements (5-10% of connections)."""
        announcements = ctx.count(_SAP_SOURCES * rate * 240.0)
        for _ in range(announcements):
            if ctx.rng.random() < 0.4:
                source = ctx.local_client()
                src_mac = source.mac
                src_ip = source.ip
            else:
                src_ip = ctx.wan_ip() if ctx.rng.random() < 0.6 else ctx.internal_peer().ip
                src_mac = ROUTER_MAC
            group = _SAP_GROUP
            out.append(
                RawPackets(
                    packets=[
                        make_udp_packet(
                            ts=ctx.start_time(),
                            src_mac=src_mac,
                            dst_mac=MULTICAST_MAC_BASE | (group & 0x7FFFFF),
                            src_ip=src_ip,
                            dst_ip=group,
                            src_port=misc.SAP_PORT,
                            dst_port=misc.SAP_PORT,
                            payload=misc.build_sap_announce(200),
                        )
                    ]
                )
            )

    def _icmp(self, ctx: WindowContext, rate: float, out: list) -> None:
        """Ordinary ping traffic (monitoring scripts, troubleshooting)."""
        for _ in range(ctx.count(_ICMP_RATE * rate)):
            client = ctx.local_client()
            wan = ctx.rng.random() < 0.25
            if wan:
                dst_ip, dst_mac, rtt = ctx.wan_ip(), ROUTER_MAC, ctx.wan_rtt()
            else:
                peer = ctx.internal_peer()
                dst_ip, dst_mac, rtt = peer.ip, ctx.mac_of(peer), ctx.ent_rtt()
            out.append(
                IcmpExchange(
                    src_ip=client.ip,
                    dst_ip=dst_ip,
                    src_mac=ctx.mac_of(client),
                    dst_mac=dst_mac,
                    start=ctx.start_time(),
                    rtt=rtt,
                    count=ctx.rng.randrange(1, 5),
                    answered=ctx.rng.random() < 0.9,
                    ident=ctx.rng.getrandbits(16),
                )
            )
