"""NFS workload generator (§5.2.2, Tables 12-13, Figures 7-8).

Models the paper's findings:

* Traffic is extremely concentrated: the three most active host-pairs
  carry 89-94% of NFS bytes.  We generate a few *heavy* pairs (driven by
  a per-dataset byte budget) plus a tail of light pairs, giving the
  requests-per-host-pair distribution its 1→100k span (Figure 7a).
* The request mix varies by dataset (Table 13) — read-heavy in D0,
  getattr-heavy in D3, write-heavy in D4 — and is a dial.
* Messages are dual-mode (Figure 8a/b): ~100-byte control calls/replies
  vs ~8 KB read replies and write calls.
* NFS runs over UDP for 90% of host-pairs but only 21% over TCP, with
  wildly varying byte shares — transport is sampled per pair.
* Requests succeed 84-95% of the time; failures are mostly LOOKUPs for
  names that do not exist.
* Clients issue requests back-to-back, usually ≤ 10 ms apart.
"""

from __future__ import annotations

from random import Random

from ...proto import nfs
from ...util.sampling import BoundedPareto, weighted_choice
from ..session import AppEvent, Dir, TcpSession, UdpExchange
from ..topology import Host, Role
from .base import AppGenerator, WindowContext

__all__ = ["NfsGenerator"]

#: Light client/server pairs per subnet-hour.
_LIGHT_PAIR_RATE = 80.0
#: Probability that a window containing an NFS server hosts a heavy pair.
_HEAVY_PAIR_PROB = 0.6
#: Byte budget per heavy pair before dataset dials and study scale.
_HEAVY_PAIR_BYTES = 1.6e9

_LIGHT_REQUESTS = BoundedPareto(low=3, high=1500, alpha=0.8)

_ROW_TO_PROC = {
    "Read": nfs.PROC_READ,
    "Write": nfs.PROC_WRITE,
    "GetAttr": nfs.PROC_GETATTR,
    "LookUp": nfs.PROC_LOOKUP,
    "Access": nfs.PROC_ACCESS,
    "Other": nfs.PROC_READDIR,
}

_IO_SIZE = 8192  # the ~8 KB NFS transfer size (§5.2.2)
_REQUEST_GAP = 0.004  # requests usually ≤10 ms apart


class NfsGenerator(AppGenerator):
    """Generates NFS request/reply traffic for one window."""

    name = "nfs"

    def generate(self, ctx: WindowContext) -> list:
        dials = ctx.config.dials
        sessions: list = []
        for _ in range(ctx.count(_LIGHT_PAIR_RATE * dials.nfs_rate)):
            client = ctx.local_client()
            server = ctx.off_subnet_server(Role.FILE_SERVER_NFS)
            if server is None:
                continue
            requests = _LIGHT_REQUESTS.sample_int(ctx.rng, minimum=1)
            sessions.append(self._pair_session(ctx, client, server, requests))
        # Heavy pairs: always candidates at server-subnet vantage points,
        # occasionally visible from a heavy client's subnet too.
        hours = ctx.duration / 3600.0
        budget = _HEAVY_PAIR_BYTES * dials.nfs_bulk * ctx.scale * hours
        for server in ctx.subnet.servers(Role.FILE_SERVER_NFS):
            if ctx.rng.random() > _HEAVY_PAIR_PROB:
                continue
            client = ctx.internal_peer()
            requests = self._requests_for_budget(ctx.rng, budget, dials.nfs_mix)
            sessions.append(self._pair_session(ctx, client, server, requests))
        if ctx.rng.random() < 0.10:
            client = ctx.local_client()
            server = ctx.off_subnet_server(Role.FILE_SERVER_NFS)
            if server is not None:
                requests = self._requests_for_budget(ctx.rng, budget, dials.nfs_mix)
                sessions.append(self._pair_session(ctx, client, server, requests))
        return sessions

    @staticmethod
    def _requests_for_budget(rng: Random, budget: float, mix: dict[str, float]) -> int:
        """Request count whose expected data volume matches ``budget``."""
        bytes_per_req = (
            mix.get("Read", 0.0) * _IO_SIZE
            + mix.get("Write", 0.0) * _IO_SIZE
            + 120  # control overhead on every request
        )
        return max(int(budget / bytes_per_req), 10)

    def _pair_session(
        self, ctx: WindowContext, client: Host, server: Host, requests: int
    ):
        rng = ctx.rng
        mix = ctx.config.dials.nfs_mix
        rows = list(mix.keys())
        weights = list(mix.values())
        use_tcp = rng.random() < 0.20
        events: list[AppEvent] = []
        for index in range(requests):
            proc = _ROW_TO_PROC[weighted_choice(rng, rows, weights)]
            xid = rng.getrandbits(31)
            call = nfs.RpcCall(xid=xid, proc=proc)
            status = nfs.NFS3_OK
            reply_data = b""
            if proc == nfs.PROC_READ:
                call.offset, call.count = index * _IO_SIZE, _IO_SIZE
                reply_data = b"r" * _IO_SIZE
            elif proc == nfs.PROC_WRITE:
                call.offset = index * _IO_SIZE
                call.data = b"w" * _IO_SIZE
            elif proc == nfs.PROC_LOOKUP:
                missing = rng.random() < 0.12  # ENOENT lookups (§5.2.2)
                call.name = f"{'missing' if missing else 'file'}{rng.randrange(2000)}"
                if missing:
                    status = nfs.NFS3ERR_NOENT
            elif proc == nfs.PROC_REMOVE:
                call.name = f"file{rng.randrange(2000)}"
            reply = nfs.RpcReply(xid=xid, proc=proc, status=status, data=reply_data)
            call_bytes = call.encode()
            reply_bytes = reply.encode()
            if use_tcp:
                call_bytes = nfs.frame_tcp_record(call_bytes)
                reply_bytes = nfs.frame_tcp_record(reply_bytes)
            gap = rng.random() * _REQUEST_GAP
            events.append(AppEvent(gap if index else 0.0, Dir.C2S, call_bytes))
            events.append(AppEvent(0.0005, Dir.S2C, reply_bytes))
        common = dict(
            client_ip=client.ip,
            server_ip=server.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(server),
            sport=ctx.ephemeral_port(),
            dport=nfs.NFS_PORT,
            start=ctx.start_time(),
            rtt=ctx.ent_rtt(),
            events=events,
        )
        if use_tcp:
            return TcpSession(**common)
        return UdpExchange(**common)
