"""Link-layer and minor-transport generator: ARP, IPX, other non-IP
EtherTypes, and the slim IP transports (IGMP, PIM, GRE, ESP, proto 224).

Drives Table 2 (network-layer breakdown: IP ≥ 95%, the rest dominated by
IPX and ARP in dataset-varying proportions) and the "additional transport
protocols" note under Table 3.
"""

from __future__ import annotations

from ...net.arp import ARP_REPLY, ARP_REQUEST
from ...net.ethernet import (
    BROADCAST_MAC,
    ETHERTYPE_APPLETALK,
    ETHERTYPE_DECNET,
    EthernetFrame,
)
from ...net.ipv4 import (
    PROTO_ESP,
    PROTO_GRE,
    PROTO_IGMP,
    PROTO_PIM,
    PROTO_UNIDENTIFIED_224,
    Ipv4Packet,
)
from ...net.ipx import IPX_TYPE_SAP, IpxPacket
from ...net.packet import CapturedPacket, make_arp_packet, make_ipx_packet
from ..session import ROUTER_MAC, RawPackets
from .base import AppGenerator, WindowContext

__all__ = ["LinkGenerator"]

#: Packets per subnet-hour.
_ARP_RATE = 9000.0
_IPX_RATE = 34000.0
_OTHER_L2_RATE = 9000.0
_MINOR_IP_RATE = 700.0


class LinkGenerator(AppGenerator):
    """Generates ARP, IPX, other non-IP frames, and minor IP transports."""

    name = "link"

    def generate(self, ctx: WindowContext) -> list[RawPackets]:
        rng = ctx.rng
        packets: list[CapturedPacket] = []
        router_ip = ctx.subnet.subnet.host(ctx.subnet.subnet.num_hosts - 1) + 1
        for _ in range(ctx.count(_ARP_RATE)):
            requester = ctx.local_client()
            target = rng.choice(ctx.subnet.hosts)
            packets.append(
                make_arp_packet(
                    ts=ctx.start_time(),
                    src_mac=ROUTER_MAC if rng.random() < 0.5 else requester.mac,
                    dst_mac=BROADCAST_MAC,
                    opcode=ARP_REQUEST if rng.random() < 0.8 else ARP_REPLY,
                    sender_mac=requester.mac,
                    sender_ip=requester.ip,
                    target_mac=0,
                    target_ip=target.ip if rng.random() < 0.8 else router_ip,
                )
            )
        # IPX: SAP/RIP broadcast announcements from NetWare gear, the
        # dominant non-IP protocol of Table 2.
        ipx_scale = 1.0 if ctx.config.router == 0 else 0.45
        for _ in range(ctx.count(_IPX_RATE * ipx_scale)):
            host = ctx.local_client()
            ipx = IpxPacket(
                packet_type=IPX_TYPE_SAP,
                dst_network=0,
                dst_node=0xFFFFFFFFFFFF,
                dst_socket=0x0452,
                src_network=ctx.subnet.index + 1,
                src_node=host.mac,
                src_socket=0x0452,
                payload=b"\x00\x02" + b"S" * 62,
            )
            packets.append(
                make_ipx_packet(
                    ts=ctx.start_time(),
                    src_mac=host.mac,
                    dst_mac=BROADCAST_MAC,
                    ipx=ipx,
                )
            )
        for _ in range(ctx.count(_OTHER_L2_RATE)):
            host = ctx.local_client()
            ethertype = ETHERTYPE_APPLETALK if rng.random() < 0.6 else ETHERTYPE_DECNET
            frame = EthernetFrame(
                dst_mac=BROADCAST_MAC,
                src_mac=host.mac,
                ethertype=ethertype,
                payload=b"\x00" * 46,
            )
            data = frame.encode()
            packets.append(
                CapturedPacket(ts=ctx.start_time(), data=data, wire_len=len(data))
            )
        for _ in range(ctx.count(_MINOR_IP_RATE)):
            host = ctx.local_client()
            proto = rng.choice(
                (PROTO_IGMP, PROTO_PIM, PROTO_GRE, PROTO_ESP, PROTO_UNIDENTIFIED_224)
            )
            peer = ctx.internal_peer()
            ip = Ipv4Packet(
                src_ip=host.ip,
                dst_ip=peer.ip,
                proto=proto,
                payload=b"\x00" * (8 if proto == PROTO_IGMP else 60),
            )
            frame = EthernetFrame(
                dst_mac=ROUTER_MAC,
                src_mac=host.mac,
                ethertype=0x0800,
                payload=ip.encode(),
            )
            data = frame.encode()
            packets.append(
                CapturedPacket(ts=ctx.start_time(), data=data, wire_len=max(len(data), 60))
            )
        return [RawPackets(packets=packets)] if packets else []
