"""DNS workload generator (§5.1.3).

Models the paper's observations: a handful of servers take most queries;
the two main SMTP servers are the heaviest clients (lookups for incoming
mail); request types are A 50-66%, AAAA 17-25% (hosts configured to issue
A and AAAA in parallel), PTR 10-18%, MX 4-7%; NOERROR 77-86% and NXDOMAIN
11-21%; and latency is ~0.4 ms internally vs ~20 ms to off-site servers.
WAN DNS traffic appears mainly when the monitored subnet hosts a main DNS
server (D3-D4), since the site resolver does the off-site lookups.
"""

from __future__ import annotations

from random import Random

from ...proto import dns
from ...util.sampling import weighted_choice
from ..session import AppEvent, Dir, UdpExchange
from ..topology import Host, Role
from .base import AppGenerator, WindowContext

__all__ = ["DnsGenerator"]

DNS_PORT = 53

_QTYPE_WEIGHTS = [
    (dns.QTYPE_A, 0.50),
    (dns.QTYPE_AAAA, 0.13),
    (dns.QTYPE_PTR, 0.14),
    (dns.QTYPE_MX, 0.055),
    (dns.QTYPE_TXT, 0.02),
]

_RCODE_WEIGHTS = [(dns.RCODE_NOERROR, 0.82), (dns.RCODE_NXDOMAIN, 0.16), (dns.RCODE_SERVFAIL, 0.02)]

_INTERNAL_NAMES = [f"host{i:03d}.internal.example" for i in range(240)]
_EXTERNAL_NAMES = [f"www{i:02d}.remote.example" for i in range(80)]
_STALE_NAMES = [f"gone{i:02d}.internal.example" for i in range(40)]

#: Queries per subnet-hour from ordinary workstations.
_CLIENT_RATE = 5500.0
#: Queries per hour issued by a monitored main SMTP server.  The mail
#: hubs resolve MX/PTR records for every message, which is what makes a
#: few clients dominate DNS request counts in the paper (§5.1.3).
_SMTP_SERVER_RATE = 60000.0
#: Off-site lookups per hour by a monitored main DNS server (resolver).
_RESOLVER_RATE = 5200.0
#: Inbound queries per hour from other subnets to a monitored DNS server.
_INBOUND_RATE = 12000.0
#: Inbound queries per hour from WAN resolvers to a monitored DNS server
#: (the site's servers are authoritative for its zones).
_WAN_INBOUND_RATE = 2500.0


class DnsGenerator(AppGenerator):
    """Generates DNS query/response exchanges for one window."""

    name = "dns"

    def generate(self, ctx: WindowContext) -> list[UdpExchange]:
        rate = ctx.config.dials.name_rate
        sessions: list[UdpExchange] = []
        self._client_queries(ctx, rate, sessions)
        self._smtp_server_queries(ctx, rate, sessions)
        self._resolver_queries(ctx, rate, sessions)
        self._inbound_queries(ctx, rate, sessions)
        return sessions

    # -- pieces ------------------------------------------------------------

    def _client_queries(self, ctx: WindowContext, rate: float, out: list) -> None:
        """Workstations on the monitored subnet querying the site servers."""
        server = ctx.off_subnet_server(Role.DNS_SERVER)
        if server is None:
            return
        for _ in range(ctx.count(_CLIENT_RATE * rate)):
            client = ctx.local_client()
            out.extend(self._query_burst(ctx, client, server, internal=True))

    def _smtp_server_queries(self, ctx: WindowContext, rate: float, out: list) -> None:
        """The main SMTP servers issue mail-driven lookups when monitored."""
        smtp_servers = ctx.subnet.servers(Role.SMTP_SERVER)
        if not smtp_servers:
            return
        dns_server = ctx.off_subnet_server(Role.DNS_SERVER)
        if dns_server is None:
            return
        for _ in range(ctx.count(_SMTP_SERVER_RATE * rate)):
            client = ctx.rng.choice(smtp_servers)
            qtype = dns.QTYPE_MX if ctx.rng.random() < 0.4 else dns.QTYPE_PTR
            out.append(
                self._exchange(ctx, client, dns_server, qtype, internal=True)
            )

    def _resolver_queries(self, ctx: WindowContext, rate: float, out: list) -> None:
        """A monitored main DNS server resolving off-site names (WAN DNS)."""
        for server in ctx.subnet.servers(Role.DNS_SERVER):
            for _ in range(ctx.count(_RESOLVER_RATE * rate)):
                out.append(self._wan_exchange(ctx, server))

    def _inbound_queries(self, ctx: WindowContext, rate: float, out: list) -> None:
        """Clients elsewhere querying a monitored main DNS server."""
        from ..session import ROUTER_MAC
        from ..topology import Host

        for server in ctx.subnet.servers(Role.DNS_SERVER):
            for _ in range(ctx.count(_INBOUND_RATE * rate)):
                client = ctx.internal_peer()
                out.extend(self._query_burst(ctx, client, server, internal=True))
            for _ in range(ctx.count(_WAN_INBOUND_RATE * rate)):
                wan_client = Host(ip=ctx.wan_ip(), mac=ROUTER_MAC, subnet_index=-1, router=-1)
                out.extend(self._query_burst(ctx, wan_client, server, internal=False))

    # -- exchange builders ---------------------------------------------------

    def _query_burst(
        self, ctx: WindowContext, client: Host, server: Host, internal: bool
    ) -> list[UdpExchange]:
        """One logical lookup; some hosts issue A and AAAA in parallel."""
        qtype = weighted_choice(
            ctx.rng, [q for q, _ in _QTYPE_WEIGHTS], [w for _, w in _QTYPE_WEIGHTS]
        )
        exchanges = [self._exchange(ctx, client, server, qtype, internal)]
        # Dual-stack resolvers ask for A and AAAA at the same time; this is
        # what pushes AAAA to 17-25% of requests in the paper.
        if qtype == dns.QTYPE_A and ctx.rng.random() < 0.20:
            exchanges.append(
                self._exchange(ctx, client, server, dns.QTYPE_AAAA, internal)
            )
        return exchanges

    def _pick_name(self, rng: Random, rcode: int) -> str:
        if rcode == dns.RCODE_NXDOMAIN:
            return rng.choice(_STALE_NAMES)
        if rng.random() < 0.8:
            return rng.choice(_INTERNAL_NAMES)
        return rng.choice(_EXTERNAL_NAMES)

    def _exchange(
        self,
        ctx: WindowContext,
        client: Host,
        server: Host,
        qtype: int,
        internal: bool,
    ) -> UdpExchange:
        rng = ctx.rng
        rcode = weighted_choice(
            rng, [r for r, _ in _RCODE_WEIGHTS], [w for _, w in _RCODE_WEIGHTS]
        )
        name = self._pick_name(rng, rcode)
        ident = rng.getrandbits(16)
        query = dns.DnsMessage(
            ident=ident, questions=[dns.DnsQuestion(name, qtype)]
        )
        response = dns.DnsMessage(
            ident=ident,
            is_response=True,
            rcode=rcode,
            questions=[dns.DnsQuestion(name, qtype)],
        )
        if rcode == dns.RCODE_NOERROR and qtype in (dns.QTYPE_A, dns.QTYPE_AAAA):
            rdata = b"\x0a\x00\x00\x01" if qtype == dns.QTYPE_A else b"\x00" * 16
            response.answers.append(dns.DnsRecord(name, qtype, rdata))
        elif rcode == dns.RCODE_NOERROR and qtype == dns.QTYPE_MX:
            response.answers.append(
                dns.DnsRecord(name, qtype, b"\x00\x0a" + dns.encode_name("mx." + name))
            )
        return UdpExchange(
            client_ip=client.ip,
            server_ip=server.ip,
            client_mac=ctx.mac_of(client),
            server_mac=ctx.mac_of(server),
            sport=ctx.ephemeral_port(),
            dport=DNS_PORT,
            start=ctx.start_time(),
            rtt=ctx.ent_rtt() if internal else ctx.wan_dns_rtt(),
            events=[
                AppEvent(0.0, Dir.C2S, query.encode()),
                AppEvent(0.0, Dir.S2C, response.encode()),
            ],
        )

    def _wan_exchange(self, ctx: WindowContext, server: Host) -> UdpExchange:
        """The resolver querying an off-site authoritative server."""
        rng = ctx.rng
        qtype = weighted_choice(
            rng, [q for q, _ in _QTYPE_WEIGHTS], [w for _, w in _QTYPE_WEIGHTS]
        )
        rcode = weighted_choice(
            rng, [r for r, _ in _RCODE_WEIGHTS], [w for _, w in _RCODE_WEIGHTS]
        )
        name = rng.choice(_EXTERNAL_NAMES if rcode == dns.RCODE_NOERROR else _STALE_NAMES)
        ident = rng.getrandbits(16)
        query = dns.DnsMessage(ident=ident, questions=[dns.DnsQuestion(name, qtype)])
        response = dns.DnsMessage(
            ident=ident,
            is_response=True,
            rcode=rcode,
            questions=[dns.DnsQuestion(name, qtype)],
        )
        if rcode == dns.RCODE_NOERROR:
            response.answers.append(dns.DnsRecord(name, dns.QTYPE_A, b"\x01\x02\x03\x04"))
        wan_ip = ctx.wan_ip()
        from ..session import ROUTER_MAC

        return UdpExchange(
            client_ip=server.ip,
            server_ip=wan_ip,
            client_mac=ctx.mac_of(server),
            server_mac=ROUTER_MAC,
            sport=ctx.ephemeral_port(),
            dport=DNS_PORT,
            start=ctx.start_time(),
            rtt=ctx.wan_dns_rtt(),
            events=[
                AppEvent(0.0, Dir.C2S, query.encode()),
                AppEvent(0.0, Dir.S2C, response.encode()),
            ],
        )
