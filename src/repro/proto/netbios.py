"""Netbios Name Service (RFC 1002, UDP 137) and Session Service (TCP 139).

§5.1.3 analyzes Netbios/NS request types (query vs refresh vs register),
queried name types (workstation/server vs domain/browser), and its high
NXDOMAIN rate (36-50% of distinct queries).  §5.2.1 analyzes the
Netbios/SSN session handshake that fronts CIFS on port 139.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .dns import RCODE_NOERROR, RCODE_NXDOMAIN

__all__ = [
    "NB_OPCODE_QUERY",
    "NB_OPCODE_REGISTRATION",
    "NB_OPCODE_RELEASE",
    "NB_OPCODE_WACK",
    "NB_OPCODE_REFRESH",
    "NAME_TYPE_WORKSTATION",
    "NAME_TYPE_SERVER",
    "NAME_TYPE_DOMAIN",
    "NAME_TYPE_BROWSER",
    "NbnsPacket",
    "encode_netbios_name",
    "decode_netbios_name",
    "SSN_SESSION_MESSAGE",
    "SSN_SESSION_REQUEST",
    "SSN_POSITIVE_RESPONSE",
    "SSN_NEGATIVE_RESPONSE",
    "SSN_KEEPALIVE",
    "NbssFrame",
    "parse_nbss_stream",
]

NB_OPCODE_QUERY = 0
NB_OPCODE_REGISTRATION = 5
NB_OPCODE_RELEASE = 6
NB_OPCODE_WACK = 7
NB_OPCODE_REFRESH = 8

# Netbios name suffix bytes ("type" indications, §5.1.3).
NAME_TYPE_WORKSTATION = 0x00
NAME_TYPE_SERVER = 0x20
NAME_TYPE_DOMAIN = 0x1B
NAME_TYPE_BROWSER = 0x1D

_NBNS_HEADER = struct.Struct("!HHHHHH")


def encode_netbios_name(name: str, suffix: int) -> bytes:
    """First-level encode a Netbios name (RFC 1001 §14.1).

    The 15-character name plus 1 suffix byte becomes 32 nibble-encoded
    characters, wrapped as a single DNS label plus a root label.
    """
    padded = name.upper().ljust(15)[:15].encode("ascii") + bytes([suffix])
    encoded = bytearray()
    for byte in padded:
        encoded.append(ord("A") + (byte >> 4))
        encoded.append(ord("A") + (byte & 0xF))
    return bytes([32]) + bytes(encoded) + b"\x00"


def decode_netbios_name(data: bytes, offset: int) -> tuple[str, int, int]:
    """Decode a first-level-encoded name; returns (name, suffix, next_offset)."""
    if offset >= len(data):
        raise ValueError("name offset past end")
    length = data[offset]
    if length != 32:
        raise ValueError(f"not a Netbios name label (len {length})")
    offset += 1
    if offset + 33 > len(data):
        raise ValueError("truncated Netbios name")
    raw = bytearray()
    for i in range(0, 32, 2):
        high = data[offset + i] - ord("A")
        low = data[offset + i + 1] - ord("A")
        if not (0 <= high <= 15 and 0 <= low <= 15):
            raise ValueError("bad nibble encoding")
        raw.append((high << 4) | low)
    offset += 32
    if data[offset] != 0:
        raise ValueError("missing root label")
    offset += 1
    return raw[:15].decode("ascii", "replace").rstrip(), raw[15], offset


@dataclass
class NbnsPacket:
    """A Netbios Name Service request or response."""

    ident: int
    opcode: int
    name: str
    suffix: int
    is_response: bool = False
    rcode: int = RCODE_NOERROR
    addr: int = 0  # answer address for positive query responses

    def encode(self) -> bytes:
        """Serialize; positive query responses carry one NB answer record."""
        flags = (self.opcode & 0xF) << 11
        if self.is_response:
            flags |= 0x8000 | 0x0400  # response + authoritative
        flags |= self.rcode & 0xF
        has_answer = self.is_response and self.rcode == RCODE_NOERROR
        out = bytearray(
            _NBNS_HEADER.pack(
                self.ident,
                flags,
                0 if self.is_response else 1,
                1 if has_answer else 0,
                0,
                0,
            )
        )
        encoded_name = encode_netbios_name(self.name, self.suffix)
        if not self.is_response:
            out += encoded_name + struct.pack("!HH", 32, 1)  # NB, IN
        else:
            out += encoded_name + struct.pack("!HHIH", 32, 1, 300, 6)
            out += struct.pack("!H", 0)  # flags: B-node, unique
            out += self.addr.to_bytes(4, "big")
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "NbnsPacket":
        """Parse a Netbios/NS packet."""
        if len(data) < _NBNS_HEADER.size:
            raise ValueError("truncated NBNS header")
        ident, flags, qd, an, _ns, _ar = _NBNS_HEADER.unpack_from(data)
        is_response = bool(flags & 0x8000)
        opcode = (flags >> 11) & 0xF
        rcode = flags & 0xF
        name, suffix, offset = decode_netbios_name(data, _NBNS_HEADER.size)
        addr = 0
        if is_response and an and rcode == RCODE_NOERROR:
            # Skip rtype/rclass/ttl/rdlen + nb_flags to the address.
            addr_offset = offset + 10 + 2
            if addr_offset + 4 <= len(data):
                addr = int.from_bytes(data[addr_offset : addr_offset + 4], "big")
        return cls(
            ident=ident,
            opcode=opcode,
            name=name,
            suffix=suffix,
            is_response=is_response,
            rcode=rcode,
            addr=addr,
        )

    @property
    def failed(self) -> bool:
        """True for NXDOMAIN responses (the stale-name failures of §5.1.3)."""
        return self.is_response and self.rcode == RCODE_NXDOMAIN

    @property
    def name_category(self) -> str:
        """"host" for workstation/server names, "domain" for domain/browser."""
        if self.suffix in (NAME_TYPE_WORKSTATION, NAME_TYPE_SERVER, 0x03):
            return "host"
        if self.suffix in (NAME_TYPE_DOMAIN, 0x1C, NAME_TYPE_BROWSER, 0x1E):
            return "domain"
        return "other"


SSN_SESSION_MESSAGE = 0x00
SSN_SESSION_REQUEST = 0x81
SSN_POSITIVE_RESPONSE = 0x82
SSN_NEGATIVE_RESPONSE = 0x83
SSN_KEEPALIVE = 0x85


@dataclass(frozen=True)
class NbssFrame:
    """One Netbios Session Service frame (the 4-byte-header framing on 139/tcp)."""

    frame_type: int
    payload: bytes = b""

    def encode(self) -> bytes:
        length = len(self.payload)
        if length > 0x1FFFF:
            raise ValueError("NBSS payload too long")
        return struct.pack("!BBH", self.frame_type, (length >> 16) & 1, length & 0xFFFF) + self.payload

    @staticmethod
    def session_request(called: str, calling: str) -> "NbssFrame":
        """Build the session-request frame carrying both endpoint names."""
        payload = encode_netbios_name(called, NAME_TYPE_SERVER) + encode_netbios_name(
            calling, NAME_TYPE_WORKSTATION
        )
        return NbssFrame(SSN_SESSION_REQUEST, payload)


def parse_nbss_stream(stream: bytes) -> list[NbssFrame]:
    """Parse one direction of a 139/tcp connection into NBSS frames.

    Stops quietly at a truncated final frame (snaplen-limited captures).
    """
    frames: list[NbssFrame] = []
    offset = 0
    while offset + 4 <= len(stream):
        frame_type = stream[offset]
        length = ((stream[offset + 1] & 1) << 16) | struct.unpack_from("!H", stream, offset + 2)[0]
        offset += 4
        payload = stream[offset : offset + length]
        frames.append(NbssFrame(frame_type, payload))
        if len(payload) < length:
            break
        offset += length
    return frames
