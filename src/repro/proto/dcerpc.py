"""DCE/RPC PDUs and well-known interfaces (§5.2.1, Table 11).

DCE/RPC emerges in the paper as the most active component of CIFS
traffic, dominated by Spoolss printing (WritePrinter in particular) at
the print-server vantage points (D3/D4) and by NetLogon/LsaRPC user
authentication at the D0 vantage point.  Clients reach services either
through named pipes over CIFS or through stand-alone TCP/UDP endpoints
discovered via the Endpoint Mapper.
"""

from __future__ import annotations

import struct
import uuid
from dataclasses import dataclass

__all__ = [
    "PDU_REQUEST",
    "PDU_RESPONSE",
    "PDU_FAULT",
    "PDU_BIND",
    "PDU_BIND_ACK",
    "IFACE_SPOOLSS",
    "IFACE_NETLOGON",
    "IFACE_LSARPC",
    "IFACE_SRVSVC",
    "IFACE_EPMAPPER",
    "IFACE_NAMES",
    "OP_SPOOLSS_WRITEPRINTER",
    "OP_SPOOLSS_OPENPRINTER",
    "OP_SPOOLSS_STARTDOC",
    "OP_SPOOLSS_ENDDOC",
    "OP_SPOOLSS_CLOSEPRINTER",
    "OP_NETLOGON_SAMLOGON",
    "OP_LSA_LOOKUPSIDS",
    "OP_EPM_MAP",
    "PIPE_INTERFACES",
    "DcerpcPdu",
    "parse_pdu_stream",
    "function_label",
    "EPMAPPER_PORT",
]

PDU_REQUEST = 0
PDU_RESPONSE = 2
PDU_FAULT = 3
PDU_BIND = 11
PDU_BIND_ACK = 12

EPMAPPER_PORT = 135

IFACE_SPOOLSS = uuid.UUID("12345678-1234-abcd-ef00-0123456789ab")
IFACE_NETLOGON = uuid.UUID("12345678-1234-abcd-ef00-01234567cffb")
IFACE_LSARPC = uuid.UUID("12345778-1234-abcd-ef00-0123456789ab")
IFACE_SRVSVC = uuid.UUID("4b324fc8-1670-01d3-1278-5a47bf6ee188")
IFACE_EPMAPPER = uuid.UUID("e1af8308-5d1f-11c9-91a4-08002b14a0fa")

IFACE_NAMES = {
    IFACE_SPOOLSS: "Spoolss",
    IFACE_NETLOGON: "NetLogon",
    IFACE_LSARPC: "LsaRPC",
    IFACE_SRVSVC: "SrvSvc",
    IFACE_EPMAPPER: "EpMapper",
}

# The named pipes through which each interface is reached over CIFS.
PIPE_INTERFACES = {
    "\\PIPE\\SPOOLSS": IFACE_SPOOLSS,
    "\\PIPE\\NETLOGON": IFACE_NETLOGON,
    "\\PIPE\\LSARPC": IFACE_LSARPC,
    "\\PIPE\\SRVSVC": IFACE_SRVSVC,
}

# Operation numbers (opnums) for the functions Table 11 breaks out.
OP_SPOOLSS_OPENPRINTER = 1
OP_SPOOLSS_STARTDOC = 17
OP_SPOOLSS_WRITEPRINTER = 19
OP_SPOOLSS_ENDDOC = 23
OP_SPOOLSS_CLOSEPRINTER = 29
OP_NETLOGON_SAMLOGON = 2
OP_LSA_LOOKUPSIDS = 15
OP_EPM_MAP = 3

# ver(1) ver_minor(1) ptype(1) pfc_flags(1) drep(4) frag_len(2)
# auth_len(2) call_id(4)
_COMMON_HEADER = struct.Struct("<BBBB4sHHI")
_REQUEST_EXTRA = struct.Struct("<IHH")  # alloc_hint, context_id, opnum


@dataclass
class DcerpcPdu:
    """One connection-oriented DCE/RPC PDU.

    Bind PDUs carry ``interface``; request/response PDUs carry ``opnum``
    and stub ``data``.
    """

    ptype: int
    call_id: int = 1
    opnum: int = 0
    interface: uuid.UUID | None = None
    data: bytes = b""

    def encode(self) -> bytes:
        """Serialize with a correct fragment length."""
        body = bytearray()
        if self.ptype in (PDU_BIND, PDU_BIND_ACK):
            iface = self.interface or IFACE_EPMAPPER
            # max_xmit, max_recv, assoc_group, one context element
            body += struct.pack("<HHI", 4280, 4280, 0)
            body += struct.pack("<B3xHH", 1, 0, 1)  # 1 ctx, id 0, 1 xfer syntax
            body += iface.bytes_le + struct.pack("<HH", 1, 0)
            body += IFACE_EPMAPPER.bytes_le + struct.pack("<HH", 2, 0)
        elif self.ptype in (PDU_REQUEST, PDU_RESPONSE, PDU_FAULT):
            body += _REQUEST_EXTRA.pack(len(self.data), 0, self.opnum)
            body += self.data
        frag_len = _COMMON_HEADER.size + len(body)
        header = _COMMON_HEADER.pack(
            5, 0, self.ptype, 0x03, b"\x10\x00\x00\x00", frag_len, 0, self.call_id
        )
        return header + bytes(body)

    @classmethod
    def decode(cls, data: bytes) -> "DcerpcPdu":
        """Parse one PDU from the start of ``data``."""
        if len(data) < _COMMON_HEADER.size:
            raise ValueError("truncated DCE/RPC header")
        ver, _minor, ptype, _flags, _drep, frag_len, _auth_len, call_id = (
            _COMMON_HEADER.unpack_from(data)
        )
        if ver != 5:
            raise ValueError(f"not DCE/RPC v5 (got {ver})")
        pdu = cls(ptype=ptype, call_id=call_id)
        body = data[_COMMON_HEADER.size : frag_len]
        # Bind body: max_xmit(2) max_recv(2) assoc_group(4) ctx_header(8),
        # then the abstract-syntax interface UUID.
        if ptype in (PDU_BIND, PDU_BIND_ACK) and len(body) >= 16 + 16:
            pdu.interface = uuid.UUID(bytes_le=bytes(body[16 : 16 + 16]))
        elif ptype in (PDU_REQUEST, PDU_RESPONSE, PDU_FAULT) and len(body) >= _REQUEST_EXTRA.size:
            _alloc, _ctx, pdu.opnum = _REQUEST_EXTRA.unpack_from(body)
            pdu.data = bytes(body[_REQUEST_EXTRA.size :])
        return pdu

    @property
    def frag_len(self) -> int:
        """Total encoded length of this PDU."""
        return len(self.encode())


def parse_pdu_stream(stream: bytes) -> list[DcerpcPdu]:
    """Parse a back-to-back sequence of PDUs; stops at truncation."""
    pdus: list[DcerpcPdu] = []
    offset = 0
    while offset + _COMMON_HEADER.size <= len(stream):
        frag_len = struct.unpack_from("<H", stream, offset + 8)[0]
        if frag_len < _COMMON_HEADER.size or offset + frag_len > len(stream):
            break
        try:
            pdus.append(DcerpcPdu.decode(stream[offset : offset + frag_len]))
        except ValueError:
            break
        offset += frag_len
    return pdus


def function_label(interface: uuid.UUID | None, opnum: int) -> str:
    """Map (interface, opnum) to the Table 11 row labels."""
    name = IFACE_NAMES.get(interface, "Other") if interface else "Other"
    if name == "Spoolss":
        if opnum == OP_SPOOLSS_WRITEPRINTER:
            return "Spoolss/WritePrinter"
        return "Spoolss/other"
    if name in ("NetLogon", "LsaRPC"):
        return name
    return "Other"
