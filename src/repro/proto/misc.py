"""Small transaction protocols: NTP, SNMP, DHCP, SrvLoc, SAP, syslog, ident.

These populate the "net-mgnt", "name", and "misc" application categories
whose *connection counts* dominate the traces (Figure 1b) while their byte
volumes stay tiny.  The paper analyzes them only at the category level, so
we implement compact but structurally correct payload builders (correct
lengths, version fields, and ports) rather than full codecs.
"""

from __future__ import annotations

import struct

__all__ = [
    "NTP_PORT",
    "SNMP_PORT",
    "DHCP_SERVER_PORT",
    "DHCP_CLIENT_PORT",
    "SRVLOC_PORT",
    "SAP_PORT",
    "SYSLOG_PORT",
    "IDENT_PORT",
    "build_ntp",
    "build_snmp_get",
    "build_dhcp_discover",
    "build_srvloc_request",
    "build_sap_announce",
    "build_syslog",
]

NTP_PORT = 123
SNMP_PORT = 161
DHCP_SERVER_PORT = 67
DHCP_CLIENT_PORT = 68
SRVLOC_PORT = 427
SAP_PORT = 9875  # Session Announcement Protocol (multicast)
SYSLOG_PORT = 514
IDENT_PORT = 113


def build_ntp(mode: int = 3) -> bytes:
    """A 48-byte NTPv3 packet (mode 3 = client, 4 = server)."""
    first = (0 << 6) | (3 << 3) | mode  # LI=0, VN=3
    return struct.pack("!B", first) + b"\x00" * 47


def build_snmp_get(community: bytes = b"public") -> bytes:
    """A minimal BER-encoded SNMPv1 GetRequest for sysUpTime."""
    oid = bytes([0x06, 0x08, 0x2B, 6, 1, 2, 1, 1, 3, 0])
    varbind = bytes([0x30, len(oid) + 2]) + oid + bytes([0x05, 0x00])
    varbind_list = bytes([0x30, len(varbind)]) + varbind
    pdu_body = (
        bytes([0x02, 0x01, 0x01])  # request-id
        + bytes([0x02, 0x01, 0x00])  # error-status
        + bytes([0x02, 0x01, 0x00])  # error-index
        + varbind_list
    )
    pdu = bytes([0xA0, len(pdu_body)]) + pdu_body
    body = (
        bytes([0x02, 0x01, 0x00])  # version 1
        + bytes([0x04, len(community)])
        + community
        + pdu
    )
    return bytes([0x30, len(body)]) + body


def build_dhcp_discover(client_mac: int, xid: int = 0x12345678) -> bytes:
    """A BOOTP/DHCP DISCOVER message (236-byte fixed part + options)."""
    fixed = struct.pack(
        "!BBBBIHH4s4s4s4s16s64s128s",
        1,  # op: BOOTREQUEST
        1,  # htype: Ethernet
        6,  # hlen
        0,  # hops
        xid,
        0,  # secs
        0x8000,  # flags: broadcast
        b"\x00" * 4,
        b"\x00" * 4,
        b"\x00" * 4,
        b"\x00" * 4,
        client_mac.to_bytes(6, "big") + b"\x00" * 10,
        b"\x00" * 64,
        b"\x00" * 128,
    )
    options = b"\x63\x82\x53\x63"  # magic cookie
    options += bytes([53, 1, 1])  # DHCP message type: DISCOVER
    options += bytes([255])
    return fixed + options


def build_srvloc_request(service_type: str = "service:printer") -> bytes:
    """An SLPv2 service request (RFC 2608 header + service type)."""
    body = struct.pack("!H", 0)  # empty previous-responder list
    body += struct.pack("!H", len(service_type)) + service_type.encode()
    body += struct.pack("!HHH", 0, 0, 0)  # scope, predicate, SPI
    length = 16 + len(body)
    header = struct.pack(
        "!BBBHHBBBBH",
        2,  # version
        1,  # function: SrvRqst
        0,
        length & 0xFFFF,
        0,  # flags
        0,
        0,
        0,  # next-ext offset
        0,
        1,  # xid
    )
    header += struct.pack("!H", 2) + b"en"
    return header + body


def build_sap_announce(session_len: int = 200) -> bytes:
    """A SAP (RFC 2974) announcement wrapping an SDP body."""
    header = struct.pack("!BBH", 0x20, 0, 0)  # v=1, IPv4, no auth
    header += b"\x00" * 4  # originating source
    sdp = (b"v=0\r\no=stream\r\n" + b"a=x" * (session_len // 3))[:session_len]
    return header + b"application/sdp\x00" + sdp


def build_syslog(severity: int, message: str) -> bytes:
    """A classic BSD syslog datagram."""
    priority = (16 << 3) | (severity & 7)  # facility local0
    return f"<{priority}>{message}".encode()
