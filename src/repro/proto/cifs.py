"""SMB/CIFS message format — the Windows-services workhorse of §5.2.1.

The paper finds CIFS traffic intermingled over 139/tcp (layered on
Netbios/SSN) and 445/tcp (direct), used interchangeably, and breaks CIFS
commands into "SMB Basic", "RPC Pipes", "Windows File Sharing", and
"LANMAN" (Table 10).  We implement the SMB1 header and the specific
commands needed to reproduce that breakdown, including the Trans command
that carries DCE/RPC named-pipe traffic and LANMAN management calls.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "SMB_PORT_NBSS",
    "SMB_PORT_DIRECT",
    "CMD_CLOSE",
    "CMD_TRANS",
    "CMD_ECHO",
    "CMD_READ_ANDX",
    "CMD_WRITE_ANDX",
    "CMD_TREE_DISCONNECT",
    "CMD_NEGOTIATE",
    "CMD_SESSION_SETUP_ANDX",
    "CMD_LOGOFF_ANDX",
    "CMD_TREE_CONNECT_ANDX",
    "CMD_NT_CREATE_ANDX",
    "STATUS_SUCCESS",
    "STATUS_ACCESS_DENIED",
    "LANMAN_PIPE",
    "SmbMessage",
    "parse_smb_stream",
    "command_category",
]

SMB_PORT_NBSS = 139
SMB_PORT_DIRECT = 445

CMD_CLOSE = 0x04
CMD_TRANS = 0x25
CMD_ECHO = 0x2B
CMD_READ_ANDX = 0x2E
CMD_WRITE_ANDX = 0x2F
CMD_TREE_DISCONNECT = 0x71
CMD_NEGOTIATE = 0x72
CMD_SESSION_SETUP_ANDX = 0x73
CMD_LOGOFF_ANDX = 0x74
CMD_TREE_CONNECT_ANDX = 0x75
CMD_NT_CREATE_ANDX = 0xA2

STATUS_SUCCESS = 0x00000000
STATUS_ACCESS_DENIED = 0xC0000022

LANMAN_PIPE = "\\PIPE\\LANMAN"

_SMB_MAGIC = b"\xffSMB"
_FLAGS_RESPONSE = 0x80

# protocol(4) command(1) status(4) flags(1) flags2(2) pid_high(2)
# signature(8) reserved(2) tid(2) pid(2) uid(2) mid(2)
_HEADER = struct.Struct("<4sBIBHH8sHHHHH")
SMB_HEADER_LEN = _HEADER.size

_BASIC_COMMANDS = frozenset(
    {
        CMD_NEGOTIATE,
        CMD_SESSION_SETUP_ANDX,
        CMD_LOGOFF_ANDX,
        CMD_TREE_CONNECT_ANDX,
        CMD_TREE_DISCONNECT,
        CMD_NT_CREATE_ANDX,
        CMD_CLOSE,
        CMD_ECHO,
    }
)


@dataclass
class SmbMessage:
    """One SMB1 message.

    ``name`` carries the command-specific string operand: the share path
    for TreeConnect, the created file/pipe name for NTCreate, or the pipe
    name for Trans.  ``data`` carries the opaque command payload (the
    DCE/RPC fragment for Trans on an RPC pipe; file bytes for
    Read/WriteAndX).
    """

    command: int
    is_response: bool = False
    status: int = STATUS_SUCCESS
    tid: int = 0
    uid: int = 0
    mid: int = 0
    name: str = ""
    fid: int = 0
    data: bytes = b""

    def encode(self) -> bytes:
        """Serialize: 32-byte header, then a command-shaped body."""
        flags = _FLAGS_RESPONSE if self.is_response else 0
        header = _HEADER.pack(
            _SMB_MAGIC,
            self.command,
            self.status,
            flags,
            0x0001,  # flags2: long names
            0,
            b"\x00" * 8,
            0,
            self.tid,
            0xFEFF,
            self.uid,
            self.mid,
        )
        body = self._encode_body()
        return header + body

    def _encode_body(self) -> bytes:
        name_bytes = self.name.encode("latin-1")
        if self.command == CMD_TRANS:
            # wct=1 param word holds the fid; data = name + NUL + payload.
            payload = name_bytes + b"\x00" + self.data
            return struct.pack("<BHH", 1, self.fid, len(payload)) + payload
        if self.command in (CMD_READ_ANDX, CMD_WRITE_ANDX):
            return struct.pack("<BHH", 1, self.fid, len(self.data)) + self.data
        if self.command in (CMD_TREE_CONNECT_ANDX, CMD_NT_CREATE_ANDX):
            payload = name_bytes + b"\x00" + self.data
            return struct.pack("<BHH", 1, self.fid, len(payload)) + payload
        # Basic commands: wct=0, optional opaque data.
        return struct.pack("<BH", 0, len(self.data)) + self.data

    @classmethod
    def decode(cls, data: bytes) -> "SmbMessage":
        """Parse one SMB message from ``data`` (a single NBSS payload)."""
        if len(data) < SMB_HEADER_LEN:
            raise ValueError("truncated SMB header")
        (
            magic,
            command,
            status,
            flags,
            _flags2,
            _pid_high,
            _signature,
            _reserved,
            tid,
            _pid,
            uid,
            mid,
        ) = _HEADER.unpack_from(data)
        if magic != _SMB_MAGIC:
            raise ValueError("not an SMB message")
        msg = cls(
            command=command,
            is_response=bool(flags & _FLAGS_RESPONSE),
            status=status,
            tid=tid,
            uid=uid,
            mid=mid,
        )
        msg._decode_body(data[SMB_HEADER_LEN:])
        return msg

    def _decode_body(self, body: bytes) -> None:
        if not body:
            return
        wct = body[0]
        if wct == 1 and len(body) >= 5:
            self.fid, bcc = struct.unpack_from("<HH", body, 1)
            payload = body[5 : 5 + bcc]
            if self.command in (CMD_TRANS, CMD_TREE_CONNECT_ANDX, CMD_NT_CREATE_ANDX):
                name_bytes, _, rest = payload.partition(b"\x00")
                self.name = name_bytes.decode("latin-1")
                self.data = rest
            else:
                self.data = payload
        elif wct == 0 and len(body) >= 3:
            bcc = struct.unpack_from("<H", body, 1)[0]
            self.data = body[3 : 3 + bcc]

    @property
    def is_rpc_pipe(self) -> bool:
        """True for Trans messages on a DCE/RPC named pipe."""
        if self.command != CMD_TRANS:
            return False
        return self.name.upper().startswith("\\PIPE\\") and not self.is_lanman

    @property
    def is_lanman(self) -> bool:
        """True for Trans messages on the LANMAN management pipe."""
        return self.command == CMD_TRANS and self.name.upper() == LANMAN_PIPE

    @property
    def wire_size(self) -> int:
        """The encoded size of this message."""
        return len(self.encode())


def command_category(msg: SmbMessage) -> str:
    """Classify a CIFS message into the Table 10 rows."""
    if msg.command == CMD_TRANS:
        return "LANMAN" if msg.is_lanman else "RPC Pipes"
    if msg.command in (CMD_READ_ANDX, CMD_WRITE_ANDX):
        return "Windows File Sharing"
    if msg.command in _BASIC_COMMANDS:
        return "SMB Basic"
    return "Other"


def parse_smb_stream(payloads: list[bytes]) -> list[SmbMessage]:
    """Parse a sequence of NBSS session-message payloads into SMB messages.

    Payloads that do not start with the SMB magic (e.g. capture-truncated
    fragments) are skipped rather than aborting the whole connection.
    """
    messages: list[SmbMessage] = []
    for payload in payloads:
        try:
            messages.append(SmbMessage.decode(payload))
        except ValueError:
            continue
    return messages
