"""Backup application protocols — §5.2.3, Table 15.

The paper observes three backup systems: Veritas (separate control and
data connections; data flows strictly client → server), Dantz (control
and data multiplexed on one connection, with substantial volume in *both*
directions), and "Connected" (a small service backing up to an external
site).  These are proprietary protocols, so we model a minimal shared
record framing (magic + record type + length) with per-product magic
values — enough structure for an analyzer to identify the product and
measure per-direction volume, which is exactly what Table 15 reports.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "VERITAS_CTRL_PORT",
    "VERITAS_DATA_PORT",
    "DANTZ_PORT",
    "CONNECTED_PORT",
    "REC_CONTROL",
    "REC_DATA",
    "BackupRecord",
    "MAGIC_VERITAS",
    "MAGIC_DANTZ",
    "MAGIC_CONNECTED",
    "parse_backup_stream",
]

VERITAS_CTRL_PORT = 13720  # bprd
VERITAS_DATA_PORT = 13724  # vnetd
DANTZ_PORT = 497  # retrospect
CONNECTED_PORT = 16384

MAGIC_VERITAS = b"VRTS"
MAGIC_DANTZ = b"DNTZ"
MAGIC_CONNECTED = b"CNBK"

REC_CONTROL = 1
REC_DATA = 2

_HEADER = struct.Struct("!4sBI")


@dataclass(frozen=True)
class BackupRecord:
    """One framed backup-protocol record."""

    magic: bytes
    rec_type: int
    payload: bytes = b""

    def encode(self) -> bytes:
        return _HEADER.pack(self.magic, self.rec_type, len(self.payload)) + self.payload

    @classmethod
    def decode(cls, data: bytes) -> tuple["BackupRecord", int]:
        """Parse one record; returns (record, bytes_consumed)."""
        if len(data) < _HEADER.size:
            raise ValueError("truncated backup record header")
        magic, rec_type, length = _HEADER.unpack_from(data)
        if magic not in (MAGIC_VERITAS, MAGIC_DANTZ, MAGIC_CONNECTED):
            raise ValueError(f"unknown backup magic {magic!r}")
        payload = data[_HEADER.size : _HEADER.size + length]
        return cls(magic, rec_type, payload), _HEADER.size + len(payload)


def parse_backup_stream(stream: bytes) -> list[BackupRecord]:
    """Parse one direction of a backup connection into records."""
    records: list[BackupRecord] = []
    offset = 0
    while offset + _HEADER.size <= len(stream):
        try:
            record, consumed = BackupRecord.decode(stream[offset:])
        except ValueError:
            break
        records.append(record)
        offset += consumed
        if len(record.payload) < consumed - _HEADER.size:
            break
    return records
