"""ONC RPC (RFC 1831) framing and NFSv3 (RFC 1813) procedures — §5.2.2.

NFS is one of the two main network file system protocols in the traces
(Tables 12-13, Figures 7-8).  The paper observes it running over both UDP
(90% of host-pairs) and TCP (21%), with dual-mode message sizes (~100 B
control vs ~8 KB read/write) and request mixes dominated by read, write,
and getattr.  We implement RPC call/reply framing (including TCP record
marking), the NFSv3 procedure set, and simple argument/result encodings
that carry the fields the analyses need.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "NFS_PROGRAM",
    "NFS_VERSION",
    "NFS_PORT",
    "PROC_NULL",
    "PROC_GETATTR",
    "PROC_LOOKUP",
    "PROC_ACCESS",
    "PROC_READ",
    "PROC_WRITE",
    "PROC_CREATE",
    "PROC_REMOVE",
    "PROC_READDIR",
    "PROC_FSSTAT",
    "PROC_NAMES",
    "NFS3_OK",
    "NFS3ERR_NOENT",
    "NFS3ERR_ACCES",
    "RpcCall",
    "RpcReply",
    "frame_tcp_record",
    "parse_tcp_records",
    "proc_table_row",
]

NFS_PROGRAM = 100003
NFS_VERSION = 3
NFS_PORT = 2049

PROC_NULL = 0
PROC_GETATTR = 1
PROC_LOOKUP = 3
PROC_ACCESS = 4
PROC_READ = 6
PROC_WRITE = 7
PROC_CREATE = 8
PROC_REMOVE = 12
PROC_READDIR = 16
PROC_FSSTAT = 18

PROC_NAMES = {
    PROC_NULL: "Null",
    PROC_GETATTR: "GetAttr",
    PROC_LOOKUP: "LookUp",
    PROC_ACCESS: "Access",
    PROC_READ: "Read",
    PROC_WRITE: "Write",
    PROC_CREATE: "Create",
    PROC_REMOVE: "Remove",
    PROC_READDIR: "ReadDir",
    PROC_FSSTAT: "FsStat",
}

NFS3_OK = 0
NFS3ERR_NOENT = 2
NFS3ERR_ACCES = 13

_CALL_MSG = 0
_REPLY_MSG = 1

_FHANDLE = b"\xab" * 32  # opaque 32-byte file handle placeholder
_ATTR_BLOB = b"\x00" * 84  # fattr3 is 84 bytes on the wire


@dataclass
class RpcCall:
    """An ONC RPC call carrying an NFSv3 procedure.

    ``data`` holds write payload bytes for WRITE calls; name-bearing
    calls (LOOKUP/CREATE/REMOVE) put the object name in ``name``.
    """

    xid: int
    proc: int
    name: str = ""
    offset: int = 0
    count: int = 0
    data: bytes = b""
    program: int = NFS_PROGRAM
    version: int = NFS_VERSION

    def encode(self) -> bytes:
        """Serialize call header + procedure arguments."""
        header = struct.pack(
            "!IIIIII", self.xid, _CALL_MSG, 2, self.program, self.version, self.proc
        )
        # AUTH_UNIX credential (empty machine name) + AUTH_NONE verifier.
        cred_body = struct.pack("!II", 0, 0) + struct.pack("!III", 0, 0, 0)
        header += struct.pack("!II", 1, len(cred_body)) + cred_body
        header += struct.pack("!II", 0, 0)
        return header + self._encode_args()

    def _encode_args(self) -> bytes:
        args = struct.pack("!I", len(_FHANDLE)) + _FHANDLE
        if self.proc in (PROC_LOOKUP, PROC_CREATE, PROC_REMOVE):
            name_bytes = self.name.encode()
            pad = (4 - len(name_bytes) % 4) % 4
            args += struct.pack("!I", len(name_bytes)) + name_bytes + b"\x00" * pad
        elif self.proc == PROC_READ:
            args += struct.pack("!QI", self.offset, self.count)
        elif self.proc == PROC_WRITE:
            pad = (4 - len(self.data) % 4) % 4
            args += struct.pack("!QII", self.offset, len(self.data), 0)
            args += struct.pack("!I", len(self.data)) + self.data + b"\x00" * pad
        elif self.proc == PROC_ACCESS:
            args += struct.pack("!I", 0x3F)
        return args

    @classmethod
    def decode(cls, data: bytes) -> "RpcCall":
        """Parse a call message; tolerates truncated argument bodies."""
        if len(data) < 24:
            raise ValueError("truncated RPC call header")
        xid, msg_type, rpc_vers, program, version, proc = struct.unpack_from("!IIIIII", data)
        if msg_type != _CALL_MSG:
            raise ValueError("not an RPC call")
        if rpc_vers != 2:
            raise ValueError(f"unsupported RPC version {rpc_vers}")
        call = cls(xid=xid, proc=proc, program=program, version=version)
        offset = 24
        # Skip credential and verifier.
        for _ in range(2):
            if offset + 8 > len(data):
                return call
            _flavor, length = struct.unpack_from("!II", data, offset)
            offset += 8 + length + (4 - length % 4) % 4
        call._decode_args(data[offset:])
        return call

    def _decode_args(self, args: bytes) -> None:
        if len(args) < 4:
            return
        fh_len = struct.unpack_from("!I", args)[0]
        offset = 4 + fh_len
        if self.proc in (PROC_LOOKUP, PROC_CREATE, PROC_REMOVE):
            if offset + 4 <= len(args):
                name_len = struct.unpack_from("!I", args, offset)[0]
                self.name = args[offset + 4 : offset + 4 + name_len].decode(
                    "latin-1", "replace"
                )
        elif self.proc == PROC_READ and offset + 12 <= len(args):
            self.offset, self.count = struct.unpack_from("!QI", args, offset)
        elif self.proc == PROC_WRITE and offset + 16 <= len(args):
            self.offset, count, _stable = struct.unpack_from("!QII", args, offset)
            self.count = count
            data_off = offset + 20
            self.data = args[data_off : data_off + count]


@dataclass
class RpcReply:
    """An ONC RPC accepted reply carrying NFSv3 results."""

    xid: int
    proc: int = PROC_NULL  # replies do not carry the proc; set by matching
    status: int = NFS3_OK
    data: bytes = b""

    def encode(self) -> bytes:
        """Serialize reply header + procedure results."""
        header = struct.pack("!II", self.xid, _REPLY_MSG)
        header += struct.pack("!I", 0)  # MSG_ACCEPTED
        header += struct.pack("!II", 0, 0)  # AUTH_NONE verifier
        header += struct.pack("!I", 0)  # SUCCESS accept state
        body = struct.pack("!I", self.status)
        if self.status == NFS3_OK:
            if self.proc == PROC_READ:
                pad = (4 - len(self.data) % 4) % 4
                body += _ATTR_BLOB + struct.pack("!III", len(self.data), 1, len(self.data))
                body += self.data + b"\x00" * pad
            elif self.proc == PROC_WRITE:
                body += _ATTR_BLOB + struct.pack("!II", len(self.data), 0)
            elif self.proc in (PROC_GETATTR, PROC_LOOKUP, PROC_ACCESS):
                body += _ATTR_BLOB
        return header + body

    @classmethod
    def decode(cls, data: bytes) -> "RpcReply":
        """Parse a reply message (status only; results stay opaque)."""
        if len(data) < 8:
            raise ValueError("truncated RPC reply header")
        xid, msg_type = struct.unpack_from("!II", data)
        if msg_type != _REPLY_MSG:
            raise ValueError("not an RPC reply")
        reply = cls(xid=xid)
        # xid(4) type(4) reply_stat(4) verf(8) accept_stat(4), then the
        # NFS status starts the procedure results at offset 24.
        if len(data) >= 28:
            reply.status = struct.unpack_from("!I", data, 24)[0]
            reply.data = data[28:]
        return reply


def frame_tcp_record(message: bytes) -> bytes:
    """Apply RPC record marking (RFC 1831 §10) for TCP transport."""
    return struct.pack("!I", 0x80000000 | len(message)) + message


def parse_tcp_records(stream: bytes) -> list[bytes]:
    """Split a TCP byte stream into RPC record payloads."""
    records: list[bytes] = []
    offset = 0
    while offset + 4 <= len(stream):
        marker = struct.unpack_from("!I", stream, offset)[0]
        length = marker & 0x7FFFFFFF
        offset += 4
        payload = stream[offset : offset + length]
        records.append(payload)
        if len(payload) < length:
            break
        offset += length
    return records


def proc_table_row(proc: int) -> str:
    """Map an NFS procedure to its Table 13 row label."""
    label = PROC_NAMES.get(proc, "Other")
    if label in ("Read", "Write", "GetAttr", "LookUp", "Access"):
        return label
    return "Other"
