"""DNS wire format (RFC 1035) — queries, responses, and name compression.

Name-service traffic dominates connection counts in every dataset (45-65%
of connections, §3) and §5.1.3 analyzes DNS request types (A/AAAA/PTR/MX),
return codes (NOERROR vs NXDOMAIN), and latency.  The Netbios Name Service
reuses this header layout with its own name encoding (see
:mod:`repro.proto.netbios`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

__all__ = [
    "QTYPE_A",
    "QTYPE_NS",
    "QTYPE_PTR",
    "QTYPE_MX",
    "QTYPE_TXT",
    "QTYPE_AAAA",
    "QTYPE_NB",
    "RCODE_NOERROR",
    "RCODE_FORMERR",
    "RCODE_SERVFAIL",
    "RCODE_NXDOMAIN",
    "QTYPE_NAMES",
    "DnsQuestion",
    "DnsRecord",
    "DnsMessage",
    "encode_name",
    "decode_name",
]

QTYPE_A = 1
QTYPE_NS = 2
QTYPE_PTR = 12
QTYPE_MX = 15
QTYPE_TXT = 16
QTYPE_AAAA = 28
QTYPE_NB = 32  # Netbios general name service

RCODE_NOERROR = 0
RCODE_FORMERR = 1
RCODE_SERVFAIL = 2
RCODE_NXDOMAIN = 3

QTYPE_NAMES = {
    QTYPE_A: "A",
    QTYPE_NS: "NS",
    QTYPE_PTR: "PTR",
    QTYPE_MX: "MX",
    QTYPE_TXT: "TXT",
    QTYPE_AAAA: "AAAA",
    QTYPE_NB: "NB",
}

_HEADER = struct.Struct("!HHHHHH")


def encode_name(name: str) -> bytes:
    """Encode a dotted domain name as DNS labels (no compression)."""
    out = bytearray()
    for label in name.rstrip(".").split("."):
        if not label:
            continue
        encoded = label.encode("ascii")
        if len(encoded) > 63:
            raise ValueError(f"label too long: {label!r}")
        out.append(len(encoded))
        out += encoded
    out.append(0)
    return bytes(out)


def decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a possibly-compressed name; returns (name, next_offset)."""
    labels: list[str] = []
    jumped = False
    next_offset = offset
    seen: set[int] = set()
    while True:
        if offset >= len(data):
            raise ValueError("name runs past end of message")
        length = data[offset]
        if length & 0xC0 == 0xC0:  # compression pointer
            if offset + 1 >= len(data):
                raise ValueError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if pointer in seen:
                raise ValueError("compression pointer loop")
            seen.add(pointer)
            if not jumped:
                next_offset = offset + 2
                jumped = True
            offset = pointer
            continue
        if length == 0:
            if not jumped:
                next_offset = offset + 1
            break
        offset += 1
        if offset + length > len(data):
            raise ValueError("label runs past end of message")
        labels.append(data[offset : offset + length].decode("ascii", "replace"))
        offset += length
    return ".".join(labels), next_offset


@dataclass(frozen=True)
class DnsQuestion:
    """One entry of the question section."""

    name: str
    qtype: int
    qclass: int = 1  # IN

    def encode(self) -> bytes:
        return encode_name(self.name) + struct.pack("!HH", self.qtype, self.qclass)


@dataclass(frozen=True)
class DnsRecord:
    """One resource record (answer/authority/additional)."""

    name: str
    rtype: int
    rdata: bytes
    ttl: int = 3600
    rclass: int = 1

    def encode(self) -> bytes:
        return (
            encode_name(self.name)
            + struct.pack("!HHIH", self.rtype, self.rclass, self.ttl, len(self.rdata))
            + self.rdata
        )


@dataclass
class DnsMessage:
    """A complete DNS message."""

    ident: int
    is_response: bool = False
    opcode: int = 0
    rcode: int = RCODE_NOERROR
    recursion_desired: bool = True
    questions: list[DnsQuestion] = field(default_factory=list)
    answers: list[DnsRecord] = field(default_factory=list)
    authority: list[DnsRecord] = field(default_factory=list)
    additional: list[DnsRecord] = field(default_factory=list)

    def encode(self) -> bytes:
        """Serialize (names uncompressed)."""
        flags = 0
        if self.is_response:
            flags |= 0x8000
        flags |= (self.opcode & 0xF) << 11
        if self.recursion_desired:
            flags |= 0x0100
        flags |= self.rcode & 0xF
        out = bytearray(
            _HEADER.pack(
                self.ident,
                flags,
                len(self.questions),
                len(self.answers),
                len(self.authority),
                len(self.additional),
            )
        )
        for question in self.questions:
            out += question.encode()
        for section in (self.answers, self.authority, self.additional):
            for record in section:
                out += record.encode()
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "DnsMessage":
        """Parse a DNS message (handles compressed names)."""
        if len(data) < _HEADER.size:
            raise ValueError("truncated DNS header")
        ident, flags, qd, an, ns, ar = _HEADER.unpack_from(data)
        msg = cls(
            ident=ident,
            is_response=bool(flags & 0x8000),
            opcode=(flags >> 11) & 0xF,
            rcode=flags & 0xF,
            recursion_desired=bool(flags & 0x0100),
        )
        offset = _HEADER.size
        for _ in range(qd):
            name, offset = decode_name(data, offset)
            if offset + 4 > len(data):
                raise ValueError("truncated question")
            qtype, qclass = struct.unpack_from("!HH", data, offset)
            offset += 4
            msg.questions.append(DnsQuestion(name=name, qtype=qtype, qclass=qclass))
        for count, section in ((an, msg.answers), (ns, msg.authority), (ar, msg.additional)):
            for _ in range(count):
                name, offset = decode_name(data, offset)
                if offset + 10 > len(data):
                    raise ValueError("truncated resource record")
                rtype, rclass, ttl, rdlen = struct.unpack_from("!HHIH", data, offset)
                offset += 10
                if offset + rdlen > len(data):
                    raise ValueError("truncated rdata")
                section.append(
                    DnsRecord(
                        name=name,
                        rtype=rtype,
                        rclass=rclass,
                        ttl=ttl,
                        rdata=data[offset : offset + rdlen],
                    )
                )
                offset += rdlen
        return msg

    @property
    def qtype_name(self) -> str:
        """The first question's type as a string, or "?"."""
        if not self.questions:
            return "?"
        return QTYPE_NAMES.get(self.questions[0].qtype, str(self.questions[0].qtype))
