"""HTTP/1.1 message building and parsing (§5.1.1 of the paper).

The generator builds request/response byte streams with realistic headers
(conditional GETs, content types, status codes); the HTTP analyzer parses
the reassembled connection streams back into
:class:`HttpRequest`/:class:`HttpResponse` sequences to reproduce Tables
6-7 and Figures 3-4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "build_request",
    "build_response",
    "parse_requests",
    "parse_responses",
    "CONDITIONAL_HEADERS",
]

CONDITIONAL_HEADERS = (
    "if-modified-since",
    "if-none-match",
    "if-unmodified-since",
    "if-match",
    "if-range",
)

_CRLF = b"\r\n"
_HEADER_END = b"\r\n\r\n"


@dataclass
class HttpRequest:
    """A parsed HTTP request."""

    method: str
    uri: str
    version: str = "HTTP/1.1"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def is_conditional(self) -> bool:
        """True when the request carries any conditional header (RFC 2616)."""
        return any(name in self.headers for name in CONDITIONAL_HEADERS)

    @property
    def host(self) -> str:
        """The Host header, or empty string."""
        return self.headers.get("host", "")

    @property
    def user_agent(self) -> str:
        """The User-Agent header, or empty string."""
        return self.headers.get("user-agent", "")


@dataclass
class HttpResponse:
    """A parsed HTTP response."""

    status: int
    reason: str = ""
    version: str = "HTTP/1.1"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    body_len: int = -1  # Content-Length when body was capture-truncated

    @property
    def content_type(self) -> str:
        """The media type without parameters, e.g. ``"image/gif"``."""
        value = self.headers.get("content-type", "")
        return value.split(";")[0].strip().lower()

    @property
    def content_category(self) -> str:
        """The top-level type (text/image/application/other) as in Table 7."""
        ctype = self.content_type
        top = ctype.split("/")[0] if ctype else ""
        if top in ("text", "image", "application"):
            return top
        return "other"

    @property
    def body_size(self) -> int:
        """The response body size on the wire (Content-Length if truncated)."""
        if self.body_len >= 0:
            return self.body_len
        return len(self.body)


def build_request(
    method: str,
    uri: str,
    host: str,
    headers: dict[str, str] | None = None,
    body: bytes = b"",
    user_agent: str = "Mozilla/4.0",
) -> bytes:
    """Serialize an HTTP/1.1 request."""
    lines = [f"{method} {uri} HTTP/1.1".encode()]
    all_headers = {"Host": host, "User-Agent": user_agent}
    if body:
        all_headers["Content-Length"] = str(len(body))
    if headers:
        all_headers.update(headers)
    for name, value in all_headers.items():
        lines.append(f"{name}: {value}".encode())
    return _CRLF.join(lines) + _HEADER_END + body


def build_response(
    status: int,
    reason: str,
    content_type: str = "",
    body: bytes = b"",
    headers: dict[str, str] | None = None,
    chunked: bool = False,
    chunk_size: int = 4096,
) -> bytes:
    """Serialize an HTTP/1.1 response.

    With ``chunked`` the body uses Transfer-Encoding: chunked framing
    (common for dynamically generated pages in the trace era) instead of
    an explicit Content-Length.
    """
    lines = [f"HTTP/1.1 {status} {reason}".encode()]
    all_headers: dict[str, str] = {"Server": "Apache"}
    if chunked:
        all_headers["Transfer-Encoding"] = "chunked"
    else:
        all_headers["Content-Length"] = str(len(body))
    if content_type:
        all_headers["Content-Type"] = content_type
    if headers:
        all_headers.update(headers)
    for name, value in all_headers.items():
        lines.append(f"{name}: {value}".encode())
    head = _CRLF.join(lines) + _HEADER_END
    if not chunked:
        return head + body
    out = bytearray(head)
    for offset in range(0, len(body), chunk_size):
        chunk = body[offset : offset + chunk_size]
        out += f"{len(chunk):x}".encode() + _CRLF + chunk + _CRLF
    out += b"0" + _CRLF + _CRLF
    return bytes(out)


def _consume_chunked(stream: bytes) -> tuple[bytes, int, bool]:
    """Decode a chunked body from ``stream``'s head.

    Returns (body, bytes_consumed, complete).  An incomplete final chunk
    (capture truncation) yields what was recovered with complete=False.
    """
    body = bytearray()
    offset = 0
    while True:
        line_end = stream.find(_CRLF, offset)
        if line_end < 0:
            return bytes(body), offset, False
        size_text = stream[offset:line_end].split(b";")[0].strip()
        try:
            size = int(size_text, 16)
        except ValueError:
            return bytes(body), offset, False
        offset = line_end + 2
        if size == 0:
            # Trailer section: skip to the blank line.
            trailer_end = stream.find(_CRLF, offset)
            if trailer_end == offset:
                return bytes(body), offset + 2, True
            if trailer_end < 0:
                return bytes(body), offset, False
            end = stream.find(_HEADER_END, offset)
            if end < 0:
                return bytes(body), offset, False
            return bytes(body), end + len(_HEADER_END), True
        chunk = stream[offset : offset + size]
        body += chunk
        if len(chunk) < size:
            return bytes(body), offset + len(chunk), False
        offset += size + 2  # skip the chunk's trailing CRLF


def _parse_headers(block: bytes) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in block.split(_CRLF):
        name, sep, value = line.partition(b":")
        if not sep:
            continue
        try:
            headers[name.decode("latin-1").strip().lower()] = value.decode(
                "latin-1"
            ).strip()
        except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
            continue
    return headers


def _split_message(stream: bytes) -> tuple[bytes, bytes, bytes] | None:
    """Split ``stream`` into (start_line, header_block, rest_after_headers).

    Returns ``None`` when no complete header section is present yet.
    """
    end = stream.find(_HEADER_END)
    if end < 0:
        return None
    head = stream[:end]
    first, sep, header_block = head.partition(_CRLF)
    if not sep:
        header_block = b""
    return first, header_block, stream[end + len(_HEADER_END) :]


def parse_requests(stream: bytes, truncated: bool = False) -> list[HttpRequest]:
    """Parse a client-side connection byte stream into requests.

    Handles persistent connections (multiple pipelined messages).  With
    ``truncated`` set (snaplen-limited captures), bodies may be shorter
    than their Content-Length; parsing then consumes what is present.
    """
    requests: list[HttpRequest] = []
    rest = stream
    while rest:
        split = _split_message(rest)
        if split is None:
            break
        first, header_block, rest = split
        parts = first.decode("latin-1", "replace").split(" ", 2)
        if len(parts) < 2 or not parts[0].isalpha():
            break
        method = parts[0].upper()
        uri = parts[1] if len(parts) > 1 else "/"
        version = parts[2] if len(parts) > 2 else "HTTP/1.0"
        headers = _parse_headers(header_block)
        length = int(headers.get("content-length", "0") or 0)
        body = rest[:length]
        rest = rest[min(length, len(rest)) :]
        requests.append(
            HttpRequest(method=method, uri=uri, version=version, headers=headers, body=body)
        )
        if len(body) < length and not truncated:
            break
    return requests


def parse_responses(stream: bytes, truncated: bool = False) -> list[HttpResponse]:
    """Parse a server-side connection byte stream into responses.

    ``body_len`` records the advertised Content-Length whenever the
    captured body falls short of it, so size analyses (Figure 4) remain
    correct for header-only captures.
    """
    responses: list[HttpResponse] = []
    rest = stream
    while rest:
        split = _split_message(rest)
        if split is None:
            break
        first, header_block, rest = split
        parts = first.decode("latin-1", "replace").split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            break
        try:
            status = int(parts[1])
        except ValueError:
            break
        reason = parts[2] if len(parts) > 2 else ""
        headers = _parse_headers(header_block)
        if headers.get("transfer-encoding", "").lower() == "chunked":
            body, consumed, complete = _consume_chunked(rest)
            rest = rest[consumed:]
            responses.append(
                HttpResponse(
                    status=status,
                    reason=reason,
                    version=parts[0],
                    headers=headers,
                    body=body,
                )
            )
            if not complete and not truncated:
                break
            continue
        length = int(headers.get("content-length", "0") or 0)
        body = rest[:length]
        rest = rest[min(length, len(rest)) :]
        body_len = length if len(body) < length else -1
        responses.append(
            HttpResponse(
                status=status,
                reason=reason,
                version=parts[0],
                headers=headers,
                body=body,
                body_len=body_len,
            )
        )
        if len(body) < length and not truncated:
            break
    return responses
