"""Application-layer protocol message encoding and decoding.

Each module implements the wire format for one protocol family the paper
analyzes; the generator uses the builders, the analysis engine uses the
parsers, and nothing is shared between the two except these formats.
"""

from . import backupproto, cifs, dcerpc, dns, http, imap, misc, ncp, netbios, nfs, smtp, tls

__all__ = [
    "backupproto",
    "cifs",
    "dcerpc",
    "dns",
    "http",
    "imap",
    "misc",
    "ncp",
    "netbios",
    "nfs",
    "smtp",
    "tls",
]
