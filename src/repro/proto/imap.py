"""IMAP4 dialogue building and parsing (RFC 3501) — §5.1.2.

Cleartext IMAP4 appears mainly in D0 (before LBNL's policy change forced
IMAP over SSL, Table 8).  The generator emits tagged command dialogues
(LOGIN/SELECT/FETCH polling/LOGOUT); the analyzer recovers command
counts and fetched-message volume.  IMAP/S sessions instead use the TLS
layer in :mod:`repro.proto.tls` and are analyzed at the transport level,
as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ImapSession", "build_client_stream", "build_server_stream", "parse_session"]

_CRLF = b"\r\n"


@dataclass
class ImapSession:
    """A parsed IMAP session: commands issued and data volume fetched."""

    commands: list[str] = field(default_factory=list)
    fetched_bytes: int = 0
    logged_in: bool = False
    logout_seen: bool = False

    @property
    def poll_count(self) -> int:
        """Number of NOOP/CHECK polls (IMAP clients poll every ~10 min)."""
        return sum(1 for cmd in self.commands if cmd in ("NOOP", "CHECK"))


def build_client_stream(
    user: str,
    polls: int,
    fetches: int,
) -> bytes:
    """Serialize the client half: login, select, polls, fetches, logout."""
    tag = 0

    def next_tag() -> str:
        nonlocal tag
        tag += 1
        return f"a{tag:04d}"

    lines = [
        f"{next_tag()} LOGIN {user} ******".encode(),
        f"{next_tag()} SELECT INBOX".encode(),
    ]
    for _ in range(polls):
        lines.append(f"{next_tag()} NOOP".encode())
    for i in range(fetches):
        lines.append(f"{next_tag()} FETCH {i + 1} (RFC822)".encode())
    lines.append(f"{next_tag()} LOGOUT".encode())
    return _CRLF.join(lines) + _CRLF


def build_server_stream(
    message_sizes: list[int],
    exists: int | None = None,
) -> bytes:
    """Serialize the server half, including FETCH literals.

    ``message_sizes`` gives the RFC822 literal size for each FETCH the
    client issued; fetched message bodies are filled with a repeating
    pattern (contents never matter to the analyses).
    """
    out = bytearray(b"* OK IMAP4rev1 ready" + _CRLF)
    out += b"a0001 OK LOGIN completed" + _CRLF
    count = exists if exists is not None else len(message_sizes)
    out += f"* {count} EXISTS".encode() + _CRLF
    out += b"a0002 OK SELECT completed" + _CRLF
    for index, size in enumerate(message_sizes):
        literal = (b"x" * size)[:size]
        out += f"* {index + 1} FETCH (RFC822 {{{size}}}".encode() + _CRLF
        out += literal + b")" + _CRLF
        out += f"a{index + 3:04d} OK FETCH completed".encode() + _CRLF
    out += b"* BYE logging out" + _CRLF
    return bytes(out)


def parse_session(client_stream: bytes, server_stream: bytes) -> ImapSession:
    """Recover an :class:`ImapSession` from the two connection halves."""
    session = ImapSession()
    for raw_line in client_stream.split(_CRLF):
        line = raw_line.decode("latin-1", "replace")
        parts = line.split(" ", 2)
        if len(parts) < 2 or not parts[0]:
            continue
        command = parts[1].upper()
        session.commands.append(command)
        if command == "LOGOUT":
            session.logout_seen = True
    # Walk the server stream counting FETCH literal bytes; literals are
    # announced as {N} at the end of an untagged FETCH line.
    rest = server_stream
    while rest:
        line, sep, rest = rest.partition(_CRLF)
        if not sep:
            break
        text = line.decode("latin-1", "replace")
        if text.startswith("a0001 OK LOGIN"):
            session.logged_in = True
        if text.startswith("*") and "FETCH" in text and text.endswith("}"):
            brace = text.rfind("{")
            if brace < 0:
                continue
            try:
                size = int(text[brace + 1 : -1])
            except ValueError:
                continue
            session.fetched_bytes += size
            rest = rest[min(size, len(rest)) :]  # skip the literal body
    return session
