"""NCP (NetWare Core Protocol) over TCP — §5.2.2.

NCP is "a veritable kitchen-sink protocol supporting hundreds of message
types, but primarily used within the enterprise for file-sharing and
print service" (paper, footnote 3).  We implement the NCP-over-IP framing
(RFC-less, but standard: a 'DmdT' signature header) plus the request and
reply message formats, covering the function groups Table 14 breaks out:
read, write, file/dir info, open/close, file size, search, and NDS
directory service.  Requests carry 14-byte read headers and replies carry
the 2-byte completion-code-only mode the paper highlights in Figure 8.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "NCP_PORT",
    "NCP_REQUEST",
    "NCP_REPLY",
    "FUNC_CLOSE_FILE",
    "FUNC_FILE_SEARCH",
    "FUNC_FILE_DIR_INFO",
    "FUNC_OPEN_FILE",
    "FUNC_FILE_SIZE",
    "FUNC_READ_FILE",
    "FUNC_WRITE_FILE",
    "FUNC_DIRECTORY_SERVICE",
    "FUNC_TABLE_ROWS",
    "NcpRequest",
    "NcpReply",
    "frame_ncp_ip",
    "parse_ncp_ip_stream",
    "function_table_row",
]

NCP_PORT = 524

NCP_REQUEST = 0x2222
NCP_REPLY = 0x3333

# Function codes (classic NetWare function numbers where they exist).
FUNC_FILE_SEARCH = 62
FUNC_OPEN_FILE = 66
FUNC_CLOSE_FILE = 66 + 200  # distinguished pseudo-code; NetWare reuses 66
FUNC_FILE_SIZE = 71
FUNC_READ_FILE = 72
FUNC_WRITE_FILE = 73
FUNC_FILE_DIR_INFO = 87
FUNC_DIRECTORY_SERVICE = 104

FUNC_TABLE_ROWS = {
    FUNC_READ_FILE: "Read",
    FUNC_WRITE_FILE: "Write",
    FUNC_FILE_DIR_INFO: "FileDirInfo",
    FUNC_OPEN_FILE: "File Open/Close",
    FUNC_CLOSE_FILE: "File Open/Close",
    FUNC_FILE_SIZE: "File Size",
    FUNC_FILE_SEARCH: "File Search",
    FUNC_DIRECTORY_SERVICE: "Directory Service",
}

_NCPIP_SIGNATURE = b"DmdT"
_NCPIP_HEADER = struct.Struct("!4sI")
# type(2) sequence(1) connection_low(1) task(1) connection_high(1)
_REQ_HEADER = struct.Struct("!HBBBBBB")  # + function, subfunction
_REP_HEADER = struct.Struct("!HBBBBBB")  # + completion code, status


@dataclass
class NcpRequest:
    """An NCP request message."""

    sequence: int
    function: int
    subfunction: int = 0
    connection: int = 1
    data: bytes = b""

    def encode(self) -> bytes:
        """Serialize the request (read requests are 14 bytes, Figure 8c)."""
        function = self.function
        subfunction = self.subfunction
        if function == FUNC_CLOSE_FILE:
            function, subfunction = FUNC_OPEN_FILE, 1
        header = _REQ_HEADER.pack(
            NCP_REQUEST,
            self.sequence & 0xFF,
            self.connection & 0xFF,
            1,  # task
            (self.connection >> 8) & 0xFF,
            function,
            subfunction,
        )
        return header + self.data

    @classmethod
    def decode(cls, data: bytes) -> "NcpRequest":
        """Parse a request; raises ValueError when not an NCP request."""
        if len(data) < _REQ_HEADER.size:
            raise ValueError("truncated NCP request")
        (ncp_type, sequence, conn_low, _task, conn_high, function, subfunction) = (
            _REQ_HEADER.unpack_from(data)
        )
        if ncp_type != NCP_REQUEST:
            raise ValueError(f"not an NCP request (type {ncp_type:#06x})")
        if function == FUNC_OPEN_FILE and subfunction == 1:
            function, subfunction = FUNC_CLOSE_FILE, 0
        return cls(
            sequence=sequence,
            function=function,
            subfunction=subfunction,
            connection=(conn_high << 8) | conn_low,
            data=data[_REQ_HEADER.size :],
        )


@dataclass
class NcpReply:
    """An NCP reply message.

    A bare completion-code reply encodes to the 2-byte-payload mode the
    paper calls out; GetFileCurrentSize replies carry 10 bytes, and read
    replies carry file data.
    """

    sequence: int
    completion_code: int = 0
    connection: int = 1
    data: bytes = b""

    def encode(self) -> bytes:
        header = _REP_HEADER.pack(
            NCP_REPLY,
            self.sequence & 0xFF,
            self.connection & 0xFF,
            1,
            (self.connection >> 8) & 0xFF,
            self.completion_code,
            0,  # connection status
        )
        return header + self.data

    @classmethod
    def decode(cls, data: bytes) -> "NcpReply":
        """Parse a reply; raises ValueError when not an NCP reply."""
        if len(data) < _REP_HEADER.size:
            raise ValueError("truncated NCP reply")
        (ncp_type, sequence, conn_low, _task, conn_high, completion, _status) = (
            _REP_HEADER.unpack_from(data)
        )
        if ncp_type != NCP_REPLY:
            raise ValueError(f"not an NCP reply (type {ncp_type:#06x})")
        return cls(
            sequence=sequence,
            completion_code=completion,
            connection=(conn_high << 8) | conn_low,
            data=data[_REP_HEADER.size :],
        )

    @property
    def succeeded(self) -> bool:
        """True when the completion code signals success."""
        return self.completion_code == 0


def frame_ncp_ip(message: bytes) -> bytes:
    """Apply NCP-over-IP framing: 'DmdT' signature + total length."""
    return _NCPIP_HEADER.pack(_NCPIP_SIGNATURE, _NCPIP_HEADER.size + len(message)) + message


def parse_ncp_ip_stream(stream: bytes) -> list[bytes]:
    """Split one direction of a 524/tcp connection into NCP messages."""
    messages: list[bytes] = []
    offset = 0
    while offset + _NCPIP_HEADER.size <= len(stream):
        signature, total = _NCPIP_HEADER.unpack_from(stream, offset)
        if signature != _NCPIP_SIGNATURE or total < _NCPIP_HEADER.size:
            break
        payload = stream[offset + _NCPIP_HEADER.size : offset + total]
        messages.append(payload)
        if len(payload) < total - _NCPIP_HEADER.size:
            break
        offset += total
    return messages


def function_table_row(function: int) -> str:
    """Map an NCP function to its Table 14 row label."""
    return FUNC_TABLE_ROWS.get(function, "Other")
