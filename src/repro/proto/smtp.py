"""SMTP dialogue building and parsing (RFC 2821) — §5.1.2.

SMTP is one of the two dominant email protocols in the traces (Table 8).
The generator emits full command/reply dialogues carrying a message body;
the email analyzer recovers envelope counts, message sizes, and the
success/failure of the transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SmtpDialogue", "build_client_stream", "build_server_stream", "parse_dialogue"]

_CRLF = b"\r\n"


@dataclass
class SmtpDialogue:
    """One SMTP transaction as seen on a connection.

    ``message_size`` is the DATA payload length in bytes; ``accepted``
    reflects whether the server's final reply to DATA was 250.
    """

    client_helo: str = ""
    mail_from: str = ""
    rcpt_to: list[str] = field(default_factory=list)
    message_size: int = 0
    accepted: bool = False
    quit_seen: bool = False


def build_client_stream(
    helo: str,
    mail_from: str,
    rcpt_to: list[str],
    message: bytes,
) -> bytes:
    """Serialize the client half of an SMTP transaction."""
    lines = [f"EHLO {helo}".encode(), f"MAIL FROM:<{mail_from}>".encode()]
    for rcpt in rcpt_to:
        lines.append(f"RCPT TO:<{rcpt}>".encode())
    lines.append(b"DATA")
    out = _CRLF.join(lines) + _CRLF
    out += message
    if not message.endswith(_CRLF):
        out += _CRLF
    out += b"." + _CRLF + b"QUIT" + _CRLF
    return out


def build_server_stream(
    banner_host: str,
    num_rcpt: int,
    accept: bool = True,
) -> bytes:
    """Serialize the server half of an SMTP transaction."""
    lines = [
        f"220 {banner_host} ESMTP".encode(),
        f"250 {banner_host} Hello".encode(),
        b"250 2.1.0 Ok",  # MAIL FROM
    ]
    for _ in range(num_rcpt):
        lines.append(b"250 2.1.5 Ok")
    lines.append(b"354 End data with <CR><LF>.<CR><LF>")
    if accept:
        lines.append(b"250 2.0.0 Ok: queued")
    else:
        lines.append(b"554 5.7.1 Rejected")
    lines.append(b"221 2.0.0 Bye")
    return _CRLF.join(lines) + _CRLF


def parse_dialogue(client_stream: bytes, server_stream: bytes) -> SmtpDialogue:
    """Recover an :class:`SmtpDialogue` from the two connection halves.

    Tolerates truncated streams (header-only captures yield empty or
    partial dialogues rather than errors).
    """
    dialogue = SmtpDialogue()
    in_data = False
    data_bytes = 0
    for raw_line in client_stream.split(_CRLF):
        if in_data:
            if raw_line == b".":
                in_data = False
                continue
            data_bytes += len(raw_line) + 2
            continue
        line = raw_line.decode("latin-1", "replace")
        upper = line.upper()
        if upper.startswith(("EHLO ", "HELO ")):
            dialogue.client_helo = line[5:].strip()
        elif upper.startswith("MAIL FROM:"):
            dialogue.mail_from = line[10:].strip().strip("<>")
        elif upper.startswith("RCPT TO:"):
            dialogue.rcpt_to.append(line[8:].strip().strip("<>"))
        elif upper == "DATA":
            in_data = True
        elif upper == "QUIT":
            dialogue.quit_seen = True
    dialogue.message_size = data_bytes
    # The reply that matters for acceptance is the one following the
    # 354 go-ahead; scan the server stream for it.
    saw_354 = False
    for raw_line in server_stream.split(_CRLF):
        line = raw_line.decode("latin-1", "replace")
        if line.startswith("354"):
            saw_354 = True
        elif saw_354 and line[:3].isdigit():
            dialogue.accepted = line.startswith("250")
            break
    return dialogue
