"""TLS record layer — enough structure for encrypted-protocol analysis.

The paper analyzes IMAP/S, HTTPS, and POP/S at the *transport* level
because payloads are encrypted (§5.1.2), but it does observe handshake
completion ("the hosts complete the SSL handshake successfully and
exchange a pair of application messages", §5.1.1).  We implement the TLS
record framing and handshake message types so the generator can emit
realistic encrypted sessions and the analyzer can confirm handshakes and
count application-data bytes without decrypting anything.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "CONTENT_CHANGE_CIPHER_SPEC",
    "CONTENT_ALERT",
    "CONTENT_HANDSHAKE",
    "CONTENT_APPLICATION_DATA",
    "HANDSHAKE_CLIENT_HELLO",
    "HANDSHAKE_SERVER_HELLO",
    "TlsRecord",
    "build_client_hello",
    "build_server_hello",
    "build_application_data",
    "parse_records",
    "stream_summary",
]

CONTENT_CHANGE_CIPHER_SPEC = 20
CONTENT_ALERT = 21
CONTENT_HANDSHAKE = 22
CONTENT_APPLICATION_DATA = 23

HANDSHAKE_CLIENT_HELLO = 1
HANDSHAKE_SERVER_HELLO = 2

TLS_VERSION = 0x0301  # TLS 1.0, contemporary with the 2004-05 traces

_RECORD_HEADER = struct.Struct("!BHH")


@dataclass(frozen=True)
class TlsRecord:
    """One TLS record: content type, version, opaque fragment."""

    content_type: int
    fragment: bytes
    version: int = TLS_VERSION

    def encode(self) -> bytes:
        return _RECORD_HEADER.pack(self.content_type, self.version, len(self.fragment)) + self.fragment

    @property
    def handshake_type(self) -> int | None:
        """The handshake message type, for handshake records."""
        if self.content_type == CONTENT_HANDSHAKE and self.fragment:
            return self.fragment[0]
        return None


def build_client_hello(random_bytes: bytes = b"\x00" * 32) -> bytes:
    """A minimal ClientHello record."""
    body = struct.pack("!H", TLS_VERSION) + random_bytes[:32].ljust(32, b"\x00")
    body += b"\x00"  # empty session id
    body += struct.pack("!H", 2) + b"\x00\x35"  # one cipher suite
    body += b"\x01\x00"  # null compression
    msg = bytes([HANDSHAKE_CLIENT_HELLO]) + len(body).to_bytes(3, "big") + body
    return TlsRecord(CONTENT_HANDSHAKE, msg).encode()


def build_server_hello(random_bytes: bytes = b"\x00" * 32) -> bytes:
    """A minimal ServerHello + ChangeCipherSpec pair of records."""
    body = struct.pack("!H", TLS_VERSION) + random_bytes[:32].ljust(32, b"\x00")
    body += b"\x00" + b"\x00\x35" + b"\x00"
    msg = bytes([HANDSHAKE_SERVER_HELLO]) + len(body).to_bytes(3, "big") + body
    hello = TlsRecord(CONTENT_HANDSHAKE, msg).encode()
    ccs = TlsRecord(CONTENT_CHANGE_CIPHER_SPEC, b"\x01").encode()
    return hello + ccs


def build_application_data(payload: bytes, max_fragment: int = 16384) -> bytes:
    """Wrap ``payload`` into one or more application-data records."""
    out = bytearray()
    for i in range(0, len(payload), max_fragment):
        out += TlsRecord(CONTENT_APPLICATION_DATA, payload[i : i + max_fragment]).encode()
    return bytes(out)


def parse_records(stream: bytes) -> list[TlsRecord]:
    """Parse a connection half into TLS records; stops at truncation."""
    records: list[TlsRecord] = []
    offset = 0
    while offset + _RECORD_HEADER.size <= len(stream):
        content_type, version, length = _RECORD_HEADER.unpack_from(stream, offset)
        if content_type not in (
            CONTENT_CHANGE_CIPHER_SPEC,
            CONTENT_ALERT,
            CONTENT_HANDSHAKE,
            CONTENT_APPLICATION_DATA,
        ):
            break
        offset += _RECORD_HEADER.size
        fragment = stream[offset : offset + length]
        records.append(TlsRecord(content_type, fragment, version))
        if len(fragment) < length:
            break
        offset += length
    return records


def stream_summary(stream: bytes) -> dict[str, int]:
    """Summarize one half of a TLS connection.

    Returns counts of handshake records, application-data records, and
    application-data bytes — the quantities the paper's encrypted-traffic
    analyses rely on.
    """
    handshakes = 0
    app_records = 0
    app_bytes = 0
    for record in parse_records(stream):
        if record.content_type == CONTENT_HANDSHAKE:
            handshakes += 1
        elif record.content_type == CONTENT_APPLICATION_DATA:
            app_records += 1
            app_bytes += len(record.fragment)
    return {
        "handshake_records": handshakes,
        "app_records": app_records,
        "app_bytes": app_bytes,
    }
