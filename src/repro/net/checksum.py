"""The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header.

Every IPv4/TCP/UDP/ICMP header the generator emits carries a correct
checksum, and the analysis engine can verify them; this keeps the pcap
files honest enough to be inspected with standard tools.
"""

from __future__ import annotations

import array
import struct
import sys

try:  # numpy makes the word sum ~10x faster; fall back to stdlib without it
    import numpy as _np

    _WORD_DTYPE = _np.dtype(">u2")
except ImportError:  # pragma: no cover - numpy is present in the dev env
    _np = None
    _WORD_DTYPE = None

from ..util.addr import ip_to_bytes

__all__ = ["internet_checksum", "pseudo_header"]

_LITTLE_ENDIAN = sys.byteorder == "little"


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    The generator checksums every TCP segment it emits, so this is on the
    hottest path of trace generation; the word sum runs vectorized under
    numpy, or at ``array('H')`` speed without it.
    """
    if len(data) % 2:
        data += b"\x00"
    if _np is not None:
        total = int(_np.frombuffer(data, dtype=_WORD_DTYPE).sum(dtype=_np.uint64))
    else:
        words = array.array("H", data)
        if _LITTLE_ENDIAN:
            words.byteswap()
        total = sum(words)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def pseudo_header(src_ip: int, dst_ip: int, proto: int, length: int) -> bytes:
    """Build the IPv4 pseudo-header used in TCP/UDP checksums."""
    return ip_to_bytes(src_ip) + ip_to_bytes(dst_ip) + struct.pack("!BBH", 0, proto, length)
