"""IPX (Internetwork Packet Exchange) header.

IPX is the largest non-IP protocol in the paper's traces (Table 2: 32-80%
of non-IP packets, mostly broadcast within subnets, carried alongside NCP
file-sharing traffic).  We implement the standard 30-byte header.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["IPX_HEADER_LEN", "IPX_TYPE_NCP", "IPX_TYPE_SAP", "IPX_TYPE_RIP", "IpxPacket"]

IPX_HEADER_LEN = 30

IPX_TYPE_RIP = 0x01
IPX_TYPE_SAP = 0x04  # carried as "packet exchange" type in practice
IPX_TYPE_NCP = 0x11

_HEADER = struct.Struct("!HHBB4s6sH4s6sH")


@dataclass(frozen=True)
class IpxPacket:
    """An IPX datagram: 30-byte header plus payload.

    Addresses are (32-bit network, 48-bit node, 16-bit socket) triples.
    """

    packet_type: int
    dst_network: int
    dst_node: int
    dst_socket: int
    src_network: int
    src_node: int
    src_socket: int
    payload: bytes = b""
    transport_control: int = 0

    def encode(self) -> bytes:
        """Serialize to wire bytes (checksum field fixed at 0xFFFF)."""
        length = IPX_HEADER_LEN + len(self.payload)
        return (
            _HEADER.pack(
                0xFFFF,  # IPX checksum: always 0xFFFF (unused)
                length,
                self.transport_control,
                self.packet_type,
                self.dst_network.to_bytes(4, "big"),
                self.dst_node.to_bytes(6, "big"),
                self.dst_socket,
                self.src_network.to_bytes(4, "big"),
                self.src_node.to_bytes(6, "big"),
                self.src_socket,
            )
            + self.payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "IpxPacket":
        """Parse wire bytes; raises ValueError when malformed."""
        if len(data) < IPX_HEADER_LEN:
            raise ValueError(f"too short for IPX: {len(data)}")
        (
            checksum,
            length,
            transport_control,
            packet_type,
            dst_net,
            dst_node,
            dst_socket,
            src_net,
            src_node,
            src_socket,
        ) = _HEADER.unpack_from(data)
        if checksum != 0xFFFF:
            raise ValueError(f"bad IPX checksum field: {checksum:#x}")
        payload = data[IPX_HEADER_LEN:length] if length >= IPX_HEADER_LEN else b""
        return cls(
            packet_type=packet_type,
            dst_network=int.from_bytes(dst_net, "big"),
            dst_node=int.from_bytes(dst_node, "big"),
            dst_socket=dst_socket,
            src_network=int.from_bytes(src_net, "big"),
            src_node=int.from_bytes(src_node, "big"),
            src_socket=src_socket,
            payload=payload,
            transport_control=transport_control,
        )
