"""ICMP messages (RFC 792).

ICMP accounts for 5-8% of connections in the paper's traces (Table 3) and
is the probe of choice for the external scanners that the scan filter
removes (§3).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .checksum import internet_checksum

__all__ = [
    "ICMP_HEADER_LEN",
    "ICMP_ECHO_REPLY",
    "ICMP_DEST_UNREACH",
    "ICMP_ECHO_REQUEST",
    "ICMP_TIME_EXCEEDED",
    "IcmpMessage",
]

ICMP_HEADER_LEN = 8

ICMP_ECHO_REPLY = 0
ICMP_DEST_UNREACH = 3
ICMP_ECHO_REQUEST = 8
ICMP_TIME_EXCEEDED = 11

_HEADER = struct.Struct("!BBHHH")


@dataclass(frozen=True)
class IcmpMessage:
    """An ICMP message; echo messages carry (ident, sequence)."""

    icmp_type: int
    code: int = 0
    ident: int = 0
    sequence: int = 0
    payload: bytes = b""

    def encode(self) -> bytes:
        """Serialize with a correct ICMP checksum."""
        header = _HEADER.pack(self.icmp_type, self.code, 0, self.ident, self.sequence)
        checksum = internet_checksum(header + self.payload)
        return (
            _HEADER.pack(self.icmp_type, self.code, checksum, self.ident, self.sequence)
            + self.payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "IcmpMessage":
        """Parse wire bytes; raises ValueError when too short."""
        if len(data) < ICMP_HEADER_LEN:
            raise ValueError(f"too short for ICMP: {len(data)}")
        icmp_type, code, _checksum, ident, sequence = _HEADER.unpack_from(data)
        return cls(
            icmp_type=icmp_type,
            code=code,
            ident=ident,
            sequence=sequence,
            payload=data[ICMP_HEADER_LEN:],
        )

    @property
    def is_echo(self) -> bool:
        """True for echo request/reply messages."""
        return self.icmp_type in (ICMP_ECHO_REQUEST, ICMP_ECHO_REPLY)
