"""Wire-format packet layer: Ethernet, ARP, IPX, IPv4, TCP, UDP, ICMP."""

from .arp import ARP_REPLY, ARP_REQUEST, ArpPacket
from .checksum import internet_checksum, pseudo_header
from .ethernet import (
    BROADCAST_MAC,
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_IPX,
    EthernetFrame,
)
from .icmp import (
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    IcmpMessage,
)
from .ipv4 import (
    PROTO_ESP,
    PROTO_GRE,
    PROTO_ICMP,
    PROTO_IGMP,
    PROTO_PIM,
    PROTO_TCP,
    PROTO_UDP,
    Ipv4Packet,
)
from .ipx import IpxPacket
from .packet import (
    CapturedPacket,
    DecodedPacket,
    decode_packet,
    make_arp_packet,
    make_icmp_packet,
    make_ipx_packet,
    make_tcp_packet,
    make_udp_packet,
)
from .tcp import ACK, FIN, PSH, RST, SYN, URG, TcpSegment, flags_to_str
from .udp import UdpDatagram

__all__ = [
    "ARP_REPLY",
    "ARP_REQUEST",
    "ArpPacket",
    "internet_checksum",
    "pseudo_header",
    "BROADCAST_MAC",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_IPX",
    "EthernetFrame",
    "ICMP_DEST_UNREACH",
    "ICMP_ECHO_REPLY",
    "ICMP_ECHO_REQUEST",
    "IcmpMessage",
    "PROTO_ESP",
    "PROTO_GRE",
    "PROTO_ICMP",
    "PROTO_IGMP",
    "PROTO_PIM",
    "PROTO_TCP",
    "PROTO_UDP",
    "Ipv4Packet",
    "IpxPacket",
    "CapturedPacket",
    "DecodedPacket",
    "decode_packet",
    "make_arp_packet",
    "make_icmp_packet",
    "make_ipx_packet",
    "make_tcp_packet",
    "make_udp_packet",
    "ACK",
    "FIN",
    "PSH",
    "RST",
    "SYN",
    "URG",
    "TcpSegment",
    "flags_to_str",
    "UdpDatagram",
]
