"""ARP for IPv4 over Ethernet (RFC 826).

ARP is the second-largest non-IP protocol in the paper's traces (Table 2:
5-27% of non-IP packets), emitted mostly as broadcast who-has requests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["ARP_REQUEST", "ARP_REPLY", "ARP_LEN", "ArpPacket"]

ARP_REQUEST = 1
ARP_REPLY = 2
ARP_LEN = 28

_HEADER = struct.Struct("!HHBBH6s4s6s4s")


@dataclass(frozen=True)
class ArpPacket:
    """An Ethernet/IPv4 ARP packet."""

    opcode: int
    sender_mac: int
    sender_ip: int
    target_mac: int
    target_ip: int

    def encode(self) -> bytes:
        """Serialize to the 28-byte wire format."""
        return _HEADER.pack(
            1,  # hardware type: Ethernet
            0x0800,  # protocol type: IPv4
            6,  # hardware address length
            4,  # protocol address length
            self.opcode,
            self.sender_mac.to_bytes(6, "big"),
            self.sender_ip.to_bytes(4, "big"),
            self.target_mac.to_bytes(6, "big"),
            self.target_ip.to_bytes(4, "big"),
        )

    @classmethod
    def decode(cls, data: bytes) -> "ArpPacket":
        """Parse wire bytes; raises ValueError on short or non-IPv4 ARP."""
        if len(data) < ARP_LEN:
            raise ValueError(f"too short for ARP: {len(data)}")
        (htype, ptype, hlen, plen, opcode, smac, sip, tmac, tip) = _HEADER.unpack_from(
            data
        )
        if (htype, ptype, hlen, plen) != (1, 0x0800, 6, 4):
            raise ValueError("not Ethernet/IPv4 ARP")
        return cls(
            opcode=opcode,
            sender_mac=int.from_bytes(smac, "big"),
            sender_ip=int.from_bytes(sip, "big"),
            target_mac=int.from_bytes(tmac, "big"),
            target_ip=int.from_bytes(tip, "big"),
        )
