"""UDP datagram header (RFC 768).

UDP carries most of the *connections* in every dataset (68-87%, Table 3):
name service, network management, and other transaction-style protocols.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .checksum import internet_checksum, pseudo_header
from .ipv4 import PROTO_UDP

__all__ = ["UDP_HEADER_LEN", "UdpDatagram"]

UDP_HEADER_LEN = 8

_HEADER = struct.Struct("!HHHH")


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram: ports, length, checksum, payload."""

    src_port: int
    dst_port: int
    payload: bytes = b""

    def encode(self, src_ip: int, dst_ip: int) -> bytes:
        """Serialize with a correct checksum over the pseudo-header."""
        length = UDP_HEADER_LEN + len(self.payload)
        header = _HEADER.pack(self.src_port, self.dst_port, length, 0)
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_UDP, length)
        checksum = internet_checksum(pseudo + header + self.payload)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted 0 means "no checksum"
        return _HEADER.pack(self.src_port, self.dst_port, length, checksum) + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "UdpDatagram":
        """Parse wire bytes; payload may be capture-truncated."""
        if len(data) < UDP_HEADER_LEN:
            raise ValueError(f"too short for UDP: {len(data)}")
        src_port, dst_port, length, _checksum = _HEADER.unpack_from(data)
        if length < UDP_HEADER_LEN:
            raise ValueError(f"bad UDP length: {length}")
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            payload=data[UDP_HEADER_LEN:length],
        )
