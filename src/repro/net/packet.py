"""High-level packet model: crafting helpers and a flat decoder.

The generator crafts :class:`CapturedPacket` objects (full wire bytes plus
a capture timestamp); the capture model may truncate them to the dataset's
snaplen; the analysis engine turns each back into a flat
:class:`DecodedPacket` with every field the paper's analyses need.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .arp import ArpPacket
from .ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_IPX,
    EthernetFrame,
)
from .icmp import IcmpMessage
from .ipv4 import IPV4_HEADER_LEN, PROTO_ICMP, PROTO_TCP, PROTO_UDP, Ipv4Packet
from .ipx import IpxPacket
from .tcp import TcpSegment
from .udp import UdpDatagram

__all__ = [
    "CapturedPacket",
    "DecodedPacket",
    "decode_packet",
    "make_tcp_packet",
    "make_udp_packet",
    "make_icmp_packet",
    "make_arp_packet",
    "make_ipx_packet",
]


@dataclass(frozen=True)
class CapturedPacket:
    """A packet as it appears in a trace file.

    ``data`` holds the captured bytes (possibly truncated to the snaplen);
    ``wire_len`` is the original on-the-wire length.
    """

    ts: float
    data: bytes
    wire_len: int

    @property
    def caplen(self) -> int:
        """Number of bytes actually captured."""
        return len(self.data)

    @property
    def truncated(self) -> bool:
        """True when the capture dropped trailing bytes."""
        return self.caplen < self.wire_len

    def truncate(self, snaplen: int) -> "CapturedPacket":
        """Return a copy limited to ``snaplen`` captured bytes."""
        if self.caplen <= snaplen:
            return self
        return CapturedPacket(ts=self.ts, data=self.data[:snaplen], wire_len=self.wire_len)


@dataclass
class DecodedPacket:
    """A flat, analysis-friendly view of one captured packet.

    Transport fields are ``None`` when the packet is not IP or the capture
    was too short to parse them.  ``payload`` holds the *captured* L4
    payload bytes while ``payload_len`` holds the true on-the-wire L4
    payload length recovered from the IP total-length field — the
    distinction is what lets byte accounting stay correct for the
    header-only (snaplen 68) datasets D1 and D2.
    """

    ts: float
    wire_len: int
    caplen: int
    ethertype: int
    src_mac: int = 0
    dst_mac: int = 0
    # IPv4
    src_ip: int | None = None
    dst_ip: int | None = None
    proto: int | None = None
    ttl: int = 0
    # TCP/UDP
    src_port: int | None = None
    dst_port: int | None = None
    tcp_flags: int = 0
    seq: int = 0
    ack: int = 0
    payload: bytes = b""
    payload_len: int = 0
    # ICMP
    icmp_type: int | None = None
    icmp_code: int = 0
    #: True for frames too short to carry an Ethernet header; every other
    #: field is meaningless and the packet belongs in error accounting,
    #: not in flow or byte accounting.
    runt: bool = False

    @property
    def truncated(self) -> bool:
        """True when the capture dropped trailing bytes."""
        return self.caplen < self.wire_len

    @property
    def is_ip(self) -> bool:
        """True for IPv4 packets."""
        return self.ethertype == ETHERTYPE_IPV4

    @property
    def payload_truncated(self) -> bool:
        """True when some L4 payload bytes were not captured."""
        return len(self.payload) < self.payload_len


_ETH_UNPACK = struct.Struct("!6s6sH").unpack_from
_IP_UNPACK = struct.Struct("!BBHHHBBH4s4s").unpack_from
_TCP_UNPACK = struct.Struct("!HHIIBBH").unpack_from
_UDP_UNPACK = struct.Struct("!HHHH").unpack_from
_FROM_BYTES = int.from_bytes


def decode_packet(pkt: CapturedPacket) -> DecodedPacket:
    """Decode a captured packet down to the transport layer.

    Never raises on truncation: fields that cannot be recovered are left
    at their defaults, mirroring how a real trace analyzer must cope with
    snaplen-limited captures.  Frames too short to even carry an Ethernet
    header come back flagged ``runt`` (ethertype -1) so callers can count
    them in the error taxonomy instead of crashing the trace.  This
    parses header fields inline (rather than via the layer dataclasses)
    because it runs once per packet over whole traces.
    """
    data = pkt.data
    if len(data) < 14:
        return DecodedPacket(
            ts=pkt.ts,
            wire_len=pkt.wire_len,
            caplen=pkt.caplen,
            ethertype=-1,
            runt=True,
        )
    dst_mac, src_mac, ethertype = _ETH_UNPACK(data)
    out = DecodedPacket(
        ts=pkt.ts,
        wire_len=pkt.wire_len,
        caplen=pkt.caplen,
        ethertype=ethertype,
        src_mac=_FROM_BYTES(src_mac, "big"),
        dst_mac=_FROM_BYTES(dst_mac, "big"),
    )
    if ethertype != ETHERTYPE_IPV4 or len(data) < 14 + IPV4_HEADER_LEN:
        return out
    (version_ihl, _tos, total, _ident, _ff, ttl, proto, _cksum, src, dst) = _IP_UNPACK(
        data, 14
    )
    if version_ihl >> 4 != 4:
        return out
    ihl = (version_ihl & 0xF) * 4
    out.src_ip = _FROM_BYTES(src, "big")
    out.dst_ip = _FROM_BYTES(dst, "big")
    out.proto = proto
    out.ttl = ttl
    l4_offset = 14 + ihl
    wire_l4_len = max(total - ihl, 0)
    if proto == PROTO_TCP:
        _decode_tcp(out, data, l4_offset, wire_l4_len)
    elif proto == PROTO_UDP:
        _decode_udp(out, data, l4_offset, wire_l4_len)
    elif proto == PROTO_ICMP:
        _decode_icmp(out, data, l4_offset)
    return out


def _decode_tcp(out: DecodedPacket, data: bytes, offset: int, wire_l4_len: int) -> None:
    if len(data) < offset + 20:
        return
    src_port, dst_port, seq, ack, offset_reserved, flags, _window = _TCP_UNPACK(
        data, offset
    )
    header_len = (offset_reserved >> 4) * 4
    if header_len < 20:
        return
    out.src_port = src_port
    out.dst_port = dst_port
    out.tcp_flags = flags
    out.seq = seq
    out.ack = ack
    out.payload = data[offset + header_len :]
    out.payload_len = max(wire_l4_len - header_len, 0)


def _decode_udp(out: DecodedPacket, data: bytes, offset: int, wire_l4_len: int) -> None:
    if len(data) < offset + 8:
        return
    src_port, dst_port, length, _checksum = _UDP_UNPACK(data, offset)
    out.src_port = src_port
    out.dst_port = dst_port
    out.payload = data[offset + 8 : offset + max(length, 8)]
    out.payload_len = max(min(length, wire_l4_len) - 8, 0)


def _decode_icmp(out: DecodedPacket, data: bytes, offset: int) -> None:
    if len(data) < offset + 8:
        return
    out.icmp_type = data[offset]
    out.icmp_code = data[offset + 1]
    out.payload = data[offset + 8 :]
    out.payload_len = len(out.payload)


def make_tcp_packet(
    ts: float,
    src_mac: int,
    dst_mac: int,
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    seq: int,
    ack: int,
    flags: int,
    payload: bytes = b"",
    mss: int | None = None,
    ttl: int = 64,
    ident: int = 0,
) -> CapturedPacket:
    """Craft a full Ethernet/IPv4/TCP packet."""
    segment = TcpSegment(
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        ack=ack,
        flags=flags,
        payload=payload,
        mss=mss,
    )
    ip = Ipv4Packet(
        src_ip=src_ip,
        dst_ip=dst_ip,
        proto=PROTO_TCP,
        payload=segment.encode(src_ip, dst_ip),
        ttl=ttl,
        ident=ident,
    )
    frame = EthernetFrame(
        dst_mac=dst_mac, src_mac=src_mac, ethertype=ETHERTYPE_IPV4, payload=ip.encode()
    )
    data = frame.encode()
    return CapturedPacket(ts=ts, data=data, wire_len=len(data))


def make_udp_packet(
    ts: float,
    src_mac: int,
    dst_mac: int,
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    ttl: int = 64,
    ident: int = 0,
) -> CapturedPacket:
    """Craft a full Ethernet/IPv4/UDP packet."""
    datagram = UdpDatagram(src_port=src_port, dst_port=dst_port, payload=payload)
    ip = Ipv4Packet(
        src_ip=src_ip,
        dst_ip=dst_ip,
        proto=PROTO_UDP,
        payload=datagram.encode(src_ip, dst_ip),
        ttl=ttl,
        ident=ident,
    )
    frame = EthernetFrame(
        dst_mac=dst_mac, src_mac=src_mac, ethertype=ETHERTYPE_IPV4, payload=ip.encode()
    )
    data = frame.encode()
    return CapturedPacket(ts=ts, data=data, wire_len=len(data))


def make_icmp_packet(
    ts: float,
    src_mac: int,
    dst_mac: int,
    src_ip: int,
    dst_ip: int,
    icmp_type: int,
    code: int = 0,
    ident: int = 0,
    sequence: int = 0,
    payload: bytes = b"",
    ttl: int = 64,
) -> CapturedPacket:
    """Craft a full Ethernet/IPv4/ICMP packet."""
    msg = IcmpMessage(
        icmp_type=icmp_type, code=code, ident=ident, sequence=sequence, payload=payload
    )
    ip = Ipv4Packet(
        src_ip=src_ip, dst_ip=dst_ip, proto=PROTO_ICMP, payload=msg.encode(), ttl=ttl
    )
    frame = EthernetFrame(
        dst_mac=dst_mac, src_mac=src_mac, ethertype=ETHERTYPE_IPV4, payload=ip.encode()
    )
    data = frame.encode()
    return CapturedPacket(ts=ts, data=data, wire_len=len(data))


def make_arp_packet(
    ts: float,
    src_mac: int,
    dst_mac: int,
    opcode: int,
    sender_mac: int,
    sender_ip: int,
    target_mac: int,
    target_ip: int,
) -> CapturedPacket:
    """Craft a full Ethernet/ARP packet."""
    arp = ArpPacket(
        opcode=opcode,
        sender_mac=sender_mac,
        sender_ip=sender_ip,
        target_mac=target_mac,
        target_ip=target_ip,
    )
    frame = EthernetFrame(
        dst_mac=dst_mac, src_mac=src_mac, ethertype=ETHERTYPE_ARP, payload=arp.encode()
    )
    data = frame.encode()
    # ARP frames are padded to the 60-byte Ethernet minimum on the wire.
    wire_len = max(len(data), 60)
    return CapturedPacket(ts=ts, data=data, wire_len=wire_len)


def make_ipx_packet(
    ts: float,
    src_mac: int,
    dst_mac: int,
    ipx: IpxPacket,
) -> CapturedPacket:
    """Craft a full Ethernet/IPX packet."""
    frame = EthernetFrame(
        dst_mac=dst_mac, src_mac=src_mac, ethertype=ETHERTYPE_IPX, payload=ipx.encode()
    )
    data = frame.encode()
    wire_len = max(len(data), 60)
    return CapturedPacket(ts=ts, data=data, wire_len=wire_len)
