"""TCP segment header (RFC 793) with flags, options, and checksum.

TCP carries 66-95% of the bytes in every dataset (Table 3); the analysis
engine's connection tracking, success-rate, and retransmission analyses
(Figure 10) all parse these headers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .checksum import internet_checksum, pseudo_header
from .ipv4 import PROTO_TCP

__all__ = [
    "TCP_HEADER_LEN",
    "FIN",
    "SYN",
    "RST",
    "PSH",
    "ACK",
    "URG",
    "TcpSegment",
    "flags_to_str",
]

TCP_HEADER_LEN = 20

FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20

_FLAG_NAMES = [(FIN, "F"), (SYN, "S"), (RST, "R"), (PSH, "P"), (ACK, "A"), (URG, "U")]

_HEADER = struct.Struct("!HHIIBBHHH")


def flags_to_str(flags: int) -> str:
    """Render a flag byte as e.g. ``"SA"`` for SYN+ACK."""
    return "".join(name for bit, name in _FLAG_NAMES if flags & bit)


@dataclass(frozen=True)
class TcpSegment:
    """A TCP segment: header fields plus payload.

    The only option we emit is MSS on SYN segments, which is also the only
    option the decoder interprets; unknown options are skipped.
    """

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    payload: bytes = b""
    window: int = 65535
    mss: int | None = None
    urgent: int = 0

    def _options(self) -> bytes:
        if self.mss is None:
            return b""
        return struct.pack("!BBH", 2, 4, self.mss)

    def encode(self, src_ip: int, dst_ip: int) -> bytes:
        """Serialize with a correct checksum over the pseudo-header."""
        options = self._options()
        data_offset = (TCP_HEADER_LEN + len(options)) // 4
        header = _HEADER.pack(
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            data_offset << 4,
            self.flags,
            self.window,
            0,  # checksum placeholder
            self.urgent,
        )
        segment = header + options + self.payload
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_TCP, len(segment))
        checksum = internet_checksum(pseudo + segment)
        return segment[:16] + struct.pack("!H", checksum) + segment[18:]

    @classmethod
    def decode(cls, data: bytes) -> "TcpSegment":
        """Parse wire bytes; payload may be capture-truncated."""
        if len(data) < TCP_HEADER_LEN:
            raise ValueError(f"too short for TCP: {len(data)}")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_reserved,
            flags,
            window,
            _checksum,
            urgent,
        ) = _HEADER.unpack_from(data)
        header_len = (offset_reserved >> 4) * 4
        if header_len < TCP_HEADER_LEN:
            raise ValueError(f"bad data offset: {header_len}")
        mss = cls._parse_mss(data[TCP_HEADER_LEN:header_len])
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            payload=data[header_len:],
            window=window,
            mss=mss,
            urgent=urgent,
        )

    @staticmethod
    def _parse_mss(options: bytes) -> int | None:
        """Scan TCP options for an MSS value; ignore everything else."""
        i = 0
        while i < len(options):
            kind = options[i]
            if kind == 0:  # end of options
                break
            if kind == 1:  # NOP
                i += 1
                continue
            if i + 1 >= len(options):
                break
            length = options[i + 1]
            if length < 2:
                break
            if kind == 2 and length == 4 and i + 4 <= len(options):
                return struct.unpack_from("!H", options, i + 2)[0]
            i += length
        return None

    @property
    def flag_str(self) -> str:
        """The flags as a compact string, e.g. ``"SA"``."""
        return flags_to_str(self.flags)
