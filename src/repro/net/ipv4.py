"""IPv4 header (RFC 791) with checksum support.

More than 95% of packets in every dataset are IPv4 (Table 2); everything
in the transport- and application-layer analyses sits on top of this.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .checksum import internet_checksum

__all__ = [
    "IPV4_HEADER_LEN",
    "PROTO_ICMP",
    "PROTO_IGMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTO_GRE",
    "PROTO_ESP",
    "PROTO_PIM",
    "PROTO_UNIDENTIFIED_224",
    "Ipv4Packet",
]

IPV4_HEADER_LEN = 20

PROTO_ICMP = 1
PROTO_IGMP = 2
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_GRE = 47
PROTO_ESP = 50
PROTO_PIM = 103
PROTO_UNIDENTIFIED_224 = 224  # the paper's "IP protocol 224 (unidentified)"

_HEADER = struct.Struct("!BBHHHBBH4s4s")


@dataclass(frozen=True)
class Ipv4Packet:
    """An IPv4 datagram with a 20-byte header (no options).

    ``encode`` fills in total length and header checksum; ``decode``
    verifies the checksum unless the capture truncated the packet.
    """

    src_ip: int
    dst_ip: int
    proto: int
    payload: bytes = b""
    ttl: int = 64
    ident: int = 0
    dscp: int = 0
    flags_df: bool = True
    total_length: int = field(default=-1, compare=False)

    def encode(self) -> bytes:
        """Serialize header + payload with a correct header checksum."""
        total = IPV4_HEADER_LEN + len(self.payload)
        flags_fragment = 0x4000 if self.flags_df else 0
        header = _HEADER.pack(
            (4 << 4) | 5,  # version 4, IHL 5
            self.dscp << 2,
            total,
            self.ident & 0xFFFF,
            flags_fragment,
            self.ttl,
            self.proto,
            0,  # checksum placeholder
            self.src_ip.to_bytes(4, "big"),
            self.dst_ip.to_bytes(4, "big"),
        )
        checksum = internet_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:] + self.payload

    @classmethod
    def decode(cls, data: bytes, verify_checksum: bool = False) -> "Ipv4Packet":
        """Parse wire bytes.

        ``data`` may be truncated by the capture snaplen; the payload then
        holds whatever bytes survived, and ``total_length`` carries the
        original datagram length from the header.
        """
        if len(data) < IPV4_HEADER_LEN:
            raise ValueError(f"too short for IPv4: {len(data)}")
        (
            version_ihl,
            tos,
            total,
            ident,
            flags_fragment,
            ttl,
            proto,
            checksum,
            src,
            dst,
        ) = _HEADER.unpack_from(data)
        version = version_ihl >> 4
        if version != 4:
            raise ValueError(f"not IPv4 (version {version})")
        ihl = (version_ihl & 0xF) * 4
        if ihl < IPV4_HEADER_LEN:
            raise ValueError(f"bad IHL: {ihl}")
        if verify_checksum and len(data) >= ihl:
            if internet_checksum(data[:ihl]) != 0:
                raise ValueError("IPv4 header checksum mismatch")
        payload = data[ihl : max(total, ihl)]
        return cls(
            src_ip=int.from_bytes(src, "big"),
            dst_ip=int.from_bytes(dst, "big"),
            proto=proto,
            payload=payload,
            ttl=ttl,
            ident=ident,
            dscp=tos >> 2,
            flags_df=bool(flags_fragment & 0x4000),
            total_length=total,
        )
