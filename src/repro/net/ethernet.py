"""Ethernet II framing.

The traces the paper studies were captured on Ethernet; Table 2's
network-layer breakdown is a breakdown over EtherTypes (IPv4 vs ARP vs
IPX vs other).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "ETH_HEADER_LEN",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPX",
    "ETHERTYPE_APPLETALK",
    "ETHERTYPE_DECNET",
    "BROADCAST_MAC",
    "EthernetFrame",
]

ETH_HEADER_LEN = 14

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_IPX = 0x8137
ETHERTYPE_APPLETALK = 0x809B
ETHERTYPE_DECNET = 0x6003

BROADCAST_MAC = 0xFFFFFFFFFFFF

_HEADER = struct.Struct("!6s6sH")


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet II frame: addresses, EtherType, and opaque payload."""

    dst_mac: int
    src_mac: int
    ethertype: int
    payload: bytes

    def encode(self) -> bytes:
        """Serialize to wire bytes (header + payload, no FCS)."""
        return (
            _HEADER.pack(
                self.dst_mac.to_bytes(6, "big"),
                self.src_mac.to_bytes(6, "big"),
                self.ethertype,
            )
            + self.payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "EthernetFrame":
        """Parse wire bytes into a frame; raises ValueError if too short."""
        if len(data) < ETH_HEADER_LEN:
            raise ValueError(f"frame too short for Ethernet header: {len(data)}")
        dst, src, ethertype = _HEADER.unpack_from(data)
        return cls(
            dst_mac=int.from_bytes(dst, "big"),
            src_mac=int.from_bytes(src, "big"),
            ethertype=ethertype,
            payload=data[ETH_HEADER_LEN:],
        )

    @property
    def is_broadcast(self) -> bool:
        """True when addressed to ff:ff:ff:ff:ff:ff."""
        return self.dst_mac == BROADCAST_MAC
