"""The end-to-end study pipeline and experiment registry."""

from .experiments import EXPERIMENTS, Experiment
from .study import StudyConfig, StudyResults, analyze_dataset, run_study

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "StudyConfig",
    "StudyResults",
    "analyze_dataset",
    "run_study",
]
