"""The end-to-end study pipeline: generate → analyze → report.

``run_study`` is the package's front door: it generates the five LBNL-like
datasets (or a subset), runs the full analysis engine over the resulting
pcap traces, and exposes every table and figure of the paper through
:class:`StudyResults`.

With ``store_dir`` set, every finished analysis is sharded into a
:class:`~repro.store.ConnStore` and subsequent runs rebuild their tables
from cached shards instead of re-parsing pcaps (see :mod:`repro.store`).

With ``jobs > 1``, datasets become independent work units fanned out
across worker processes by the :mod:`repro.runtime` scheduler; results
come back through the store (a scratch store when none is configured),
so any worker count produces byte-identical tables (see
``docs/runtime.md``).
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from ..analysis.analyzers import DEFAULT_ANALYZERS
from ..analysis.engine import DatasetAnalysis, DatasetAnalyzer
from ..analysis.errors import ErrorKind, ErrorPolicy, IngestionError, TraceError
from ..gen.capture import DatasetTraces, generate_dataset
from ..gen.datasets import DATASET_ORDER, DATASETS
from ..gen.topology import ENTERPRISE_NET, Enterprise, Role
from ..report import figures as figure_builders
from ..report import quality as quality_builders
from ..report import tables as table_builders
from ..report.findings import table5 as findings_table5
from ..report.categories import CategoryBreakdown, category_breakdown
from ..report.model import CdfFigure, SeriesFigure, Table
from ..runtime.scheduler import ProcessPoolScheduler, RetryPolicy, resolve_jobs
from ..runtime.task import Task, TaskGraph
from ..runtime.telemetry import TelemetryLog
from ..store.cache import ConnStore
from ..store.tier import open_store
from ..stream.engine import StreamConfig, StreamDatasetAnalyzer
from ..util.fmt import fmt_duration

__all__ = ["StudyConfig", "StudyResults", "run_study", "analyze_dataset"]

#: The selectable analysis engines.
ENGINES = ("batch", "stream")

#: The registered analyzer roster, as it appears in cache keys.
_ANALYZER_NAMES: tuple[str, ...] = tuple(cls.name for cls in DEFAULT_ANALYZERS)


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of one reproduction run."""

    seed: int = 0
    #: Traffic volume relative to the paper's (1.0 ≈ the full LBNL volume).
    scale: float = 0.01
    datasets: tuple[str, ...] = tuple(DATASET_ORDER)
    #: Truncate each dataset's tap schedule (None = full schedule).
    max_windows: int | None = None
    #: Where pcap traces are written (None = a temporary directory).
    out_dir: str | None = None
    #: How ingestion defects are handled (strict / tolerant / skip-trace).
    error_policy: str = ErrorPolicy.STRICT.value
    #: Root of the connection-record store (None = caching disabled).
    store_dir: str | None = None
    #: Worker processes (1 = in-process sequential, 0 = all cores).
    jobs: int = 1
    #: Analysis engine: ``"batch"`` materializes each trace before
    #: analyzing; ``"stream"`` ingests it in one bounded-memory pass
    #: (``docs/streaming.md``).  Identical output under the default
    #: streaming knobs.
    engine: str = "batch"
    #: Streaming-engine knobs (``engine="stream"`` only).
    stream: StreamConfig | None = None


@dataclass
class StudyResults:
    """Everything a reproduction run produced."""

    config: StudyConfig
    analyses: dict[str, DatasetAnalysis] = field(default_factory=dict)
    traces: dict[str, DatasetTraces] = field(default_factory=dict)
    breakdowns: dict[str, CategoryBreakdown] = field(default_factory=dict)
    enterprise: Enterprise | None = None
    #: Work units that exhausted their retries (non-strict parallel runs).
    unit_failures: list[TraceError] = field(default_factory=list)
    #: The run's progress/telemetry stream (events + timing table).
    telemetry: TelemetryLog | None = None

    # -- table / figure access ------------------------------------------------

    def table(self, number: int) -> Table:
        """Build paper table ``number`` (1-15; Table 5 is regenerated with
        measured values substituted into each finding)."""
        builders = {
            1: lambda: table_builders.table1(self.analyses, self._trace_meta()),
            2: lambda: table_builders.table2(self.analyses),
            3: lambda: table_builders.table3(self.analyses),
            4: table_builders.table4,
            5: lambda: findings_table5(self.analyses),
            6: lambda: table_builders.table6(self.analyses),
            7: lambda: table_builders.table7(self.analyses),
            8: lambda: table_builders.table8(self.analyses),
            9: lambda: table_builders.table9(self.analyses),
            10: lambda: table_builders.table10(self.analyses),
            11: lambda: table_builders.table11(self.analyses),
            12: lambda: table_builders.table12(self.analyses),
            13: lambda: table_builders.table13(self.analyses),
            14: lambda: table_builders.table14(self.analyses),
            15: lambda: table_builders.table15(self.analyses),
        }
        if number not in builders:
            raise KeyError(f"no builder for Table {number}")
        return builders[number]()

    def figure(self, number: int):
        """Build paper figure ``number`` (1-10)."""
        builders = {
            1: lambda: (
                figure_builders.figure1(self.breakdowns, by="bytes"),
                figure_builders.figure1(self.breakdowns, by="conns"),
            ),
            2: lambda: figure_builders.figure2(self.analyses),
            3: lambda: figure_builders.figure3(self.analyses),
            4: lambda: figure_builders.figure4(self.analyses),
            5: lambda: figure_builders.figure5(self.analyses),
            6: lambda: figure_builders.figure6(self.analyses),
            7: lambda: figure_builders.figure7(self.analyses),
            8: lambda: figure_builders.figure8(self.analyses),
            9: lambda: figure_builders.figure9(
                self.analyses.get("D4") or next(iter(self.analyses.values()))
            ),
            10: lambda: figure_builders.figure10(self.analyses),
        }
        if number not in builders:
            raise KeyError(f"no builder for Figure {number}")
        return builders[number]()

    def render_table(self, number: int) -> str:
        """Render paper table ``number`` as text."""
        return self.table(number).render()

    def render_figure(self, number: int) -> str:
        """Render paper figure ``number`` as text."""
        built = self.figure(number)
        if isinstance(built, (Table, CdfFigure, SeriesFigure)):
            return built.render()
        if isinstance(built, Mapping):
            return "\n\n".join(item.render() for item in built.values())
        return "\n\n".join(item.render() for item in built)

    def data_quality(self) -> Table:
        """Build the data-quality accounting table (not a paper artifact)."""
        return quality_builders.data_quality_table(self.analyses)

    def render_data_quality(self) -> str:
        """Render the data-quality section as text."""
        lines = [quality_builders.render_data_quality(self.analyses)]
        for failure in self.unit_failures:
            reason = failure.detail.strip().splitlines()
            lines.append(
                f"  unit {failure.path} failed ({failure.kind.value}): "
                f"{reason[-1] if reason else ''}"
            )
        return "\n".join(lines)

    @property
    def total_errors(self) -> int:
        """Every ingestion defect recorded across all datasets, plus any
        work units lost to worker faults."""
        return sum(
            analysis.total_errors for analysis in self.analyses.values()
        ) + len(self.unit_failures)

    # -- helpers -----------------------------------------------------------------

    def _trace_meta(self) -> dict[str, dict]:
        meta: dict[str, dict] = {}
        for name, dataset in self.traces.items():
            config = dataset.config
            subnets = []
            if self.enterprise is not None:
                covered = {trace.window.subnet_index for trace in dataset.traces}
                subnets = [
                    subnet.subnet
                    for subnet in self.enterprise.subnets
                    if subnet.index in covered
                ]
            meta[name] = {
                "date": config.date,
                "duration": fmt_duration(config.tap_seconds),
                "per_tap": config.per_tap,
                "num_subnets": config.num_subnets,
                "snaplen": config.snaplen,
                "monitored_subnets": subnets,
            }
        return meta


def _engine_key_config(engine: str, stream: StreamConfig) -> dict | None:
    """The cache-key fork for non-parity streaming configurations.

    Batch runs and parity-default streaming runs return ``None`` and
    share one cache key (their output bytes are identical, so either
    may serve the other's cached analysis); turned-down eviction knobs
    can split flows, so they fork the key.
    """
    if engine != "stream" or stream.parity_default():
        return None
    return stream.record_knobs()


def analyze_dataset(
    name: str,
    traces: DatasetTraces,
    known_scanners: tuple[int, ...] = (),
    error_policy: ErrorPolicy | str = ErrorPolicy.STRICT,
    store: ConnStore | None = None,
    gen_key: str | None = None,
    engine: str = "batch",
    stream: StreamConfig | None = None,
    window_observer: Callable | None = None,
) -> DatasetAnalysis:
    """Run the full analysis engine over one generated dataset.

    With a ``store``, the trace files are digested first and a matching
    cached analysis is returned without opening a single pcap; on a miss
    the fresh analysis is sharded into the store before returning.  The
    content key covers the trace bytes themselves, so any mutation (e.g.
    :func:`repro.gen.faults.corrupt_dataset`) forces a cold re-parse.

    ``engine="stream"`` swaps in the single-pass bounded-memory engine
    (:mod:`repro.stream`) with knobs from ``stream``; under the default
    knobs its output is byte-identical, so batch and stream share cache
    entries.  With a store and ``stream.checkpoint_every > 0`` the run
    publishes live checkpoints it can resume from after a crash.
    ``window_observer`` receives each closed aggregation window.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (expected one of {ENGINES})")
    policy = ErrorPolicy.coerce(error_policy)
    stream_config = stream if stream is not None else StreamConfig()
    engine_config = _engine_key_config(engine, stream_config)
    digests: list[str] = []
    key: str | None = None
    if store is not None:
        digests = [store.file_digest(trace.path) for trace in traces.traces]
        key = store.content_key(
            name,
            digests,
            _ANALYZER_NAMES,
            policy.value,
            traces.config.full_payload,
            str(ENTERPRISE_NET),
            known_scanners,
            engine_config=engine_config,
        )
        manifest = store.lookup(key)
        if manifest is not None:
            cached = store.load_or_none(manifest, policy)
            if cached is not None:
                return cached.analysis
    if engine == "stream":
        analyzer: DatasetAnalyzer = StreamDatasetAnalyzer(
            name,
            full_payload=traces.config.full_payload,
            internal_net=ENTERPRISE_NET,
            analyzers=[cls() for cls in DEFAULT_ANALYZERS],
            error_policy=policy,
            config=stream_config,
            store=store,
            checkpoint_base=key or name,
            window_observer=window_observer,
        )
    else:
        analyzer = DatasetAnalyzer(
            name,
            full_payload=traces.config.full_payload,
            internal_net=ENTERPRISE_NET,
            analyzers=[cls() for cls in DEFAULT_ANALYZERS],
            error_policy=policy,
        )
    for trace in traces.traces:
        analyzer.process_pcap(trace.path)
    analysis = analyzer.finish(known_scanners=known_scanners)
    if store is not None and key is not None:
        # Enough context for `repro store repair` to re-derive these
        # shards from the source traces without guessing run parameters.
        repair_info = {
            "error_policy": policy.value,
            "known_scanners": sorted(known_scanners),
            "engine": engine,
            "engine_config": engine_config,
        }
        try:
            store.save_analysis(
                key, analysis, traces, digests, gen_key=gen_key, repair=repair_info
            )
        except OSError as exc:
            if policy is ErrorPolicy.STRICT:
                raise IngestionError(
                    ErrorKind.IO_ERROR,
                    str(store.root),
                    None,
                    f"shard publication failed: {exc}",
                ) from exc
            # Tolerant: the analysis in hand is complete — losing the
            # cache entry costs a future warm start, not this run.
            analysis.io_errors["shard_publication"] = (
                analysis.io_errors.get("shard_publication", 0) + 1
            )
    return analysis


def _adopt_analysis(
    results: StudyResults,
    name: str,
    traces: DatasetTraces,
    analysis: DatasetAnalysis,
    out_dir: str | None = None,
    relocate: bool = False,
) -> None:
    """File one dataset's products into the results, building its
    category breakdown; with ``relocate`` the (store-relative) trace
    paths are re-rooted under ``out_dir``."""
    if relocate and out_dir:
        for trace in traces.traces:
            trace.path = Path(out_dir) / trace.path
    results.traces[name] = traces
    results.analyses[name] = analysis
    results.breakdowns[name] = category_breakdown(
        analysis.filtered_conns(),
        analysis.windows_endpoints,
        internal_net=ENTERPRISE_NET,
    )


def _generate_and_analyze(
    name: str,
    enterprise: Enterprise,
    known_scanners: tuple[int, ...],
    *,
    seed: int,
    scale: float,
    max_windows: int | None,
    out_dir: str | None,
    policy: ErrorPolicy,
    mutate_traces: Callable[[str, DatasetTraces], None] | None = None,
    store: ConnStore | None = None,
    gen_key: str | None = None,
    engine: str = "batch",
    stream: StreamConfig | None = None,
    window_observer: Callable | None = None,
) -> tuple[DatasetTraces, DatasetAnalysis, int]:
    """Cold-run one dataset: generate its pcaps, analyze, return
    ``(traces, analysis, pcap bytes written)``."""
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(out_dir) / name if out_dir else Path(tmp)
        target.mkdir(parents=True, exist_ok=True)
        dataset_traces = generate_dataset(
            name,
            enterprise,
            target,
            seed=seed,
            scale=scale,
            max_windows=max_windows,
        )
        if mutate_traces is not None:
            mutate_traces(name, dataset_traces)
        trace_bytes = sum(
            Path(trace.path).stat().st_size
            for trace in dataset_traces.traces
            if Path(trace.path).exists()
        )
        analysis = analyze_dataset(
            name,
            dataset_traces,
            known_scanners,
            error_policy=policy,
            store=store,
            gen_key=gen_key,
            engine=engine,
            stream=stream,
            window_observer=window_observer,
        )
    return dataset_traces, analysis, trace_bytes


def _dataset_unit_worker(spec: Mapping) -> dict:
    """One parallel work unit: produce one dataset's analysis *in the
    store* and return a small picklable receipt.

    Runs in a forked worker process under ``jobs > 1``.  The heavy
    product (the analysis) never crosses the pipe — it is sharded into
    the unit's store (the study store, or a scratch store when caching
    is off) and the parent rebuilds it from the returned manifest key.
    Determinism: the unit reuses the *study* seed; every random stream
    below it is already keyed by (dataset, window), so the bytes cannot
    depend on worker count or execution order.
    """
    name = spec["dataset"]
    seed = spec["seed"]
    out_dir = spec["out_dir"]
    policy = ErrorPolicy.coerce(spec["error_policy"])
    engine = spec.get("engine", "batch")
    stream_spec = spec.get("stream")
    stream = StreamConfig(**stream_spec) if stream_spec else StreamConfig()
    store = open_store(spec["store_dir"])
    enterprise = Enterprise(seed=seed)
    known_scanners = tuple(host.ip for host in enterprise.servers(Role.SCANNER))
    gen_key = store.generation_key(
        name,
        seed,
        spec["scale"],
        spec["max_windows"],
        _ANALYZER_NAMES,
        policy.value,
        str(ENTERPRISE_NET),
        known_scanners,
        engine_config=_engine_key_config(engine, stream),
    )
    if spec["reuse_store"]:
        manifest = store.lookup(gen_key)
        if manifest is not None and store.sources_intact(
            manifest, Path(out_dir) if out_dir else None
        ):
            if store.load_or_none(manifest, policy) is not None:
                return {
                    "dataset": name,
                    "manifest_key": manifest["key"],
                    "cache": "hit",
                    "packets": sum(
                        entry["packet_count"] for entry in manifest["traces"]
                    ),
                    "bytes": 0,
                }
    dataset_traces, analysis, trace_bytes = _generate_and_analyze(
        name,
        enterprise,
        known_scanners,
        seed=seed,
        scale=spec["scale"],
        max_windows=spec["max_windows"],
        out_dir=out_dir,
        policy=policy,
        store=store,
        gen_key=gen_key,
        engine=engine,
        stream=stream,
    )
    return {
        "dataset": name,
        "manifest_key": gen_key,
        "cache": "miss",
        "packets": dataset_traces.total_packets,
        "bytes": trace_bytes,
        # Storage faults the worker absorbed under a tolerant policy;
        # the parent folds these into the data-quality accounting when
        # it has to recompute the dataset inline.
        "io_errors": sum(analysis.io_errors.values()),
    }


def run_study(
    seed: int = 0,
    scale: float = 0.01,
    datasets: tuple[str, ...] | None = None,
    max_windows: int | None = None,
    out_dir: str | None = None,
    error_policy: ErrorPolicy | str = ErrorPolicy.STRICT,
    mutate_traces: Callable[[str, DatasetTraces], None] | None = None,
    store_dir: str | None = None,
    reuse_store: bool = True,
    jobs: int = 1,
    progress: bool = False,
    telemetry_path: str | None = None,
    retry: RetryPolicy | None = None,
    engine: str = "batch",
    stream: StreamConfig | None = None,
    window_observer: Callable | None = None,
) -> StudyResults:
    """Run the whole reproduction: generate traces, analyze, report.

    With ``out_dir=None``, traces are written to a temporary directory
    and deleted once analyzed (each dataset's pcaps are only needed
    transiently).

    ``error_policy`` selects how ingestion defects are handled (see
    :mod:`repro.analysis.errors`).  ``mutate_traces`` is a hook called
    with ``(dataset name, DatasetTraces)`` after generation and before
    analysis — the seam fault-injection tests use to corrupt trace files
    (:func:`repro.gen.faults.corrupt_dataset`) without patching the
    pipeline.

    ``store_dir`` enables the connection-record store: finished analyses
    are sharded into it, and with ``reuse_store`` a later same-parameter
    run skips both generation and pcap parsing, rebuilding its tables
    from shards.  Corrupt shards follow ``error_policy``: strict raises,
    the tolerant policies fall back to a cold run.  The warm path is
    bypassed whenever ``mutate_traces`` is set (the hook must see real
    trace files), and any pcaps still on disk are digest-verified before
    a cached analysis is trusted.

    ``jobs`` selects the execution runtime (``docs/runtime.md``): 1 (the
    default) keeps today's in-process sequential path; ``N > 1`` fans
    datasets out across ``N`` worker processes (0 = all cores) with
    identical output bytes.  A unit whose worker crashes, raises, or
    times out is retried per ``retry`` (default: twice, exponential
    backoff) and then — under the non-strict policies — quarantined and
    reported in :attr:`StudyResults.unit_failures` and the data-quality
    section; under ``strict`` the study raises.  ``mutate_traces`` runs
    force the sequential path (the hook is not shipped to workers).

    ``progress`` narrates unit progress on stderr; ``telemetry_path``
    appends the structured JSONL event stream (schema:
    :mod:`repro.runtime.telemetry`) there.  Either way, the stream is
    kept on :attr:`StudyResults.telemetry`.

    ``engine="stream"`` analyzes each trace in a single bounded-memory
    pass (:mod:`repro.stream`) with knobs from ``stream``; under the
    default knobs the study digest is byte-identical to the batch
    engine at every worker count (see ``docs/streaming.md``).
    ``window_observer`` receives each closed aggregation window as it
    happens — sequential (``jobs=1``) streaming runs only, since the
    callback cannot cross a process boundary.
    """
    policy = ErrorPolicy.coerce(error_policy)
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (expected one of {ENGINES})")
    config = StudyConfig(
        seed=seed,
        scale=scale,
        datasets=tuple(datasets) if datasets is not None else tuple(DATASET_ORDER),
        max_windows=max_windows,
        out_dir=out_dir,
        error_policy=policy.value,
        store_dir=store_dir,
        jobs=jobs,
        engine=engine,
        stream=stream if engine == "stream" else None,
    )
    for name in config.datasets:
        if name not in DATASETS:
            raise KeyError(f"unknown dataset {name!r}")
    telemetry = TelemetryLog(path=telemetry_path, progress=progress)
    results = StudyResults(
        config=config, enterprise=Enterprise(seed=seed), telemetry=telemetry
    )
    effective_jobs = resolve_jobs(jobs)
    if mutate_traces is not None:
        effective_jobs = 1  # the hook must run in-process on real files
    telemetry.emit(
        "study_start",
        jobs=effective_jobs,
        units=len(dict.fromkeys(config.datasets)),
        datasets=list(config.datasets),
        seed=seed,
    )
    try:
        if effective_jobs <= 1:
            _run_study_sequential(
                results, policy, mutate_traces, reuse_store, telemetry,
                window_observer=window_observer,
            )
        else:
            _run_study_parallel(
                results, policy, reuse_store, effective_jobs, retry, telemetry
            )
    finally:
        telemetry.close()
    return results


def _run_study_sequential(
    results: StudyResults,
    policy: ErrorPolicy,
    mutate_traces: Callable[[str, DatasetTraces], None] | None,
    reuse_store: bool,
    telemetry: TelemetryLog,
    window_observer: Callable | None = None,
) -> None:
    """Today's in-process path: one dataset after another, no workers."""
    config = results.config
    started = time.monotonic()
    store = open_store(config.store_dir) if config.store_dir else None
    enterprise = results.enterprise
    known_scanners = tuple(
        host.ip for host in enterprise.servers(Role.SCANNER)
    )
    stream = config.stream if config.stream is not None else StreamConfig()
    for name in config.datasets:
        unit_started = time.monotonic()
        telemetry.emit("unit_start", unit=f"dataset:{name}", kind="dataset", attempt=1)
        gen_key = None
        if store is not None:
            gen_key = store.generation_key(
                name,
                config.seed,
                config.scale,
                config.max_windows,
                _ANALYZER_NAMES,
                policy.value,
                str(ENTERPRISE_NET),
                known_scanners,
                engine_config=_engine_key_config(config.engine, stream),
            )
            if reuse_store and mutate_traces is None:
                cached = None
                manifest = store.lookup(gen_key)
                if manifest is not None and store.sources_intact(
                    manifest, Path(config.out_dir) if config.out_dir else None
                ):
                    cached = store.load_or_none(manifest, policy)
                if cached is not None:
                    _adopt_analysis(
                        results, name, cached.traces, cached.analysis,
                        out_dir=config.out_dir, relocate=True,
                    )
                    telemetry.emit(
                        "unit_finish",
                        unit=f"dataset:{name}",
                        kind="dataset",
                        status="ok",
                        attempts=1,
                        wall_s=round(time.monotonic() - unit_started, 6),
                        packets=cached.analysis.total_packets,
                        bytes=0,
                        cache="hit",
                    )
                    continue
        dataset_traces, analysis, trace_bytes = _generate_and_analyze(
            name,
            enterprise,
            known_scanners,
            seed=config.seed,
            scale=config.scale,
            max_windows=config.max_windows,
            out_dir=config.out_dir,
            policy=policy,
            mutate_traces=mutate_traces,
            store=store,
            gen_key=gen_key if mutate_traces is None else None,
            engine=config.engine,
            stream=stream,
            window_observer=window_observer,
        )
        _adopt_analysis(results, name, dataset_traces, analysis)
        telemetry.emit(
            "unit_finish",
            unit=f"dataset:{name}",
            kind="dataset",
            status="ok",
            attempts=1,
            wall_s=round(time.monotonic() - unit_started, 6),
            packets=dataset_traces.total_packets,
            bytes=trace_bytes,
            cache="miss" if store is not None else None,
        )
    telemetry.emit(
        "study_finish",
        wall_s=round(time.monotonic() - started, 6),
        units_ok=len(results.analyses),
        units_failed=0,
    )


def _run_study_parallel(
    results: StudyResults,
    policy: ErrorPolicy,
    reuse_store: bool,
    jobs: int,
    retry: RetryPolicy | None,
    telemetry: TelemetryLog,
) -> None:
    """The scheduler path: one task per dataset, results via the store."""
    config = results.config
    scratch: tempfile.TemporaryDirectory | None = None
    if config.store_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-runtime-")
        store_dir = scratch.name
    else:
        store_dir = config.store_dir
    try:
        graph = TaskGraph()
        stream = config.stream if config.stream is not None else StreamConfig()
        for name in dict.fromkeys(config.datasets):
            graph.add(
                Task(
                    key=f"dataset:{name}",
                    kind="dataset",
                    payload={
                        "dataset": name,
                        "seed": config.seed,
                        "scale": config.scale,
                        "max_windows": config.max_windows,
                        "out_dir": config.out_dir,
                        "error_policy": policy.value,
                        "store_dir": store_dir,
                        "reuse_store": reuse_store,
                        "engine": config.engine,
                        "stream": asdict(stream) if config.engine == "stream" else None,
                    },
                )
            )
        scheduler = ProcessPoolScheduler(
            _dataset_unit_worker, jobs=jobs, retry=retry, telemetry=telemetry
        )
        unit_results = scheduler.run(graph)
        store = open_store(store_dir)
        enterprise = results.enterprise
        known_scanners = tuple(
            host.ip for host in enterprise.servers(Role.SCANNER)
        )
        for name in config.datasets:
            unit = unit_results[f"dataset:{name}"]
            if not unit.ok:
                if policy is ErrorPolicy.STRICT:
                    raise IngestionError(
                        ErrorKind.WORKER_ERROR,
                        unit.key,
                        None,
                        unit.error.detail if unit.error else "unit failed",
                    )
                if unit.error is not None:
                    results.unit_failures.append(unit.error)
                continue
            manifest = store.lookup(unit.value["manifest_key"])
            cached = (
                store.load_or_none(manifest, policy)
                if manifest is not None
                else None
            )
            if cached is None:
                # The worker finished but its shards cannot be read back
                # (damaged store under a tolerant policy): redo inline.
                dataset_traces, analysis, _ = _generate_and_analyze(
                    name,
                    enterprise,
                    known_scanners,
                    seed=config.seed,
                    scale=config.scale,
                    max_windows=config.max_windows,
                    out_dir=config.out_dir,
                    policy=policy,
                    engine=config.engine,
                    stream=stream,
                )
                worker_io = int(unit.value.get("io_errors", 0) or 0)
                if worker_io:
                    analysis.io_errors["shard_publication"] = (
                        analysis.io_errors.get("shard_publication", 0) + worker_io
                    )
                _adopt_analysis(results, name, dataset_traces, analysis)
                continue
            _adopt_analysis(
                results, name, cached.traces, cached.analysis,
                out_dir=config.out_dir, relocate=True,
            )
    finally:
        if scratch is not None:
            scratch.cleanup()
