"""The end-to-end study pipeline: generate → analyze → report.

``run_study`` is the package's front door: it generates the five LBNL-like
datasets (or a subset), runs the full analysis engine over the resulting
pcap traces, and exposes every table and figure of the paper through
:class:`StudyResults`.

With ``store_dir`` set, every finished analysis is sharded into a
:class:`~repro.store.ConnStore` and subsequent runs rebuild their tables
from cached shards instead of re-parsing pcaps (see :mod:`repro.store`).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from ..analysis.analyzers import DEFAULT_ANALYZERS
from ..analysis.engine import DatasetAnalysis, DatasetAnalyzer
from ..analysis.errors import ErrorPolicy
from ..gen.capture import DatasetTraces, generate_dataset
from ..gen.datasets import DATASET_ORDER, DATASETS
from ..gen.topology import ENTERPRISE_NET, Enterprise, Role
from ..report import figures as figure_builders
from ..report import quality as quality_builders
from ..report import tables as table_builders
from ..report.findings import table5 as findings_table5
from ..report.categories import CategoryBreakdown, category_breakdown
from ..report.model import CdfFigure, SeriesFigure, Table
from ..store.cache import ConnStore
from ..util.fmt import fmt_duration

__all__ = ["StudyConfig", "StudyResults", "run_study", "analyze_dataset"]

#: The registered analyzer roster, as it appears in cache keys.
_ANALYZER_NAMES: tuple[str, ...] = tuple(cls.name for cls in DEFAULT_ANALYZERS)


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of one reproduction run."""

    seed: int = 0
    #: Traffic volume relative to the paper's (1.0 ≈ the full LBNL volume).
    scale: float = 0.01
    datasets: tuple[str, ...] = tuple(DATASET_ORDER)
    #: Truncate each dataset's tap schedule (None = full schedule).
    max_windows: int | None = None
    #: Where pcap traces are written (None = a temporary directory).
    out_dir: str | None = None
    #: How ingestion defects are handled (strict / tolerant / skip-trace).
    error_policy: str = ErrorPolicy.STRICT.value
    #: Root of the connection-record store (None = caching disabled).
    store_dir: str | None = None


@dataclass
class StudyResults:
    """Everything a reproduction run produced."""

    config: StudyConfig
    analyses: dict[str, DatasetAnalysis] = field(default_factory=dict)
    traces: dict[str, DatasetTraces] = field(default_factory=dict)
    breakdowns: dict[str, CategoryBreakdown] = field(default_factory=dict)
    enterprise: Enterprise | None = None

    # -- table / figure access ------------------------------------------------

    def table(self, number: int) -> Table:
        """Build paper table ``number`` (1-15; Table 5 is regenerated with
        measured values substituted into each finding)."""
        builders = {
            1: lambda: table_builders.table1(self.analyses, self._trace_meta()),
            2: lambda: table_builders.table2(self.analyses),
            3: lambda: table_builders.table3(self.analyses),
            4: table_builders.table4,
            5: lambda: findings_table5(self.analyses),
            6: lambda: table_builders.table6(self.analyses),
            7: lambda: table_builders.table7(self.analyses),
            8: lambda: table_builders.table8(self.analyses),
            9: lambda: table_builders.table9(self.analyses),
            10: lambda: table_builders.table10(self.analyses),
            11: lambda: table_builders.table11(self.analyses),
            12: lambda: table_builders.table12(self.analyses),
            13: lambda: table_builders.table13(self.analyses),
            14: lambda: table_builders.table14(self.analyses),
            15: lambda: table_builders.table15(self.analyses),
        }
        if number not in builders:
            raise KeyError(f"no builder for Table {number}")
        return builders[number]()

    def figure(self, number: int):
        """Build paper figure ``number`` (1-10)."""
        builders = {
            1: lambda: (
                figure_builders.figure1(self.breakdowns, by="bytes"),
                figure_builders.figure1(self.breakdowns, by="conns"),
            ),
            2: lambda: figure_builders.figure2(self.analyses),
            3: lambda: figure_builders.figure3(self.analyses),
            4: lambda: figure_builders.figure4(self.analyses),
            5: lambda: figure_builders.figure5(self.analyses),
            6: lambda: figure_builders.figure6(self.analyses),
            7: lambda: figure_builders.figure7(self.analyses),
            8: lambda: figure_builders.figure8(self.analyses),
            9: lambda: figure_builders.figure9(
                self.analyses.get("D4") or next(iter(self.analyses.values()))
            ),
            10: lambda: figure_builders.figure10(self.analyses),
        }
        if number not in builders:
            raise KeyError(f"no builder for Figure {number}")
        return builders[number]()

    def render_table(self, number: int) -> str:
        """Render paper table ``number`` as text."""
        return self.table(number).render()

    def render_figure(self, number: int) -> str:
        """Render paper figure ``number`` as text."""
        built = self.figure(number)
        if isinstance(built, (Table, CdfFigure, SeriesFigure)):
            return built.render()
        if isinstance(built, Mapping):
            return "\n\n".join(item.render() for item in built.values())
        return "\n\n".join(item.render() for item in built)

    def data_quality(self) -> Table:
        """Build the data-quality accounting table (not a paper artifact)."""
        return quality_builders.data_quality_table(self.analyses)

    def render_data_quality(self) -> str:
        """Render the data-quality section as text."""
        return quality_builders.render_data_quality(self.analyses)

    @property
    def total_errors(self) -> int:
        """Every ingestion defect recorded across all datasets."""
        return sum(analysis.total_errors for analysis in self.analyses.values())

    # -- helpers -----------------------------------------------------------------

    def _trace_meta(self) -> dict[str, dict]:
        meta: dict[str, dict] = {}
        for name, dataset in self.traces.items():
            config = dataset.config
            subnets = []
            if self.enterprise is not None:
                covered = {trace.window.subnet_index for trace in dataset.traces}
                subnets = [
                    subnet.subnet
                    for subnet in self.enterprise.subnets
                    if subnet.index in covered
                ]
            meta[name] = {
                "date": config.date,
                "duration": fmt_duration(config.tap_seconds),
                "per_tap": config.per_tap,
                "num_subnets": config.num_subnets,
                "snaplen": config.snaplen,
                "monitored_subnets": subnets,
            }
        return meta


def analyze_dataset(
    name: str,
    traces: DatasetTraces,
    known_scanners: tuple[int, ...] = (),
    error_policy: ErrorPolicy | str = ErrorPolicy.STRICT,
    store: ConnStore | None = None,
    gen_key: str | None = None,
) -> DatasetAnalysis:
    """Run the full analysis engine over one generated dataset.

    With a ``store``, the trace files are digested first and a matching
    cached analysis is returned without opening a single pcap; on a miss
    the fresh analysis is sharded into the store before returning.  The
    content key covers the trace bytes themselves, so any mutation (e.g.
    :func:`repro.gen.faults.corrupt_dataset`) forces a cold re-parse.
    """
    policy = ErrorPolicy.coerce(error_policy)
    digests: list[str] = []
    key: str | None = None
    if store is not None:
        digests = [store.file_digest(trace.path) for trace in traces.traces]
        key = store.content_key(
            name,
            digests,
            _ANALYZER_NAMES,
            policy.value,
            traces.config.full_payload,
            str(ENTERPRISE_NET),
            known_scanners,
        )
        manifest = store.lookup(key)
        if manifest is not None:
            cached = store.load_or_none(manifest, policy)
            if cached is not None:
                return cached.analysis
    analyzer = DatasetAnalyzer(
        name,
        full_payload=traces.config.full_payload,
        internal_net=ENTERPRISE_NET,
        analyzers=[cls() for cls in DEFAULT_ANALYZERS],
        error_policy=policy,
    )
    for trace in traces.traces:
        analyzer.process_pcap(trace.path)
    analysis = analyzer.finish(known_scanners=known_scanners)
    if store is not None and key is not None:
        store.save_analysis(key, analysis, traces, digests, gen_key=gen_key)
    return analysis


def run_study(
    seed: int = 0,
    scale: float = 0.01,
    datasets: tuple[str, ...] | None = None,
    max_windows: int | None = None,
    out_dir: str | None = None,
    error_policy: ErrorPolicy | str = ErrorPolicy.STRICT,
    mutate_traces: Callable[[str, DatasetTraces], None] | None = None,
    store_dir: str | None = None,
    reuse_store: bool = True,
) -> StudyResults:
    """Run the whole reproduction: generate traces, analyze, report.

    With ``out_dir=None``, traces are written to a temporary directory
    and deleted once analyzed (each dataset's pcaps are only needed
    transiently).

    ``error_policy`` selects how ingestion defects are handled (see
    :mod:`repro.analysis.errors`).  ``mutate_traces`` is a hook called
    with ``(dataset name, DatasetTraces)`` after generation and before
    analysis — the seam fault-injection tests use to corrupt trace files
    (:func:`repro.gen.faults.corrupt_dataset`) without patching the
    pipeline.

    ``store_dir`` enables the connection-record store: finished analyses
    are sharded into it, and with ``reuse_store`` a later same-parameter
    run skips both generation and pcap parsing, rebuilding its tables
    from shards.  Corrupt shards follow ``error_policy``: strict raises,
    the tolerant policies fall back to a cold run.  The warm path is
    bypassed whenever ``mutate_traces`` is set (the hook must see real
    trace files), and any pcaps still on disk are digest-verified before
    a cached analysis is trusted.
    """
    policy = ErrorPolicy.coerce(error_policy)
    config = StudyConfig(
        seed=seed,
        scale=scale,
        datasets=tuple(datasets) if datasets is not None else tuple(DATASET_ORDER),
        max_windows=max_windows,
        out_dir=out_dir,
        error_policy=policy.value,
        store_dir=store_dir,
    )
    store = ConnStore(store_dir) if store_dir else None
    enterprise = Enterprise(seed=seed)
    results = StudyResults(config=config, enterprise=enterprise)
    known_scanners = tuple(
        host.ip for host in enterprise.servers(Role.SCANNER)
    )
    for name in config.datasets:
        if name not in DATASETS:
            raise KeyError(f"unknown dataset {name!r}")
        gen_key = None
        if store is not None:
            gen_key = store.generation_key(
                name,
                seed,
                scale,
                max_windows,
                _ANALYZER_NAMES,
                policy.value,
                str(ENTERPRISE_NET),
                known_scanners,
            )
            if reuse_store and mutate_traces is None:
                cached = None
                manifest = store.lookup(gen_key)
                if manifest is not None and store.sources_intact(
                    manifest, Path(out_dir) if out_dir else None
                ):
                    cached = store.load_or_none(manifest, policy)
                if cached is not None:
                    if out_dir:
                        for trace in cached.traces.traces:
                            trace.path = Path(out_dir) / trace.path
                    results.traces[name] = cached.traces
                    results.analyses[name] = cached.analysis
                    results.breakdowns[name] = category_breakdown(
                        cached.analysis.filtered_conns(),
                        cached.analysis.windows_endpoints,
                        internal_net=ENTERPRISE_NET,
                    )
                    continue
        with tempfile.TemporaryDirectory() as tmp:
            target = Path(out_dir) / name if out_dir else Path(tmp)
            target.mkdir(parents=True, exist_ok=True)
            dataset_traces = generate_dataset(
                name,
                enterprise,
                target,
                seed=seed,
                scale=scale,
                max_windows=max_windows,
            )
            if mutate_traces is not None:
                mutate_traces(name, dataset_traces)
            analysis = analyze_dataset(
                name,
                dataset_traces,
                known_scanners,
                error_policy=policy,
                store=store,
                gen_key=gen_key if mutate_traces is None else None,
            )
        results.traces[name] = dataset_traces
        results.analyses[name] = analysis
        results.breakdowns[name] = category_breakdown(
            analysis.filtered_conns(),
            analysis.windows_endpoints,
            internal_net=ENTERPRISE_NET,
        )
    return results
