"""The experiment registry: paper table/figure → modules → shape criteria.

Machine-readable version of DESIGN.md's experiment index.  Each entry
records what the paper reports, which modules implement the pieces, and
the *shape* criteria the reproduction should satisfy (who wins, rough
factors, crossovers) — the benchmark suite asserts against these.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Experiment", "EXPERIMENTS"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible table or figure."""

    exp_id: str
    paper_claim: str
    modules: tuple[str, ...]
    bench: str
    shape: str


EXPERIMENTS: dict[str, Experiment] = {
    "table1": Experiment(
        "Table 1",
        "Five datasets; thousands of internal hosts; D1 largest in packets",
        ("gen.datasets", "gen.capture", "analysis.engine"),
        "benchmarks/test_tables_broad.py::TestTable1",
        "D1 has the most packets; hour-long datasets see more remote hosts than D0",
    ),
    "table2": Experiment(
        "Table 2",
        "IP >= 95% of packets; non-IP dominated by IPX then ARP",
        ("gen.apps.link_gen", "analysis.engine"),
        "benchmarks/test_tables_broad.py::TestTable2",
        "IP > 92% everywhere; IPX is the largest non-IP protocol at router 0",
    ),
    "table3": Experiment(
        "Table 3",
        "Bulk of bytes via TCP (66-95%); bulk of connections via UDP (68-87%); ICMP ~5-8% of conns",
        ("analysis.flow", "analysis.scanfilter"),
        "benchmarks/test_tables_broad.py::TestTable3",
        "TCP wins bytes, UDP wins connections, in every dataset",
    ),
    "figure1": Experiment(
        "Figure 1",
        "name ~45-65% of conns but <1% of bytes; bulk+net-file+backup majority of bytes; most traffic enterprise-internal",
        ("report.categories", "analysis.classify"),
        "benchmarks/test_tables_broad.py::TestFigure1",
        "name tops connections; net-file/backup/bulk top bytes; ent share > wan share overall",
    ),
    "figure2": Experiment(
        "Figure 2",
        "Hosts have more enterprise peers than WAN peers; >90% of hosts talk to at most a couple dozen peers; tails reach hundreds",
        ("analysis.locality",),
        "benchmarks/test_scanfilter_origins.py::TestFigure2",
        "ent fan-in/out medians >= wan medians; p90 <= ~30; max >= 100",
    ),
    "table5": Experiment(
        "Table 5",
        "Index of example per-application findings (qualitative in the paper)",
        ("report.findings",),
        "benchmarks/test_tables_broad.py::TestTable5",
        "every finding row computable from the analyses, none degenerate",
    ),
    "table6": Experiment(
        "Table 6",
        "Automated clients: 34-58% of internal HTTP requests, 59-96% of internal HTTP bytes",
        ("gen.apps.http_gen", "analysis.analyzers.http"),
        "benchmarks/test_http.py::TestTable6",
        "automated clients majority of internal bytes; google dominates bytes, scanner dominates requests in D3",
    ),
    "figure3": Experiment(
        "Figure 3",
        "Clients visit ~an order of magnitude more external web servers than internal ones",
        ("analysis.analyzers.http",),
        "benchmarks/test_http.py::TestFigure3",
        "wan fan-out clearly exceeds ent fan-out (median ratio >= ~3)",
    ),
    "table7": Experiment(
        "Table 7",
        "image most requests; application most bytes; no big ent/wan difference",
        ("analysis.analyzers.http",),
        "benchmarks/test_http.py::TestTable7",
        "image > text in requests; application largest in bytes",
    ),
    "figure4": Experiment(
        "Figure 4",
        "HTTP reply sizes: no significant ent/wan difference; medians ~KBs with heavy tails",
        ("analysis.analyzers.http",),
        "benchmarks/test_http.py::TestFigure4",
        "ent and wan medians within ~4x of each other; p99 >> median",
    ),
    "table8": Experiment(
        "Table 8",
        "SMTP+IMAP(/S) >= 94% of email bytes; IMAP4 collapses after D0; D0-D2 volumes >> D3-D4",
        ("gen.apps.email_gen", "analysis.analyzers.email"),
        "benchmarks/test_email_nameservices.py::TestTable8",
        "dominant fraction >= 0.9; IMAP4 bytes shrink by >10x from D0 to D1+; mail-subnet datasets carry more email",
    ),
    "figure5": Experiment(
        "Figure 5",
        "WAN SMTP durations ~an order of magnitude above internal; internal IMAP/S lives 1-2 orders longer than WAN",
        ("gen.tcpsim", "analysis.analyzers.email"),
        "benchmarks/test_email_nameservices.py::TestFigure5",
        "SMTP wan median >> ent median; IMAP/S ent median >> wan median",
    ),
    "figure6": Experiment(
        "Figure 6",
        "Email flow sizes similar ent vs wan; >95% below 1MB with upper tails",
        ("analysis.analyzers.email",),
        "benchmarks/test_email_nameservices.py::TestFigure6",
        "P(size < 1MB) >= 0.9 for both localities",
    ),
    "nameservices": Experiment(
        "§5.1.3",
        "DNS: A majority then AAAA; NOERROR 77-86%, NXDOMAIN 11-21%; internal latency ~0.4ms vs ~20ms WAN. Netbios/NS: queries 81-85%; distinct-query failures 36-50%; top-10 clients < 40%",
        ("analysis.analyzers.dns", "analysis.analyzers.netbios"),
        "benchmarks/test_email_nameservices.py::TestNameServices",
        "qtype ordering A>AAAA>PTR>MX; wan latency >> ent latency; NBNS failure rate 2-3x DNS's",
    ),
    "table9": Experiment(
        "Table 9",
        "Netbios/SSN success 82-92%; CIFS strikingly low 46-68% (parallel-port artifact); EPM 99-100%",
        ("gen.apps.windows_gen", "analysis.analyzers.windows", "analysis.failures"),
        "benchmarks/test_windows.py::TestTable9",
        "EPM > SSN > CIFS success; CIFS rejections dominate its failures",
    ),
    "table10": Experiment(
        "Table 10",
        "DCE/RPC pipes the largest CIFS component (33-48% of messages, 32-77% of bytes); file sharing second",
        ("analysis.analyzers.windows",),
        "benchmarks/test_windows.py::TestTable10",
        "RPC Pipes >= Windows File Sharing in both requests and bytes",
    ),
    "table11": Experiment(
        "Table 11",
        "Spoolss/WritePrinter dominates D3/D4 (63-91% of requests, 94-99% of bytes); NetLogon+LsaRPC dominate D0",
        ("gen.topology", "analysis.analyzers.windows"),
        "benchmarks/test_windows.py::TestTable11",
        "auth > print at the D0 vantage; print > auth at D3/D4",
    ),
    "table12": Experiment(
        "Table 12",
        "NFS moves more bytes than NCP; NCP has more connections only in D0; both shrink at the D3/D4 vantage",
        ("gen.apps.nfs_gen", "gen.apps.ncp_gen"),
        "benchmarks/test_netfile.py::TestTable12",
        "NFS bytes > NCP bytes; D0 NCP conns > D0 NFS conns",
    ),
    "table13": Experiment(
        "Table 13",
        "Read/write carry 88-99% of NFS bytes; getattr joins them in request counts; mixes vary by dataset",
        ("analysis.analyzers.nfs",),
        "benchmarks/test_netfile.py::TestTable13",
        "read+write >= 85% of bytes; D0 read-heavy, D4 write-heavy in requests",
    ),
    "table14": Experiment(
        "Table 14",
        "Read dominates NCP bytes (70-82%); file search 7-16% of requests but 1-4% of bytes",
        ("analysis.analyzers.ncp",),
        "benchmarks/test_netfile.py::TestTable14",
        "Read largest byte share; search's request share >> its byte share",
    ),
    "figure7": Experiment(
        "Figure 7",
        "Requests per host-pair span a handful to hundreds of thousands",
        ("analysis.analyzers.nfs", "analysis.analyzers.ncp"),
        "benchmarks/test_netfile.py::TestFigure7",
        "max/min >= 100x; heavy upper tail",
    ),
    "figure8": Experiment(
        "Figure 8",
        "NFS sizes dual-mode (~100B control, ~8KB data); NCP modal (14B read requests; 2/10/260B replies)",
        ("proto.nfs", "proto.ncp"),
        "benchmarks/test_netfile.py::TestFigure8",
        "NFS has mass near 100B and near 8KB; NCP request mode at 14B",
    ),
    "table15": Experiment(
        "Table 15",
        "Dantz and Veritas dominate backup; Veritas data strictly client->server; Dantz bidirectional",
        ("gen.apps.backup_gen", "analysis.analyzers.backup"),
        "benchmarks/test_backup_load.py::TestTable15",
        "Dantz+Veritas >> Connected in bytes; Veritas reverse fraction ~0; Dantz's substantial",
    ),
    "figure9": Experiment(
        "Figure 9",
        "Networks far from saturated; peaks fall as the averaging window grows; typical usage 1-2 orders below peak",
        ("util.timeline", "analysis.load"),
        "benchmarks/test_backup_load.py::TestFigure9",
        "peak(1s) >= peak(10s) >= peak(60s); median utilization << peak",
    ),
    "figure10": Experiment(
        "Figure 10",
        "Retransmission rates mostly <1%; internal < WAN typically; internal sometimes >2% (one Veritas outlier ~5%)",
        ("analysis.tcpstate", "analysis.load"),
        "benchmarks/test_backup_load.py::TestFigure10",
        "most traces < 1%; at least one internal outlier > 2%",
    ),
    "scanfilter": Experiment(
        "§3 scan filter",
        "Scanners contact >50 hosts in near-monotonic order; filtering removes 4-18% of connections",
        ("gen.apps.scanner_gen", "analysis.scanfilter"),
        "benchmarks/test_scanfilter_origins.py::TestScanFilter",
        "removed fraction within ~3-25%; known internal scanners found",
    ),
    "origins": Experiment(
        "§4 origins",
        "71-79% of flows enterprise-internal; 2-3% ent->wan; 6-11% wan->ent; 5-10% mcast-int; 4-7% mcast-ext",
        ("analysis.locality",),
        "benchmarks/test_scanfilter_origins.py::TestOrigins",
        "ent-ent dominates (>60%); multicast shares visible; wan->ent >= ent->wan at server vantage points",
    ),
}
