"""Command-line entry point: run the study and print tables/figures.

Installed as ``repro-study``::

    repro-study --scale 0.01 --seed 42 --tables 2 3 --figures 1 10
"""

from __future__ import annotations

import argparse
import sys

from ..analysis.errors import ErrorPolicy
from ..gen.datasets import DATASET_ORDER
from .study import run_study

__all__ = ["main"]

_ALL_TABLES = list(range(1, 16))
_ALL_FIGURES = list(range(1, 11))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description=(
            "Reproduce 'A First Look at Modern Enterprise Traffic' "
            "(Pang et al., IMC 2005) on synthetic LBNL-like traces."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=0.01,
        help="traffic volume relative to the paper's (default 0.01)",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=DATASET_ORDER,
        choices=DATASET_ORDER,
        help="datasets to generate and analyze",
    )
    parser.add_argument(
        "--max-windows", type=int, default=None, help="truncate each tap schedule"
    )
    parser.add_argument(
        "--out-dir", default=None, help="keep generated pcap traces here"
    )
    parser.add_argument(
        "--error-policy",
        default=ErrorPolicy.STRICT.value,
        choices=[policy.value for policy in ErrorPolicy],
        help=(
            "how ingestion defects are handled: strict raises on the first "
            "defect, tolerant salvages within a per-trace error budget, "
            "skip-trace quarantines a trace on its first defect "
            "(default: strict)"
        ),
    )
    parser.add_argument(
        "--tables",
        nargs="*",
        type=int,
        default=None,
        help="table numbers to print (default: all)",
    )
    parser.add_argument(
        "--figures",
        nargs="*",
        type=int,
        default=None,
        help="figure numbers to print (default: all)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render CDF figures as ASCII plots instead of quantile tables",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the study and print the requested tables/figures."""
    args = _build_parser().parse_args(argv)
    results = run_study(
        seed=args.seed,
        scale=args.scale,
        datasets=tuple(args.datasets),
        max_windows=args.max_windows,
        out_dir=args.out_dir,
        error_policy=args.error_policy,
    )
    tables = args.tables if args.tables is not None else _ALL_TABLES
    figures = args.figures if args.figures is not None else _ALL_FIGURES
    for number in tables:
        print(results.render_table(number))
        print()
    for number in figures:
        if args.plot:
            print(_render_figure_plots(results, number))
        else:
            print(results.render_figure(number))
        print()
    # Non-strict runs may have absorbed defects; always say what they were.
    if args.error_policy != ErrorPolicy.STRICT.value or results.total_errors:
        print(results.render_data_quality())
        print()
    return 0


def _render_figure_plots(results, number: int) -> str:
    """Render a figure, using ASCII plots for its CDF parts."""
    from ..report.model import CdfFigure, SeriesFigure, Table

    built = results.figure(number)
    if isinstance(built, dict):
        parts = list(built.values())
    elif isinstance(built, (Table, CdfFigure, SeriesFigure)):
        parts = [built]
    else:
        parts = list(built)
    rendered = []
    for part in parts:
        if isinstance(part, CdfFigure):
            rendered.append(part.render_plot())
        else:
            rendered.append(part.render())
    return "\n\n".join(rendered)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
