"""Command-line entry point: run the study and print tables/figures.

Installed as ``repro-study``::

    repro-study --scale 0.01 --seed 42 --tables 2 3 --figures 1 10

A ``store`` subcommand inspects the connection-record store::

    repro-study store ls --store-dir .store
    repro-study store query --store-dir .store --by category --dataset D0
    repro-study store gc --store-dir .store
    repro-study store scrub --store-dir .store
    repro-study store repair --store-dir .store --traces-dir traces/

A ``stream`` subcommand runs the same study through the single-pass
bounded-memory engine (``docs/streaming.md``), with live per-window
progress on stderr and optional crash-resumable checkpoints::

    repro-study stream --datasets D0 --window 60 --max-flows 65536 \\
        --store-dir .store --checkpoint-every 50000

A ``daemon`` subcommand runs the always-on supervised multi-tenant
ingestion service (``docs/daemon.md``)::

    repro-study daemon --store-dir .store --tenant lan=traces/lan/ \\
        --tenant wan=traces/wan.pcap --window 60 \\
        --flow-budget 4096 --flow-budget lan=512 \\
        --config daemon.json --telemetry daemon.jsonl
    repro-study daemon tail --telemetry daemon.jsonl

A ``serve`` subcommand runs the long-running analysis HTTP service
(``docs/service.md``), and ``loadgen`` hammers it with concurrent
simulated users and reports latency percentiles::

    repro-study serve --store-dir .store --port 8080 \\
        --telemetry service.jsonl
    repro-study loadgen --port 8080 --users 8 --duration 5
"""

from __future__ import annotations

import argparse
import sys

from ..analysis.errors import ErrorPolicy
from ..gen.datasets import DATASET_ORDER
from .study import run_study

__all__ = ["main"]

_ALL_TABLES = list(range(1, 16))
_ALL_FIGURES = list(range(1, 11))


def _add_study_args(parser: argparse.ArgumentParser) -> None:
    """The flags shared by the main study run and ``stream``."""
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=0.01,
        help="traffic volume relative to the paper's (default 0.01)",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=DATASET_ORDER,
        choices=DATASET_ORDER,
        help="datasets to generate and analyze",
    )
    parser.add_argument(
        "--max-windows", type=int, default=None, help="truncate each tap schedule"
    )
    parser.add_argument(
        "--out-dir", default=None, help="keep generated pcap traces here"
    )
    parser.add_argument(
        "--error-policy",
        default=ErrorPolicy.STRICT.value,
        choices=[policy.value for policy in ErrorPolicy],
        help=(
            "how ingestion defects are handled: strict raises on the first "
            "defect, tolerant salvages within a per-trace error budget, "
            "skip-trace quarantines a trace on its first defect "
            "(default: strict)"
        ),
    )
    parser.add_argument(
        "--tables",
        nargs="*",
        type=int,
        default=None,
        help="table numbers to print (default: all)",
    )
    parser.add_argument(
        "--figures",
        nargs="*",
        type=int,
        default=None,
        help="figure numbers to print (default: all)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render CDF figures as ASCII plots instead of quantile tables",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="connection-record store root: cache analyses as shards there "
        "and reuse them on later same-parameter runs",
    )
    parser.add_argument(
        "--no-reuse-store",
        action="store_true",
        help="write shards but never read them (force a cold run)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for per-dataset parallelism "
        "(default 1 = in-process sequential, 0 = all cores); any worker "
        "count produces byte-identical tables",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="narrate unit progress on stderr and print a final "
        "per-unit timing table",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="append the structured JSONL runtime event stream here",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description=(
            "Reproduce 'A First Look at Modern Enterprise Traffic' "
            "(Pang et al., IMC 2005) on synthetic LBNL-like traces."
        ),
    )
    _add_study_args(parser)
    parser.add_argument(
        "--engine",
        default="batch",
        choices=("batch", "stream"),
        help="analysis engine: batch materializes each trace before "
        "analyzing, stream ingests it in one bounded-memory pass with "
        "identical output (default: batch)",
    )
    return parser


def _build_stream_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study stream",
        description=(
            "Run the study through the single-pass bounded-memory "
            "streaming engine (byte-identical tables under the default "
            "knobs; see docs/streaming.md)."
        ),
    )
    _add_study_args(parser)
    parser.add_argument(
        "--window",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="live aggregation window (default 60s); with --progress "
        "each closed window is narrated on stderr",
    )
    parser.add_argument(
        "--max-flows",
        type=int,
        default=None,
        help="flow-table capacity; beyond it the least-recently-active "
        "flow is evicted early (counted as flow_overflow in the "
        "data-quality section, never an error)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict a TCP flow idle this long (default 3600s; UDP/ICMP "
        "always use the batch engine's 60s gap rule)",
    )
    parser.add_argument(
        "--hard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict any flow older than this regardless of activity "
        "(default: no cap)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="PACKETS",
        help="with --store-dir, publish a resumable checkpoint every N "
        "packets (0 = off); an interrupted run picks up from the last "
        "checkpoint",
    )
    return parser


def _build_store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study store",
        description="Inspect and query the connection-record store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ls = sub.add_parser("ls", help="list cached dataset analyses")
    query = sub.add_parser("query", help="aggregate cached connection records")
    gc = sub.add_parser("gc", help="delete unreferenced shard objects")
    scrub = sub.add_parser(
        "scrub",
        help="verify every shard and manifest; quarantine corrupt files",
    )
    repair = sub.add_parser(
        "repair",
        help="scrub, then re-derive damaged shards from source traces",
    )
    tier = sub.add_parser(
        "tier",
        help="tiered multi-root placement: status, init, rebalance, compact",
    )
    tier_sub = tier.add_subparsers(dest="tier_command", required=True)
    tier_status = tier_sub.add_parser(
        "status", help="per-root placement, hot-tier, and rebalance state"
    )
    tier_init = tier_sub.add_parser(
        "init",
        help="stamp a placement manifest onto a store (objects stay put "
        "until the first rebalance)",
    )
    tier_init.add_argument(
        "--root", action="append", default=None, metavar="PATH",
        help="additional object root (repeatable; absolute, or relative "
        "to the primary store dir)",
    )
    tier_init.add_argument(
        "--hot-bytes", type=int, default=None, metavar="BYTES",
        help="hot-tier RAM budget for verified shard bytes "
        "(default 64 MiB)",
    )
    tier_init.add_argument(
        "--pin", action="append", default=None, metavar="DIGEST",
        help="pin a shard digest into the hot tier (repeatable; never "
        "evicted once loaded)",
    )
    tier_init.add_argument(
        "--replicas", type=int, default=1, metavar="R",
        help="publish every object (and mirror every manifest) to R "
        "distinct roots so any single root can be lost without data "
        "loss (default 1 = no replication)",
    )
    tier_rebalance = tier_sub.add_parser(
        "rebalance",
        help="move buckets toward the leveled placement (crash-safe, "
        "incremental)",
    )
    tier_rebalance.add_argument(
        "--add-root", action="append", default=None, metavar="PATH",
        help="declare a new root before rebalancing (repeatable)",
    )
    tier_rebalance.add_argument(
        "--max-buckets", type=int, default=None, metavar="N",
        help="bound one pass to N bucket moves (default: finish the job)",
    )
    tier_compact = tier_sub.add_parser(
        "compact",
        help="merge small streaming checkpoint batch shards into one "
        "super-shard per checkpoint",
    )
    tier_compact.add_argument(
        "--min-batches", type=int, default=2, metavar="N",
        help="only compact checkpoints with at least N batches (default 2)",
    )
    tier_compact.add_argument(
        "--key", action="append", default=None, metavar="CKPT_KEY",
        help="restrict to specific checkpoint keys (repeatable)",
    )
    for command in (ls, query, gc, scrub, repair,
                    tier_status, tier_init, tier_rebalance, tier_compact):
        command.add_argument(
            "--store-dir", required=True, help="connection-record store root"
        )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be reclaimed without deleting anything",
    )
    from ..store.cache import DEFAULT_TMP_GRACE

    tier_compact.add_argument(
        "--grace", type=float, default=DEFAULT_TMP_GRACE, metavar="SECONDS",
        help="skip checkpoints whose manifest changed within this window "
        "— a live engine owns them "
        f"(default {DEFAULT_TMP_GRACE:.0f}s; 0 compacts everything)",
    )
    for command in (gc, scrub):
        command.add_argument(
            "--tmp-grace",
            type=float,
            default=DEFAULT_TMP_GRACE,
            metavar="SECONDS",
            help="treat .tmp files younger than this as a live daemon's "
            "in-flight publishes and leave them alone "
            f"(default {DEFAULT_TMP_GRACE:.0f}s; 0 sweeps everything)",
        )
    scrub.add_argument(
        "--audit-only",
        action="store_true",
        help="report damage without moving anything into quarantine",
    )
    scrub.add_argument(
        "--incremental",
        action="store_true",
        help="run as a resumable background task: verify a bounded batch "
        "per step, persist a progress cursor (scrub-cursor.json), pick "
        "up where the last invocation stopped",
    )
    scrub.add_argument(
        "--budget", type=int, default=250, metavar="N",
        help="with --incremental: items verified per step (default 250)",
    )
    scrub.add_argument(
        "--max-steps", type=int, default=0, metavar="N",
        help="with --incremental: stop after N steps even if the cycle "
        "is unfinished (default 0 = run the cycle to completion)",
    )
    scrub.add_argument(
        "--reset-cursor",
        action="store_true",
        help="with --incremental: discard the saved cursor and start a "
        "fresh cycle",
    )
    repair.add_argument(
        "--traces-dir",
        default=None,
        metavar="DIR",
        help="directory holding the source pcap traces (a study --out-dir); "
        "repair verifies each trace's digest before trusting it",
    )
    repair.add_argument(
        "--replicas",
        action="store_true",
        help="replica repair instead: drain the under-replicated queue "
        "and sweep the store, restoring every object and manifest to "
        "its full replica set from digest-verified copies (tiered "
        "stores only)",
    )

    from ..store.query import GROUP_DIMENSIONS

    query.add_argument(
        "--by",
        default="category",
        choices=GROUP_DIMENSIONS,
        help="grouping dimension (default: category)",
    )
    query.add_argument("--dataset", default=None, help="restrict to one dataset")
    query.add_argument("--proto", default=None, help="transport, e.g. tcp/udp")
    query.add_argument(
        "--service", default=None, help="application label or category"
    )
    query.add_argument(
        "--locality", default=None, help="e.g. ent-ent / ent-wan / wan-ent"
    )
    query.add_argument("--subnet", default=None, help="CIDR on either endpoint")
    query.add_argument(
        "--state", default=None, help="connection state, e.g. SF / REJ"
    )
    query.add_argument(
        "--since", type=float, default=None, help="min first-packet timestamp"
    )
    query.add_argument(
        "--until", type=float, default=None, help="max first-packet timestamp"
    )
    query.add_argument(
        "--min-bytes", type=int, default=None, help="min connection bytes"
    )
    query.add_argument(
        "--include-scanners",
        action="store_true",
        help="include records from scan-filtered sources",
    )
    return parser


def _store_main(argv: list[str]) -> int:
    """The ``repro-study store`` subcommand family."""
    from ..store import ConnFilter, StoreQuery
    from ..store.tier import open_store

    args = _build_store_parser().parse_args(argv)
    if args.command == "tier":
        return _store_tier_main(args)
    store = open_store(args.store_dir)
    if args.command == "scrub":
        if args.incremental:
            from ..store.tier import IncrementalScrubber

            scrubber = IncrementalScrubber(store)
            if args.reset_cursor:
                scrubber.reset()
            cursor = scrubber.run(
                budget=args.budget,
                quarantine=not args.audit_only,
                tmp_grace_s=args.tmp_grace,
                max_steps=args.max_steps,
            )
            report = scrubber.report(cursor)
            if cursor["phase"] != "done":
                print(
                    f"scrub paused at phase {cursor['phase']!r} "
                    f"({cursor['objects_checked']} objects, "
                    f"{cursor['manifests_checked']} manifests so far); "
                    "rerun to resume"
                )
                print(report.render())
                return 0
            print(report.render())
            return 0 if report.ok else 1
        from ..store.scrub import StoreScrubber

        report = StoreScrubber(store).scrub(
            quarantine=not args.audit_only, tmp_grace_s=args.tmp_grace
        )
        print(report.render())
        return 0 if report.ok else 1
    if args.command == "repair" and args.replicas:
        from ..store.tier import TieredStore

        if not isinstance(store, TieredStore):
            print(
                f"error: {args.store_dir} is not a tiered store — "
                "`repair --replicas` needs one (run `store tier init`)",
                file=sys.stderr,
            )
            return 2
        report = store.repair_replicas()
        print(report.render())
        return 0 if report.ok else 1
    if args.command == "repair":
        from ..store.scrub import StoreScrubber

        outcomes = StoreScrubber(store).repair(traces_dir=args.traces_dir)
        if not outcomes:
            print("nothing to repair")
            return 0
        failed = 0
        for outcome in outcomes:
            if outcome.repaired:
                print(
                    f"repaired {outcome.dataset} (key={outcome.key[:12]}…): "
                    f"{len(outcome.restored)} object(s) restored to their "
                    "original content addresses"
                )
            else:
                failed += 1
                print(
                    f"could not repair {outcome.dataset} "
                    f"(key={outcome.key[:12]}…): {outcome.reason}"
                )
        return 0 if failed == 0 else 1
    if args.command == "ls":
        stats = store.stats()
        print(f"store {stats['root']}")
        print(
            f"  {stats['manifests']} cached analyses, "
            f"{stats['objects']} shard objects, {stats['bytes']} bytes"
        )
        for manifest in store.manifests():
            print(
                f"  {manifest['dataset']}  key={manifest['key'][:12]}…  "
                f"{len(manifest['traces'])} traces  schema v{manifest['schema']}"
            )
        return 0
    if args.command == "gc":
        report = store.gc(dry_run=args.dry_run, tmp_grace_s=args.tmp_grace)
        verb = "would remove" if report.dry_run else "removed"
        freed = "reclaiming" if report.dry_run else "reclaimed"
        spared = (
            f" ({report.in_flight_tmp} in-flight temp files spared)"
            if report.in_flight_tmp
            else ""
        )
        print(
            f"{verb} {len(report.removed)} unreferenced objects and "
            f"{report.stale_tmp} stale temp files, "
            f"{freed} {report.reclaimed_bytes} bytes{spared}"
        )
        return 0
    flt = ConnFilter(
        dataset=args.dataset,
        proto=args.proto,
        service=args.service,
        locality=args.locality,
        subnet=args.subnet,
        since=args.since,
        until=args.until,
        state=args.state,
        min_bytes=args.min_bytes,
        include_scanners=args.include_scanners,
    )
    print(StoreQuery(store).table(flt, by=args.by).render())
    return 0


def _store_tier_main(args) -> int:
    """The ``repro-study store tier`` subcommand family."""
    from ..store.tier import (
        DEFAULT_HOT_BYTES,
        TieredStore,
        compact_checkpoints,
        init_tier,
        open_store,
    )

    if args.tier_command == "init":
        try:
            store = init_tier(
                args.store_dir,
                roots=tuple(args.root or ()),
                hot_bytes=(
                    args.hot_bytes if args.hot_bytes is not None
                    else DEFAULT_HOT_BYTES
                ),
                pinned=tuple(args.pin or ()),
                replicas=args.replicas,
            )
        except (FileExistsError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        status = store.tier_status()
        replicas = (
            f", replicas={status['replicas']}"
            if status["replicas"] > 1
            else ""
        )
        print(
            f"initialized tier at {args.store_dir}: "
            f"{len(status['roots'])} root(s){replicas}, "
            f"{len(status['misplaced'])} bucket(s) awaiting rebalance"
        )
        return 0

    store = open_store(args.store_dir)
    if args.tier_command == "compact":
        # Compaction works on flat stores too — it only touches
        # checkpoint manifests and their objects.
        report = compact_checkpoints(
            store,
            min_batches=args.min_batches,
            grace_s=args.grace,
            keys=tuple(args.key or ()),
        )
        print(report.render())
        return 0
    if not isinstance(store, TieredStore):
        print(
            f"error: {args.store_dir} is not a tiered store "
            "(run `store tier init` first)",
            file=sys.stderr,
        )
        return 2
    if args.tier_command == "rebalance":
        for spec in args.add_root or ():
            try:
                store.add_root(spec)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        report = store.rebalance(max_buckets=args.max_buckets)
        print(
            f"moved {len(report.moved)} bucket(s): copied {report.copied} "
            f"object(s) ({report.bytes_copied} bytes), reaped "
            f"{report.deleted} duplicate(s); "
            + (
                f"{len(report.pending)} bucket(s) still pending"
                if report.pending
                else "placement is level"
            )
        )
        return 0
    # status
    status = store.tier_status()
    replicas = (
        f" (replicas={status['replicas']}, "
        f"effective={status['effective_replicas']})"
        if status["replicas"] > 1
        else ""
    )
    print(f"tier at {args.store_dir}{replicas}")
    for root in status["roots"]:
        if root["status"] == "down":
            print(
                f"  root[{root['index']}] {root['path']}: DOWN "
                f"({root['buckets']} bucket(s) assigned; reads fall back "
                "to replicas)"
            )
            continue
        breaker = root["health"]["state"]
        suffix = f" [breaker {breaker}]" if breaker != "closed" else ""
        print(
            f"  root[{root['index']}] {root['path']}: "
            f"{root['buckets']} bucket(s), {root['objects']} object(s), "
            f"{root['bytes']} bytes{suffix}"
        )
    under = status["under_replicated"]
    if under["objects"] or under["manifests"]:
        print(
            f"  under-replicated: {under['objects']} object(s), "
            f"{under['manifests']} manifest(s) queued "
            "(run `store repair --replicas`)"
        )
    if status["moving"]:
        print(f"  moving: {status['moving']}")
    print(
        "  misplaced buckets: "
        + (", ".join(status["misplaced"]) if status["misplaced"] else "none")
    )
    hot = status["hot"]
    print(
        f"  hot tier: {hot['entries']} entries, {hot['bytes']}/"
        f"{hot['max_bytes']} bytes, {hot['hits']} hits / "
        f"{hot['misses']} misses, {hot['evictions']} evictions, "
        f"{hot['pinned']} pinned"
    )
    return 0


def _build_daemon_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study daemon",
        description=(
            "Run the always-on supervised ingestion daemon: one "
            "crash-tolerant streaming feed per tenant, rolling-window "
            "publication, poison-feed quarantine, and threshold alerts "
            "(see docs/daemon.md).  SIGTERM drains gracefully: feeds "
            "flush a final checkpoint and the next start resumes there."
        ),
    )
    parser.add_argument(
        "--store-dir",
        required=True,
        help="store root: checkpoints land in the store proper, rolling "
        "windows under <store>/daemon/<tenant>/",
    )
    parser.add_argument(
        "--tenant",
        action="append",
        required=True,
        metavar="NAME=PCAP_OR_DIR",
        help="one trace feed (repeatable): a pcap file or a directory "
        "of *.pcap files",
    )
    parser.add_argument(
        "--window", type=float, default=None, metavar="SECONDS",
        help="rolling aggregation window (default 60s)",
    )
    parser.add_argument(
        "--flow-budget", action="append", default=None, metavar="N|NAME=N",
        help="flow-table capacity: a bare N applies to every tenant, "
        "NAME=N overrides one tenant (repeatable; LRU eviction beyond "
        "the budget — one tenant's flood never evicts a neighbor's "
        "flows)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="PACKETS",
        help="packets between resumable checkpoints (default 5000, 0=off)",
    )
    parser.add_argument(
        "--error-policy",
        default=None,
        choices=[policy.value for policy in ErrorPolicy],
        help="feed ingestion policy (default tolerant: an always-on "
        "service salvages damaged input instead of dying on it)",
    )
    parser.add_argument(
        "--packet-rate", type=float, default=None, metavar="PPS",
        help="pace each feed to ~this many packets/second "
        "(0 = full speed)",
    )
    parser.add_argument(
        "--watch", action="store_const", const=True, default=None,
        help="directory-sourced feeds rescan for newly dropped pcaps "
        "during the run (instead of only at restart) and keep running "
        "until drained",
    )
    parser.add_argument(
        "--watch-interval", type=float, default=None, metavar="SECONDS",
        help="seconds between watch rescans of an idle feed (default 2)",
    )
    parser.add_argument(
        "--no-maintenance", dest="maintenance",
        action="store_const", const=False, default=None,
        help="disable idle-loop store maintenance (incremental scrub + "
        "checkpoint compaction between traces)",
    )
    parser.add_argument(
        "--maintenance-interval", type=float, default=None,
        metavar="SECONDS",
        help="minimum seconds between idle maintenance ticks (default 5)",
    )
    parser.add_argument(
        "--config", default=None, metavar="PATH",
        help="JSON daemon config: daemon-wide settings, per-tenant "
        "flow_budget overrides, and alert rules (global + per-tenant); "
        "explicit CLI flags win over the file's settings, and per-tenant "
        "values win over global ones (see docs/daemon.md)",
    )
    parser.add_argument(
        "--alert-config", default=None, metavar="PATH",
        help="JSON alert rules: {\"rules\": [{name, metric, threshold, "
        "clear_threshold, raise_after, clear_after, tenant}, ...]} "
        "(additive with --config rules)",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="append the daemon's JSONL event stream (feed lifecycle, "
        "windows, alerts) here",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="narrate events on stderr",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.5, metavar="SECONDS",
        help="first feed-restart backoff; doubles per consecutive crash",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, default=15.0, metavar="SECONDS",
        help="a feed silent this long is presumed hung and killed "
        "(0 disables the watchdog)",
    )
    parser.add_argument(
        "--max-crashes", type=int, default=3,
        help="consecutive crashes before a feed is quarantined as poison",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=None, metavar="SECONDS",
        help="SIGTERM drain: how long feeds get to flush their final "
        "checkpoints before SIGKILL (default 30s)",
    )
    return parser


def _build_daemon_tail_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study daemon tail",
        description="Follow a live daemon's JSONL telemetry stream.",
    )
    parser.add_argument(
        "--telemetry", required=True, metavar="PATH",
        help="the stream the daemon was started with",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="stop following after this long (default: forever)",
    )
    parser.add_argument(
        "--events", nargs="*", default=None,
        help="only show these event types (e.g. alert_raise alert_clear)",
    )
    return parser


def _daemon_main(argv: list[str]) -> int:
    """The ``repro-study daemon`` subcommand family."""
    import json

    if argv and argv[0] == "tail":
        from ..runtime.telemetry import follow_events

        args = _build_daemon_tail_parser().parse_args(argv[1:])
        wanted = set(args.events) if args.events else None
        try:
            for event in follow_events(args.telemetry, timeout=args.timeout):
                if wanted is None or event.get("event") in wanted:
                    print(json.dumps(event, sort_keys=True), flush=True)
        except KeyboardInterrupt:
            pass
        return 0

    from ..daemon import (
        AlertEngine,
        DaemonFileConfig,
        DaemonSupervisor,
        load_alert_rules,
        load_daemon_config,
        parse_flow_budget,
        parse_tenant,
    )
    from ..runtime.scheduler import RetryPolicy
    from ..runtime.telemetry import TelemetryLog

    args = _build_daemon_parser().parse_args(argv)
    try:
        tenants = [parse_tenant(text) for text in args.tenant]
        file_cfg = (
            load_daemon_config(args.config)
            if args.config is not None
            else DaemonFileConfig()
        )
        rules = list(file_cfg.rules)
        if args.alert_config is not None:
            rules.extend(load_alert_rules(args.alert_config))
        cli_global_budget: int | None = None
        cli_tenant_budgets: dict[str, int] = {}
        for text in args.flow_budget or []:
            tenant, budget = parse_flow_budget(text)
            if tenant is None:
                cli_global_budget = budget
            else:
                cli_tenant_budgets[tenant] = budget
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Only explicitly-given flags override the config file's settings.
    overrides: dict = {}
    for name in (
        "window", "checkpoint_every", "error_policy", "packet_rate",
        "drain_timeout", "watch", "watch_interval",
        "maintenance", "maintenance_interval",
    ):
        value = getattr(args, name)
        if value is not None:
            overrides[name] = value
    overrides["retry"] = RetryPolicy(
        backoff=args.backoff,
        heartbeat_timeout=(
            args.heartbeat_timeout if args.heartbeat_timeout > 0 else None
        ),
        max_crashes=args.max_crashes,
    )
    config = file_cfg.resolve(
        cli_global_budget=cli_global_budget,
        cli_tenant_budgets=cli_tenant_budgets,
        **overrides,
    )
    with TelemetryLog(path=args.telemetry, progress=False) as telemetry:
        supervisor = DaemonSupervisor(
            tenants,
            args.store_dir,
            config=config,
            alerts=AlertEngine(rules),
            telemetry=telemetry,
        )
        statuses = supervisor.run()
    for tenant in sorted(statuses):
        line = f"[daemon] {tenant}: {statuses[tenant]}"
        print(line, file=sys.stderr if args.progress else sys.stdout)
    failed = sum(
        1 for status in statuses.values()
        if status not in ("done", "drained")
    )
    return 0 if failed == 0 else 1


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study serve",
        description=(
            "Run the long-running analysis HTTP service: store queries, "
            "CDFs, and paper tables behind an LRU response cache; study "
            "submission as bounded background jobs (429 + Retry-After "
            "under saturation); live read-through of daemon window "
            "artifacts (see docs/service.md).  SIGTERM shuts down "
            "gracefully."
        ),
    )
    parser.add_argument(
        "--store-dir", required=True,
        help="connection-record store root the service queries (and "
        "where submitted studies land)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    parser.add_argument(
        "--port", type=int, default=8080,
        help="listen port (default 8080; 0 picks a free one)",
    )
    parser.add_argument(
        "--cache-entries", type=int, default=256,
        help="LRU response-cache capacity in responses (default 256)",
    )
    parser.add_argument(
        "--job-workers", type=int, default=1,
        help="background study workers (default 1)",
    )
    parser.add_argument(
        "--job-queue", type=int, default=4,
        help="pending-job queue bound; beyond it POST /studies answers "
        "429 (default 4)",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="append the service's JSONL request/event stream here "
        "(also enables the GET /events tail endpoint)",
    )
    return parser


def _serve_main(argv: list[str]) -> int:
    """The ``repro-study serve`` subcommand."""
    import signal
    import threading

    from ..runtime.telemetry import TelemetryLog
    from ..service import ReproService

    args = _build_serve_parser().parse_args(argv)
    telemetry = (
        TelemetryLog(path=args.telemetry) if args.telemetry else None
    )
    service = ReproService(
        args.store_dir,
        host=args.host,
        port=args.port,
        cache_entries=args.cache_entries,
        job_workers=args.job_workers,
        job_queue=args.job_queue,
        telemetry=telemetry,
    )
    service.start_background()
    print(
        f"[service] listening on {service.url} (store {args.store_dir})",
        file=sys.stderr,
        flush=True,
    )
    stop = threading.Event()
    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, lambda *_: stop.set())
    try:
        while not stop.is_set():
            stop.wait(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        service.shutdown()
    print("[service] drained and stopped", file=sys.stderr, flush=True)
    return 0


def _build_loadgen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study loadgen",
        description=(
            "Drive a running analysis service with N concurrent "
            "simulated users (persistent connections, mixed endpoint "
            "workload, warmup then measurement) and report "
            "p50/p95/p99 latency and error rate.  Exits non-zero if "
            "any request got a 5xx or a connection error."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="service host (default loopback)"
    )
    parser.add_argument(
        "--port", type=int, required=True, help="service port"
    )
    parser.add_argument(
        "--users", type=int, default=8,
        help="concurrent simulated users (default 8)",
    )
    parser.add_argument(
        "--duration", type=float, default=5.0, metavar="SECONDS",
        help="measurement phase length (default 5s)",
    )
    parser.add_argument(
        "--warmup", type=float, default=1.0, metavar="SECONDS",
        help="unrecorded warmup phase length (default 1s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload RNG seed (per-user streams derive from it)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the full JSON report instead of the summary",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the JSON report here",
    )
    return parser


def _loadgen_main(argv: list[str]) -> int:
    """The ``repro-study loadgen`` subcommand."""
    import json
    from pathlib import Path

    from ..service.loadgen import render_report, run_load

    args = _build_loadgen_parser().parse_args(argv)
    report = run_load(
        args.host,
        args.port,
        users=args.users,
        duration=args.duration,
        warmup=args.warmup,
        seed=args.seed,
    )
    if args.out:
        Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    bad = report["status_counts"].get("5xx", 0) + report[
        "status_counts"
    ].get("conn-error", 0)
    return 0 if bad == 0 else 1


def _window_progress(window) -> None:
    """One live stderr line per closed streaming aggregation window."""
    conns = sum(window.conn_starts.values())
    print(
        f"  [stream] window {window.index:>4}  "
        f"{window.packets:>7} pkts  {window.mbps:8.3f} Mb/s  "
        f"{conns:>5} new conns  retx {window.retransmit_rate:6.2%}",
        file=sys.stderr,
    )


def _stream_main(argv: list[str]) -> int:
    """The ``repro-study stream`` subcommand: the study through the
    single-pass engine, with live per-window narration under
    ``--progress`` (sequential runs only — the window callback cannot
    cross a process boundary)."""
    from ..stream.engine import StreamConfig

    args = _build_stream_parser().parse_args(argv)
    knobs: dict = {
        "window": args.window,
        "checkpoint_every": args.checkpoint_every,
    }
    if args.max_flows is not None:
        knobs["max_flows"] = args.max_flows
    if args.idle_timeout is not None:
        knobs["idle_timeout"] = args.idle_timeout
    if args.hard_timeout is not None:
        knobs["hard_timeout"] = args.hard_timeout
    observer = _window_progress if args.progress and args.jobs == 1 else None
    results = run_study(
        seed=args.seed,
        scale=args.scale,
        datasets=tuple(args.datasets),
        max_windows=args.max_windows,
        out_dir=args.out_dir,
        error_policy=args.error_policy,
        store_dir=args.store_dir,
        reuse_store=not args.no_reuse_store,
        jobs=args.jobs,
        progress=args.progress,
        telemetry_path=args.telemetry,
        engine="stream",
        stream=StreamConfig(**knobs),
        window_observer=observer,
    )
    return _print_results(args, results)


def main(argv: list[str] | None = None) -> int:
    """Run the study and print the requested tables/figures."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "store":
        return _store_main(argv[1:])
    if argv and argv[0] == "stream":
        return _stream_main(argv[1:])
    if argv and argv[0] == "daemon":
        return _daemon_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "loadgen":
        return _loadgen_main(argv[1:])
    args = _build_parser().parse_args(argv)
    results = run_study(
        seed=args.seed,
        scale=args.scale,
        datasets=tuple(args.datasets),
        max_windows=args.max_windows,
        out_dir=args.out_dir,
        error_policy=args.error_policy,
        store_dir=args.store_dir,
        reuse_store=not args.no_reuse_store,
        jobs=args.jobs,
        progress=args.progress,
        telemetry_path=args.telemetry,
        engine=args.engine,
    )
    return _print_results(args, results)


def _print_results(args: argparse.Namespace, results) -> int:
    """Print the requested tables/figures and the quality section."""
    tables = args.tables if args.tables is not None else _ALL_TABLES
    figures = args.figures if args.figures is not None else _ALL_FIGURES
    for number in tables:
        print(results.render_table(number))
        print()
    for number in figures:
        if args.plot:
            print(_render_figure_plots(results, number))
        else:
            print(results.render_figure(number))
        print()
    # Non-strict runs may have absorbed defects; always say what they were.
    if args.error_policy != ErrorPolicy.STRICT.value or results.total_errors:
        print(results.render_data_quality())
        print()
    # The timing table is operational telemetry, not a paper artifact:
    # it goes to stderr so table output stays byte-comparable across runs.
    if args.progress and results.telemetry is not None:
        print(results.telemetry.timing_table().render(), file=sys.stderr)
    return 0


def _render_figure_plots(results, number: int) -> str:
    """Render a figure, using ASCII plots for its CDF parts."""
    from ..report.model import CdfFigure, SeriesFigure, Table

    built = results.figure(number)
    if isinstance(built, dict):
        parts = list(built.values())
    elif isinstance(built, (Table, CdfFigure, SeriesFigure)):
        parts = [built]
    else:
        parts = list(built)
    rendered = []
    for part in parts:
        if isinstance(part, CdfFigure):
            rendered.append(part.render_plot())
        else:
            rendered.append(part.render())
    return "\n\n".join(rendered)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
