"""A deterministic, pickle-free binary codec for analysis products.

Shards must be safe to read from untrusted disks (no arbitrary code
execution) and byte-identical across runs of the same seed (so the store
can be content-addressed).  Pickle offers neither, so this module
implements a small tagged encoding covering exactly the value shapes the
analysis layer produces: scalars, strings, bytes, lists/tuples, sets
(serialized in sorted order for determinism), dicts (insertion order
preserved — report tables depend on it), ``collections.Counter``, enums,
and an explicit allowlist of registered dataclasses.

Anything outside the allowlist fails to encode with a clear error rather
than degrading into an opaque blob.
"""

from __future__ import annotations

import dataclasses
import struct
from collections import Counter, defaultdict
from enum import Enum
from typing import Any, Callable

__all__ = ["CodecError", "register", "registered_types", "encode", "decode"]

# -- tags ------------------------------------------------------------------

_NONE = 0x00
_TRUE = 0x01
_FALSE = 0x02
_INT = 0x03
_FLOAT = 0x04
_STR = 0x05
_BYTES = 0x06
_LIST = 0x07
_TUPLE = 0x08
_SET = 0x09
_FROZENSET = 0x0A
_DICT = 0x0B
_COUNTER = 0x0C
_OBJ = 0x0D
_ENUM = 0x0E

_DOUBLE = struct.Struct(">d")


class CodecError(ValueError):
    """Raised on unencodable values or malformed encoded data."""


# -- the class allowlist ---------------------------------------------------

_REGISTRY: dict[str, type] = {}
_KEYS: dict[type, str] = {}


def _type_key(cls: type) -> str:
    """A stable short name: last module segment plus qualified name."""
    return f"{cls.__module__.rsplit('.', 1)[-1]}:{cls.__qualname__}"


def register(cls: type) -> type:
    """Allowlist a dataclass or Enum for encoding (usable as decorator)."""
    if not (dataclasses.is_dataclass(cls) or issubclass(cls, Enum)):
        raise CodecError(f"only dataclasses and enums are registrable: {cls!r}")
    key = _type_key(cls)
    existing = _REGISTRY.get(key)
    if existing is not None and existing is not cls:
        raise CodecError(f"registry key collision: {key!r}")
    _REGISTRY[key] = cls
    _KEYS[cls] = key
    return cls


def registered_types() -> dict[str, type]:
    """A copy of the current allowlist (key -> class)."""
    return dict(_REGISTRY)


# -- varints ---------------------------------------------------------------


def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag_big(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _read_uvarint(data: memoryview, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# -- encoding --------------------------------------------------------------


def encode(value: Any) -> bytes:
    """Encode ``value`` into the tagged binary form."""
    out = bytearray()
    _encode(out, value)
    return bytes(out)


def _encode_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    _write_uvarint(out, len(raw))
    out += raw


def _encode(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_NONE)
    elif value is True:
        out.append(_TRUE)
    elif value is False:
        out.append(_FALSE)
    elif isinstance(value, Enum):
        cls = type(value)
        key = _KEYS.get(cls)
        if key is None:
            raise CodecError(f"unregistered enum type: {cls!r}")
        out.append(_ENUM)
        _encode_str(out, key)
        _encode(out, value.value)
    elif isinstance(value, int):
        out.append(_INT)
        _write_uvarint(out, _zigzag_big(value))
    elif isinstance(value, float):
        out.append(_FLOAT)
        out += _DOUBLE.pack(value)
    elif isinstance(value, str):
        out.append(_STR)
        _encode_str(out, value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        out.append(_BYTES)
        raw = bytes(value)
        _write_uvarint(out, len(raw))
        out += raw
    elif isinstance(value, list):
        out.append(_LIST)
        _write_uvarint(out, len(value))
        for item in value:
            _encode(out, item)
    elif isinstance(value, tuple):
        out.append(_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _encode(out, item)
    elif isinstance(value, (set, frozenset)):
        out.append(_FROZENSET if isinstance(value, frozenset) else _SET)
        # Sort by encoded form: deterministic even for mixed-type sets.
        encoded = sorted(encode(item) for item in value)
        _write_uvarint(out, len(encoded))
        for item in encoded:
            out += item
    elif isinstance(value, Counter):
        out.append(_COUNTER)
        _write_uvarint(out, len(value))
        for key, item in value.items():
            _encode(out, key)
            _encode(out, item)
    elif isinstance(value, dict):  # includes defaultdict, order preserved
        out.append(_DICT)
        _write_uvarint(out, len(value))
        for key, item in value.items():
            _encode(out, key)
            _encode(out, item)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        key = _KEYS.get(type(value))
        if key is None:
            raise CodecError(f"unregistered dataclass type: {type(value)!r}")
        out.append(_OBJ)
        _encode_str(out, key)
        fields = dataclasses.fields(value)
        _write_uvarint(out, len(fields))
        for field in fields:
            _encode_str(out, field.name)
            _encode(out, getattr(value, field.name))
    else:
        raise CodecError(f"cannot encode {type(value)!r}: {value!r}")


# -- decoding --------------------------------------------------------------


def decode(data: bytes | memoryview) -> Any:
    """Decode one value; raises :class:`CodecError` on trailing bytes."""
    view = memoryview(data)
    value, pos = _decode(view, 0)
    if pos != len(view):
        raise CodecError(f"{len(view) - pos} trailing bytes after value")
    return value


def _read_str(data: memoryview, pos: int) -> tuple[str, int]:
    length, pos = _read_uvarint(data, pos)
    if pos + length > len(data):
        raise CodecError("truncated string")
    return str(data[pos : pos + length], "utf-8"), pos + length


def _decode(data: memoryview, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise CodecError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _NONE:
        return None, pos
    if tag == _TRUE:
        return True, pos
    if tag == _FALSE:
        return False, pos
    if tag == _INT:
        raw, pos = _read_uvarint(data, pos)
        return _unzigzag(raw), pos
    if tag == _FLOAT:
        if pos + 8 > len(data):
            raise CodecError("truncated float")
        return _DOUBLE.unpack_from(data, pos)[0], pos + 8
    if tag == _STR:
        return _read_str(data, pos)
    if tag == _BYTES:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise CodecError("truncated bytes")
        return bytes(data[pos : pos + length]), pos + length
    if tag in (_LIST, _TUPLE, _SET, _FROZENSET):
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode(data, pos)
            items.append(item)
        if tag == _LIST:
            return items, pos
        if tag == _TUPLE:
            return tuple(items), pos
        if tag == _SET:
            return set(items), pos
        return frozenset(items), pos
    if tag in (_DICT, _COUNTER):
        count, pos = _read_uvarint(data, pos)
        result: dict = Counter() if tag == _COUNTER else {}
        for _ in range(count):
            key, pos = _decode(data, pos)
            value, pos = _decode(data, pos)
            result[key] = value
        return result, pos
    if tag == _ENUM:
        key, pos = _read_str(data, pos)
        cls = _REGISTRY.get(key)
        if cls is None:
            raise CodecError(f"unknown enum type {key!r}")
        raw, pos = _decode(data, pos)
        return cls(raw), pos
    if tag == _OBJ:
        key, pos = _read_str(data, pos)
        cls = _REGISTRY.get(key)
        if cls is None:
            raise CodecError(f"unknown object type {key!r}")
        count, pos = _read_uvarint(data, pos)
        payload: dict[str, Any] = {}
        for _ in range(count):
            name, pos = _read_str(data, pos)
            value, pos = _decode(data, pos)
            payload[name] = value
        return _build_dataclass(cls, payload), pos
    raise CodecError(f"unknown tag 0x{tag:02x}")


def _build_dataclass(cls: type, payload: dict[str, Any]) -> Any:
    """Reconstruct a registered dataclass, preserving container subtypes.

    Fields whose ``default_factory`` produces a ``defaultdict`` are
    rewrapped so post-decode index access behaves like it did on the
    original object (report helpers rely on it); unknown encoded fields
    are ignored and missing ones fall back to the field default, so a
    shard written by an older field set still decodes.
    """
    obj = cls.__new__(cls)
    for field in dataclasses.fields(cls):
        if field.name in payload:
            value = payload[field.name]
            if field.default_factory is not dataclasses.MISSING:
                template = field.default_factory()
                if isinstance(template, defaultdict) and isinstance(value, dict):
                    rewrapped: defaultdict = defaultdict(template.default_factory)
                    rewrapped.update(value)
                    value = rewrapped
        elif field.default is not dataclasses.MISSING:
            value = field.default
        elif field.default_factory is not dataclasses.MISSING:
            value = field.default_factory()
        else:
            raise CodecError(
                f"{_type_key(cls)} is missing required field {field.name!r}"
            )
        object.__setattr__(obj, field.name, value)
    return obj
