"""The store's schema: version byte and the registered value types.

``SCHEMA_VERSION`` is baked into every shard header *and* every cache
key, so bumping it atomically invalidates all cached analyses — readers
never have to migrate old layouts, they just re-parse the pcaps.

Bump the version whenever any of these change shape:

* the columnar connection layout in :mod:`repro.store.shard`,
* the fields of any dataclass registered below,
* the section names a trace or dataset shard carries.
"""

from __future__ import annotations

from ..analysis import errors as _errors
from ..analysis import failures as _failures
from ..analysis.analyzers import backup as _backup
from ..analysis.analyzers import dns as _dns
from ..analysis.analyzers import email as _email
from ..analysis.analyzers import http as _http
from ..analysis.analyzers import ncp as _ncp
from ..analysis.analyzers import netbios as _netbios
from ..analysis.analyzers import nfs as _nfs
from ..analysis.analyzers import windows as _windows
from .codec import register

__all__ = ["SCHEMA_VERSION"]

#: The store's on-disk schema generation (one byte).
SCHEMA_VERSION = 1

# Error-accounting values that ride along inside analyzer results.
register(_errors.ErrorKind)
register(_errors.TraceError)
register(_errors.AnalyzerFailure)
register(_failures.PairOutcomes)

# Application-analyzer reports (the per-analyzer event aggregates) and
# their nested per-side/per-product dataclasses.
register(_backup.BackupReport)
register(_backup._Product)
register(_dns.DnsReport)
register(_dns._Side)
register(_email.EmailReport)
register(_email._ProtocolStats)
register(_http.HttpReport)
register(_http._Side)
register(_ncp.NcpReport)
register(_netbios.NetbiosReport)
register(_nfs.NfsReport)
register(_windows.WindowsReport)
