"""Store scrub-and-repair: find damage, quarantine it, re-derive shards.

The store's readers already *survive* corruption — content addresses and
CRC footers turn any flipped bit into a :class:`~repro.store.shard.ShardError`
at load time, and the tolerant policies fall back to a cold re-parse.
What they cannot do is *fix* the store: a damaged shard stays on disk,
poisoning every future warm start of its dataset.  This module closes
that loop with two offline passes:

**Scrub** (:class:`StoreScrubber.scrub`) walks every shard object and
every manifest.  An object whose bytes no longer hash to its own name,
or whose RCS1 frame fails to verify, is *quarantined*: moved out of the
objects tree into ``<root>/quarantine/<error-kind>/`` (the PR-1
:class:`~repro.analysis.errors.ErrorKind` taxonomy names the
subdirectory) next to a JSON sidecar recording what was wrong.  An
unparseable manifest is quarantined the same way.  Manifests that parse
but reference objects which are missing — or were just quarantined —
are reported as damaged; checkpoint manifests whose state shard is gone
are unresumable and quarantined outright.  Stale ``.tmp`` files are
counted (informationally; ``store gc`` removes them).

**Repair** (:class:`StoreScrubber.repair`) re-derives damaged dataset
manifests from their source traces.  Every analysis manifest written by
the study carries a ``repair`` block (error policy, known scanners,
engine configuration) — combined with the per-trace window metadata the
manifest already holds, that is the complete recipe to re-run the
analysis pipeline over the original pcaps.  Because both the pipeline
and the shard encoding are deterministic, a successful repair
republishes byte-identical objects under the *same* content addresses
the manifest expected — verifiable, not merely plausible.  Traces that
are missing or no longer digest-match make a manifest unrepairable; it
stays in place (its healthy shards remain loadable by tolerant readers)
and is reported.

Layout after a quarantine::

    <root>/quarantine/
      decode_error/<digest>.rcs        # bytes that no longer match
      decode_error/<digest>.rcs.json   # {"kind", "detail", "source", ...}
      bad_magic/<key>.json             # a manifest that failed to parse
      bad_magic/<key>.json.json

Nothing in here imports the analysis pipeline at module scope — repair
resolves :func:`repro.core.study.analyze_dataset` lazily, keeping the
store package import-light.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..analysis.errors import ErrorKind
from ..chaos import fsio
from ..gen.capture import DatasetTraces, TapWindow, Trace
from ..gen.datasets import DATASETS
from .cache import (
    ConnStore,
    DAEMON_DIR,
    DEFAULT_TMP_GRACE,
    _OBJECT_SUFFIX,
    _TMP_SUFFIX,
)
from .shard import ShardError, decode_shard

__all__ = ["ScrubFinding", "ScrubReport", "RepairOutcome", "StoreScrubber"]

#: Subdirectory of the store root holding quarantined files.
QUARANTINE_DIR = "quarantine"


@dataclass(frozen=True)
class ScrubFinding:
    """One damaged file the scrubber met."""

    #: PR-1 taxonomy value naming the defect (``decode_error``, ...).
    kind: str
    #: The damaged file, relative to the store root.
    path: str
    #: What exactly was wrong.
    detail: str
    #: Where the file went, relative to the store root ("" = left in place).
    quarantined_to: str = ""


@dataclass
class ScrubReport:
    """Everything one scrub pass established about the store."""

    objects_checked: int = 0
    manifests_checked: int = 0
    #: Corrupt shard objects (quarantined).
    corrupt_objects: list[ScrubFinding] = field(default_factory=list)
    #: Manifests that failed to parse (quarantined).
    corrupt_manifests: list[ScrubFinding] = field(default_factory=list)
    #: Parseable manifests referencing missing objects: key -> digests.
    missing_refs: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Checkpoint manifests whose state shard is gone (quarantined).
    dead_checkpoints: list[ScrubFinding] = field(default_factory=list)
    #: Stale temp files seen (informational; ``store gc`` removes them).
    stale_tmp: int = 0
    #: Young temp files inside the grace period — a live writer's
    #: in-flight publishes, not damage.
    in_flight_tmp: int = 0
    #: The store's replica target (1 for flat / unreplicated stores).
    replica_target: int = 1
    #: Objects short of the target: digest -> verified copies found.
    under_replicated: dict[str, int] = field(default_factory=dict)
    #: Manifests short of mirrors: key -> identical copies found.
    under_replicated_manifests: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the store is fully healthy."""
        return not (
            self.corrupt_objects
            or self.corrupt_manifests
            or self.missing_refs
            or self.dead_checkpoints
            or self.under_replicated
            or self.under_replicated_manifests
        )

    @property
    def quarantined(self) -> int:
        """Files moved into the quarantine tree by this pass."""
        return sum(
            1
            for finding in (
                self.corrupt_objects + self.corrupt_manifests + self.dead_checkpoints
            )
            if finding.quarantined_to
        )

    def render(self) -> str:
        """Human-readable report for the CLI."""
        lines = [
            f"scrubbed {self.objects_checked} objects, "
            f"{self.manifests_checked} manifests: "
            + ("clean" if self.ok else "DAMAGED")
        ]
        for finding in self.corrupt_objects + self.corrupt_manifests:
            verb = "quarantined" if finding.quarantined_to else "corrupt"
            lines.append(
                f"  {verb} {finding.path} ({finding.kind}): {finding.detail}"
            )
        for key, digests in sorted(self.missing_refs.items()):
            lines.append(
                f"  manifest {key[:12]}… missing {len(digests)} referenced "
                f"object(s): {', '.join(digest[:12] + '…' for digest in digests)}"
            )
        for finding in self.dead_checkpoints:
            verb = "quarantined" if finding.quarantined_to else "found"
            lines.append(
                f"  {verb} unresumable checkpoint {finding.path}: "
                f"{finding.detail}"
            )
        for digest, copies in sorted(self.under_replicated.items()):
            lines.append(
                f"  under-replicated object {digest[:12]}…: {copies}/"
                f"{self.replica_target} cop{'y' if copies == 1 else 'ies'} "
                "(run `store repair --replicas`)"
            )
        for key, copies in sorted(self.under_replicated_manifests.items()):
            lines.append(
                f"  under-replicated manifest {key[:12]}…: {copies}/"
                f"{self.replica_target} cop{'y' if copies == 1 else 'ies'} "
                "(run `store repair --replicas`)"
            )
        if self.stale_tmp:
            lines.append(
                f"  {self.stale_tmp} stale temp file(s) (run `store gc`)"
            )
        if self.in_flight_tmp:
            lines.append(
                f"  {self.in_flight_tmp} in-flight temp file(s) "
                "(live writer; left alone)"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class RepairOutcome:
    """What happened to one damaged manifest during repair."""

    key: str
    dataset: str
    repaired: bool
    #: Digests republished (all under their original content addresses).
    restored: tuple[str, ...] = ()
    reason: str = ""


class StoreScrubber:
    """Offline integrity walker and repairer for one :class:`ConnStore`."""

    def __init__(self, store: ConnStore) -> None:
        self.store = store
        self.quarantine_root = store.root / QUARANTINE_DIR

    # -- quarantine --------------------------------------------------------

    def _quarantine(self, path: Path, kind: str, detail: str) -> str:
        """Move one damaged file under the quarantine tree + sidecar.

        Returns the destination relative to the file's *owning root* —
        on a tiered store, damage at a secondary root is quarantined
        into that root's own ``quarantine/`` tree, keeping the move a
        same-filesystem rename (which cannot itself tear); the sidecar
        records provenance for a human (or a later forensic pass).
        """
        owner = self.store.owning_root(path)
        target_dir = owner / QUARANTINE_DIR / kind
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        os.replace(path, target)
        if path.name.endswith(_OBJECT_SUFFIX):
            # A quarantined shard must also leave the hot tier — cached
            # bytes for a digest the store just disowned would keep
            # serving after the disk copy is gone.
            hot = getattr(self.store, "hot", None)
            if hot is not None:
                hot.invalidate(path.stem)
        sidecar = {
            "kind": kind,
            "detail": detail,
            "source": str(path.relative_to(owner)),
        }
        target.with_name(target.name + ".json").write_text(
            json.dumps(sidecar, sort_keys=True, indent=1) + "\n", encoding="utf-8"
        )
        return str(target.relative_to(owner))

    # -- scrub -------------------------------------------------------------

    def _check_object(self, path: Path) -> ShardError | None:
        """Verify one shard object's content address and RCS1 frame."""
        digest = path.stem
        try:
            data = fsio.read_bytes(path)
        except OSError as exc:
            return ShardError(
                ErrorKind.TRUNCATED_BODY, str(path), None, f"unreadable: {exc}"
            )
        actual = hashlib.sha256(data).hexdigest()
        if actual != digest:
            return ShardError(
                ErrorKind.DECODE_ERROR, str(path), None,
                f"content address mismatch: named {digest[:12]}…, "
                f"bytes hash to {actual[:12]}…",
            )
        try:
            decode_shard(data, str(path))
        except ShardError as exc:
            return exc
        return None

    def scrub(
        self,
        quarantine: bool = True,
        tmp_grace_s: float = DEFAULT_TMP_GRACE,
    ) -> ScrubReport:
        """Walk the whole store; optionally quarantine what is damaged.

        With ``quarantine=False`` this is a pure audit — nothing moves,
        the report just says what *would* be quarantined.  Temp files
        younger than ``tmp_grace_s`` seconds are reported as in-flight
        (a live daemon's publishes), not stale — same rule as
        :meth:`ConnStore.gc`.
        """
        store = self.store
        report = ScrubReport()
        placement = getattr(store, "placement", None)
        report.replica_target = (
            placement.effective_replicas() if placement is not None else 1
        )
        # Pass 1: every shard object self-verifies (across every root —
        # a tiered store's secondary roots are walked the same way).
        # Verified copies are *counted* per digest so the report can
        # name every object short of the replica target.
        copies: dict[str, int] = {}
        present: set[str] = set()
        for path in store._object_files():
            report.objects_checked += 1
            error = self._check_object(path)
            if error is None:
                present.add(path.stem)
                copies[path.stem] = copies.get(path.stem, 0) + 1
                continue
            kind = error.kind.value
            rel = str(path.relative_to(store.owning_root(path)))
            destination = (
                self._quarantine(path, kind, error.detail) if quarantine else ""
            )
            report.corrupt_objects.append(
                ScrubFinding(kind, rel, error.detail, destination)
            )
        if report.replica_target > 1:
            report.under_replicated = {
                digest: count
                for digest, count in sorted(copies.items())
                if count < report.replica_target
            }
        # Pass 2: every manifest parses and its references resolve; on a
        # replicated store each must also have byte-identical mirrors.
        if store.manifests_dir.is_dir():
            for path in sorted(store.manifests_dir.glob("*.json")):
                report.manifests_checked += 1
                rel = str(path.relative_to(store.root))
                try:
                    text = fsio.read_bytes(path).decode("utf-8")
                    payload = json.loads(text)
                    if not isinstance(payload, dict):
                        raise ValueError(f"not a JSON object: {type(payload).__name__}")
                except (OSError, ValueError) as exc:
                    kind = ErrorKind.DECODE_ERROR.value
                    destination = (
                        self._quarantine(path, kind, str(exc)) if quarantine else ""
                    )
                    report.corrupt_manifests.append(
                        ScrubFinding(kind, rel, str(exc), destination)
                    )
                    continue
                if report.replica_target > 1:
                    found = 1 + sum(
                        1
                        for _, mirror in store.mirror_paths(path.stem)
                        if self._mirror_matches(mirror, text)
                    )
                    if found < report.replica_target:
                        report.under_replicated_manifests[path.stem] = found
                if "ref" in payload:
                    continue  # gen-key alias: nothing to resolve here
                missing = tuple(
                    digest
                    for digest in self._referenced(payload)
                    if digest not in present
                )
                if not missing:
                    continue
                if payload.get("kind") == "checkpoint" and payload["state"] in missing:
                    # Without its state shard the checkpoint can never
                    # resume; keeping the manifest would pin dead batch
                    # objects through every future gc.
                    detail = f"state shard {payload['state'][:12]}… missing"
                    destination = (
                        self._quarantine(path, ErrorKind.TRUNCATED_BODY.value, detail)
                        if quarantine
                        else ""
                    )
                    report.dead_checkpoints.append(
                        ScrubFinding(
                            ErrorKind.TRUNCATED_BODY.value, rel, detail, destination
                        )
                    )
                    continue
                report.missing_refs[payload.get("key", path.stem)] = missing
        # Pass 3: count (never touch) temp files from crashed writers,
        # splitting out a live writer's in-flight publishes by age.
        now = time.time()
        for base in (*store.object_dirs(), *store.manifest_dirs(), store.root / DAEMON_DIR):
            if not base.is_dir():
                continue
            for path in base.rglob(f"*{_TMP_SUFFIX}"):
                try:
                    mtime = path.stat().st_mtime
                except FileNotFoundError:
                    continue  # published (renamed away) mid-walk
                if tmp_grace_s > 0 and now - mtime < tmp_grace_s:
                    report.in_flight_tmp += 1
                else:
                    report.stale_tmp += 1
        return report

    @staticmethod
    def _mirror_matches(path: Path, text: str) -> bool:
        """Does one mirror hold exactly the primary's bytes?"""
        try:
            return fsio.read_bytes(path).decode("utf-8") == text
        except (OSError, UnicodeDecodeError):
            return False

    @staticmethod
    def _referenced(payload: dict) -> tuple[str, ...]:
        """Every object digest one manifest payload references."""
        if payload.get("kind") == "checkpoint":
            return (payload["state"], *payload.get("batches", ()))
        digests = [payload["dataset_shard"]] if "dataset_shard" in payload else []
        digests.extend(entry["shard"] for entry in payload.get("traces", ()))
        return tuple(digests)

    # -- repair ------------------------------------------------------------

    def repair(self, traces_dir: str | Path | None = None) -> list[RepairOutcome]:
        """Re-derive every damaged dataset manifest from source traces.

        Runs a quarantining scrub first (repairing around a corrupt
        object requires it out of the way), then, for each analysis
        manifest with missing shards, replays the recorded analysis
        recipe over the original pcaps under ``traces_dir``.  The
        pipeline is deterministic, so the republished objects land on
        exactly the content addresses the manifest already names — the
        repair is self-verifying.
        """
        from ..core.study import analyze_dataset  # lazy: avoids a package cycle
        from ..stream.engine import StreamConfig

        report = self.scrub(quarantine=True)
        outcomes: list[RepairOutcome] = []
        base = Path(traces_dir) if traces_dir is not None else None
        for key, missing in sorted(report.missing_refs.items()):
            manifest = self.store.lookup(key)
            if manifest is None or "dataset" not in manifest:
                outcomes.append(
                    RepairOutcome(key, "?", False, reason="manifest unreadable")
                )
                continue
            name = manifest["dataset"]
            recipe = manifest.get("repair")
            if recipe is None:
                outcomes.append(
                    RepairOutcome(
                        key, name, False,
                        reason="manifest predates repair metadata",
                    )
                )
                continue
            traces, problem = self._rebuild_traces(manifest, base)
            if traces is None:
                outcomes.append(RepairOutcome(key, name, False, reason=problem))
                continue
            engine_config = recipe.get("engine_config")
            analysis = analyze_dataset(
                name,
                traces,
                known_scanners=tuple(recipe.get("known_scanners", ())),
                error_policy=recipe.get("error_policy", "strict"),
                store=None,  # compute fresh; publication happens below
                engine=recipe.get("engine", "batch"),
                stream=StreamConfig(**engine_config) if engine_config else None,
            )
            digests = [entry["digest"] for entry in manifest["traces"]]
            rebuilt = self.store.save_analysis(
                key, analysis, traces, digests, repair=recipe
            )
            restored = tuple(
                digest for digest in self._referenced(rebuilt) if digest in missing
            )
            still_missing = set(missing) - set(self._referenced(rebuilt))
            if still_missing:
                outcomes.append(
                    RepairOutcome(
                        key, name, False, restored=restored,
                        reason=(
                            "re-derived shards landed on different content "
                            f"addresses ({len(still_missing)} unmatched) — "
                            "source traces no longer produce this analysis"
                        ),
                    )
                )
            else:
                outcomes.append(RepairOutcome(key, name, True, restored=restored))
        return outcomes

    def _rebuild_traces(
        self, manifest: dict, base: Path | None
    ) -> tuple[DatasetTraces | None, str]:
        """Reconstruct a :class:`DatasetTraces` over the on-disk pcaps.

        Every trace file must exist under ``base`` and digest-match its
        manifest entry — repairing from mutated sources would publish
        wrong bytes under right-looking names.
        """
        name = manifest["dataset"]
        if name not in DATASETS:
            return None, f"unknown dataset {name!r}"
        traces = DatasetTraces(config=DATASETS[name])
        for entry in manifest["traces"]:
            path = (base / entry["file"]) if base is not None else Path(entry["file"])
            if not path.exists():
                return None, f"source trace {entry['file']} missing"
            if ConnStore.file_digest(path) != entry["digest"]:
                return None, f"source trace {entry['file']} no longer digest-matches"
            window = entry["window"]
            traces.traces.append(
                Trace(
                    dataset=name,
                    window=TapWindow(
                        index=window["index"],
                        subnet_index=window["subnet_index"],
                        t0=window["t0"],
                        t1=window["t1"],
                    ),
                    path=path,
                    packet_count=entry["packet_count"],
                    snaplen=entry["snaplen"],
                )
            )
        return traces, ""
