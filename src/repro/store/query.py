"""The store's query engine: filtered scans and table-grade aggregations.

Once analyses live in the store, iterating on a single table no longer
means re-parsing pcaps — it means scanning shards.  This module gives
that scan a vocabulary:

* :class:`ConnFilter` — predicate over connection records (dataset,
  transport, service, locality, subnet, time window, state).
* :class:`StoreQuery` — lazy scans over every cached dataset, plus the
  aggregations the paper's tables are built from: count/bytes/packets
  grouped by application category, locality, transport, or state, and
  sample extraction (durations, sizes) for CDFs.

The same aggregation helpers work on in-memory record lists, so library
users can point them at a live :class:`DatasetAnalysis` too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from ..analysis.classify import classify_conn
from ..analysis.conn import ConnRecord
from ..report.model import Table
from ..util.addr import Subnet
from ..util.stats import Cdf
from .cache import ConnStore

__all__ = ["ConnFilter", "GroupRow", "StoreQuery", "aggregate_records"]

#: Grouping dimensions understood by the aggregators.
GROUP_DIMENSIONS = ("dataset", "proto", "app", "category", "locality", "state")

#: Fields usable for sample extraction / CDFs.
SAMPLE_FIELDS = ("duration", "total_bytes", "orig_bytes", "resp_bytes", "total_pkts")


@dataclass(frozen=True)
class ConnFilter:
    """A conjunctive predicate over connection records."""

    dataset: str | None = None
    proto: str | None = None
    #: Application label or category as assigned by the §3 classifier
    #: (case-insensitive; matches either the protocol label or category).
    service: str | None = None
    #: A :class:`~repro.analysis.conn.Locality` value, e.g. ``"ent-wan"``.
    locality: str | None = None
    #: CIDR matched against either endpoint.
    subnet: str | None = None
    #: Time window on the connection's first timestamp.
    since: float | None = None
    until: float | None = None
    #: A :class:`~repro.analysis.conn.ConnState` value, e.g. ``"REJ"``.
    state: str | None = None
    min_bytes: int | None = None
    #: Include connections from scan-filtered sources (default: excluded,
    #: matching every analysis in the paper after §3).
    include_scanners: bool = False

    def _subnet(self) -> Subnet | None:
        return Subnet.parse(self.subnet) if self.subnet else None

    def matches(
        self,
        conn: ConnRecord,
        internal_net: Subnet,
        windows_endpoints: frozenset | set = frozenset(),
    ) -> bool:
        """Does one record pass every configured clause?"""
        if self.proto is not None and conn.proto != self.proto:
            return False
        if self.state is not None and conn.state.value != self.state:
            return False
        if self.since is not None and conn.first_ts < self.since:
            return False
        if self.until is not None and conn.first_ts > self.until:
            return False
        if self.min_bytes is not None and conn.total_bytes < self.min_bytes:
            return False
        if self.locality is not None:
            if conn.locality(internal_net).value != self.locality:
                return False
        if self.subnet is not None:
            net = self._subnet()
            if conn.orig_ip not in net and conn.resp_ip not in net:
                return False
        if self.service is not None:
            label, category = classify_conn(conn, windows_endpoints)
            wanted = self.service.lower()
            if wanted not in (label.lower(), category.lower()):
                return False
        return True


@dataclass
class GroupRow:
    """One aggregation bucket."""

    group: str
    conns: int = 0
    bytes: int = 0
    pkts: int = 0


def _group_key(
    conn: ConnRecord,
    by: str,
    dataset: str,
    internal_net: Subnet,
    windows_endpoints,
) -> str:
    if by == "dataset":
        return dataset
    if by == "proto":
        return conn.proto
    if by == "state":
        return conn.state.value
    if by == "locality":
        return conn.locality(internal_net).value
    label, category = classify_conn(conn, windows_endpoints)
    if by == "app":
        return label
    if by == "category":
        return category
    raise ValueError(f"unknown group dimension {by!r} (one of {GROUP_DIMENSIONS})")


def aggregate_records(
    records: Iterable[tuple[str, ConnRecord]],
    by: str,
    internal_net: Subnet,
    windows_endpoints=frozenset(),
) -> list[GroupRow]:
    """Aggregate (dataset, record) pairs into sorted group rows."""
    rows: dict[str, GroupRow] = {}
    for dataset, conn in records:
        key = _group_key(conn, by, dataset, internal_net, windows_endpoints)
        row = rows.get(key)
        if row is None:
            row = rows[key] = GroupRow(group=key)
        row.conns += 1
        row.bytes += conn.total_bytes
        row.pkts += conn.total_pkts
    return sorted(rows.values(), key=lambda row: (-row.bytes, row.group))


def _sample_of(conn: ConnRecord, field: str) -> float:
    if field not in SAMPLE_FIELDS:
        raise ValueError(f"unknown sample field {field!r} (one of {SAMPLE_FIELDS})")
    return getattr(conn, field)


class StoreQuery:
    """Filtered scans and aggregations over every dataset in a store."""

    def __init__(self, store: ConnStore) -> None:
        self.store = store

    def datasets(self) -> list[str]:
        """Dataset names with at least one cached analysis."""
        return sorted({manifest["dataset"] for manifest in self.store.manifests()})

    def scan(self, flt: ConnFilter = ConnFilter()) -> Iterator[tuple[str, ConnRecord]]:
        """Yield (dataset, record) for every match, loading shards lazily.

        Scanner-source records are excluded unless the filter opts in,
        mirroring the §3 baseline every table is computed over.
        """
        seen: set[str] = set()
        for manifest in self.store.manifests():
            name = manifest["dataset"]
            if flt.dataset is not None and name != flt.dataset:
                continue
            if manifest["key"] in seen:
                continue
            seen.add(manifest["key"])
            cached = self.store.load_analysis(manifest)
            analysis = cached.analysis
            internal = analysis.internal_net
            endpoints = analysis.windows_endpoints
            scanners = analysis.scanner_sources
            for conn in analysis.conns:
                if not flt.include_scanners and conn.orig_ip in scanners:
                    continue
                if flt.matches(conn, internal, endpoints):
                    yield name, conn

    def count(self, flt: ConnFilter = ConnFilter()) -> int:
        """Number of matching records."""
        return sum(1 for _ in self.scan(flt))

    def aggregate(self, flt: ConnFilter = ConnFilter(), by: str = "category") -> list[GroupRow]:
        """Grouped conns/bytes/pkts over the matching records."""
        rows: dict[str, GroupRow] = {}
        for manifest in self.store.manifests():
            name = manifest["dataset"]
            if flt.dataset is not None and name != flt.dataset:
                continue
            cached = self.store.load_analysis(manifest)
            analysis = cached.analysis
            internal = analysis.internal_net
            endpoints = analysis.windows_endpoints
            scanners = analysis.scanner_sources
            for conn in analysis.conns:
                if not flt.include_scanners and conn.orig_ip in scanners:
                    continue
                if not flt.matches(conn, internal, endpoints):
                    continue
                key = _group_key(conn, by, name, internal, endpoints)
                row = rows.get(key)
                if row is None:
                    row = rows[key] = GroupRow(group=key)
                row.conns += 1
                row.bytes += conn.total_bytes
                row.pkts += conn.total_pkts
        return sorted(rows.values(), key=lambda row: (-row.bytes, row.group))

    def samples(self, field: str, flt: ConnFilter = ConnFilter()) -> list[float]:
        """Extract one numeric field from every matching record."""
        return [_sample_of(conn, field) for _, conn in self.scan(flt)]

    def cdf(self, field: str, flt: ConnFilter = ConnFilter()) -> Cdf:
        """CDF of one numeric field over the matching records."""
        return Cdf(self.samples(field, flt))

    def table(self, flt: ConnFilter = ConnFilter(), by: str = "category") -> Table:
        """Render an aggregation as a report table (CLI output)."""
        table = Table(
            f"store query by {by}",
            "cached connection records matching the filter",
            [by, "conns", "KB", "pkts"],
        )
        total = GroupRow(group="total")
        for row in self.aggregate(flt, by):
            table.add_row(row.group, row.conns, round(row.bytes / 1e3, 1), row.pkts)
            total.conns += row.conns
            total.bytes += row.bytes
            total.pkts += row.pkts
        table.add_row("total", total.conns, round(total.bytes / 1e3, 1), total.pkts)
        return table
