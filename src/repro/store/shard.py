"""The columnar shard format: write-once binary analysis summaries.

A shard is one self-verifying file::

    +--------+---------+------+-----------+----------------------+
    | magic  | version | kind | nsections | sections ...         |
    | "RCS1" |  1 byte | 1 B  |  2 B BE   | name, length, bytes  |
    +--------+---------+------+-----------+----------------------+
    | footer: CRC32 of everything above (4 B BE) + end magic     |
    +------------------------------------------------------------+

Three kinds exist.  A *trace shard* (kind 1) holds one ingested trace:
its :class:`~repro.analysis.engine.TraceStats` and its connection
records in struct-packed columns.  A *dataset shard* (kind 2) holds the
dataset-level products: analyzer reports (the per-analyzer application
event aggregates), the scan-filter verdict, and learned endpoints.  A
*stream shard* (kind 3) carries the streaming engine's live-checkpoint
payloads — drained result batches and engine state snapshots — framed
here but encoded by :mod:`repro.stream.checkpoint`.

Corruption never surfaces as a raw ``struct.error``: every defect is
raised as :class:`ShardError`, an :class:`~repro.analysis.errors.IngestionError`
carrying the PR-1 taxonomy kind (``bad_magic`` for foreign or
wrong-version files, ``truncated_header``/``truncated_body`` for cut-off
bytes, ``decode_error`` for CRC or payload mismatches), so callers apply
the same strict/tolerant policy decisions they already apply to pcaps.

Shard bytes are deterministic: same seed, same shard, byte for byte.
Trace paths are stored relative to the dataset (never absolute), sets
are serialized sorted, and no timestamps or host state are embedded.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from ..analysis.conn import ConnRecord, ConnState
from ..analysis.engine import TraceStats
from ..analysis.errors import ErrorKind, IngestionError
from ..util.timeline import ByteTimeline
from . import codec
from .schema import SCHEMA_VERSION

__all__ = [
    "MAGIC",
    "END_MAGIC",
    "KIND_TRACE",
    "KIND_DATASET",
    "KIND_STREAM",
    "ShardError",
    "ShardNewerThanReader",
    "encode_shard",
    "decode_shard",
    "encode_conn_columns",
    "decode_conn_columns",
    "TraceShard",
    "DatasetShard",
    "encode_trace_shard",
    "decode_trace_shard",
    "encode_dataset_shard",
    "decode_dataset_shard",
]

MAGIC = b"RCS1"
END_MAGIC = b"1SCR"
KIND_TRACE = 1
KIND_DATASET = 2
#: Streaming-engine checkpoint shards (result batches and engine state);
#: encoded/decoded by :mod:`repro.stream.checkpoint`.
KIND_STREAM = 3

_HEADER = struct.Struct(">4sBBH")  # magic, schema version, kind, nsections
_FOOTER = struct.Struct(">I4s")  # crc32, end magic

#: Stable wire order for ConnState codes (enum definition order).
_STATES = tuple(ConnState)
_STATE_CODE = {state: index for index, state in enumerate(_STATES)}


class ShardError(IngestionError):
    """A shard-level defect, typed with the PR-1 error taxonomy."""


class ShardNewerThanReader(ShardError):
    """The shard's schema version postdates this reader."""


# -- container -------------------------------------------------------------


def encode_shard(
    kind: int, sections: dict[str, bytes], version: int = SCHEMA_VERSION
) -> bytes:
    """Frame named sections into one CRC-checked shard."""
    out = bytearray(_HEADER.pack(MAGIC, version, kind, len(sections)))
    for name, payload in sections.items():
        raw = name.encode("utf-8")
        out += struct.pack(">B", len(raw))
        out += raw
        out += struct.pack(">Q", len(payload))
        out += payload
    out += _FOOTER.pack(zlib.crc32(bytes(out)) & 0xFFFFFFFF, END_MAGIC)
    return bytes(out)


def decode_shard(
    data: bytes, path: str = "<shard>", expect_kind: int | None = None
) -> tuple[int, int, dict[str, bytes]]:
    """Verify and unframe a shard; returns (version, kind, sections)."""
    if len(data) < _HEADER.size + _FOOTER.size:
        raise ShardError(
            ErrorKind.TRUNCATED_HEADER, path, len(data),
            f"{len(data)}-byte file is smaller than a shard header",
        )
    if data[:4] != MAGIC:
        raise ShardError(
            ErrorKind.BAD_MAGIC, path, 0, f"not a shard: magic {data[:4]!r}"
        )
    if data[-4:] != END_MAGIC:
        raise ShardError(
            ErrorKind.TRUNCATED_BODY, path, len(data),
            "footer missing (shard tail truncated)",
        )
    crc_stored, _ = _FOOTER.unpack_from(data, len(data) - _FOOTER.size)
    crc_actual = zlib.crc32(data[: len(data) - _FOOTER.size]) & 0xFFFFFFFF
    if crc_stored != crc_actual:
        raise ShardError(
            ErrorKind.DECODE_ERROR, path, None,
            f"crc mismatch: footer {crc_stored:#010x}, content {crc_actual:#010x}",
        )
    _, version, kind, nsections = _HEADER.unpack_from(data, 0)
    if version != SCHEMA_VERSION:
        raise ShardNewerThanReader(
            ErrorKind.BAD_MAGIC, path, 4,
            f"shard schema version {version}, reader supports {SCHEMA_VERSION}",
        )
    if expect_kind is not None and kind != expect_kind:
        raise ShardError(
            ErrorKind.DECODE_ERROR, path, 5,
            f"expected shard kind {expect_kind}, found {kind}",
        )
    sections: dict[str, bytes] = {}
    pos = _HEADER.size
    end = len(data) - _FOOTER.size
    for _ in range(nsections):
        if pos + 1 > end:
            raise ShardError(
                ErrorKind.TRUNCATED_BODY, path, pos, "section name cut off"
            )
        name_len = data[pos]
        pos += 1
        name = data[pos : pos + name_len].decode("utf-8", "replace")
        pos += name_len
        if pos + 8 > end:
            raise ShardError(
                ErrorKind.TRUNCATED_BODY, path, pos, f"section {name!r} length cut off"
            )
        (length,) = struct.unpack_from(">Q", data, pos)
        pos += 8
        if pos + length > end:
            raise ShardError(
                ErrorKind.TRUNCATED_BODY, path, pos,
                f"section {name!r} claims {length} bytes, {end - pos} remain",
            )
        sections[name] = data[pos : pos + length]
        pos += length
    if pos != end:
        raise ShardError(
            ErrorKind.DECODE_ERROR, path, pos, f"{end - pos} unclaimed bytes"
        )
    return version, kind, sections


def _section(sections: dict[str, bytes], name: str, path: str) -> bytes:
    try:
        return sections[name]
    except KeyError:
        raise ShardError(
            ErrorKind.DECODE_ERROR, path, None, f"missing section {name!r}"
        ) from None


# -- columnar connection block ---------------------------------------------


def encode_conn_columns(conns: list[ConnRecord]) -> bytes:
    """Pack connection records column-by-column.

    Strings (protocols and app labels) are dictionary-encoded through one
    shared string table; ``notes`` dicts are sparse (most records carry
    none) and stored as (row, dict) pairs through the codec.
    """
    out = bytearray()
    n = len(conns)
    strings: list[str] = []
    string_index: dict[str, int] = {}

    def intern(text: str) -> int:
        index = string_index.get(text)
        if index is None:
            index = string_index[text] = len(strings)
            strings.append(text)
        return index

    proto_codes = bytes(intern(conn.proto) for conn in conns)
    state_codes = bytes(_STATE_CODE[conn.state] for conn in conns)
    app_codes = [intern(conn.app) for conn in conns]
    notes = [(row, conn.notes) for row, conn in enumerate(conns) if conn.notes]

    codec._write_uvarint(out, n)
    head = codec.encode(strings)
    codec._write_uvarint(out, len(head))
    out += head
    out += proto_codes
    out += state_codes
    out += struct.pack(f">{n}H", *app_codes)
    out += struct.pack(f">{n}I", *(conn.orig_ip for conn in conns))
    out += struct.pack(f">{n}I", *(conn.resp_ip for conn in conns))
    out += struct.pack(f">{n}H", *(conn.orig_port for conn in conns))
    out += struct.pack(f">{n}H", *(conn.resp_port for conn in conns))
    out += struct.pack(f">{n}d", *(conn.first_ts for conn in conns))
    out += struct.pack(f">{n}d", *(conn.last_ts for conn in conns))
    out += struct.pack(f">{n}I", *(conn.orig_pkts for conn in conns))
    out += struct.pack(f">{n}I", *(conn.resp_pkts for conn in conns))
    out += struct.pack(f">{n}Q", *(conn.orig_bytes for conn in conns))
    out += struct.pack(f">{n}Q", *(conn.resp_bytes for conn in conns))
    out += struct.pack(f">{n}I", *(conn.retransmits for conn in conns))
    out += struct.pack(f">{n}I", *(conn.keepalive_retransmits for conn in conns))
    out += struct.pack(f">{n}Q", *(conn.retransmit_bytes for conn in conns))
    out += struct.pack(f">{n}i", *(conn.trace_index for conn in conns))
    out += codec.encode(notes)
    return bytes(out)


def decode_conn_columns(data: bytes, path: str = "<shard>") -> list[ConnRecord]:
    """Unpack a columnar connection block back into records."""
    try:
        view = memoryview(data)
        n, pos = codec._read_uvarint(view, 0)
        head_len, pos = codec._read_uvarint(view, pos)
        strings = codec.decode(view[pos : pos + head_len])
        pos += head_len

        def column(fmt_char: str, size: int):
            nonlocal pos
            values = struct.unpack_from(f">{n}{fmt_char}", view, pos)
            pos += n * size
            return values

        proto_codes = bytes(view[pos : pos + n]); pos += n
        state_codes = bytes(view[pos : pos + n]); pos += n
        app_codes = column("H", 2)
        orig_ips = column("I", 4)
        resp_ips = column("I", 4)
        orig_ports = column("H", 2)
        resp_ports = column("H", 2)
        first_tss = column("d", 8)
        last_tss = column("d", 8)
        orig_pktss = column("I", 4)
        resp_pktss = column("I", 4)
        orig_bytess = column("Q", 8)
        resp_bytess = column("Q", 8)
        retransmitss = column("I", 4)
        keepalivess = column("I", 4)
        retransmit_bytess = column("Q", 8)
        trace_indexes = column("i", 4)
        notes_list = codec.decode(view[pos:])
        conns = [
            ConnRecord(
                proto=strings[proto_codes[row]],
                orig_ip=orig_ips[row],
                resp_ip=resp_ips[row],
                orig_port=orig_ports[row],
                resp_port=resp_ports[row],
                first_ts=first_tss[row],
                last_ts=last_tss[row],
                orig_pkts=orig_pktss[row],
                resp_pkts=resp_pktss[row],
                orig_bytes=orig_bytess[row],
                resp_bytes=resp_bytess[row],
                state=_STATES[state_codes[row]],
                retransmits=retransmitss[row],
                keepalive_retransmits=keepalivess[row],
                retransmit_bytes=retransmit_bytess[row],
                trace_index=trace_indexes[row],
                app=strings[app_codes[row]],
            )
            for row in range(n)
        ]
        for row, notes in notes_list:
            conns[row].notes = notes
        return conns
    except ShardError:
        raise
    except (struct.error, codec.CodecError, IndexError, ValueError) as exc:
        raise ShardError(
            ErrorKind.DECODE_ERROR, path, None, f"connection columns: {exc!r}"
        ) from None


# -- trace shards ----------------------------------------------------------


@dataclass
class TraceShard:
    """One decoded trace shard."""

    dataset: str
    source: str  # trace file path, relative to the dataset root
    source_digest: str
    stats: TraceStats
    conns: list[ConnRecord]


def _stats_payload(stats: TraceStats, source: str) -> dict:
    timeline = stats.utilization
    return {
        "index": stats.index,
        "path": source,
        "packets": stats.packets,
        "start_ts": stats.start_ts,
        "end_ts": stats.end_ts,
        "l2_counts": stats.l2_counts,
        "other_ip_protocols": stats.other_ip_protocols,
        "utilization": None
        if timeline is None
        else {
            "start": timeline.start,
            "end": timeline.end,
            "bin_seconds": timeline.bin_seconds,
            "bins": timeline.bins(),
        },
        "tcp_packets": stats.tcp_packets,
        "retransmits": stats.retransmits,
        "errors": stats.errors,
        "timestamp_regressions": stats.timestamp_regressions,
        "quarantined": stats.quarantined,
        "quarantine_reason": stats.quarantine_reason,
    }


def _stats_from_payload(payload: dict) -> TraceStats:
    stats = TraceStats(index=payload["index"], path=payload["path"])
    stats.packets = payload["packets"]
    stats.start_ts = payload["start_ts"]
    stats.end_ts = payload["end_ts"]
    stats.l2_counts = payload["l2_counts"]
    stats.other_ip_protocols = payload["other_ip_protocols"]
    raw = payload["utilization"]
    if raw is not None:
        timeline = ByteTimeline(raw["start"], raw["end"], raw["bin_seconds"])
        bins = raw["bins"]
        if len(bins) != timeline.num_bins:
            raise codec.CodecError(
                f"timeline bin count {len(bins)} != expected {timeline.num_bins}"
            )
        timeline._bins = bins
        stats.utilization = timeline
    stats.tcp_packets = payload["tcp_packets"]
    stats.retransmits = payload["retransmits"]
    stats.errors = payload["errors"]
    stats.timestamp_regressions = payload["timestamp_regressions"]
    stats.quarantined = payload["quarantined"]
    stats.quarantine_reason = payload["quarantine_reason"]
    return stats


def encode_trace_shard(
    dataset: str,
    source: str,
    source_digest: str,
    stats: TraceStats,
    conns: list[ConnRecord],
) -> bytes:
    """Build the write-once shard for one ingested trace.

    ``source`` must be dataset-relative (e.g. ``"D0/D0-w000-subnet04.pcap"``)
    so shard bytes stay machine-independent; the stored ``TraceStats.path``
    is rewritten to it.
    """
    if Path(source).is_absolute():
        raise ValueError(f"shard sources must be relative paths: {source!r}")
    meta = {"dataset": dataset, "source": source, "digest": source_digest}
    sections = {
        "meta": codec.encode(meta),
        "stats": codec.encode(_stats_payload(stats, source)),
        "conns": encode_conn_columns(conns),
    }
    return encode_shard(KIND_TRACE, sections)


def decode_trace_shard(data: bytes, path: str = "<shard>") -> TraceShard:
    """Verify and decode one trace shard."""
    _, _, sections = decode_shard(data, path, expect_kind=KIND_TRACE)
    try:
        meta = codec.decode(_section(sections, "meta", path))
        stats = _stats_from_payload(codec.decode(_section(sections, "stats", path)))
    except ShardError:
        raise
    except (codec.CodecError, KeyError, TypeError, ValueError) as exc:
        raise ShardError(
            ErrorKind.DECODE_ERROR, path, None, f"trace sections: {exc!r}"
        ) from None
    conns = decode_conn_columns(_section(sections, "conns", path), path)
    return TraceShard(
        dataset=meta["dataset"],
        source=meta["source"],
        source_digest=meta["digest"],
        stats=stats,
        conns=conns,
    )


# -- dataset shards --------------------------------------------------------


@dataclass
class DatasetShard:
    """One decoded dataset shard (the dataset-level analysis products)."""

    name: str
    full_payload: bool
    internal_net: str
    error_policy: str
    scanner_sources: set[int]
    windows_endpoints: set[tuple[int, int]]
    removed_conns: int
    analyzer_errors: dict[str, int]
    analyzer_results: dict[str, object]


def encode_dataset_shard(shard: DatasetShard) -> bytes:
    """Build the dataset-level shard (analyzer reports and verdicts)."""
    dataset = {
        "name": shard.name,
        "full_payload": shard.full_payload,
        "internal_net": shard.internal_net,
        "error_policy": shard.error_policy,
        "scanner_sources": shard.scanner_sources,
        "windows_endpoints": shard.windows_endpoints,
        "removed_conns": shard.removed_conns,
        "analyzer_errors": shard.analyzer_errors,
    }
    sections = {
        "dataset": codec.encode(dataset),
        "analyzers": codec.encode(shard.analyzer_results),
    }
    return encode_shard(KIND_DATASET, sections)


def decode_dataset_shard(data: bytes, path: str = "<shard>") -> DatasetShard:
    """Verify and decode one dataset shard."""
    _, _, sections = decode_shard(data, path, expect_kind=KIND_DATASET)
    try:
        dataset = codec.decode(_section(sections, "dataset", path))
        analyzers = codec.decode(_section(sections, "analyzers", path))
        return DatasetShard(
            name=dataset["name"],
            full_payload=dataset["full_payload"],
            internal_net=dataset["internal_net"],
            error_policy=dataset["error_policy"],
            scanner_sources=dataset["scanner_sources"],
            windows_endpoints=dataset["windows_endpoints"],
            removed_conns=dataset["removed_conns"],
            analyzer_errors=dataset["analyzer_errors"],
            analyzer_results=analyzers,
        )
    except ShardError:
        raise
    except (codec.CodecError, KeyError, TypeError, ValueError) as exc:
        raise ShardError(
            ErrorKind.DECODE_ERROR, path, None, f"dataset sections: {exc!r}"
        ) from None
