"""The content-addressed connection-record store.

Layout on disk::

    <root>/
      objects/<aa>/<digest>.rcs     # shards, named by the SHA-256 of
                                    # their own bytes (content-addressed)
      manifests/<key>.json          # content key -> dataset manifest
      manifests/<gen-key>.json      # generation key -> {"ref": content key}

The *content key* hashes everything that determines an analysis: the
schema version, the analyzer set, the error policy, the internal net,
the known-scanner list, payload visibility, and the SHA-256 of every
trace file in order.  Mutating one byte of one pcap therefore misses the
cache; so does changing the analyzer roster or bumping the schema.

The *generation key* hashes the study parameters (dataset, seed, scale,
window truncation) plus the same analysis configuration.  Because trace
generation is deterministic by seed, ``run_study`` can use it to skip
generation entirely; when the pcaps still exist on disk their digests
are re-verified against the manifest before the cached analysis is
trusted.

Shards are verified twice on every load — their name must equal the
SHA-256 of their bytes, and their CRC footer must check out — and every
defect surfaces as a :class:`~repro.store.shard.ShardError` carrying the
PR-1 taxonomy so callers can apply strict/tolerant policy decisions.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..analysis.engine import DatasetAnalysis
from ..chaos import fsio
from ..analysis.errors import ErrorKind, ErrorPolicy
from ..gen.capture import DatasetTraces, TapWindow, Trace
from ..gen.datasets import DATASETS
from ..util.addr import Subnet
from .schema import SCHEMA_VERSION
from .shard import (
    DatasetShard,
    ShardError,
    decode_dataset_shard,
    decode_trace_shard,
    encode_dataset_shard,
    encode_trace_shard,
)

__all__ = ["ConnStore", "CachedDataset", "GcReport", "DEFAULT_TMP_GRACE"]

_OBJECT_SUFFIX = ".rcs"
_TMP_SUFFIX = ".tmp"

#: Subdirectory of the store root where the ingestion daemon publishes
#: per-tenant rolling-window results (see :mod:`repro.daemon`).  Its
#: temp files are swept with the same grace rules as the store's own.
DAEMON_DIR = "daemon"

#: Seconds a ``.tmp`` file must sit untouched before gc/scrub treat it
#: as a crashed writer's leftover rather than a live writer's in-flight
#: publish.  An atomic publish lives milliseconds between ``mkstemp``
#: and ``os.replace``; five minutes is orders of magnitude past any
#: plausible stall, yet short enough that real debris is still swept by
#: the next maintenance pass.
DEFAULT_TMP_GRACE = 300.0


@dataclass(frozen=True)
class GcReport:
    """What a :meth:`ConnStore.gc` pass removed (or would remove)."""

    #: Digests of unreferenced shard objects removed (or would-be).
    removed: tuple[str, ...]
    #: Stale ``.tmp`` files left behind by crashed writers.
    stale_tmp: int
    #: Bytes freed (objects plus stale temp files).
    reclaimed_bytes: int
    dry_run: bool = False
    #: Young ``.tmp`` files spared by the grace period — likely a live
    #: writer (the daemon) mid-publish, never removed.
    in_flight_tmp: int = 0
    #: Mirror manifests removed because their primary copy is gone
    #: (tiered stores with replication only; always 0 on a flat store).
    orphan_mirrors: int = 0


class CachedDataset:
    """One warm-cache load: the analysis plus reconstructed trace metadata."""

    def __init__(self, analysis: DatasetAnalysis, traces: DatasetTraces) -> None:
        self.analysis = analysis
        self.traces = traces


class ConnStore:
    """A content-addressed store of analyzed connection records."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.manifests_dir = self.root / "manifests"

    # -- digests and keys --------------------------------------------------

    @staticmethod
    def file_digest(path: str | Path) -> str:
        """Streaming SHA-256 of a file's bytes."""
        digest = hashlib.sha256()
        with open(path, "rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                digest.update(block)
        return digest.hexdigest()

    @staticmethod
    def _key_of(payload: dict) -> str:
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @staticmethod
    def _analysis_config(
        analyzers: tuple[str, ...],
        error_policy: str,
        full_payload: bool,
        internal_net: str,
        known_scanners: tuple[int, ...],
    ) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "analyzers": sorted(analyzers),
            "error_policy": error_policy,
            "full_payload": full_payload,
            "internal_net": internal_net,
            "known_scanners": sorted(known_scanners),
        }

    @classmethod
    def content_key(
        cls,
        dataset: str,
        trace_digests: list[str],
        analyzers: tuple[str, ...],
        error_policy: str,
        full_payload: bool,
        internal_net: str,
        known_scanners: tuple[int, ...] = (),
        engine_config: dict | None = None,
    ) -> str:
        """The cache key for analyzing these exact trace bytes.

        ``engine_config`` forks the key for engine settings that change
        the emitted records (a streaming run with non-default eviction
        knobs).  ``None`` — a batch run, or a streaming run with the
        digest-parity defaults — keeps the historical key, so the two
        engines share cache entries whenever their output is identical.
        """
        payload = cls._analysis_config(
            analyzers, error_policy, full_payload, internal_net, known_scanners
        )
        payload["dataset"] = dataset
        payload["traces"] = list(trace_digests)
        if engine_config is not None:
            payload["engine"] = engine_config
        return cls._key_of(payload)

    @classmethod
    def generation_key(
        cls,
        dataset: str,
        seed: int,
        scale: float,
        max_windows: int | None,
        analyzers: tuple[str, ...],
        error_policy: str,
        internal_net: str,
        known_scanners: tuple[int, ...] = (),
        engine_config: dict | None = None,
    ) -> str:
        """The cache key for a deterministic generate-then-analyze run.

        ``engine_config`` forks the key exactly as in :meth:`content_key`.
        """
        payload = cls._analysis_config(
            analyzers, error_policy, True, internal_net, known_scanners
        )
        del payload["full_payload"]  # implied by the dataset config
        payload["generation"] = {
            "dataset": dataset,
            "seed": seed,
            "scale": scale,
            "max_windows": max_windows,
        }
        if engine_config is not None:
            payload["engine"] = engine_config
        return "gen-" + cls._key_of(payload)

    # -- multi-root hooks --------------------------------------------------
    #
    # Everything that walks the object tree (gc, stats, scrub) goes
    # through these three, so a tiered store (repro.store.tier) can
    # spread objects over several roots by overriding them alone.  The
    # flat store's answers keep it byte-identical to its historical
    # single-directory behavior.

    def roots(self) -> list[Path]:
        """Every filesystem root holding store files (primary first)."""
        return [self.root]

    def object_dirs(self) -> list[Path]:
        """Every ``objects/`` directory, one per root."""
        return [self.objects_dir]

    def owning_root(self, path: Path) -> Path:
        """The root one store file lives under (quarantine stays on the
        same filesystem as the damage it removes)."""
        return self.root

    def manifest_dirs(self) -> list[Path]:
        """Every directory holding manifest files (primary first; a
        replicated tiered store adds its mirror directories)."""
        return [self.manifests_dir]

    def _object_files(self) -> Iterator[Path]:
        """Every shard object file across every root, per-dir sorted."""
        for directory in self.object_dirs():
            if directory.is_dir():
                yield from sorted(directory.glob(f"*/*{_OBJECT_SUFFIX}"))

    # -- object storage ----------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        return self.objects_dir / digest[:2] / f"{digest}{_OBJECT_SUFFIX}"

    def put_object(self, data: bytes) -> str:
        """Store shard bytes under their own digest; returns the digest.

        Safe under concurrent writers *and* crashes: each writes to a
        uniquely named temp file in the target directory, ``fsync``\\ s
        it, publishes it with an atomic :func:`os.replace`, and
        ``fsync``\\ s the directory (see
        :func:`repro.chaos.fsio.publish_bytes`), so a reader can never
        observe a partial shard and a published shard survives a power
        cut.  The first writer wins — a later writer of the same digest
        (same bytes, by content addressing) either skips the write or
        harmlessly replaces the file with identical content.
        """
        digest = hashlib.sha256(data).hexdigest()
        path = self._object_path(digest)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            fsio.publish_bytes(path, data, tmp_prefix=f".{digest[:12]}-")
        return digest

    def get_object(self, digest: str) -> bytes:
        """Load shard bytes, re-verifying the content address."""
        path = self._object_path(digest)
        try:
            data = fsio.read_bytes(path)
        except FileNotFoundError:
            raise ShardError(
                ErrorKind.TRUNCATED_BODY, str(path), None, "shard object missing"
            ) from None
        actual = hashlib.sha256(data).hexdigest()
        if actual != digest:
            raise ShardError(
                ErrorKind.DECODE_ERROR, str(path), None,
                f"content address mismatch: named {digest[:12]}…, "
                f"bytes hash to {actual[:12]}…",
            )
        return data

    # -- manifests ---------------------------------------------------------

    def _manifest_path(self, key: str) -> Path:
        return self.manifests_dir / f"{key}.json"

    def _write_manifest(self, key: str, payload: dict) -> None:
        """Crash-consistently (re)write one manifest: a reader sees the
        old version or the new one, never an interleaving — and after a
        crash, never a torn file (contents and directory are fsynced
        before and after the atomic rename)."""
        path = self._manifest_path(key)
        text = json.dumps(payload, sort_keys=True, indent=1) + "\n"
        fsio.publish_text(path, text, tmp_prefix=f".{key[:12]}-")

    def _delete_manifest(self, key: str) -> None:
        """Retire one manifest (a completed streaming checkpoint).  A
        replicated tiered store also drops the mirrors here."""
        self._manifest_path(key).unlink(missing_ok=True)

    def lookup(self, key: str) -> dict | None:
        """Load a manifest by key, following generation-key aliases.

        A manifest that cannot be read or parsed — torn by a legacy
        writer, bit-rotted, or mid-flip under chaos — is treated as a
        cache miss, never an error; the scrubber is where such files
        get diagnosed and quarantined.
        """
        path = self._manifest_path(key)
        try:
            payload = json.loads(fsio.read_bytes(path).decode("utf-8"))
        except (OSError, ValueError):
            return None
        ref = payload.get("ref")
        if ref is not None:
            return self.lookup(ref)
        return payload

    def _raw_manifests(self) -> Iterator[dict]:
        """Every parseable manifest payload, aliases and checkpoints included."""
        if not self.manifests_dir.is_dir():
            return
        for path in sorted(self.manifests_dir.glob("*.json")):
            try:
                payload = json.loads(fsio.read_bytes(path).decode("utf-8"))
            except (OSError, ValueError):
                continue
            yield payload

    def manifests(self) -> Iterator[dict]:
        """Every dataset manifest in the store.

        Generation-key aliases and streaming-checkpoint manifests are
        skipped: neither describes a finished analysis.
        """
        for payload in self._raw_manifests():
            if "ref" not in payload and payload.get("kind") != "checkpoint":
                yield payload

    def checkpoints(self) -> Iterator[dict]:
        """Every live streaming-checkpoint manifest (interrupted runs)."""
        for payload in self._raw_manifests():
            if payload.get("kind") == "checkpoint":
                yield payload

    # -- save / load -------------------------------------------------------

    def save_analysis(
        self,
        key: str,
        analysis: DatasetAnalysis,
        traces: DatasetTraces,
        trace_digests: list[str],
        gen_key: str | None = None,
        repair: dict | None = None,
    ) -> dict:
        """Shard a finished analysis and write its manifest.

        ``repair`` is an optional block of analysis parameters (error
        policy, known scanners, engine) recorded verbatim in the
        manifest; ``repro-study store repair`` uses it to re-derive
        damaged shards from the source traces (see
        :mod:`repro.store.scrub`).  Manifests without it are still
        scrubbed, just not repairable.
        """
        self.manifests_dir.mkdir(parents=True, exist_ok=True)
        name = analysis.name
        by_trace: dict[int, list] = {}
        for conn in analysis.conns:
            by_trace.setdefault(conn.trace_index, []).append(conn)
        trace_entries = []
        for index, (trace, stats) in enumerate(zip(traces.traces, analysis.traces)):
            source = f"{name}/{Path(trace.path).name}"
            data = encode_trace_shard(
                name, source, trace_digests[index], stats, by_trace.get(index, [])
            )
            trace_entries.append(
                {
                    "file": source,
                    "digest": trace_digests[index],
                    "shard": self.put_object(data),
                    "packet_count": trace.packet_count,
                    "snaplen": trace.snaplen,
                    "window": {
                        "index": trace.window.index,
                        "subnet_index": trace.window.subnet_index,
                        "t0": trace.window.t0,
                        "t1": trace.window.t1,
                    },
                }
            )
        dataset_digest = self.put_object(
            encode_dataset_shard(
                DatasetShard(
                    name=name,
                    full_payload=analysis.full_payload,
                    internal_net=str(analysis.internal_net),
                    error_policy=analysis.error_policy,
                    scanner_sources=analysis.scanner_sources,
                    windows_endpoints=analysis.windows_endpoints,
                    removed_conns=analysis.removed_conns,
                    analyzer_errors=analysis.analyzer_errors,
                    analyzer_results=analysis.analyzer_results,
                )
            )
        )
        manifest = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "dataset": name,
            "traces": trace_entries,
            "dataset_shard": dataset_digest,
        }
        if repair is not None:
            manifest["repair"] = repair
        self._write_manifest(key, manifest)
        if gen_key is not None:
            self._write_manifest(gen_key, {"ref": key})
        return manifest

    def load_analysis(self, manifest: dict) -> CachedDataset:
        """Rebuild a :class:`DatasetAnalysis` from cached shards.

        Raises :class:`ShardError` on any corrupt, truncated, or missing
        shard — callers decide what the active error policy makes of it.
        """
        name = manifest["dataset"]
        dataset_shard = decode_dataset_shard(
            self.get_object(manifest["dataset_shard"]),
            str(self._object_path(manifest["dataset_shard"])),
        )
        analysis = DatasetAnalysis(
            name=name,
            full_payload=dataset_shard.full_payload,
            internal_net=Subnet.parse(dataset_shard.internal_net),
            error_policy=dataset_shard.error_policy,
        )
        analysis.scanner_sources = dataset_shard.scanner_sources
        analysis.windows_endpoints = dataset_shard.windows_endpoints
        analysis.removed_conns = dataset_shard.removed_conns
        analysis.analyzer_errors = dataset_shard.analyzer_errors
        analysis.analyzer_results = dataset_shard.analyzer_results
        config = DATASETS[name]
        traces = DatasetTraces(config=config)
        for entry in manifest["traces"]:
            shard = decode_trace_shard(
                self.get_object(entry["shard"]),
                str(self._object_path(entry["shard"])),
            )
            analysis.traces.append(shard.stats)
            analysis.conns.extend(shard.conns)
            window = entry["window"]
            traces.traces.append(
                Trace(
                    dataset=name,
                    window=TapWindow(
                        index=window["index"],
                        subnet_index=window["subnet_index"],
                        t0=window["t0"],
                        t1=window["t1"],
                    ),
                    path=Path(entry["file"]),
                    packet_count=entry["packet_count"],
                    snaplen=entry["snaplen"],
                )
            )
        return CachedDataset(analysis, traces)

    def load_or_none(
        self, manifest: dict, error_policy: ErrorPolicy | str
    ) -> CachedDataset | None:
        """Policy-aware load: strict raises on shard defects, the
        tolerant policies treat a damaged cache as a miss (the caller
        falls back to re-parsing the pcaps)."""
        try:
            return self.load_analysis(manifest)
        except ShardError:
            if ErrorPolicy.coerce(error_policy) is ErrorPolicy.STRICT:
                raise
            return None

    def sources_intact(self, manifest: dict, base_dir: Path | None) -> bool:
        """Check the manifest's trace files against the disk.

        With ``base_dir=None`` the pcaps were transient: the manifest is
        trusted (generation is deterministic by seed).  Otherwise every
        trace file still present must digest-match; a mutated file
        invalidates the cache, while deleted files are tolerated.
        """
        if base_dir is None:
            return True
        for entry in manifest["traces"]:
            path = base_dir / entry["file"]
            if path.exists() and self.file_digest(path) != entry["digest"]:
                return False
        return True

    # -- maintenance -------------------------------------------------------

    def referenced_objects(self) -> set[str]:
        """Digests referenced by at least one manifest.

        Live checkpoint manifests count: an interrupted streaming run's
        state and result-batch objects must survive a gc pass, or the
        run could never resume.
        """
        referenced: set[str] = set()
        for manifest in self.manifests():
            referenced.add(manifest["dataset_shard"])
            referenced.update(entry["shard"] for entry in manifest["traces"])
        for checkpoint in self.checkpoints():
            referenced.add(checkpoint["state"])
            referenced.update(checkpoint.get("batches", ()))
        return referenced

    def gc(
        self, dry_run: bool = False, tmp_grace_s: float = DEFAULT_TMP_GRACE
    ) -> GcReport:
        """Collect unreferenced shard objects and stale temp files.

        Returns a :class:`GcReport` with the removed digests and the
        bytes reclaimed.  With ``dry_run`` nothing is deleted — the
        report says what a real pass *would* reclaim.

        Safe against a live daemon: a ``.tmp`` whose mtime is younger
        than ``tmp_grace_s`` seconds is an in-flight publish, not
        debris, and is spared (counted in ``in_flight_tmp``).  Pass
        ``tmp_grace_s=0.0`` for the historical sweep-everything
        behavior on a store known to be quiescent.
        """
        referenced = self.referenced_objects()
        removed: list[str] = []
        stale_tmp = 0
        in_flight = 0
        reclaimed = 0
        now = time.time()
        for path in self._object_files():
            digest = path.stem
            if digest not in referenced:
                reclaimed += path.stat().st_size
                if not dry_run:
                    path.unlink()
                removed.append(digest)
        # Temp files survive a publish only when its writer crashed —
        # or when the writer is alive and mid-flight right now, which
        # only the file's age can distinguish.
        for base in (*self.object_dirs(), *self.manifest_dirs(), self.root / DAEMON_DIR):
            if not base.is_dir():
                continue
            for path in sorted(base.rglob(f"*{_TMP_SUFFIX}")):
                try:
                    stat = path.stat()
                except FileNotFoundError:
                    continue  # published (renamed away) mid-walk
                if tmp_grace_s > 0 and now - stat.st_mtime < tmp_grace_s:
                    in_flight += 1
                    continue
                stale_tmp += 1
                reclaimed += stat.st_size
                if not dry_run:
                    try:
                        path.unlink()
                    except FileNotFoundError:
                        pass
        if not dry_run:
            for directory in self.object_dirs():
                if not directory.is_dir():
                    continue
                for bucket in sorted(directory.iterdir()):
                    if bucket.is_dir() and not any(bucket.iterdir()):
                        bucket.rmdir()
        return GcReport(
            removed=tuple(removed),
            stale_tmp=stale_tmp,
            reclaimed_bytes=reclaimed,
            dry_run=dry_run,
            in_flight_tmp=in_flight,
        )

    def stats(self) -> dict:
        """Store-wide accounting for ``repro-study store ls``."""
        objects = list(self._object_files())
        return {
            "root": str(self.root),
            "manifests": sum(1 for _ in self.manifests()),
            "objects": len(objects),
            "bytes": sum(path.stat().st_size for path in objects),
        }
