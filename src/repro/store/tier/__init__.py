"""Tiered multi-root storage: placement, hot cache, compaction, scrub.

See ``docs/store.md`` (§ tiering) for the operational story.  The short
version: ``init_tier`` stamps a placement manifest onto a store root,
``open_store`` returns the right store class for any root, and the
rest of the pipeline never knows the difference.
"""

from .compact import CompactionReport, compact_checkpoints
from .health import QUEUE_FILE, HealthTracker, UnderReplicatedQueue
from .hotcache import HotTier
from .placement import BUCKETS, DEFAULT_HOT_BYTES, TIER_MANIFEST, PlacementManifest
from .scrub import CURSOR_FILE, IncrementalScrubber
from .store import (
    RebalanceReport,
    ReplicaRepairReport,
    TieredStore,
    init_tier,
    open_store,
)

__all__ = [
    "BUCKETS",
    "CURSOR_FILE",
    "CompactionReport",
    "DEFAULT_HOT_BYTES",
    "HealthTracker",
    "HotTier",
    "IncrementalScrubber",
    "PlacementManifest",
    "QUEUE_FILE",
    "RebalanceReport",
    "ReplicaRepairReport",
    "TIER_MANIFEST",
    "TieredStore",
    "UnderReplicatedQueue",
    "compact_checkpoints",
    "init_tier",
    "open_store",
]
