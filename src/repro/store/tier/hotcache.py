"""The hot tier: a read-through LRU byte-cache over shard objects.

The paper's workload is read-heavy — the same per-site connection
records are re-sliced into dozens of tables and CDFs — so the shards a
query touches are overwhelmingly the shards the *next* query touches.
The hot tier keeps those verified bytes in RAM: a hit skips the file
read *and* the SHA-256 re-verification (the bytes were verified on the
way in and the cache is append-only per digest, so a hit is as
trustworthy as a cold read).

Two knobs, both from the placement manifest:

* ``max_bytes`` bounds the spill: when an insert would exceed it, the
  least-recently-used unpinned entries are evicted until it fits.
* ``pinned`` digests are never evicted once loaded — the shards behind
  a dashboard's standing queries stay resident no matter what bulk
  scans churn through the rest of the cache.

Thread-safe: the store sits under the multi-threaded HTTP service, so
every operation holds one lock (the payloads themselves are immutable
bytes — no copy needed on the way out).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["HotTier"]


class HotTier:
    """Bounded LRU of content-addressed shard bytes with pinning."""

    def __init__(self, max_bytes: int, pinned: tuple[str, ...] = ()) -> None:
        self.max_bytes = max(0, int(max_bytes))
        self.pinned = set(pinned)
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, digest: str) -> bytes | None:
        """Cached bytes for a digest, or None; a hit refreshes recency."""
        with self._lock:
            data = self._entries.get(digest)
            if data is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return data

    def put(self, digest: str, data: bytes) -> None:
        """Admit verified bytes, evicting LRU unpinned entries to fit.

        An unpinned payload larger than the whole budget is not
        admitted (it would evict everything for a single entry);
        pinned digests are admitted unconditionally — pins outrank
        the byte bound by design.
        """
        pinned = digest in self.pinned
        if not pinned and len(data) > self.max_bytes:
            return
        with self._lock:
            if digest in self._entries:
                self._entries.move_to_end(digest)
                return
            self._entries[digest] = data
            self._bytes += len(data)
            if not self._evictable():
                return
            for victim in list(self._entries):
                if self._bytes <= self.max_bytes:
                    break
                if victim in self.pinned or victim == digest:
                    continue
                self._bytes -= len(self._entries.pop(victim))
                self.evictions += 1

    def _evictable(self) -> bool:
        return self._bytes > self.max_bytes

    def pin(self, digest: str) -> None:
        """Protect a digest from eviction (effective once it is loaded)."""
        with self._lock:
            self.pinned.add(digest)

    def invalidate(self, digest: str) -> None:
        """Drop one entry (a quarantined or rewritten object)."""
        with self._lock:
            data = self._entries.pop(digest, None)
            if data is not None:
                self._bytes -= len(data)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> dict:
        with self._lock:
            pinned_resident = sum(1 for d in self._entries if d in self.pinned)
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "pinned": len(self.pinned),
                "pinned_resident": pinned_resident,
            }
