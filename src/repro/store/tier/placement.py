"""Shard placement across multiple store roots.

A tiered store spreads its ``objects/`` tree over N filesystem roots,
routing each shard by the first hex character of its content address —
16 *buckets*, each wholly owned by one root.  The routing table lives in
a single JSON **placement manifest** (``tier.json``) at the primary
root, published through the crash-consistent fsio seam so readers see
the old table or the new one, never a torn file.

The manifest also records the *moving* cursor: while a bucket's objects
are being copied to a new root, ``moving[bucket]`` names the
destination.  Writers target the destination immediately (so nothing
written mid-move is stranded), readers try the assigned root first and
fall back to every other root, and the final ``assign`` flip is one
atomic manifest rewrite — a crash at any point leaves a store that
answers every read, with at worst duplicate copies for the next
rebalance pass to reap.

Placement is deterministic and *minimal-move*: adding a root reassigns
only the buckets needed to level the count, never reshuffling buckets
that can stay put.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from ...chaos import fsio

__all__ = [
    "PlacementManifest",
    "TIER_MANIFEST",
    "BUCKETS",
    "DEFAULT_HOT_BYTES",
    "DEFAULT_FAILURE_THRESHOLD",
    "DEFAULT_COOLDOWN_S",
]

#: Filename of the placement manifest at the primary root.  Its mere
#: presence is what makes :func:`repro.store.tier.open_store` return a
#: :class:`~repro.store.tier.store.TieredStore`.
TIER_MANIFEST = "tier.json"

#: The 16 placement buckets: the first hex character of a content address.
BUCKETS = tuple("0123456789abcdef")

#: Default hot-tier budget (bytes of decoded shard payloads kept in RAM).
DEFAULT_HOT_BYTES = 64 << 20

#: Consecutive I/O failures before a root's circuit breaker opens.
DEFAULT_FAILURE_THRESHOLD = 3

#: Seconds an open breaker waits before letting one half-open probe through.
DEFAULT_COOLDOWN_S = 30.0

_SCHEMA = 1


@dataclass
class PlacementManifest:
    """The routing table one tiered store lives by.

    ``roots`` are *specs*: ``"."`` is the primary root itself, other
    entries are absolute paths or paths relative to the primary.  Index
    0 must be ``"."`` — manifests, the daemon tree, and this file stay
    at the primary so every existing key/token computation is untouched.
    """

    roots: list[str] = field(default_factory=lambda: ["."])
    #: bucket (hex char) -> index into ``roots``.
    assign: dict[str, int] = field(default_factory=dict)
    #: in-flight rebalance cursor: bucket -> destination root index.
    moving: dict[str, int] = field(default_factory=dict)
    hot_bytes: int = DEFAULT_HOT_BYTES
    #: digests pinned into the hot tier (never evicted once loaded).
    pinned: tuple[str, ...] = ()
    #: Copies of every object (and manifest) kept on distinct roots.
    #: 1 — the historical behavior — means no redundancy at all.
    replicas: int = 1
    #: Root-health circuit breaker: consecutive failures before open,
    #: and how long open lasts before a half-open probe.
    failure_threshold: int = DEFAULT_FAILURE_THRESHOLD
    cooldown_s: float = DEFAULT_COOLDOWN_S

    def __post_init__(self) -> None:
        if not self.roots or self.roots[0] != ".":
            raise ValueError('placement roots[0] must be "." (the primary)')
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        for bucket in BUCKETS:
            self.assign.setdefault(bucket, 0)
        bad = [b for b in self.assign if b not in BUCKETS]
        if bad:
            raise ValueError(f"unknown placement buckets: {bad}")
        for bucket, index in {**self.assign, **self.moving}.items():
            if not 0 <= index < len(self.roots):
                raise ValueError(
                    f"bucket {bucket!r} routed to root {index}, "
                    f"but only {len(self.roots)} root(s) are declared"
                )

    # -- routing -----------------------------------------------------------

    @staticmethod
    def bucket_of(digest: str) -> str:
        return digest[0]

    def active_index(self, bucket: str) -> int:
        """Where *writers* put the bucket right now.

        Mid-move this is the destination: anything published during the
        copy lands where the flip will point readers, so a move can
        never strand a freshly written shard at the root it is leaving.
        """
        return self.moving.get(bucket, self.assign[bucket])

    def effective_replicas(self) -> int:
        """The copy count actually achievable: you cannot keep two
        copies on distinct roots of a one-root store."""
        return min(self.replicas, len(self.roots))

    @staticmethod
    def _rendezvous(token: str, indices: list[int]) -> list[int]:
        """``indices`` in the token's rendezvous order — each (token,
        index) pair gets a deterministic score, highest first, so every
        process (and every process *restart*) derives the same
        secondary set without any coordination."""
        return sorted(
            indices,
            key=lambda index: hashlib.sha256(
                f"{token}:{index}".encode("utf-8")
            ).hexdigest(),
            reverse=True,
        )

    def replica_order(self, bucket: str, primary: int | None = None) -> list[int]:
        """Every root index, primary first, then rendezvous order.

        The full list is the read-fallback scan order; its first
        :meth:`effective_replicas` entries are the bucket's replica set.
        ``primary`` overrides the placement's active index — rebalance
        uses it to compute the replica set a bucket will have *after*
        its pending flip.
        """
        home = self.active_index(bucket) if primary is None else primary
        others = [index for index in range(len(self.roots)) if index != home]
        return [home] + self._rendezvous(bucket, others)

    def replica_indices(self, bucket: str, primary: int | None = None) -> list[int]:
        """The roots that must each hold a copy of this bucket's objects."""
        return self.replica_order(bucket, primary)[: self.effective_replicas()]

    def mirror_indices(self, key: str) -> list[int]:
        """Secondary roots that mirror one manifest (primary holds the
        original; mirrors make the metadata plane as redundant as the
        objects it describes)."""
        want = self.effective_replicas() - 1
        if want <= 0:
            return []
        others = list(range(1, len(self.roots)))
        return self._rendezvous(key, others)[:want]

    def resolve_roots(self, primary: Path) -> list[Path]:
        """Root specs -> concrete paths (primary-relative unless absolute)."""
        resolved = []
        for spec in self.roots:
            if spec == ".":
                resolved.append(primary)
            else:
                path = Path(spec)
                resolved.append(path if path.is_absolute() else primary / path)
        return resolved

    # -- target computation ------------------------------------------------

    def balanced_assign(self) -> dict[str, int]:
        """The minimal-move leveled routing for the current root list.

        Each root's quota is ``16 // n`` buckets (+1 for the first
        ``16 % n`` roots).  Buckets already at an under-quota root stay;
        only the excess is reassigned, in hex order, to under-quota
        roots in index order — fully deterministic, so every invocation
        (including one resuming after a crash) computes the same target.
        """
        n = len(self.roots)
        quota = [16 // n + (1 if i < 16 % n else 0) for i in range(n)]
        target: dict[str, int] = {}
        used = [0] * n
        homeless: list[str] = []
        for bucket in BUCKETS:
            current = self.assign[bucket]
            if used[current] < quota[current]:
                target[bucket] = current
                used[current] += 1
            else:
                homeless.append(bucket)
        for bucket in homeless:
            for index in range(n):
                if used[index] < quota[index]:
                    target[bucket] = index
                    used[index] += 1
                    break
        return target

    def misplaced(self) -> tuple[str, ...]:
        """Buckets whose current assignment differs from the leveled target."""
        target = self.balanced_assign()
        return tuple(
            bucket for bucket in BUCKETS
            if self.assign[bucket] != target[bucket] or bucket in self.moving
        )

    # -- persistence -------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "schema": _SCHEMA,
            "roots": list(self.roots),
            "assign": {b: self.assign[b] for b in BUCKETS},
            "moving": dict(sorted(self.moving.items())),
            "hot_bytes": self.hot_bytes,
            "pinned": sorted(self.pinned),
            "replicas": self.replicas,
            "failure_threshold": self.failure_threshold,
            "cooldown_s": self.cooldown_s,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PlacementManifest":
        return cls(
            roots=list(payload["roots"]),
            assign={str(k): int(v) for k, v in payload.get("assign", {}).items()},
            moving={str(k): int(v) for k, v in payload.get("moving", {}).items()},
            hot_bytes=int(payload.get("hot_bytes", DEFAULT_HOT_BYTES)),
            pinned=tuple(payload.get("pinned", ())),
            replicas=int(payload.get("replicas", 1)),
            failure_threshold=int(
                payload.get("failure_threshold", DEFAULT_FAILURE_THRESHOLD)
            ),
            cooldown_s=float(payload.get("cooldown_s", DEFAULT_COOLDOWN_S)),
        )

    @classmethod
    def load(cls, primary: Path) -> "PlacementManifest | None":
        """Read the placement manifest, or None when the store is flat."""
        path = primary / TIER_MANIFEST
        try:
            payload = json.loads(fsio.read_bytes(path).decode("utf-8"))
        except FileNotFoundError:
            return None
        return cls.from_payload(payload)

    def save(self, primary: Path) -> None:
        """Atomically (re)publish the routing table.

        This is the linearization point of every placement change: the
        assign flip that completes a bucket move, the cursor write that
        starts one, a new root joining.  ``fsio.publish_text`` fsyncs
        file and directory around an ``os.replace``, so under the chaos
        fault plane a crash leaves the previous table intact.
        """
        text = json.dumps(self.to_payload(), sort_keys=True, indent=1) + "\n"
        fsio.publish_text(primary / TIER_MANIFEST, text, tmp_prefix=".tier-")
