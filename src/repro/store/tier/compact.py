"""Background compaction of streaming checkpoint shards.

A long-running streaming ingest (the daemon, a checkpointed study)
drains its finished-flow buffer every ``checkpoint_every`` packets,
leaving a trail of small kind-3 result-batch shards — dozens of files a
few KB each per trace.  Every resume and every end-of-trace merge then
pays one open+read+verify per batch.  Compaction folds a checkpoint's
batch chain into one columnar **super-shard** holding the identical
results in the identical order, so the chain is one object deep again.

Equivalence is structural, not hoped-for: ``decode_result_batch`` of
the super-shard yields exactly the concatenation of decoding the
originals (the encoder is a pure function of the result list), and the
engine's end-of-trace merge promotion-sorts whatever it is handed — so
a resumed run is byte-identical before, during, and after compaction.
The acceptance gate (study digests unchanged) rides on that.

Crash-safety leans entirely on the store's existing seams:

1. the super-shard and the rewritten state shard are published
   content-addressed (crash ⇒ unreferenced objects, swept by gc);
2. the checkpoint manifest rewrite is one atomic
   :func:`~repro.chaos.fsio.publish_text` — a reader (or a resuming
   engine) sees the old batch chain or the new one, never a mix;
3. the *state shard* is rewritten too, because
   :meth:`~repro.stream.checkpoint.StreamCheckpointer.load` restores
   the batch list from the state, not the manifest — rewriting only
   the manifest would silently undo the compaction on resume.

Live writers are skipped by a manifest-age grace (same idea as the
gc/scrub tmp grace): a checkpoint whose manifest was republished in the
last ``grace_s`` seconds belongs to a running engine that will rewrite
it momentarily, and compacting under it would only waste the work.

The manifest-file *name* never changes, so the service's store-state
token — a hash of the manifest listing — is unchanged and every cached
response stays valid mid-compaction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..cache import ConnStore, DEFAULT_TMP_GRACE
from ..schema import SCHEMA_VERSION

__all__ = ["CompactionReport", "compact_checkpoints"]

#: Fewest batches a checkpoint must hold before compacting pays.
DEFAULT_MIN_BATCHES = 2


@dataclass
class CompactionReport:
    """What one compaction pass did."""

    examined: int = 0
    #: Checkpoint keys compacted this pass.
    compacted: list[str] = field(default_factory=list)
    batches_before: int = 0
    batches_after: int = 0
    bytes_written: int = 0
    #: Checkpoints skipped because their manifest is younger than the
    #: grace — a live engine owns them.
    skipped_live: int = 0
    #: Checkpoints already compact (fewer than min_batches batches).
    skipped_small: int = 0

    def render(self) -> str:
        lines = [
            f"compacted {len(self.compacted)}/{self.examined} checkpoint(s): "
            f"{self.batches_before} batch shard(s) -> {self.batches_after}"
        ]
        for key in self.compacted:
            lines.append(f"  {key[:20]}…")
        if self.skipped_live:
            lines.append(f"  {self.skipped_live} skipped (live writer grace)")
        if self.skipped_small:
            lines.append(f"  {self.skipped_small} already compact")
        return "\n".join(lines)


def compact_checkpoints(
    store: ConnStore,
    min_batches: int = DEFAULT_MIN_BATCHES,
    grace_s: float = DEFAULT_TMP_GRACE,
    keys: tuple[str, ...] = (),
) -> CompactionReport:
    """Merge each eligible checkpoint's batch chain into one super-shard.

    ``keys`` restricts the pass to specific checkpoint keys (as listed
    in the manifests' ``key`` field); empty means every checkpoint.
    Pass ``grace_s=0`` on a store known quiescent (tests, CI smoke).
    Old batch and state objects become unreferenced — ``store gc``
    reclaims them.
    """
    # Lazy: repro.stream imports repro.store at module scope; importing
    # it here (not at module scope) keeps the store package import-light
    # and cycle-free.
    from ...stream.checkpoint import (
        StreamCheckpointer,
        decode_result_batch,
        decode_state,
        encode_result_batch,
        encode_state,
    )

    report = CompactionReport()
    now = time.time()
    for manifest in store.checkpoints():
        key = manifest.get("key")
        batches = list(manifest.get("batches", ()))
        if key is None:
            continue
        if keys and key not in keys:
            continue
        report.examined += 1
        if len(batches) < min_batches:
            report.skipped_small += 1
            continue
        manifest_key = StreamCheckpointer(store, key).manifest_key
        path = store._manifest_path(manifest_key)
        try:
            age = now - path.stat().st_mtime
        except OSError:
            continue  # retired between listing and here
        if grace_s > 0 and age < grace_s:
            report.skipped_live += 1
            continue
        results = []
        for digest in batches:
            results.extend(
                decode_result_batch(
                    store.get_object(digest), str(store._object_path(digest))
                )
            )
        super_bytes = encode_result_batch(results)
        super_digest = store.put_object(super_bytes)
        state = decode_state(
            store.get_object(manifest["state"]),
            str(store._object_path(manifest["state"])),
        )
        state["batches"] = [super_digest]
        state_bytes = encode_state(state)
        state_digest = store.put_object(state_bytes)
        store._write_manifest(
            manifest_key,
            {
                "schema": SCHEMA_VERSION,
                "kind": "checkpoint",
                "key": key,
                "state": state_digest,
                "batches": [super_digest],
                "compacted_from": len(batches),
            },
        )
        report.compacted.append(key)
        report.batches_before += len(batches)
        report.batches_after += 1
        report.bytes_written += len(super_bytes) + len(state_bytes)
    return report
