"""Incremental, resumable scrub: integrity as a background task.

The PR-5 scrubber walks the whole store in one sitting — fine at study
scale, hostile at serving scale, where a full pass stalls the node for
as long as the store is large.  :class:`IncrementalScrubber` does the
same three passes (objects self-verify, manifests parse and resolve,
temp files are aged) in bounded *steps*, persisting a **progress
cursor** between steps so the task can be paused, rescheduled, or
killed at any point and resume exactly where it stopped.

The cursor (``scrub-cursor.json`` at the primary root) is published
through the fsio seam, so a crash mid-step costs at most one step of
re-verification, never the findings already accumulated.  It records
the phase, the sort-key watermark within the phase, the running
counters, and every finding so far; :meth:`report` folds it back into
the same :class:`~repro.store.scrub.ScrubReport` the one-shot scrubber
returns, so the CLI renders both identically.

One semantic difference, by construction: the manifests phase checks
that referenced objects *exist* (at any root) rather than rechecking
their health — the objects phase already verified every object and
quarantined the rotten ones, so by the time the manifests phase runs,
existence implies verified.  Under ``quarantine=False`` (pure audit) a
corrupt object is left in place and therefore still "exists"; the
object finding itself is what flags it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ...analysis.errors import ErrorKind
from ...chaos import fsio
from ..cache import ConnStore, DAEMON_DIR, DEFAULT_TMP_GRACE, _TMP_SUFFIX
from ..scrub import ScrubFinding, ScrubReport, StoreScrubber

__all__ = ["IncrementalScrubber", "CURSOR_FILE"]

#: Progress-cursor filename at the primary store root.
CURSOR_FILE = "scrub-cursor.json"

_PHASES = ("objects", "manifests", "tmp", "done")


def _fresh_cursor() -> dict:
    return {
        "schema": 1,
        "phase": "objects",
        "after": None,
        "objects_checked": 0,
        "manifests_checked": 0,
        "corrupt_objects": [],
        "corrupt_manifests": [],
        "dead_checkpoints": [],
        "missing_refs": {},
        "stale_tmp": 0,
        "in_flight_tmp": 0,
        "replica_target": 1,
        "under_replicated": {},
        "under_replicated_manifests": {},
        # Streaming replica counter: the digest whose copies the objects
        # phase is mid-way through counting when a budget boundary (or a
        # crash) lands between two copies of it.
        "pending_digest": None,
        "pending_copies": 0,
    }


class IncrementalScrubber(StoreScrubber):
    """A :class:`StoreScrubber` that runs in resumable bounded steps."""

    def __init__(self, store: ConnStore) -> None:
        super().__init__(store)
        self.cursor_path = store.root / CURSOR_FILE

    # -- cursor ------------------------------------------------------------

    def cursor(self) -> dict:
        """The persisted cursor, or a fresh one for a new cycle."""
        try:
            payload = json.loads(fsio.read_bytes(self.cursor_path).decode("utf-8"))
        except (OSError, ValueError):
            return _fresh_cursor()
        if payload.get("phase") not in _PHASES:
            return _fresh_cursor()
        for key, value in _fresh_cursor().items():
            payload.setdefault(key, value)  # cursors from older cycles
        return payload

    def _save(self, cursor: dict) -> None:
        text = json.dumps(cursor, sort_keys=True, indent=1) + "\n"
        fsio.publish_text(self.cursor_path, text, tmp_prefix=".scrub-")

    def reset(self) -> None:
        """Start the next scrub cycle from the beginning."""
        self.cursor_path.unlink(missing_ok=True)

    # -- stepping ----------------------------------------------------------

    def step(
        self,
        budget: int = 250,
        quarantine: bool = True,
        tmp_grace_s: float = DEFAULT_TMP_GRACE,
    ) -> dict:
        """Verify up to ``budget`` items, persist the cursor, return it.

        A completed cycle parks the cursor at phase ``done``; calling
        :meth:`step` on a done cursor starts a new cycle (integrity is
        a rolling concern, not a one-shot).
        """
        cursor = self.cursor()
        if cursor["phase"] == "done":
            cursor = _fresh_cursor()
        placement = getattr(self.store, "placement", None)
        cursor["replica_target"] = (
            placement.effective_replicas() if placement is not None else 1
        )
        if cursor["phase"] == "objects":
            self._step_objects(cursor, budget, quarantine)
        elif cursor["phase"] == "manifests":
            self._step_manifests(cursor, budget, quarantine)
        if cursor["phase"] == "tmp":
            self._step_tmp(cursor, tmp_grace_s)
        self._save(cursor)
        return cursor

    def run(
        self,
        budget: int = 250,
        quarantine: bool = True,
        tmp_grace_s: float = DEFAULT_TMP_GRACE,
        max_steps: int = 0,
    ) -> dict:
        """Step until the cycle completes (or ``max_steps`` is hit)."""
        steps = 0
        while True:
            cursor = self.step(budget, quarantine, tmp_grace_s)
            steps += 1
            if cursor["phase"] == "done" or (max_steps and steps >= max_steps):
                return cursor

    # -- phases ------------------------------------------------------------

    @staticmethod
    def _sort_key(path: Path) -> list[str]:
        # Digest first so the watermark is stable across roots; the full
        # path breaks ties when a duplicate copy exists at two roots.
        return [path.name, str(path)]

    def _flush_pending(self, cursor: dict) -> None:
        """Close the streaming replica count for the current digest."""
        digest = cursor["pending_digest"]
        if digest is not None and cursor["replica_target"] > 1:
            if cursor["pending_copies"] < cursor["replica_target"]:
                cursor["under_replicated"][digest] = cursor["pending_copies"]
        cursor["pending_digest"] = None
        cursor["pending_copies"] = 0

    def _step_objects(self, cursor: dict, budget: int, quarantine: bool) -> None:
        store = self.store
        after = cursor.get("after")
        files = sorted(store._object_files(), key=self._sort_key)
        checked = 0
        for path in files:
            key = self._sort_key(path)
            if after is not None and key <= after:
                continue
            if checked >= budget:
                cursor["after"] = after
                return
            checked += 1
            after = key
            cursor["objects_checked"] += 1
            error = self._check_object(path)
            if error is None:
                # Copies of one digest are adjacent in the walk (the
                # sort key leads with the filename), so replica counting
                # is a streaming run-length over verified copies.
                if cursor["pending_digest"] != path.stem:
                    self._flush_pending(cursor)
                    cursor["pending_digest"] = path.stem
                cursor["pending_copies"] += 1
                continue
            kind = error.kind.value
            owner = store.owning_root(path)
            rel = str(path.relative_to(owner))
            destination = (
                self._quarantine(path, kind, error.detail) if quarantine else ""
            )
            cursor["corrupt_objects"].append(
                {
                    "kind": kind,
                    "path": rel,
                    "detail": error.detail,
                    "quarantined_to": destination,
                }
            )
        self._flush_pending(cursor)
        cursor["phase"] = "manifests"
        cursor["after"] = None

    def _object_exists(self, digest: str) -> bool:
        candidates = getattr(self.store, "_candidate_paths", None)
        if candidates is not None:
            return any(path.exists() for path in candidates(digest))
        return self.store._object_path(digest).exists()

    def _step_manifests(self, cursor: dict, budget: int, quarantine: bool) -> None:
        store = self.store
        after = cursor.get("after")
        if not store.manifests_dir.is_dir():
            cursor["phase"] = "tmp"
            cursor["after"] = None
            return
        checked = 0
        for path in sorted(store.manifests_dir.glob("*.json")):
            key = self._sort_key(path)
            if after is not None and key <= after:
                continue
            if checked >= budget:
                cursor["after"] = after
                return
            checked += 1
            after = key
            cursor["manifests_checked"] += 1
            rel = str(path.relative_to(store.root))
            try:
                text = fsio.read_bytes(path).decode("utf-8")
                payload = json.loads(text)
                if not isinstance(payload, dict):
                    raise ValueError(f"not a JSON object: {type(payload).__name__}")
            except (OSError, ValueError) as exc:
                kind = ErrorKind.DECODE_ERROR.value
                destination = (
                    self._quarantine(path, kind, str(exc)) if quarantine else ""
                )
                cursor["corrupt_manifests"].append(
                    {
                        "kind": kind,
                        "path": rel,
                        "detail": str(exc),
                        "quarantined_to": destination,
                    }
                )
                continue
            if cursor["replica_target"] > 1:
                found = 1 + sum(
                    1
                    for _, mirror in store.mirror_paths(path.stem)
                    if self._mirror_matches(mirror, text)
                )
                if found < cursor["replica_target"]:
                    cursor["under_replicated_manifests"][path.stem] = found
            if "ref" in payload:
                continue
            missing = [
                digest
                for digest in self._referenced(payload)
                if not self._object_exists(digest)
            ]
            if not missing:
                continue
            if payload.get("kind") == "checkpoint" and payload["state"] in missing:
                detail = f"state shard {payload['state'][:12]}… missing"
                destination = (
                    self._quarantine(path, ErrorKind.TRUNCATED_BODY.value, detail)
                    if quarantine
                    else ""
                )
                cursor["dead_checkpoints"].append(
                    {
                        "kind": ErrorKind.TRUNCATED_BODY.value,
                        "path": rel,
                        "detail": detail,
                        "quarantined_to": destination,
                    }
                )
                continue
            cursor["missing_refs"][payload.get("key", path.stem)] = missing
        cursor["phase"] = "tmp"
        cursor["after"] = None

    def _step_tmp(self, cursor: dict, tmp_grace_s: float) -> None:
        store = self.store
        now = time.time()
        stale = in_flight = 0
        bases = [*store.object_dirs(), *store.manifest_dirs(), store.root / DAEMON_DIR]
        for base in bases:
            if not base.is_dir():
                continue
            for path in base.rglob(f"*{_TMP_SUFFIX}"):
                try:
                    mtime = path.stat().st_mtime
                except FileNotFoundError:
                    continue
                if tmp_grace_s > 0 and now - mtime < tmp_grace_s:
                    in_flight += 1
                else:
                    stale += 1
        cursor["stale_tmp"] = stale
        cursor["in_flight_tmp"] = in_flight
        cursor["phase"] = "done"
        cursor["after"] = None

    # -- reporting ---------------------------------------------------------

    def report(self, cursor: dict | None = None) -> ScrubReport:
        """Fold a cursor into the shared :class:`ScrubReport` shape."""
        cursor = cursor if cursor is not None else self.cursor()

        def findings(rows: list[dict]) -> list[ScrubFinding]:
            return [
                ScrubFinding(
                    row["kind"], row["path"], row["detail"], row["quarantined_to"]
                )
                for row in rows
            ]

        return ScrubReport(
            objects_checked=cursor["objects_checked"],
            manifests_checked=cursor["manifests_checked"],
            corrupt_objects=findings(cursor["corrupt_objects"]),
            corrupt_manifests=findings(cursor["corrupt_manifests"]),
            missing_refs={
                key: tuple(values)
                for key, values in cursor["missing_refs"].items()
            },
            dead_checkpoints=findings(cursor["dead_checkpoints"]),
            stale_tmp=cursor["stale_tmp"],
            in_flight_tmp=cursor["in_flight_tmp"],
            replica_target=cursor.get("replica_target", 1),
            under_replicated=dict(cursor.get("under_replicated", {})),
            under_replicated_manifests=dict(
                cursor.get("under_replicated_manifests", {})
            ),
        )
