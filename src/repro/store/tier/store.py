"""The tiered multi-root store: placement-routed shards + hot tier.

:class:`TieredStore` is a drop-in :class:`~repro.store.cache.ConnStore`
whose ``objects/`` tree spans several roots.  Everything above the
object layer is untouched: manifests (and therefore content keys, the
service's store-state token, gen-key aliases, and the daemon tree) stay
at the primary root, so a flat store and a tiered store are
indistinguishable to ``StoreQuery``, ``run_study``, the checkpointer,
and the HTTP service — they only ever call ``put_object``/``get_object``
and the manifest API.

Reads are three-tiered:

1. **hot tier** — verified bytes in RAM (:class:`HotTier`), no I/O;
2. **assigned root** — the placement table's home for the digest's
   bucket (the destination root mid-move, so a flipping bucket never
   goes dark);
3. **every other root** — the fallback that makes rebalance crash-safe:
   whatever half-moved state a SIGKILL leaves behind, some root still
   holds the bytes and the scan finds them.

Every cold read re-verifies the content address before the bytes are
admitted to the hot tier, exactly like the flat store.

Use :func:`open_store` everywhere a store is constructed from a
directory: it returns a :class:`TieredStore` when ``tier.json`` exists
and a plain :class:`ConnStore` otherwise, so flat stores keep their
historical behavior byte-for-byte.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from ...analysis.errors import ErrorKind
from ...chaos import fsio
from ..cache import ConnStore, _OBJECT_SUFFIX
from ..shard import ShardError
from .hotcache import HotTier
from .placement import BUCKETS, DEFAULT_HOT_BYTES, TIER_MANIFEST, PlacementManifest

__all__ = ["TieredStore", "RebalanceReport", "open_store", "init_tier"]


@dataclass(frozen=True)
class RebalanceReport:
    """What one :meth:`TieredStore.rebalance` pass did."""

    #: Buckets whose assignment flipped this pass (hex chars).
    moved: tuple[str, ...]
    #: Object files copied to their new root.
    copied: int
    bytes_copied: int
    #: Source/duplicate copies deleted after a verified flip.
    deleted: int
    #: Buckets still misplaced after this pass (bounded by max_buckets).
    pending: tuple[str, ...]


class TieredStore(ConnStore):
    """A ConnStore whose objects are placed across multiple roots."""

    def __init__(self, root: str | Path) -> None:
        super().__init__(root)
        placement = PlacementManifest.load(self.root)
        if placement is None:
            raise FileNotFoundError(
                f"{self.root / TIER_MANIFEST} not found — "
                "not a tiered store (use open_store / init_tier)"
            )
        self.placement = placement
        self._root_paths = placement.resolve_roots(self.root)
        self.hot = HotTier(placement.hot_bytes, placement.pinned)

    # -- multi-root hooks (see ConnStore) ----------------------------------

    def roots(self) -> list[Path]:
        return list(self._root_paths)

    def object_dirs(self) -> list[Path]:
        return [path / "objects" for path in self._root_paths]

    def owning_root(self, path: Path) -> Path:
        """The declared root a file lives under (longest-prefix match,
        so a secondary root nested inside the primary still wins for
        its own files)."""
        best = self.root
        best_len = -1
        for candidate in self._root_paths:
            if not path.is_relative_to(candidate):
                continue
            score = len(candidate.parts)
            if score > best_len:
                best, best_len = candidate, score
        return best

    # -- object routing ----------------------------------------------------

    def _root_for(self, digest: str) -> Path:
        index = self.placement.active_index(PlacementManifest.bucket_of(digest))
        return self._root_paths[index]

    def _object_path(self, digest: str) -> Path:
        return (
            self._root_for(digest) / "objects" / digest[:2]
            / f"{digest}{_OBJECT_SUFFIX}"
        )

    def _candidate_paths(self, digest: str) -> list[Path]:
        """Everywhere the digest could legally live: home first, then
        every other root (mid-move duplicates, crash leftovers)."""
        home = self._object_path(digest)
        rest = [
            root / "objects" / digest[:2] / f"{digest}{_OBJECT_SUFFIX}"
            for root in self._root_paths
        ]
        return [home] + [path for path in rest if path != home]

    def put_object(self, data: bytes) -> str:
        digest = hashlib.sha256(data).hexdigest()
        if not any(path.exists() for path in self._candidate_paths(digest)):
            path = self._object_path(digest)
            path.parent.mkdir(parents=True, exist_ok=True)
            fsio.publish_bytes(path, data, tmp_prefix=f".{digest[:12]}-")
        return digest

    def get_object(self, digest: str) -> bytes:
        data = self.hot.get(digest)
        if data is not None:
            return data
        corrupt: ShardError | None = None
        for path in self._candidate_paths(digest):
            try:
                data = fsio.read_bytes(path)
            except OSError:
                continue
            actual = hashlib.sha256(data).hexdigest()
            if actual != digest:
                # A rotted copy at one root must not mask a healthy one
                # at another; remember the defect, keep scanning.
                corrupt = ShardError(
                    ErrorKind.DECODE_ERROR, str(path), None,
                    f"content address mismatch: named {digest[:12]}…, "
                    f"bytes hash to {actual[:12]}…",
                )
                continue
            self.hot.put(digest, data)
            return data
        if corrupt is not None:
            raise corrupt
        raise ShardError(
            ErrorKind.TRUNCATED_BODY, str(self._object_path(digest)), None,
            f"shard object missing from all {len(self._root_paths)} root(s)",
        )

    # -- rebalance ---------------------------------------------------------

    def add_root(self, spec: str) -> None:
        """Declare a new root (no data moves until :meth:`rebalance`)."""
        if spec in self.placement.roots:
            raise ValueError(f"root {spec!r} already declared")
        self.placement.roots.append(spec)
        self.placement.save(self.root)
        self._root_paths = self.placement.resolve_roots(self.root)

    def _bucket_files(self, bucket: str) -> list[tuple[int, Path]]:
        """(root index, path) of every object file in one bucket."""
        found: list[tuple[int, Path]] = []
        for index, root in enumerate(self._root_paths):
            objects = root / "objects"
            if not objects.is_dir():
                continue
            for prefix_dir in sorted(objects.iterdir()):
                if not prefix_dir.is_dir() or not prefix_dir.name.startswith(bucket):
                    continue
                for path in sorted(prefix_dir.glob(f"*{_OBJECT_SUFFIX}")):
                    found.append((index, path))
        return found

    def rebalance(self, max_buckets: int | None = None) -> RebalanceReport:
        """Move buckets toward the leveled placement, incrementally.

        Per bucket: record the move cursor, copy every object to the
        destination root (crash-consistent publishes; already-present
        copies are skipped, corrupt sources are left for scrub), flip
        the assignment in one atomic manifest write, then delete the
        now-duplicate source copies.  Readers are never blocked: until
        the flip they find objects at the old home, after it at the
        new one, and the any-root fallback covers every interleaving a
        crash can produce.  ``max_buckets`` bounds one pass so the
        rebalance can run as a background increment.
        """
        placement = self.placement
        target = placement.balanced_assign()
        todo = [
            bucket for bucket in BUCKETS
            if bucket in placement.moving or placement.assign[bucket] != target[bucket]
        ]
        limit = len(todo) if max_buckets is None else max(0, max_buckets)
        moved: list[str] = []
        copied = deleted = bytes_copied = 0
        for bucket in todo[:limit]:
            dest = placement.moving.get(bucket, target[bucket])
            if dest != placement.assign[bucket]:
                if placement.moving.get(bucket) != dest:
                    placement.moving[bucket] = dest
                    placement.save(self.root)
                dest_root = self._root_paths[dest]
                for index, path in self._bucket_files(bucket):
                    if index == dest:
                        continue
                    target_path = dest_root / "objects" / path.parent.name / path.name
                    if target_path.exists():
                        continue
                    data = fsio.read_bytes(path)
                    if hashlib.sha256(data).hexdigest() != path.stem:
                        continue  # rotted source copy: scrub's problem
                    target_path.parent.mkdir(parents=True, exist_ok=True)
                    fsio.publish_bytes(
                        target_path, data, tmp_prefix=f".{path.stem[:12]}-"
                    )
                    copied += 1
                    bytes_copied += len(data)
                placement.assign[bucket] = dest
            placement.moving.pop(bucket, None)
            placement.save(self.root)  # the atomic flip
            moved.append(bucket)
            # Reap source copies — and any crash-orphaned duplicates —
            # only after the flip is durable and the home copy exists.
            home = dest
            for index, path in self._bucket_files(bucket):
                if index == home:
                    continue
                home_path = (
                    self._root_paths[home] / "objects"
                    / path.parent.name / path.name
                )
                if home_path.exists():
                    path.unlink(missing_ok=True)
                    deleted += 1
        pending = tuple(placement.misplaced())
        return RebalanceReport(
            moved=tuple(moved),
            copied=copied,
            bytes_copied=bytes_copied,
            deleted=deleted,
            pending=pending,
        )

    # -- accounting --------------------------------------------------------

    def tier_status(self) -> dict:
        """Everything ``store tier status`` and ``/health`` report."""
        roots = []
        for index, root in enumerate(self._root_paths):
            objects = root / "objects"
            files = (
                list(objects.glob(f"*/*{_OBJECT_SUFFIX}"))
                if objects.is_dir()
                else []
            )
            roots.append(
                {
                    "index": index,
                    "path": str(root),
                    "spec": self.placement.roots[index],
                    "buckets": sum(
                        1 for b in BUCKETS if self.placement.assign[b] == index
                    ),
                    "objects": len(files),
                    "bytes": sum(path.stat().st_size for path in files),
                }
            )
        return {
            "roots": roots,
            "assign": {b: self.placement.assign[b] for b in BUCKETS},
            "moving": dict(self.placement.moving),
            "misplaced": list(self.placement.misplaced()),
            "hot": self.hot.stats(),
        }

    def stats(self) -> dict:
        payload = super().stats()
        payload["tier"] = self.tier_status()
        return payload


def init_tier(
    root: str | Path,
    roots: tuple[str, ...] = (),
    hot_bytes: int = DEFAULT_HOT_BYTES,
    pinned: tuple[str, ...] = (),
) -> TieredStore:
    """Turn a store directory into a tiered store (idempotent layout).

    Existing objects stay where they are — every bucket starts assigned
    to the primary, so a freshly initialized tier answers identically
    to the flat store it replaced; ``rebalance`` then levels buckets
    across ``roots`` (extra roots beyond the implicit primary ``"."``).
    """
    root = Path(root)
    if (root / TIER_MANIFEST).exists():
        raise FileExistsError(f"{root / TIER_MANIFEST} already exists")
    placement = PlacementManifest(
        roots=["."] + [spec for spec in roots if spec != "."],
        hot_bytes=hot_bytes,
        pinned=tuple(pinned),
    )
    root.mkdir(parents=True, exist_ok=True)
    placement.save(root)
    return TieredStore(root)


def open_store(root: str | Path) -> ConnStore:
    """The one constructor every layer uses: tiered iff tier.json exists."""
    root = Path(root)
    if (root / TIER_MANIFEST).exists():
        return TieredStore(root)
    return ConnStore(root)
